"""Table II: recovery latency breakdown (Net and Redis)."""

from repro.experiments.table2 import format_rows, run_table2


def test_table2_recovery_breakdown(benchmark):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    print("\nTable II — recovery latency breakdown:")
    print(format_rows(rows))

    by_name = {row["benchmark"]: row for row in rows}
    net, redis = by_name["net"], by_name["redis"]

    # Restore dominates the recovery latency for both benchmarks.
    for row in (net, redis):
        assert row["restore_ms"] > row["arp_ms"]
        assert row["restore_ms"] > row["others_ms"]
        # Sub-second total recovery (the paper's headline: ~0.3-0.4 s).
        assert row["total_ms"] < 1000
        assert row["restore_ms"] > 100

    # Redis restores more slowly than Net: its store memory must be
    # written back into the new address space.
    assert redis["restore_ms"] > net["restore_ms"] + 10

    # ARP is a constant broadcast cost.
    assert abs(net["arp_ms"] - redis["arp_ms"]) < 1

    # Detection is ~3 heartbeat intervals (paper: 90 ms mean).
    for row in (net, redis):
        assert 45 <= row["detection_ms"] <= 160
