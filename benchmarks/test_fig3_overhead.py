"""Figure 3: performance overhead, NiLiCon vs MC, with breakdown.

Regenerates the stacked-bar data of the paper's Figure 3 and asserts its
shape claims (see :mod:`repro.experiments.fig3`).
"""

from repro.experiments.fig3 import PAPER_FIG3, format_rows, rows_from_suite
from repro.experiments.suite import PAPER_BENCHMARKS


def test_fig3_overhead(benchmark, suite):
    rows = benchmark.pedantic(rows_from_suite, args=(suite,), rounds=1, iterations=1)
    print("\nFigure 3 — performance overhead (percent):")
    print(format_rows(rows))

    by_name = {row["benchmark"]: row for row in rows}

    # Every benchmark pays a real but sub-100% overhead under NiLiCon.
    for name in PAPER_BENCHMARKS:
        assert 5 < by_name[name]["nilicon_overhead_pct"] < 95, name
        assert 5 < by_name[name]["mc_overhead_pct"] < 95, name

    # NiLiCon's runtime component is lower than MC's for every benchmark
    # (soft-dirty faults vs VM exits, SSVII-C).
    for name in PAPER_BENCHMARKS:
        assert (
            by_name[name]["nilicon_runtime_pct"] < by_name[name]["mc_runtime_pct"]
        ), name

    # Who wins where: MC on the CPU-light compute benchmark, NiLiCon on the
    # I/O-heavy databases (paper Figure 3).
    assert by_name["swaptions"]["mc_overhead_pct"] < by_name["swaptions"]["nilicon_overhead_pct"]
    assert by_name["redis"]["nilicon_overhead_pct"] < by_name["redis"]["mc_overhead_pct"]
    assert by_name["ssdb"]["nilicon_overhead_pct"] < by_name["ssdb"]["mc_overhead_pct"]

    # For NiLiCon the stop component dominates for most benchmarks.
    stop_dominated = sum(
        1
        for name in PAPER_BENCHMARKS
        if by_name[name]["nilicon_stopped_pct"] > by_name[name]["nilicon_runtime_pct"]
    )
    assert stop_dominated >= 5

    # Ordering sanity vs the paper within each system: the cheapest and the
    # most expensive NiLiCon benchmarks match the paper's extremes.
    measured_order = sorted(
        PAPER_BENCHMARKS, key=lambda n: by_name[n]["nilicon_overhead_pct"]
    )
    assert measured_order[0] == "swaptions"
    paper_order = sorted(PAPER_BENCHMARKS, key=lambda n: PAPER_FIG3[n]["nilicon"])
    assert paper_order[0] == "swaptions"
