"""Related-work comparison (paper §VIII): NiLiCon vs COLO-style replication.

The paper argues the warm-spare design point: active replication (COLO,
PLOVER) answers faster (matched outputs release immediately instead of
waiting out an epoch commit) but burns >100% resources on the backup,
while NiLiCon's backup merely buffers state (Table V: 0.07-0.40 cores).
This bench measures both sides of that trade-off on the same workload.
"""

from repro.baselines.colo import ColoDeployment
from repro.net import World
from repro.replication import ReplicatedDeployment
from repro.sim import ms, sec
from repro.workloads.base import ClientStats
from repro.workloads.microbench import EchoServer


def _run_echo(system: str):
    world = World(seed=9)
    workload = EchoServer(name="echo", min_len=256, max_len=256, n_clients=4)
    if system == "colo":
        deployment = ColoDeployment(
            world, workload.spec(), attach_workload=lambda c: workload.attach(world, c)
        )
    else:
        deployment = ReplicatedDeployment(world, workload.spec())
    workload.attach(world, deployment.container)
    deployment.start()
    stats = ClientStats()

    def launch():
        yield world.engine.timeout(ms(400))
        workload.start_clients(world, stats, run_until_us=sec(2), gap_us=ms(2))

    world.engine.process(launch())
    world.run(until=sec(2))
    deployment.stop()
    assert stats.ok and stats.completed > 50, (system, stats.completed, stats.errors)

    median_latency = sorted(stats.latencies_us)[len(stats.latencies_us) // 2]
    if system == "colo":
        backup_cores = deployment.backup_core_utilization()
    else:
        backup_cores = deployment.metrics.backup_core_utilization()
    primary_cores = deployment.container.cgroup.read_cpuacct() / max(
        1, deployment.metrics.elapsed_us
    )
    return {
        "system": system,
        "median_latency_ms": median_latency / 1000,
        "backup_cores": backup_cores,
        "primary_cores": primary_cores,
        "throughput": stats.throughput(sec(2) - ms(400)),
    }


def test_colo_vs_nilicon_tradeoff(benchmark):
    def run_both():
        return [_run_echo("nilicon"), _run_echo("colo")]

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print("\nSSVIII — warm spare (NiLiCon) vs active replication (COLO-style):")
    for row in rows:
        print(f"  {row['system']:<8} median latency {row['median_latency_ms']:6.1f} ms   "
              f"backup {row['backup_cores']:.3f} cores   "
              f"primary {row['primary_cores']:.3f} cores")
    by = {row["system"]: row for row in rows}

    # COLO answers much faster: no epoch-commit buffering of outputs.
    assert by["colo"]["median_latency_ms"] * 3 < by["nilicon"]["median_latency_ms"]
    # ...but its backup burns a workload's worth of CPU, while NiLiCon's
    # backup is a small fraction of the primary's.
    assert by["colo"]["backup_cores"] > 5 * by["nilicon"]["backup_cores"]
    assert by["colo"]["backup_cores"] > 0.5 * by["colo"]["primary_cores"]
    # NiLiCon's backup does near-zero absolute work for this light service
    # (it only reads and buffers the state stream).
    assert by["nilicon"]["backup_cores"] < 0.05
