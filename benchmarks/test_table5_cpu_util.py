"""Table V: core utilization on the active and backup hosts."""

from repro.experiments.suite import PAPER_BENCHMARKS
from repro.experiments.table5 import PAPER_TABLE5, format_rows, rows_from_suite


def test_table5_core_utilization(benchmark, suite):
    rows = benchmark.pedantic(rows_from_suite, args=(suite,), rounds=1, iterations=1)
    print("\nTable V — core utilization, active vs backup host:")
    print(format_rows(rows))

    by_name = {row["benchmark"]: row for row in rows}

    # The warm-spare advantage: backup utilization far below active for
    # every benchmark (the argument against active replication, SSVIII).
    for name in PAPER_BENCHMARKS:
        row = by_name[name]
        assert row["backup_cores"] < 0.6, name
        assert row["backup_cores"] < row["active_cores"] / 2, name

    # Multi-threaded/multi-process benchmarks saturate ~their core count.
    assert by_name["swaptions"]["active_cores"] > 3.0
    assert by_name["streamcluster"]["active_cores"] > 3.0
    assert by_name["lighttpd"]["active_cores"] > 2.5
    # Single-threaded servers stay around one core.
    assert by_name["redis"]["active_cores"] < 1.6
    assert by_name["node"]["active_cores"] < 1.6

    # Node's backup costs more than the compute benchmarks' (fine-grained
    # socket state arrives in many small chunks).
    assert by_name["node"]["backup_cores"] > by_name["swaptions"]["backup_cores"]
    assert by_name["node"]["backup_cores"] > by_name["streamcluster"]["backup_cores"]
