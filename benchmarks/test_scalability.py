"""§VII-C scalability: threads, clients, and processes sweeps."""

from repro.experiments.scalability import (
    format_sweep,
    run_client_sweep,
    run_process_sweep,
    run_thread_sweep,
)


def test_thread_scalability(benchmark):
    rows = benchmark.pedantic(
        run_thread_sweep, kwargs={"thread_counts": (1, 4, 16, 32)}, rounds=1, iterations=1
    )
    print("\nSSVII-C — streamcluster thread sweep:")
    print(format_sweep(rows, "threads"))
    overheads = {row["threads"]: row["overhead_pct"] for row in rows}
    # Overhead grows with thread count (paper: 23% @ 1 -> 52% @ 32).
    assert overheads[32] > overheads[1] + 8
    assert overheads[1] > 10
    assert overheads[32] < 95
    # Dirty pages and stop time grow too (the paper's three causes).
    by = {row["threads"]: row for row in rows}
    assert by[32]["avg_dirty"] > by[1]["avg_dirty"]
    assert by[32]["avg_stop_ms"] > by[1]["avg_stop_ms"]


def test_client_scalability(benchmark):
    rows = benchmark.pedantic(
        run_client_sweep, kwargs={"client_counts": (2, 32, 128)}, rounds=1, iterations=1
    )
    print("\nSSVII-C — Lighttpd client sweep (4 processes):")
    print(format_sweep(rows, "clients"))
    by = {row["clients"]: row for row in rows}
    # Socket-state collection grows ~1.2 ms @ 2 clients -> ~13 ms @ 128.
    assert by[2]["socket_collect_ms"] < 2.0
    assert 10 < by[128]["socket_collect_ms"] < 16
    # Stop time rises accordingly (paper: the overhead growth from 34% to
    # 45% at 128 clients is "almost entirely caused by the increased time
    # to checkpoint socket states").
    assert by[128]["avg_stop_ms"] > by[2]["avg_stop_ms"] + 5
    for row in rows:
        assert 20 < row["overhead_pct"] < 95


def test_process_scalability(benchmark):
    rows = benchmark.pedantic(
        run_process_sweep, kwargs={"process_counts": (1, 4, 8)}, rounds=1, iterations=1
    )
    print("\nSSVII-C — Lighttpd process sweep:")
    print(format_sweep(rows, "processes"))
    by = {row["processes"]: row for row in rows}
    # Overhead grows with process count (paper: 23% @ 1 -> 63% @ 8),
    # driven by per-process state retrieval.
    assert by[8]["overhead_pct"] > by[1]["overhead_pct"] + 8
    assert by[8]["avg_stop_ms"] > by[1]["avg_stop_ms"] + 8
