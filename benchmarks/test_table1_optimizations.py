"""Table I: cumulative impact of NiLiCon's performance optimizations."""

from repro.experiments.table1 import PAPER_TABLE1, format_rows, run_table1
from repro.replication.config import TABLE1_LEVELS


def test_table1_optimization_walk(benchmark):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    print("\nTable I — impact of NiLiCon's performance optimizations (streamcluster):")
    print(format_rows(rows))

    assert [row["label"] for row in rows] == list(TABLE1_LEVELS)
    overheads = [row["overhead_pct"] for row in rows]

    # Monotone improvement as optimizations stack.
    assert all(a >= b for a, b in zip(overheads, overheads[1:])), overheads

    # The basic implementation is catastrophic (paper: 1940%).
    assert overheads[0] > 400
    # Optimizing CRIU alone leaves it far from usable (paper: 619%).
    assert overheads[1] > 150
    # Caching infrequently-modified state is the big cliff (paper: 84%).
    assert overheads[2] < overheads[1] / 3
    assert overheads[2] < 150
    # The fully optimized system lands in the tens of percent (paper: 31%).
    assert 15 < overheads[-1] < 60

    # Each of the last four optimizations still helps measurably.
    assert overheads[2] - overheads[3] > 1  # plug input blocking (~7 ms/epoch)
    assert overheads[4] - overheads[5] >= 0  # staging buffer
    assert overheads[5] - overheads[6] >= 0  # shm transfer
