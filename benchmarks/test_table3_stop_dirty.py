"""Table III: average stop time and dirty pages per epoch, MC vs NiLiCon."""

from repro.experiments.suite import PAPER_BENCHMARKS
from repro.experiments.table3 import PAPER_TABLE3, format_rows, rows_from_suite


def test_table3_stop_time_and_dirty_pages(benchmark, suite):
    rows = benchmark.pedantic(rows_from_suite, args=(suite,), rounds=1, iterations=1)
    print("\nTable III — average stop time and dirty pages per epoch:")
    print(format_rows(rows))

    by_name = {row["benchmark"]: row for row in rows}

    # NiLiCon stops longer than MC for every benchmark: container in-kernel
    # state must be collected through slow kernel interfaces (SSV).
    for name in PAPER_BENCHMARKS:
        assert by_name[name]["nilicon_stop_ms"] > by_name[name]["mc_stop_ms"], name

    # Node has NiLiCon's largest stop time (socket collection, 128 clients).
    worst = max(PAPER_BENCHMARKS, key=lambda n: by_name[n]["nilicon_stop_ms"])
    assert worst == "node"

    # Stop times land within 2x of the paper's absolute values.
    for name in PAPER_BENCHMARKS:
        measured = by_name[name]["nilicon_stop_ms"]
        paper = PAPER_TABLE3[name]["nilicon_stop_ms"]
        assert 0.4 * paper < measured < 2.5 * paper, (name, measured, paper)

    # Dirty-page ordering: the memory-churning benchmarks (redis, node)
    # dirty the most; swaptions the least.
    dirty = {n: by_name[n]["nilicon_dpages"] for n in PAPER_BENCHMARKS}
    assert min(dirty, key=dirty.get) == "swaptions"
    assert sorted(dirty, key=dirty.get, reverse=True)[0] in ("redis", "node")
