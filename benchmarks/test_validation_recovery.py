"""§VII-A validation: fault-injection recovery campaign.

The paper runs 50 injections per benchmark and reports a 100% recovery
rate with no broken connections.  The default here is a reduced campaign
(REPRO_VALIDATION_RUNS=5 per workload, every workload class represented);
set REPRO_VALIDATION_RUNS=50 for the paper-scale campaign.
"""

from repro.experiments.validation import (
    VALIDATION_WORKLOADS,
    format_rows,
    run_validation_campaign,
)

from .conftest import validation_runs


def test_validation_recovery_rate(benchmark):
    runs = validation_runs()
    results = benchmark.pedantic(
        run_validation_campaign,
        kwargs={"workloads": VALIDATION_WORKLOADS, "runs_per_workload": runs},
        rounds=1,
        iterations=1,
    )
    print(f"\nSSVII-A — fault-injection campaign ({runs} runs per workload):")
    print(format_rows(results))
    for campaign in results:
        assert campaign.recovery_rate == 1.0, (
            campaign.workload,
            campaign.failures[:5],
        )
