"""Table IV: stop-time and state-size distributions (P10/P50/P90)."""

from repro.experiments.suite import PAPER_BENCHMARKS
from repro.experiments.table4 import format_rows, rows_from_suite


def test_table4_stop_and_state_percentiles(benchmark, suite):
    rows = benchmark.pedantic(rows_from_suite, args=(suite,), rounds=1, iterations=1)
    print("\nTable IV — stop time and transferred state size (P10/P50/P90):")
    print(format_rows(rows))

    by_name = {row["benchmark"]: row for row in rows}

    # Percentiles are ordered for every benchmark.
    for name in PAPER_BENCHMARKS:
        p10, p50, p90 = by_name[name]["stop_ms"]
        assert p10 <= p50 <= p90, name
        s10, s50, s90 = by_name[name]["state_mb"]
        assert s10 <= s50 <= s90, name

    # Redis and Node transfer the most state (tens of MB median), the
    # compute benchmarks the least (sub-MB) — Table IV's spread.
    medians = {n: by_name[n]["state_mb"][1] for n in PAPER_BENCHMARKS}
    top_two = sorted(medians, key=medians.get, reverse=True)[:2]
    assert set(top_two) <= {"redis", "node", "djcms"}
    assert medians["swaptions"] < 1.0
    assert medians["streamcluster"] < 2.0
    assert medians["redis"] > 5.0

    # Dirty pages dominate the transferred state (85%-95%+, SSVII-C): check
    # via the suite's NiLiCon runs.
    for name in ("redis", "node"):
        metrics = suite[(name, "nilicon")].metrics
        epochs = metrics.steady_epochs()
        page_bytes = sum(e.dirty_pages for e in epochs) * 4096
        total_bytes = sum(e.state_bytes for e in epochs)
        assert page_bytes / total_bytes > 0.80, name
