"""Shared fixtures for the benchmark harness.

Figure 3 and Tables III-V are different views of the *same* runs (the
paper executed each benchmark once per system and reported several
measurements).  The session-scoped ``suite`` fixture performs those runs
once; each bench then regenerates its artifact from them.

Environment knobs:

* ``REPRO_BENCH_DURATION_MS`` — virtual milliseconds of measurement per
  server-benchmark run (default 2000).
* ``REPRO_VALIDATION_RUNS`` — fault-injection runs per workload for the
  §VII-A campaign (default 5; the paper's full campaign is 50).
"""

import os

import pytest

from repro.experiments.suite import run_suite
from repro.sim.units import ms


def bench_duration_us() -> int:
    return ms(int(os.environ.get("REPRO_BENCH_DURATION_MS", "2000")))


def validation_runs() -> int:
    return int(os.environ.get("REPRO_VALIDATION_RUNS", "5"))


@pytest.fixture(scope="session")
def suite():
    """Run the seven-benchmark suite under stock, NiLiCon and MC."""
    return run_suite(duration_us=bench_duration_us())
