"""Ablation benches beyond the paper's tables (see DESIGN.md)."""

from repro.experiments.ablations import (
    run_detection_sweep,
    run_epoch_sweep,
    run_leave_one_out,
    run_rto_patch_ablation,
)


def test_leave_one_out(benchmark):
    rows = benchmark.pedantic(run_leave_one_out, rounds=1, iterations=1)
    print("\nAblation — leave-one-out on the fully optimized system:")
    for row in rows:
        print(f"  {row['variant']:<20} overhead {row['overhead_pct']:6.1f}%  "
              f"stop {row['avg_stop_ms']:6.1f} ms")
    by = {row["variant"]: row["overhead_pct"] for row in rows}
    full = by["full"]
    # Every disabled optimization hurts; the state cache hurts the most.
    for variant, overhead in by.items():
        if variant != "full":
            assert overhead >= full - 2, (variant, overhead, full)
    assert by["-state-cache"] == max(by.values())
    assert by["-state-cache"] > full * 5
    assert by["-freeze-polling"] > full + 100  # the 100 ms sleep per epoch
    assert by["-plug-input-block"] > full + 10  # ~7 ms firewall per epoch


def test_epoch_length_sweep(benchmark):
    rows = benchmark.pedantic(run_epoch_sweep, rounds=1, iterations=1)
    print("\nAblation — epoch length sweep (streamcluster):")
    for row in rows:
        print(f"  epoch {row['epoch_ms']:>4} ms: overhead {row['overhead_pct']:6.1f}%  "
              f"stop {row['avg_stop_ms']:5.1f} ms  dirty {row['avg_dirty']:6.0f}")
    by = {row["epoch_ms"]: row for row in rows}
    # Longer epochs amortize per-checkpoint cost: overhead falls.
    assert by[10]["overhead_pct"] > by[30]["overhead_pct"] > by[120]["overhead_pct"]
    # Dirty pages per epoch grow with epoch length (more work per epoch).
    assert by[120]["avg_dirty"] > by[30]["avg_dirty"] > by[10]["avg_dirty"]


def test_rto_patch_ablation(benchmark):
    rows = benchmark.pedantic(run_rto_patch_ablation, rounds=1, iterations=1)
    print("\nAblation — SSV-E repaired-socket minimum-RTO patch:")
    for row in rows:
        print(f"  patch={str(row['rto_patch']):<5} interruption "
              f"{row['interruption_ms']:7.0f} ms (restore {row['restore_ms']:.0f} ms)")
    by = {row["rto_patch"]: row for row in rows}
    # Without the patch the restored sockets wait >= 1 s before
    # retransmitting: recovery as seen by the client gets visibly worse.
    assert by[False]["interruption_ms"] > by[True]["interruption_ms"] + 200


def test_compression_ablation(benchmark):
    from repro.experiments.ablations import run_compression_ablation

    rows = benchmark.pedantic(run_compression_ablation, rounds=1, iterations=1)
    print("\nAblation — Remus-style transfer compression (redis):")
    for row in rows:
        print(f"  compressed={str(row['compressed']):<5} link "
              f"{row['link_mb_per_s']:7.1f} MB/s  thr {row['throughput']:9.0f} ops/s  "
              f"backup {row['backup_cores']:.3f} cores")
    by = {row["compressed"]: row for row in rows}
    # Compression slashes pair-link bandwidth...
    assert by[True]["link_mb_per_s"] < 0.5 * by[False]["link_mb_per_s"]
    # ...at a small decompression cost on the backup...
    assert by[True]["backup_cores"] > by[False]["backup_cores"]
    # ...without wrecking throughput (it runs off the critical path).
    assert by[True]["throughput"] > 0.85 * by[False]["throughput"]


def test_detection_interval_sweep(benchmark):
    rows = benchmark.pedantic(run_detection_sweep, rounds=1, iterations=1)
    print("\nAblation — heartbeat interval vs detection latency:")
    for row in rows:
        print(f"  interval {row['interval_ms']:>3} ms: detection "
              f"{row['detection_ms']:6.1f} ms, interruption {row['interruption_ms']:6.0f} ms")
    by = {row["interval_ms"]: row for row in rows}
    # Detection latency ~= 3-4 intervals.
    for interval, row in by.items():
        assert 2 * interval <= row["detection_ms"] <= 6 * interval, row
    assert by[10]["detection_ms"] < by[90]["detection_ms"]
