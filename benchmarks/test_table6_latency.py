"""Table VI: single-client response latency, stock vs NiLiCon."""

from repro.experiments.table6 import SERVER_BENCHMARKS, format_rows, run_table6


def test_table6_single_client_latency(benchmark):
    rows = benchmark.pedantic(run_table6, rounds=1, iterations=1)
    print("\nTable VI — response latency with a single client:")
    print(format_rows(rows))

    by_name = {row["benchmark"]: row for row in rows}

    # Replication always adds latency.
    for name in SERVER_BENCHMARKS:
        assert by_name[name]["nilicon_ms"] > by_name[name]["stock_ms"], name

    # For fast-request benchmarks the buffering delay dominates: the added
    # latency is on the order of an epoch-plus-stop (tens of ms) and an
    # order of magnitude above stock (paper: Redis 3.1 -> 36.9, Node
    # 2.4 -> 39.4).
    for name in ("redis", "node"):
        row = by_name[name]
        assert row["stock_ms"] < 10
        assert 20 < row["nilicon_ms"] < 90
        assert row["nilicon_ms"] / row["stock_ms"] > 4

    # For slow-request benchmarks processing dominates; the relative
    # increase is mild (paper: SSDB 1.5x, Lighttpd 1.9x, DJCMS 2.8x).
    for name in ("ssdb", "lighttpd", "djcms"):
        row = by_name[name]
        ratio = row["nilicon_ms"] / row["stock_ms"]
        assert ratio < 4, (name, ratio)

    # The *added* latency is at least one commit cycle for everyone, and
    # for the heavyweight requests additionally the checkpoint-stop
    # stretching of the processing itself (lighttpd: 285 -> 542 ms).
    for name in SERVER_BENCHMARKS:
        delta = by_name[name]["nilicon_ms"] - by_name[name]["stock_ms"]
        assert 15 < delta < 400, (name, delta)
