"""Top-level package surface tests."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_public_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_quick_deploy_through_top_level_api():
    """The README's minimal snippet must work verbatim-ish."""
    world = repro.World(seed=42)
    spec = repro.ContainerSpec(
        name="svc", ip="10.0.1.10",
        processes=[repro.ProcessSpec(comm="svc", n_threads=1)],
    )
    deployment = repro.ReplicatedDeployment(world, spec)
    deployment.start()
    world.run(until=300_000)
    deployment.stop()
    assert deployment.metrics.n_epochs >= 1
    assert not deployment.failed_over
