"""The registry and the AST hook-coverage checker agree with the source."""

from pathlib import Path

import repro
from repro.faultinject.points import FAULT_POINTS, hooked_points, verify_hook_coverage

SOURCE_ROOT = Path(repro.__file__).resolve().parent


def test_every_declared_point_has_a_hook_site():
    assert verify_hook_coverage(SOURCE_ROOT) == []


def test_hooked_points_finds_all_registered_names():
    assert hooked_points(SOURCE_ROOT) == set(FAULT_POINTS)


def test_registry_covers_all_roles():
    assert {name.split(".")[0] for name in FAULT_POINTS} == {
        "primary", "backup", "fleet", "hycor",
    }
    assert "primary.post_freeze" in FAULT_POINTS
    assert "backup.mid_recover" in FAULT_POINTS
    assert "fleet.mid_reprotect" in FAULT_POINTS
    assert "hycor.mid_log_ship" in FAULT_POINTS


def test_checker_reports_undeclared_hook_site(tmp_path):
    (tmp_path / "rogue.py").write_text(
        "def f(engine):\n"
        "    fault_point(engine, 'primary.no_such_point')\n"
    )
    problems = verify_hook_coverage(tmp_path)
    assert any("undeclared" in p and "primary.no_such_point" in p for p in problems)
    # And every declared point is missing from this empty tree.
    assert sum("no fault_point() hook site" in p for p in problems) == len(FAULT_POINTS)
