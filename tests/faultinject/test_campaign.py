"""Campaign cells: green post-fix, red when an ``unsafe_*`` knob reverts a fix.

The regression half is the PR's proof obligation: re-enabling either
pre-fix behaviour (ack-before-commit, pop-oldest barrier release) must make
its sensitive campaign cell fail its oracles again.
"""

import pytest

from repro.experiments.faultcampaign import run_phase_campaign, run_phase_injection
from repro.faultinject import SCENARIOS
from repro.faultinject.points import FAULT_POINTS, FLEET_FAULT_POINTS
from repro.replication.config import NiliconConfig

WORKLOAD = "net-echo"
SEED = 101


def test_catalog_covers_every_registered_pair_point():
    # Fleet-controller points are exercised by the fleet scenario catalog
    # (tests/fleet/test_scenarios.py), not by pair-level scenarios.
    covered = {point for s in SCENARIOS.values() for point in s.points}
    assert covered == set(FAULT_POINTS) - set(FLEET_FAULT_POINTS)


def test_catalog_has_link_races_for_every_kind():
    prefixes = {name.split(".")[0] for name in SCENARIOS}
    assert "link" in prefixes
    for kind in ("ack", "state", "heartbeat"):
        assert any(kind in name for name in SCENARIOS if name.startswith("link."))


@pytest.mark.parametrize("scenario", [
    "crash@primary.post_freeze",
    "crash@backup.mid_commit",
    "link.drop_ack",
    "link.delay_state",
])
def test_fixed_protocol_survives_cell(scenario):
    cell = run_phase_injection(WORKLOAD, scenario, SEED)
    assert cell.ok, cell.violations
    assert cell.plan_log
    assert cell.failed_over == SCENARIOS[scenario].expect_failover
    assert cell.client_completed > 0


@pytest.mark.parametrize("scenario", [
    "crash@backup.post_ack_pre_commit",
    "crash@backup.mid_commit",
])
def test_ack_before_commit_race_reproduced_by_legacy_knob(scenario):
    config = NiliconConfig.nilicon().with_(unsafe_ack_before_commit=True)
    cell = run_phase_injection(WORKLOAD, scenario, SEED, config=config)
    assert not cell.ok
    assert any("lost committed output" in v for v in cell.violations), cell.violations


@pytest.mark.parametrize("scenario", ["link.dup_ack", "link.drop_ack"])
def test_release_oldest_race_reproduced_by_legacy_knob(scenario):
    config = NiliconConfig.nilicon().with_(unsafe_release_oldest_barrier=True)
    cell = run_phase_injection(WORKLOAD, scenario, SEED, config=config)
    assert not cell.ok, cell.plan_log


def test_campaign_report_shape():
    report = run_phase_campaign(
        scenarios=["crash@primary.pre_send"], workloads=[WORKLOAD], seeds=[SEED]
    )
    assert report["total"] == 1
    assert report["passed"] == 1
    assert report["hook_coverage_problems"] == []
    assert report["ok"]
    (cell,) = report["cells"]
    assert cell["scenario"] == "crash@primary.pre_send"
    assert cell["failed_over"]
