"""Unit tests for the fault-plan registry and its hooks."""

import pytest

from repro.faultinject.plan import FaultPlan, LinkFault, PointFault
from repro.net.link import Channel
from repro.sim.engine import Engine, Interrupt
from repro.sim.faults import clear_plan, fault_point, link_fault


def test_fault_point_is_noop_without_plan():
    engine = Engine()
    assert fault_point(engine, "primary.post_freeze", epoch=3) == 0


def test_unknown_point_name_rejected():
    with pytest.raises(ValueError, match="unknown fault point"):
        PointFault("primary.no_such_phase")


def test_unknown_link_kind_and_mode_rejected():
    with pytest.raises(ValueError, match="unknown message kind"):
        LinkFault(kind="gossip", mode="drop")
    with pytest.raises(ValueError, match="unknown link-fault mode"):
        LinkFault(kind="ack", mode="mangle")
    with pytest.raises(ValueError, match="unknown release point"):
        LinkFault(kind="ack", mode="delay", release_at_point="nowhere")


def test_point_rule_fires_once_at_matching_epoch():
    engine = Engine()
    rule = PointFault("primary.post_freeze", epoch=5, stall_us=123)
    plan = FaultPlan(points=[rule]).arm(engine)
    assert fault_point(engine, "primary.post_freeze", epoch=4) == 0
    assert fault_point(engine, "primary.mid_collect", epoch=5) == 0
    assert fault_point(engine, "primary.post_freeze", epoch=5) == 123
    # Exactly once: the same window on a later hit stays quiet.
    assert fault_point(engine, "primary.post_freeze", epoch=5) == 0
    assert rule.fired
    assert plan.log


def test_at_hit_selects_the_nth_occurrence():
    engine = Engine()
    rule = PointFault("backup.mid_commit", at_hit=3, stall_us=7)
    FaultPlan(points=[rule]).arm(engine)
    hits = [fault_point(engine, "backup.mid_commit", epoch=e) for e in range(5)]
    assert hits == [0, 0, 7, 0, 0]


def test_kill_raises_interrupt_after_action_runs():
    engine = Engine()
    ran = []
    rule = PointFault("primary.pre_send", kill=True, action=lambda _e: ran.append(1))
    FaultPlan(points=[rule]).arm(engine)
    with pytest.raises(Interrupt):
        fault_point(engine, "primary.pre_send", epoch=0)
    assert ran == [1]


def test_clear_plan_disarms():
    engine = Engine()
    plan = FaultPlan(points=[PointFault("primary.pre_send", stall_us=9)])
    plan.arm(engine)
    clear_plan(engine)
    assert fault_point(engine, "primary.pre_send") == 0


def _drain(engine):
    while engine.peek() is not None:
        engine.step()


def _recv_all(endpoint):
    got = [delivery.message for delivery in endpoint.rx.items]
    endpoint.rx._items.clear()
    return got


def test_link_drop_swallows_only_the_matching_message():
    engine = Engine()
    channel = Channel(engine)
    FaultPlan(links=[LinkFault(kind="ack", epoch=2, mode="drop")]).arm(engine)
    for epoch in range(4):
        channel.a.send({"kind": "ack", "epoch": epoch})
    _drain(engine)
    epochs = [m["epoch"] for m in _recv_all(channel.b)]
    assert epochs == [0, 1, 3]


def test_link_duplicate_delivers_copy_later():
    engine = Engine()
    channel = Channel(engine)
    FaultPlan(
        links=[LinkFault(kind="ack", epoch=1, mode="duplicate", delay_us=500)]
    ).arm(engine)
    channel.a.send({"kind": "ack", "epoch": 1})
    _drain(engine)
    epochs = [m["epoch"] for m in _recv_all(channel.b)]
    assert epochs == [1, 1]


def test_link_delay_reorders_past_later_message():
    engine = Engine()
    channel = Channel(engine)
    FaultPlan(
        links=[LinkFault(kind="state", epoch=1, mode="delay", delay_us=2000)]
    ).arm(engine)
    channel.a.send({"kind": "state", "epoch": 1})
    channel.a.send({"kind": "state", "epoch": 2})
    _drain(engine)
    epochs = [m["epoch"] for m in _recv_all(channel.b)]
    assert epochs == [2, 1]


def test_held_delivery_released_at_named_point():
    engine = Engine()
    channel = Channel(engine)
    plan = FaultPlan(
        links=[
            LinkFault(kind="ack", epoch=1, mode="delay",
                      release_at_point="primary.post_barrier"),
        ]
    ).arm(engine)
    channel.a.send({"kind": "ack", "epoch": 1})
    _drain(engine)
    assert _recv_all(channel.b) == []
    assert plan.held_count == 1
    fault_point(engine, "primary.post_barrier", epoch=2)
    assert plan.held_count == 0
    assert [m["epoch"] for m in _recv_all(channel.b)] == [1]


def test_held_delivery_not_released_on_cut_channel():
    engine = Engine()
    channel = Channel(engine)
    plan = FaultPlan(
        links=[
            LinkFault(kind="ack", epoch=1, mode="delay",
                      release_at_point="primary.post_barrier"),
        ]
    ).arm(engine)
    channel.a.send({"kind": "ack", "epoch": 1})
    _drain(engine)
    channel.cut()
    fault_point(engine, "primary.post_barrier", epoch=2)
    assert _recv_all(channel.b) == []


def test_link_rule_count_window():
    engine = Engine()
    channel = Channel(engine)
    FaultPlan(
        links=[LinkFault(kind="heartbeat", mode="drop", at_match=2, count=2)]
    ).arm(engine)
    for n in range(5):
        channel.a.send({"kind": "heartbeat", "n": n})
    _drain(engine)
    survivors = [m["n"] for m in _recv_all(channel.b)]
    assert survivors == [0, 3, 4]


def test_unarmed_channel_delivers_normally():
    engine = Engine()
    channel = Channel(engine)
    channel.a.send({"kind": "ack", "epoch": 0})
    _drain(engine)
    assert link_fault(engine, channel, channel.b, object(), 50) is False
    assert [m["epoch"] for m in _recv_all(channel.b)] == [0]
