"""Catalog-wide checkpoint round-trip: every workload deep-compares clean.

This is the differential oracle (`repro ckptcov --diff`) as a test matrix:
freeze a live catalog workload mid-run, take one full checkpoint, restore
it into the backup host's pristine kernel, and require the inventory-guided
deep comparison to find zero diverging fields.  Any diff here means a
checkpoint path silently loses state — exactly the §IV completeness
property the paper's failover correctness rests on.
"""

import pytest

from repro.analysis.ckptdiff import run_oracle
from repro.analysis.coverage import build_inventory, load_source_set
from repro.workloads.catalog import WORKLOADS


@pytest.fixture(scope="module")
def inventory():
    return build_inventory(load_source_set().inventory)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_checkpoint_roundtrip_deep_compare_clean(name, inventory):
    result = run_oracle(name, static_uncovered=set(), inventory=inventory)
    assert result.ok, (
        f"{name}: restored clone diverges from frozen original:\n  "
        + "\n  ".join(str(d) for d in result.diffs)
    )
    assert result.fields_compared > 100, result.fields_compared
    assert result.froze_at_us > 0
