"""Checkpoint rollback: abort must restore the last committed state.

The backup rolls the open checkpoint back when a failover interrupts an
in-flight commit; both store implementations must undo partial stores
exactly (overwrites restored, fresh slots cleared, stale copies revived).
"""

import pytest

from repro.criu.pagestore import LinkedListPageStore, RadixTreePageStore
from repro.kernel.costmodel import CostModel


@pytest.fixture(params=[RadixTreePageStore, LinkedListPageStore],
                ids=["radix", "list"])
def store(request):
    return request.param(CostModel())


def commit_pages(store, pages):
    store.begin_checkpoint()
    for pid, idx, content in pages:
        store.store_page(pid, idx, content)
    store.commit_checkpoint()


def test_abort_restores_committed_content(store):
    commit_pages(store, [(1, 0, b"A"), (1, 1, b"B"), (2, 7, b"Z")])
    assert store.checkpoints_taken == 1
    assert not store.checkpoint_open

    store.begin_checkpoint()
    store.store_page(1, 0, b"X")   # overwrite
    store.store_page(1, 2, b"C")   # fresh slot
    store.store_page(2, 7, b"Y")   # overwrite, other pid
    assert store.checkpoint_open
    store.abort_checkpoint()

    assert not store.checkpoint_open
    assert store.checkpoints_taken == 1
    assert store.pages_of(1) == {0: b"A", 1: b"B"}
    assert store.pages_of(2) == {7: b"Z"}
    assert store.lookup(1, 2) is None


def test_abort_of_empty_open_checkpoint(store):
    commit_pages(store, [(1, 0, b"A")])
    store.begin_checkpoint()
    store.abort_checkpoint()
    assert store.checkpoints_taken == 1
    assert store.pages_of(1) == {0: b"A"}


def test_abort_without_open_checkpoint_is_noop(store):
    commit_pages(store, [(1, 0, b"A")])
    store.abort_checkpoint()
    assert store.checkpoints_taken == 1
    assert store.pages_of(1) == {0: b"A"}


def test_commit_clears_undo_so_later_abort_cannot_rewind(store):
    commit_pages(store, [(1, 0, b"A")])
    commit_pages(store, [(1, 0, b"B")])
    store.abort_checkpoint()  # nothing open: must not touch committed state
    assert store.lookup(1, 0) == b"B"
    assert store.checkpoints_taken == 2


def test_repeated_overwrites_in_one_open_checkpoint(store):
    commit_pages(store, [(1, 5, b"old")])
    store.begin_checkpoint()
    store.store_page(1, 5, b"v1")
    store.store_page(1, 5, b"v2")
    store.abort_checkpoint()
    assert store.lookup(1, 5) == b"old"
