"""End-to-end checkpoint/restore tests over the simulated kernel."""

import pytest

from repro.container import ContainerRuntime, ContainerSpec, ProcessSpec
from repro.criu import CheckpointEngine, CriuConfig, RestoreEngine
from repro.criu.restore import FullState
from repro.kernel.errors import KernelError
from repro.net import World


@pytest.fixture
def world():
    return World(seed=11)


def make_container(world, host=None, name="app", with_fs=True, n_threads=4):
    host = host or world.primary
    runtime = ContainerRuntime(host.kernel, world.bridge)
    mounts = []
    if with_fs:
        if "vdb" not in host.kernel.block_devices:
            host.kernel.add_block_device("vdb")
            host.kernel.mkfs("vdb", "datafs")
        mounts = [("/data", "datafs")]
    spec = ContainerSpec(
        name=name,
        ip="10.0.1.10",
        processes=[
            ProcessSpec(comm="srv", n_threads=n_threads, heap_pages=2000, n_mapped_files=12)
        ],
        mounts=mounts,
        cgroup_attributes={"cpu.shares": 512},
    )
    return runtime, runtime.create(spec)


def run_gen(world, gen):
    """Run a generator coroutine to completion, returning its value."""
    proc = world.engine.process(gen)
    return world.run(until=proc)


def checkpoint_frozen(world, container, engine, incremental=True):
    def driver():
        yield from container.freeze()
        image = yield from engine.checkpoint(container, incremental=incremental)
        yield from container.thaw()
        return image

    return run_gen(world, driver())


def test_checkpoint_requires_frozen_container(world):
    _rt, container = make_container(world)
    engine = CheckpointEngine(world.primary.kernel)

    def driver():
        with pytest.raises(KernelError, match="freeze"):
            yield from engine.checkpoint(container)
        yield world.engine.timeout(0)

    run_gen(world, driver())


def test_full_checkpoint_captures_memory(world):
    _rt, container = make_container(world)
    proc = container.processes[0]
    heap = container.heap_vma
    proc.mm.write(heap.start + 3, b"payload-3")
    proc.mm.write(heap.start + 9, b"payload-9")

    engine = CheckpointEngine(world.primary.kernel)
    image = checkpoint_frozen(world, container, engine, incremental=False)
    pimage = image.processes[0]
    assert pimage.pages[heap.start + 3] == b"payload-3"
    assert pimage.pages[heap.start + 9] == b"payload-9"
    assert pimage.page_count == 2
    assert len(pimage.threads) == 4
    assert not image.incremental


def test_incremental_checkpoint_carries_only_dirty(world):
    _rt, container = make_container(world)
    proc = container.processes[0]
    heap = container.heap_vma
    engine = CheckpointEngine(world.primary.kernel)

    proc.mm.write(heap.start, b"epoch0")
    checkpoint_frozen(world, container, engine, incremental=False)

    proc.mm.write(heap.start + 1, b"epoch1")
    image2 = checkpoint_frozen(world, container, engine, incremental=True)
    assert set(image2.processes[0].pages) == {heap.start + 1}
    assert image2.epoch == 2


def test_incremental_without_prior_full_captures_everything(world):
    _rt, container = make_container(world)
    proc = container.processes[0]
    heap = container.heap_vma
    proc.mm.write(heap.start, b"x")
    engine = CheckpointEngine(world.primary.kernel)
    image = checkpoint_frozen(world, container, engine, incremental=True)
    assert image.processes[0].page_count == 1  # all resident pages


def test_checkpoint_captures_sockets(world):
    _rt, container = make_container(world)
    listener = container.stack.socket()
    listener.listen(6379)
    engine = CheckpointEngine(world.primary.kernel)
    image = checkpoint_frozen(world, container, engine)
    kinds = [s["kind"] for s in image.sockets]
    # The stack-wide record (ephemeral-port allocator) always leads.
    assert kinds == ["stack", "listener"]
    assert image.sockets[1]["port"] == 6379


def test_checkpoint_captures_fs_cache(world):
    _rt, container = make_container(world)
    fs = container.mounted_filesystems()[0]
    fs.create("/data/file")
    fs.write("/data/file", 0, b"persisted")
    engine = CheckpointEngine(world.primary.kernel)
    image = checkpoint_frozen(world, container, engine)
    assert any(path == "/data/file" for path, _idx, _c in image.fs_page_entries)
    # Next checkpoint: DNC cleared, no fs entries.
    image2 = checkpoint_frozen(world, container, engine)
    assert image2.fs_page_entries == []


def test_nas_flush_mode_commits_to_disk_instead(world):
    _rt, container = make_container(world)
    fs = container.mounted_filesystems()[0]
    fs.create("/data/file")
    fs.write("/data/file", 0, b"flushed")
    engine = CheckpointEngine(world.primary.kernel, CriuConfig.stock())
    image = checkpoint_frozen(world, container, engine)
    assert image.fs_page_entries == []
    assert fs.dirty_page_count() == 0  # flushed to the (shared) device


def test_smaps_slower_than_netlink(world):
    """VMA collection cost: SSV-D deficiency (1)."""

    def time_with(config):
        w = World(seed=11)
        _rt, container = make_container(w, name="app")
        engine = CheckpointEngine(w.primary.kernel, config)

        def driver():
            yield from container.freeze()
            start = w.engine.now
            yield from engine.checkpoint(container, incremental=False)
            return w.engine.now - start

        return run_gen(w, driver())

    slow = time_with(CriuConfig.nilicon().with_(vma_source="smaps"))
    fast = time_with(CriuConfig.nilicon())
    assert slow > fast


def test_pipe_transport_slower_than_shm(world):
    def time_with(config):
        w = World(seed=11)
        _rt, container = make_container(w, name="app")
        proc = container.processes[0]
        heap = container.heap_vma
        for i in range(500):
            proc.mm.write(heap.start + i, b"d")
        engine = CheckpointEngine(w.primary.kernel, config)

        def driver():
            yield from container.freeze()
            start = w.engine.now
            yield from engine.checkpoint(container, incremental=False)
            return w.engine.now - start

        return run_gen(w, driver())

    slow = time_with(CriuConfig.nilicon().with_(parasite_transport="pipe"))
    fast = time_with(CriuConfig.nilicon())
    assert slow > fast


def test_image_size_dominated_by_pages(world):
    _rt, container = make_container(world)
    proc = container.processes[0]
    heap = container.heap_vma
    for i in range(1000):
        proc.mm.write(heap.start + i, b"bulk")
    engine = CheckpointEngine(world.primary.kernel)
    image = checkpoint_frozen(world, container, engine, incremental=False)
    page_bytes = image.dirty_page_count * 4096
    assert page_bytes / image.size_bytes() > 0.85  # paper: 85%-95%+


def test_restore_roundtrip_memory_and_threads(world):
    _rt, container = make_container(world)
    proc = container.processes[0]
    heap = container.heap_vma
    proc.mm.write(heap.start + 7, b"survives")
    proc.tasks[1].registers["rip"] = 0xDEAD
    proc.tasks[1].signal_mask = 0xFF

    engine = CheckpointEngine(world.primary.kernel)
    image = checkpoint_frozen(world, container, engine, incremental=False)

    backup_rt = ContainerRuntime(world.backup.kernel, world.bridge)
    world.backup.kernel.add_block_device("vdb")
    world.backup.kernel.mkfs("vdb", "datafs")
    restore = RestoreEngine(world.backup.kernel)
    state = FullState(
        spec=container.spec,
        processes=[
            {
                "comm": p.comm,
                "vmas": p.vmas,
                "pages": p.pages,
                "threads": p.threads,
                "fd_entries": p.fd_entries,
            }
            for p in image.processes
        ],
        sockets=image.sockets,
        namespaces=image.namespaces,
        cgroup=image.cgroup,
        fs_inode_entries=image.fs_inode_entries,
        fs_page_entries=image.fs_page_entries,
    )

    def driver():
        restored = yield from restore.restore(backup_rt, state)
        return restored

    restored = run_gen(world, driver())
    rproc = restored.processes[0]
    assert rproc.mm.read(heap.start + 7) == b"survives"
    assert rproc.tasks[1].registers["rip"] == 0xDEAD
    assert rproc.tasks[1].signal_mask == 0xFF
    assert rproc.n_threads == 4
    assert restored.veth.bridge is None  # still detached (input blocked)
    assert restored.cgroup.attributes["cpu.shares"] == 512
