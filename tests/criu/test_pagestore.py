"""Tests for the backup page stores, including dict-oracle properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.criu.pagestore import LinkedListPageStore, RadixTreePageStore
from repro.kernel.costmodel import CostModel


def make_stores():
    costs = CostModel()
    return RadixTreePageStore(costs), LinkedListPageStore(costs)


def test_store_and_lookup_basic():
    for store in make_stores():
        store.begin_checkpoint()
        store.store_page(1, 5, b"five")
        store.store_page(1, 70000, b"high")
        assert store.lookup(1, 5) == b"five"
        assert store.lookup(1, 70000) == b"high"
        assert store.lookup(1, 6) is None
        assert store.lookup(2, 5) is None


def test_later_checkpoint_overwrites():
    for store in make_stores():
        store.begin_checkpoint()
        store.store_page(1, 5, b"v1")
        store.begin_checkpoint()
        store.store_page(1, 5, b"v2")
        assert store.lookup(1, 5) == b"v2"
        assert store.pages_of(1) == {5: b"v2"}


def test_pages_of_merges_checkpoints():
    for store in make_stores():
        store.begin_checkpoint()
        store.store_page(1, 1, b"a")
        store.store_page(1, 2, b"b")
        store.begin_checkpoint()
        store.store_page(1, 2, b"b2")
        store.store_page(1, 3, b"c")
        assert store.pages_of(1) == {1: b"a", 2: b"b2", 3: b"c"}


def test_pids_are_isolated():
    for store in make_stores():
        store.begin_checkpoint()
        store.store_page(1, 9, b"one")
        store.store_page(2, 9, b"two")
        assert store.pages_of(1) == {9: b"one"}
        assert store.pages_of(2) == {9: b"two"}


def test_radix_cost_constant_in_history():
    costs = CostModel()
    store = RadixTreePageStore(costs)
    first_costs = []
    for _ in range(50):
        store.begin_checkpoint()
        first_costs.append(store.store_page(1, 42, b"x"))
    assert len(set(first_costs)) == 1  # O(1) regardless of checkpoint count


def test_linked_list_cost_grows_with_history():
    """The stock-CRIU pathology NiLiCon's radix tree removes (SSV-A)."""
    costs = CostModel()
    store = LinkedListPageStore(costs)
    per_ckpt_costs = []
    for _ in range(50):
        store.begin_checkpoint()
        per_ckpt_costs.append(store.store_page(1, 42, b"x"))
    assert per_ckpt_costs[-1] > per_ckpt_costs[0]
    assert per_ckpt_costs == sorted(per_ckpt_costs)


def test_radix_tree_allocates_real_nodes():
    store = RadixTreePageStore(CostModel())
    store.begin_checkpoint()
    store.store_page(1, 0, b"low")
    base = store.nodes_allocated
    assert base == 4  # root + 3 interior levels
    # A distant page index shares only the root.
    store.store_page(1, 1 << 30, b"far")
    assert store.nodes_allocated == base + 3


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=3),  # pid
            st.integers(min_value=0, max_value=1 << 34),  # page index
            st.binary(min_size=0, max_size=8),  # content token
            st.booleans(),  # begin a new checkpoint first?
        ),
        max_size=80,
    )
)
def test_property_stores_match_dict_oracle(ops):
    """Both stores always agree with a plain {(pid, idx): content} oracle."""
    radix, linked = make_stores()
    oracle: dict[tuple[int, int], bytes] = {}
    radix.begin_checkpoint()
    linked.begin_checkpoint()
    for pid, idx, content, new_ckpt in ops:
        if new_ckpt:
            radix.begin_checkpoint()
            linked.begin_checkpoint()
        radix.store_page(pid, idx, content)
        linked.store_page(pid, idx, content)
        oracle[(pid, idx)] = content
    for pid in {1, 2, 3}:
        expected = {idx: c for (p, idx), c in oracle.items() if p == pid}
        assert radix.pages_of(pid) == expected
        assert linked.pages_of(pid) == expected
        for idx, content in expected.items():
            assert radix.lookup(pid, idx) == content
            assert linked.lookup(pid, idx) == content
