"""Tests for the CRIU image-file format, including round-trip properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.container.spec import ContainerSpec, ProcessSpec
from repro.criu.imagefiles import read_image_files, write_image_files
from repro.criu.restore import FullState


def make_state(pages=None, sockets=None):
    spec = ContainerSpec(
        name="imgtest",
        ip="10.0.1.44",
        processes=[ProcessSpec(comm="app", n_threads=2, heap_pages=128)],
        mounts=[("/data", "datafs")],
        cgroup_attributes={"cpu.shares": 512},
    )
    return FullState(
        spec=spec,
        processes=[
            {
                "comm": "app",
                "vmas": [{"start": 0, "n_pages": 128, "prot": "rw-", "kind": "heap",
                          "file_path": None, "file_offset": 0, "name": "[heap]"}],
                "pages": pages if pages is not None else {3: b"three", 9: b"nine"},
                "threads": [
                    {"name": "app", "tid": 1, "registers": {"rip": 7}, "signal_mask": 0,
                     "pending_signals": [], "sched_policy": "SCHED_OTHER",
                     "sched_priority": 0, "timers": []},
                    {"name": "app-t1", "tid": 2, "registers": {"rip": 9}, "signal_mask": 1,
                     "pending_signals": [3], "sched_policy": "SCHED_OTHER",
                     "sched_priority": 0, "timers": []},
                ],
                "fd_entries": [{"fd": 3, "kind": "socket", "flags": 0}],
            }
        ],
        sockets=sockets if sockets is not None else [{"kind": "listener", "port": 80}],
        namespaces={"name": "imgtest", "uts_hostname": "imgtest", "mounts": []},
        cgroup={"name": "cg", "attributes": {"cpu.shares": 512}, "version": 2},
        fs_inode_entries=[{"path": "/data/f", "ino": 5, "mode": 0o644, "uid": 0,
                           "gid": 0, "size": 10, "version": 3}],
        fs_page_entries=[("/data/f", 0, b"filedata!!"), ("/data/f", 1, None)],
    )


def test_roundtrip_preserves_everything():
    state = make_state()
    files = write_image_files(state)
    parsed = read_image_files(files)
    assert parsed.spec == state.spec
    assert parsed.processes == state.processes
    assert parsed.sockets == state.sockets
    assert parsed.namespaces == state.namespaces
    assert parsed.cgroup == state.cgroup
    assert parsed.fs_inode_entries == state.fs_inode_entries
    assert parsed.fs_page_entries == state.fs_page_entries


def test_image_layout_matches_criu_conventions():
    files = write_image_files(make_state())
    for name in ("inventory.img", "pstree.img", "core-0.img", "mm-0.img",
                 "pagemap-0.img", "pages-0.img", "fdinfo-0.img", "sk-tcp.img",
                 "netns.img", "cgroup.img", "fs-cache.img"):
        assert name in files, name
    assert all(blob.startswith(b"NLCN") for blob in files.values())


def test_corrupt_magic_rejected():
    files = write_image_files(make_state())
    files["pstree.img"] = b"XXXX" + files["pstree.img"][4:]
    with pytest.raises(ValueError, match="magic"):
        read_image_files(files)


def test_inventory_mismatch_rejected():
    files = write_image_files(make_state())
    bad = write_image_files(make_state())
    from repro.criu.imagefiles import _meta_image

    files["inventory.img"] = _meta_image({"version": 1, "container": "x", "n_processes": 5})
    with pytest.raises(ValueError, match="mismatch"):
        read_image_files(files)
    del bad


@settings(max_examples=40, deadline=None)
@given(
    pages=st.dictionaries(
        st.integers(0, 1 << 30), st.binary(max_size=64), max_size=20
    ),
)
def test_property_pages_roundtrip(pages):
    state = make_state(pages=pages)
    parsed = read_image_files(write_image_files(state))
    assert parsed.processes[0]["pages"] == pages


@settings(max_examples=30, deadline=None)
@given(
    queue=st.lists(
        st.tuples(st.integers(0, 1 << 20), st.binary(min_size=1, max_size=32)),
        max_size=5,
    ),
    buffered=st.binary(max_size=64),
)
def test_property_socket_state_roundtrip(queue, buffered):
    sockets = [
        {
            "kind": "connection",
            "repair_state": {
                "local_ip": "10.0.1.44", "local_port": 80,
                "remote_ip": "10.0.9.1", "remote_port": 40000,
                "state": "established",
                "snd_nxt": 100, "snd_una": 50, "rcv_nxt": 77,
                "write_queue": queue, "recv_buffer": buffered,
            },
        }
    ]
    parsed = read_image_files(write_image_files(make_state(sockets=sockets)))
    got = parsed.sockets[0]["repair_state"]
    assert [tuple(e) for e in got["write_queue"]] == queue
    assert got["recv_buffer"] == buffered
