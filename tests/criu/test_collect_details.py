"""Focused tests for the state collectors' cost/content contracts."""

import pytest

from repro.container import ContainerRuntime, ContainerSpec, ProcessSpec
from repro.criu.collect import StateCollector
from repro.criu.config import CriuConfig
from repro.net import World


@pytest.fixture
def world():
    return World(seed=17)


@pytest.fixture
def container(world):
    runtime = ContainerRuntime(world.primary.kernel, world.bridge)
    return runtime.create(
        ContainerSpec(
            name="cc", ip="10.0.1.70",
            processes=[ProcessSpec(comm="srv", n_threads=2, heap_pages=200,
                                   n_mapped_files=7)],
        )
    )


def run(world, gen):
    return world.run(until=world.engine.process(gen))


def test_socket_collection_cost_scales_with_count(world, container):
    collector = StateCollector(world.primary.kernel, CriuConfig.nilicon())
    costs = world.costs

    def with_n_listeners(n):
        w = World(seed=17)
        rt = ContainerRuntime(w.primary.kernel, w.bridge)
        c = rt.create(ContainerSpec(name="cc", ip="10.0.1.70",
                                    processes=[ProcessSpec(comm="srv")]))
        for i in range(n):
            sock = c.stack.socket()
            sock.listen(1000 + i)
        col = StateCollector(w.primary.kernel, CriuConfig.nilicon())

        def driver():
            start = w.engine.now
            out = yield from col.collect_sockets(c.stack)
            return len(out), w.engine.now - start

        return run(w, driver())

    n2, t2 = with_n_listeners(2)
    n20, t20 = with_n_listeners(20)
    # +1 for the always-present stack-wide record (not a socket, not charged).
    assert (n2, n20) == (3, 21)
    assert t20 - t2 == 18 * costs.collect_socket_per_socket
    del collector


def test_collect_sockets_zero_is_free(world, container):
    collector = StateCollector(world.primary.kernel, CriuConfig.nilicon())

    def driver():
        start = world.engine.now
        out = yield from collector.collect_sockets(container.stack)
        return out, world.engine.now - start

    out, took = run(world, driver())
    # Only the always-present stack-wide record, and no time charged.
    assert [s["kind"] for s in out] == ["stack"] and took == 0


def test_infrequent_collection_includes_all_components(world, container):
    collector = StateCollector(world.primary.kernel, CriuConfig.nilicon())
    container.add_mount("/x", "xfs")

    def driver():
        return (yield from collector.collect_infrequent(container))

    components = run(world, driver())
    assert components["namespaces"]["mounts"][0]["mountpoint"] == "/x"
    assert components["cgroup"]["name"].endswith("cc")
    assert len(components["mapped_file_stats"]) == 7


def test_fd_table_collection_describes_files(world, container):
    from repro.kernel.fs import OpenFile, Inode

    process = container.processes[0]
    inode = Inode(path="/etc/conf")
    process.install_fd("file", OpenFile(inode=inode, offset=5))
    collector = StateCollector(world.primary.kernel, CriuConfig.nilicon())

    def driver():
        return (yield from collector.collect_fd_table(process))

    entries = run(world, driver())
    assert entries == [{"fd": 3, "kind": "file", "flags": 0,
                        "path": "/etc/conf", "offset": 5}]


def test_memory_collection_full_vs_incremental(world, container):
    from repro.kernel.parasite import ParasiteChannel
    from repro.kernel.task import TaskState

    process = container.processes[0]
    heap = container.heap_vma
    for i in range(10):
        process.mm.write(heap.start + i, b"x")
    for task in process.tasks:
        task.state = TaskState.FROZEN
    collector = StateCollector(world.primary.kernel, CriuConfig.nilicon())

    def driver():
        parasite = ParasiteChannel(world.engine, world.costs, process)
        yield from parasite.inject()
        vmas, full = yield from collector.collect_memory(process, parasite, incremental=False)
        process.mm.write(heap.start + 99, b"new")
        vmas2, incr = yield from collector.collect_memory(process, parasite, incremental=True)
        return full, incr

    full, incr = run(world, driver())
    assert len(full) == 10
    assert set(incr) == {heap.start + 99}
