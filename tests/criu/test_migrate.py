"""Tests for iterative pre-copy live migration."""

import pytest

from repro.container import ContainerRuntime, ContainerSpec, ProcessSpec
from repro.criu.migrate import LiveMigration
from repro.kernel.tcp import TcpStack
from repro.kernel.netdev import NetDevice
from repro.net import World
from repro.sim import Interrupt, ms, sec


@pytest.fixture
def world():
    return World(seed=77)


def make_setup(world, with_fs=False):
    src = ContainerRuntime(world.primary.kernel, world.bridge)
    dst = ContainerRuntime(world.backup.kernel, world.bridge)
    mounts = []
    if with_fs:
        for host in (world.primary, world.backup):
            host.kernel.add_block_device("mig")
            host.kernel.mkfs("mig", "migfs")
        mounts = [("/data", "migfs")]
    spec = ContainerSpec(
        name="mig-app",
        ip="10.0.1.20",
        processes=[ProcessSpec(comm="app", n_threads=2, heap_pages=3000, n_mapped_files=8)],
        mounts=mounts,
    )
    container = src.create(spec)
    migration = LiveMigration(
        src, dst,
        world.primary.endpoint("pair"), world.backup.endpoint("pair"),
    )
    return src, dst, container, migration


def run_migration(world, migration, container):
    results = []

    def driver():
        new_container, stats = yield from migration.migrate(container)
        results.append((new_container, stats))

    world.engine.process(driver())
    world.run(until=sec(20))
    assert results, "migration did not complete"
    return results[0]


def test_idle_container_migrates_with_memory(world):
    _src, dst, container, migration = make_setup(world)
    proc = container.processes[0]
    heap = container.heap_vma
    for i in range(50):
        proc.mm.write(heap.start + i, f"data-{i}".encode())

    new_container, stats = run_migration(world, migration, container)
    assert new_container.kernel is dst.kernel
    new_proc = new_container.processes[0]
    for i in range(50):
        assert new_proc.mm.read(heap.start + i) == f"data-{i}".encode()
    assert stats.converged
    assert stats.total_pages >= 50
    assert container.dead


def test_migration_moves_ip_on_bridge(world):
    _src, _dst, container, migration = make_setup(world)
    old_port = world.bridge.arp_lookup("10.0.1.20")
    new_container, _stats = run_migration(world, migration, container)
    new_port = world.bridge.arp_lookup("10.0.1.20")
    assert new_port != old_port
    assert new_container.veth.bridge is world.bridge


def test_precopy_rounds_shrink_for_write_light_workload(world):
    _src, _dst, container, migration = make_setup(world)
    proc = container.processes[0]
    heap = container.heap_vma
    for i in range(1000):
        proc.mm.write(heap.start + i, b"bulk")

    def writer():
        step = 0
        while not container.dead:
            def mutate(s=step):
                proc.mm.write(heap.start + (s % 20), b"hot")
            try:
                yield from container.run_slice(proc, 300, mutate=mutate)
            except Exception:
                return
            step += 1

    world.engine.process(writer())
    _new, stats = run_migration(world, migration, container)
    # Round 0 ships the bulk; later rounds only the small hot set.
    assert stats.rounds[0] >= 1000
    assert stats.rounds[-1] <= 64
    assert stats.converged
    # Downtime is dominated by the fixed stop-and-copy work (in-kernel
    # state collection + restore), not by memory: the final round ships
    # ~1/50th of the footprint.  Sub-second, like real CRIU migrations.
    assert stats.downtime_us < ms(600)
    assert stats.rounds[-1] * 50 < stats.rounds[0]


def test_migration_preserves_fs_state(world):
    _src, _dst, container, migration = make_setup(world, with_fs=True)
    fs = container.mounted_filesystems()[0]
    fs.create("/data/cfg")
    fs.write("/data/cfg", 0, b"configuration-v7")

    new_container, _stats = run_migration(world, migration, container)
    new_fs = new_container.mounted_filesystems()[0]
    assert new_fs.file_content("/data/cfg") == b"configuration-v7"


def test_tcp_connection_survives_migration(world):
    _src, _dst, container, migration = make_setup(world)

    # Echo service on the container, re-attachable by design.
    def serve(c, sock):
        while not c.dead:
            try:
                data = yield sock.recv(1024)
            except Exception:
                return
            if data == b"":
                return
            if not c.dead:
                sock.send(data.upper())

    def accept_loop(c, listener):
        while not c.dead:
            try:
                child = yield listener.accept()
            except (Interrupt, Exception):
                return
            world.engine.process(serve(c, child))

    listener = container.stack.socket()
    listener.listen(5000)
    world.engine.process(accept_loop(container, listener))

    # Client connects and talks across the migration.
    stack = TcpStack(world.engine, world.costs, "10.0.9.77", name="mig-client")
    dev = NetDevice("migc-eth", "10.0.9.77", "mc", world.engine)
    stack.attach_device(dev)
    world.bridge.attach(dev)
    replies = []

    def client():
        sock = stack.socket()
        yield sock.connect("10.0.1.20", 5000)
        for i in range(30):
            sock.send(f"msg{i:03d}".encode())
            data = b""
            while len(data) < 6:
                chunk = yield sock.recv(6 - len(data))
                data += chunk
            replies.append(data)
            yield world.engine.timeout(ms(10))

    world.engine.process(client())

    migrated = []

    def migrate_mid_run():
        yield world.engine.timeout(ms(100))
        new_container, stats = yield from migration.migrate(container)
        # Resume the service on the destination (restored listener+conns).
        for port, lst in new_container.stack.listeners.items():
            world.engine.process(accept_loop(new_container, lst))
        for sock in list(new_container.stack.connections.values()):
            world.engine.process(serve(new_container, sock))
        migrated.append(stats)

    world.engine.process(migrate_mid_run())
    world.run(until=sec(30))

    assert migrated, "migration did not finish"
    assert replies == [f"MSG{i:03d}".encode() for i in range(30)]
    # No reset on the client connection.
    assert all(s.state.value != "reset" for s in stack.connections.values())
