"""Regression tests for checkpoint-coverage gaps fixed by the analyzer work.

Each test pins one field the CKPT1xx pass (or the differential oracle)
flagged as dumped-but-not-restored / not-dumped-at-all: the ephemeral-port
allocator, cpuacct, per-task CPU time and tids, post-create namespace
mutations (hostname, mounts), and plain-file fd tables.  Losing any of
these again turns a green suite red before the static pass even runs.
"""

import pytest

from repro.analysis.coverage import build_inventory, load_source_set
from repro.analysis.ckptdiff import compare_containers
from repro.container import ContainerRuntime
from repro.criu import CheckpointEngine, CriuConfig, RestoreEngine
from repro.criu.restore import FullState
from repro.kernel.fs import OpenFile
from repro.net import World

from tests.criu.test_checkpoint_restore import make_container, run_gen


@pytest.fixture
def world():
    return World(seed=23)


def full_roundtrip(world, container, config=None):
    """Freeze -> full checkpoint -> restore onto the backup kernel.

    Returns ``(image, restored)``; the original stays frozen so its state
    cannot drift between the dump and the assertions.
    """
    cfg = config if config is not None else CriuConfig.nilicon()
    engine = CheckpointEngine(world.primary.kernel, cfg)

    def dump():
        yield from container.freeze()
        image = yield from engine.checkpoint(container, incremental=False)
        return image

    image = run_gen(world, dump())

    backup_rt = ContainerRuntime(world.backup.kernel, world.bridge)
    if container.spec.mounts and "vdb" not in world.backup.kernel.block_devices:
        world.backup.kernel.add_block_device("vdb")
        world.backup.kernel.mkfs("vdb", "datafs")
    state = FullState(
        spec=container.spec,
        processes=[
            {
                "comm": p.comm,
                "vmas": p.vmas,
                "pages": p.pages,
                "threads": p.threads,
                "fd_entries": p.fd_entries,
            }
            for p in image.processes
        ],
        sockets=image.sockets,
        namespaces=image.namespaces,
        cgroup=image.cgroup,
        fs_inode_entries=image.fs_inode_entries,
        fs_page_entries=image.fs_page_entries,
    )
    restorer = RestoreEngine(world.backup.kernel, cfg)

    def load():
        restored = yield from restorer.restore(backup_rt, state)
        return restored

    return image, run_gen(world, load())


def test_ephemeral_port_allocator_survives_failover(world):
    _rt, container = make_container(world)
    container.stack._next_ephemeral = 40_017  # 17 outbound connects so far
    image, restored = full_roundtrip(world, container)
    stack_desc = next(s for s in image.sockets if s["kind"] == "stack")
    assert stack_desc["next_ephemeral"] == 40_017
    assert restored.stack._next_ephemeral == 40_017


def test_cpuacct_counter_does_not_jump_backwards(world):
    _rt, container = make_container(world)
    container.cgroup.charge_cpu(54_321)
    before = container.cgroup.cpuacct_usage_us
    image, restored = full_roundtrip(world, container)
    assert image.cgroup["cpuacct_usage_us"] == before
    assert restored.cgroup.cpuacct_usage_us == before


def test_task_cpu_time_and_tids_roundtrip(world):
    _rt, container = make_container(world)
    proc = container.processes[0]
    proc.tasks[2].advance(777)
    _image, restored = full_roundtrip(world, container)
    rproc = restored.processes[0]
    assert [t.tid for t in rproc.tasks] == [t.tid for t in proc.tasks]
    assert rproc.tasks[2].cpu_time_us == proc.tasks[2].cpu_time_us
    assert rproc.cpu_time_us == proc.cpu_time_us


def test_post_create_hostname_and_mounts_roundtrip(world):
    _rt, container = make_container(world)
    container.set_hostname("renamed-mid-epoch")
    container.add_mount("/scratch", "datafs")
    version = container.namespaces.version
    _image, restored = full_roundtrip(world, container)
    ns = restored.namespaces
    assert ns.uts_hostname == "renamed-mid-epoch"
    assert any(m.mountpoint == "/scratch" for m in ns.mounts)
    assert ns.version == version
    assert restored.cgroup.version == container.cgroup.version


def test_plain_file_fd_roundtrip(world):
    _rt, container = make_container(world)
    fs = container.mounted_filesystems()[0]
    fs.create("/data/journal")
    fs.write("/data/journal", 0, b"entry-0")
    proc = container.processes[0]
    entry = proc.install_fd(
        "file", OpenFile(inode=fs.lookup("/data/journal"), offset=4096), flags=2
    )
    _image, restored = full_roundtrip(world, container)
    rproc = restored.processes[0]
    rentry = rproc.fds[entry.fd]
    assert rentry.kind == "file"
    assert rentry.obj.path == "/data/journal"
    assert rentry.obj.offset == 4096
    assert rentry.flags == 2
    assert rproc._next_fd >= entry.fd + 1


def test_unsafe_drop_dump_knob_removes_the_key(world):
    _rt, container = make_container(world)
    container.cgroup.charge_cpu(1_000)
    cfg = CriuConfig.nilicon().with_(
        unsafe_drop_dump=("cgroup.cpuacct_usage_us",)
    )
    image, restored = full_roundtrip(world, container, config=cfg)
    assert "cpuacct_usage_us" not in image.cgroup
    assert restored.cgroup.cpuacct_usage_us == 0  # the divergence the oracle sees


def test_roundtrip_deep_compare_clean(world):
    """The inventory-guided comparator agrees the clone is exact — the same
    check the oracle runs on live workloads, here on the synthetic app."""
    _rt, container = make_container(world)
    proc = container.processes[0]
    proc.mm.write(container.heap_vma.start + 1, b"tok")
    proc.tasks[0].advance(42)
    container.set_hostname("deep-compare")
    fs = container.mounted_filesystems()[0]
    fs.create("/data/blob")
    fs.write("/data/blob", 0, b"bytes")
    _image, restored = full_roundtrip(world, container)
    inventory = build_inventory(load_source_set().inventory)
    diffs, fields_compared = compare_containers(container, restored, inventory)
    assert diffs == [], [str(d) for d in diffs]
    assert fields_compared > 50
