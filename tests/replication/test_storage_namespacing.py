"""Storage namespacing: two containers mounting the same fs name on the
same host pair must get distinct disks (they used to silently share one,
because host-kernel devices were keyed by fs name alone)."""

from repro.replication.manager import scoped_fs_name

from .conftest import make_deployment


def test_scoped_fs_name_prefixes_and_is_idempotent():
    assert scoped_fs_name("appA", "data") == "appA:data"
    # Re-scoping an already-scoped name (adoption after failover or
    # migration re-wraps the same spec) must not stack prefixes.
    assert scoped_fs_name("appA", "appA:data") == "appA:data"


def test_same_fs_name_on_same_pair_gets_distinct_devices(world):
    a = make_deployment(world, name="appA")
    b = make_deployment(world, name="appB")
    # Both specs asked for a mount whose fs name is their own "<name>-fs";
    # force the collision the regression guards: rebuild b with a's exact
    # fs name.
    from repro.container import ContainerSpec, ProcessSpec
    from repro.replication import NiliconConfig, ReplicatedDeployment

    collide_spec = ContainerSpec(
        name="appC",
        ip="10.0.1.30",
        processes=[ProcessSpec(comm="srv", n_threads=1, heap_pages=64)],
        mounts=[("/data", "appA-fs")],  # same raw fs name as appA's mount
    )
    c = ReplicatedDeployment(world, collide_spec,
                             config=NiliconConfig.nilicon())

    kernel = world.primary.kernel
    assert "appA:appA-fs" in kernel.filesystems
    assert "appC:appA-fs" in kernel.filesystems
    fs_a = kernel.filesystems["appA:appA-fs"]
    fs_c = kernel.filesystems["appC:appA-fs"]
    assert fs_a is not fs_c
    assert fs_a.device is not fs_c.device
    # And the spec the deployment kept is the scoped one, so checkpoints
    # and restores resolve to the private disk.
    assert c.spec.mounts == [("/data", "appC:appA-fs")]
    assert b.spec.mounts == [("/data", "appB:appB-fs")]
    assert a.spec.mounts == [("/data", "appA:appA-fs")]


def test_writes_do_not_leak_between_same_named_mounts(world):
    from repro.container import ContainerSpec, ProcessSpec
    from repro.replication import NiliconConfig, ReplicatedDeployment

    def deploy(name, ip):
        return ReplicatedDeployment(
            world,
            ContainerSpec(
                name=name, ip=ip,
                processes=[ProcessSpec(comm="srv", n_threads=1,
                                       heap_pages=64)],
                mounts=[("/data", "shared")],
            ),
            config=NiliconConfig.nilicon(),
        )

    deploy("appA", "10.0.1.41")
    deploy("appB", "10.0.1.42")
    kernel = world.primary.kernel
    fs_a = kernel.filesystems["appA:shared"]
    fs_b = kernel.filesystems["appB:shared"]
    assert fs_a is not fs_b
    fs_a.create("/data/key")
    fs_a.write("/data/key", 0, b"belongs-to-A")
    assert fs_a.read("/data/key", 0, 12) == b"belongs-to-A"
    # appB's identically-named mount sees none of it.
    assert "/data/key" not in getattr(fs_b, "inodes", {}) or (
        fs_b.read("/data/key", 0, 12) != b"belongs-to-A"
    )
