"""Mode conformance: every registered pair-protocol strategy upholds the
same external contract.

The harness drives each mode through the full lifecycle — deploy, dirty
pages under client load, fail-stop, failover, oracle audit — on catalog
workloads, asserting the contract the strategies share: no acknowledged
write lost, no release before the mode's commit rule allows it, exactly
one recovery.  A second pass re-runs each cell and requires a bit-identical
trace digest: a strategy backend may not smuggle nondeterminism in.
"""

import pytest

from repro.analysis.fuzz import trace_digest
from repro.experiments.common import build_deployment
from repro.faultinject import evaluate_oracles
from repro.net import World
from repro.net.world import reset_id_counters
from repro.replication.modes import MODE_REGISTRY, get_mode, mode_names
from repro.sim import ms, sec
from repro.sim.trace import install_tracer
from repro.workloads.base import ClientStats
from repro.workloads.catalog import make_workload

PAIR_MODES = tuple(n for n, m in MODE_REGISTRY.items() if m.pair_protocol)
WORKLOADS = ("net-echo", "redis")
_CRASH_AT_US = ms(500)
_RUN_US = ms(1200)


def run_conformance_cell(mode: str, workload_name: str, seed: int = 31):
    """One lifecycle pass; returns (violations, stats, deployment, digest)."""
    reset_id_counters()
    world = World(seed=seed)
    tracer = install_tracer(world.engine, limit=500_000)
    workload = make_workload(workload_name)
    deployment = build_deployment(
        world,
        workload.spec(),
        mode,
        on_failover=lambda container: workload.attach(world, container),
    )
    workload.warmup(world, deployment.container)
    workload.attach(world, deployment.container)
    deployment.start()

    stats = ClientStats()

    def launch():
        yield world.engine.timeout(ms(120))
        workload.start_clients(world, stats, run_until_us=_RUN_US)

    def crash():
        yield world.engine.timeout(_CRASH_AT_US)
        deployment.inject_fail_stop()

    world.engine.process(launch())
    world.engine.process(crash())
    world.run(until=_RUN_US + sec(1))
    deployment.stop()

    violations = evaluate_oracles(deployment, stats, expect_failover=True)
    return violations, stats, deployment, trace_digest(tracer)


def test_registry_exposes_all_strategies():
    assert mode_names() == ["stock", "nilicon", "hycor", "mc"]
    assert set(PAIR_MODES) == {"nilicon", "hycor"}
    assert get_mode("nilicon").release_rule == "checkpoint-commit"
    assert get_mode("hycor").release_rule == "log-commit"
    assert get_mode("stock").release_rule == "immediate"
    for name in PAIR_MODES:
        mode = get_mode(name)
        assert mode.description
        assert mode.pair_protocol


@pytest.mark.parametrize("workload_name", WORKLOADS)
@pytest.mark.parametrize("mode", PAIR_MODES)
def test_mode_survives_failstop_with_no_acked_write_lost(mode, workload_name):
    violations, stats, deployment, _ = run_conformance_cell(mode, workload_name)
    assert violations == []
    assert deployment.failed_over
    assert stats.completed > 0
    # Zero acknowledged-write loss, stated directly (the oracles cover it
    # via validation_failures, but this is the conformance contract).
    assert stats.validation_failures == []
    assert deployment.backup_agent.recoveries_started == 1


@pytest.mark.parametrize("mode", PAIR_MODES)
def test_mode_cell_replays_bit_identically(mode):
    first = run_conformance_cell(mode, "net-echo")
    second = run_conformance_cell(mode, "net-echo")
    assert first[3] == second[3], f"{mode}: trace digests diverged"
    assert first[0] == second[0] == []


def test_modes_differ_in_release_cadence():
    """The strategy split is real: hycor fences output per flush window
    (~3ms), nilicon per checkpoint epoch (~30ms) — an order of magnitude
    more release barriers for the same run."""
    _, _, nilicon, _ = run_conformance_cell("nilicon", "net-echo")
    _, _, hycor, _ = run_conformance_cell("hycor", "net-echo")
    assert len(hycor.netbuffer.releases) > 2 * len(nilicon.netbuffer.releases)
