"""Backup-agent ordering invariants.

The paper's commit rule (§IV): the ACK that releases epoch *k*'s output is
sent only "once the backup agent has received both the disk writes and
container state" — never on state alone.
"""

from repro.sim import ms

from .conftest import make_deployment


def test_ack_waits_for_disk_barrier(world):
    deployment = make_deployment(world)  # has a mounted fs => DRBD pair
    container = deployment.container
    fs = container.mounted_filesystems()[0]
    fs.create("/data/f")
    proc = container.processes[0]

    # Slow the disk path: grow the channel's per-write latency by writing
    # many blocks right before the checkpoint.
    def workload():
        step = 0
        while not container.dead and world.now < ms(400):
            def mutate(s=step):
                fs.write("/data/f", (s % 64) * 4096, b"block" * 100)
            try:
                yield from container.run_slice(proc, 300, mutate=mutate)
            except Exception:
                return
            if step % 4 == 3:
                fs.writeback()
            step += 1

    world.engine.process(workload())
    deployment.start()
    world.run(until=ms(400))
    deployment.stop()

    # Every released epoch was acked, and every ack implies its DRBD epoch
    # was complete when the ack was sent (the commit loop enforces it; the
    # audit log catches any violation).
    assert deployment.audit_output_commit() == []
    backup = deployment.backup_agent
    assert backup.received_epoch >= 1
    # Commits track receipts: nothing is committed before it was received.
    assert backup.committed_epoch <= backup.received_epoch
    # All barriered disk epochs the backup committed actually reached disk.
    for drbd in deployment.backup_drbd:
        assert drbd.committed_epochs == sorted(drbd.committed_epochs)


def test_commits_strictly_in_epoch_order(world):
    deployment = make_deployment(world)
    deployment.start()
    committed_order = []
    backup = deployment.backup_agent
    original = backup._commit_state

    def spy(epoch, image):
        committed_order.append(epoch)
        return original(epoch, image)

    backup._commit_state = spy
    world.run(until=ms(500))
    deployment.stop()
    assert committed_order == sorted(committed_order)
    assert committed_order == list(range(len(committed_order)))


def test_fs_page_buffer_keeps_latest_version(world):
    deployment = make_deployment(world)
    container = deployment.container
    fs = container.mounted_filesystems()[0]
    fs.create("/data/versioned")
    proc = container.processes[0]

    def workload():
        version = 0
        while not container.dead and world.now < ms(400):
            def mutate(v=version):
                fs.write("/data/versioned", 0, f"version-{v:05d}".encode())
            try:
                yield from container.run_slice(proc, 400, mutate=mutate)
            except Exception:
                return
            version += 1

    world.engine.process(workload())
    deployment.start()
    world.run(until=ms(400))
    deployment.stop()
    # The backup's accumulated fs buffer holds exactly one (latest
    # committed) version of the page.
    backup = deployment.backup_agent
    entries = [v for (path, idx), v in backup._fs_pages.items()
               if path == "/data/versioned" and idx == 0]
    assert len(entries) == 1
    assert entries[0].startswith(b"version-")
