"""Protocol sequence conformance, checked mechanically via the tracer.

The paper's protocol (Fig. 1, §IV) prescribes a strict order of steps in
every epoch and during recovery.  These tests install a tracer and verify
the implementation's event sequences against that order — for every epoch
of a run, not just a hand-picked one.
"""

from repro.sim import ms, sec
from repro.sim.trace import install_tracer

from .conftest import make_deployment

EPOCH_ORDER = [
    "frozen",
    "input_blocked",
    "disk_barrier",
    "collected",
    "resumed",
    "state_sent",
    "acked",
    "output_released",
]

RECOVERY_ORDER = ["detected", "images_written", "restored", "arp_announced"]


def test_every_epoch_follows_fig1_order(world):
    tracer = install_tracer(world.engine)
    deployment = make_deployment(world)
    deployment.start()
    world.run(until=ms(600))
    deployment.stop()

    n_epochs = deployment.primary_agent.epoch
    assert n_epochs >= 8
    # Check the full step sequence of every completed epoch.
    for epoch in range(n_epochs - 1):
        events = [e for e in tracer.select(category="epoch")
                  if e.detail.get("epoch") == epoch]
        names = [e.name for e in events]
        assert names == EPOCH_ORDER, (epoch, names)
        times = [e.at_us for e in events]
        assert times == sorted(times)

    # The staging buffer means state is sent after resume (SSV-D): the
    # container must never wait on the wire.
    for epoch in range(n_epochs - 1):
        resumed = tracer.select("epoch", "resumed", epoch=epoch)[0]
        sent = tracer.select("epoch", "state_sent", epoch=epoch)[0]
        assert sent.at_us >= resumed.at_us


def test_no_staging_sends_before_resume(world):
    from repro.replication import NiliconConfig

    tracer = install_tracer(world.engine)
    deployment = make_deployment(
        world, config=NiliconConfig.nilicon().with_(staging_buffer=False)
    )
    deployment.start()
    world.run(until=ms(600))
    deployment.stop()
    for epoch in range(1, deployment.primary_agent.epoch - 1):
        sent = tracer.select("epoch", "state_sent", epoch=epoch)[0]
        resumed = tracer.select("epoch", "resumed", epoch=epoch)[0]
        # Without the staging buffer, the container stays frozen until the
        # state is on the wire and acknowledged as received.
        assert sent.at_us <= resumed.at_us


def test_release_never_precedes_backup_ack(world):
    tracer = install_tracer(world.engine)
    deployment = make_deployment(world)
    deployment.start()
    world.run(until=ms(600))
    deployment.stop()
    for release in tracer.select("epoch", "output_released"):
        epoch = release.detail["epoch"]
        acks = tracer.select("backup", "ack_sent", epoch=epoch)
        assert acks, f"epoch {epoch} released without any backup ack"
        assert acks[0].at_us <= release.at_us


def test_recovery_follows_prescribed_order(world):
    tracer = install_tracer(world.engine)
    deployment = make_deployment(world)
    deployment.start()
    world.run(until=ms(500))
    deployment.inject_fail_stop()
    world.run(until=world.now + sec(2))
    names = tracer.names(category="recovery")
    assert names == RECOVERY_ORDER
    times = [e.at_us for e in tracer.select(category="recovery")]
    assert times == sorted(times)


def test_tracer_off_by_default_costs_nothing(world):
    deployment = make_deployment(world)
    deployment.start()
    world.run(until=ms(200))
    deployment.stop()
    assert not hasattr(world.engine, "tracer") or world.engine.tracer is None
