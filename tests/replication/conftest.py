"""Shared fixtures for replication tests."""

import pytest

from repro.container import ContainerSpec, ProcessSpec
from repro.net import World
from repro.replication import NiliconConfig, ReplicatedDeployment


@pytest.fixture
def world():
    return World(seed=23)


def make_spec(name="app", with_disk=True):
    return ContainerSpec(
        name=name,
        ip="10.0.1.10",
        processes=[ProcessSpec(comm="srv", n_threads=2, heap_pages=2000, n_mapped_files=8)],
        mounts=[("/data", f"{name}-fs")] if with_disk else [],
        cgroup_attributes={"cpu.shares": 256},
    )


def make_deployment(world, config=None, on_failover=None, with_disk=True, name="app"):
    return ReplicatedDeployment(
        world,
        make_spec(name=name, with_disk=with_disk),
        config=config or NiliconConfig.nilicon(),
        on_failover=on_failover,
    )


@pytest.fixture
def deployment(world):
    return make_deployment(world)
