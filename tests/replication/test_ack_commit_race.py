"""The ack-before-commit race: recovery must quiesce in-flight commits.

A failover that overlaps a commit must restore from the last *fully*
committed epoch: the commit/dispatch loops are interrupted, the page
store's open checkpoint is rolled back, and the ack — the primary's
licence to release that epoch's output — is only ever sent post-commit.
The ``unsafe_ack_before_commit`` knob re-creates the legacy ordering and
must reproduce the lost-committed-output violation.
"""

from repro.faultinject import FaultPlan, PointFault, crash_primary
from repro.replication import NiliconConfig
from repro.sim.units import ms
from tests.replication.conftest import make_deployment

#: Stall injected into the backup's commit path, long enough for failure
#: detection (~90 ms) plus recovery to finish while the commit hangs.
STALL_US = ms(400)
#: The primary dies this long after the backup hook fires — wide enough
#: for an in-flight ack (50 µs wire latency) to land and release output.
CRASH_AFTER_US = 200
TARGET = 5


def run_mid_commit_crash(world, config=None):
    deployment = make_deployment(world, config=config)
    deployment.start()
    plan = FaultPlan(points=[
        PointFault("backup.mid_commit", epoch=TARGET, stall_us=STALL_US,
                   action=crash_primary(deployment, after_us=CRASH_AFTER_US)),
    ]).arm(world.engine)
    world.run(until=ms(1200))
    plan.disarm()
    return deployment


def test_recovery_quiesces_open_commit(world):
    deployment = run_mid_commit_crash(world)
    backup = deployment.backup_agent
    assert deployment.failed_over
    assert backup.recoveries_started == 1
    # Epoch TARGET was mid-commit when the primary died: recovery must
    # restore from TARGET-1 and the quiesce must keep it that way.
    assert backup.recovered_from_epoch == TARGET - 1
    assert backup.committed_epoch == TARGET - 1
    assert not backup.page_store.checkpoint_open
    assert backup._out_of_order == {}
    # Output commit holds: nothing beyond the recovery point escaped.
    released = [r.epoch for r in deployment.netbuffer.releases]
    assert all(epoch <= backup.recovered_from_epoch for epoch in released)
    assert deployment.audit_output_commit() == []


def test_legacy_ack_before_commit_loses_released_output(world):
    config = NiliconConfig.nilicon().with_(unsafe_ack_before_commit=True)
    deployment = run_mid_commit_crash(world, config=config)
    backup = deployment.backup_agent
    assert deployment.failed_over
    # The ack for epoch TARGET escaped before the commit stalled, so the
    # primary released TARGET's output — but recovery could only restore
    # TARGET-1.  Committed output was lost.
    released = [r.epoch for r in deployment.netbuffer.releases]
    assert TARGET in released
    assert backup.recovered_from_epoch == TARGET - 1


def test_spurious_redetection_never_restarts_recovery(world):
    deployment = run_mid_commit_crash(world)
    backup = deployment.backup_agent
    assert backup.recoveries_started == 1
    backup._on_failure_detected()  # detector glitch after failover
    assert backup.recoveries_started == 1
