"""Multi-tenancy: several replicated containers share one host pair."""

import pytest

from repro.container import ContainerSpec, ProcessSpec
from repro.net import World
from repro.net.router import EndpointRouter
from repro.replication import ReplicatedDeployment
from repro.sim import ms, sec

from .test_failover import CounterService, client_loop, make_client


@pytest.fixture
def world():
    return World(seed=61)


def make_tenant(world, name, ip, service):
    spec = ContainerSpec(
        name=name,
        ip=ip,
        processes=[ProcessSpec(comm=name, n_threads=1, heap_pages=256, n_mapped_files=6)],
    )
    deployment = ReplicatedDeployment(world, spec, on_failover=service.attach)
    service.attach(deployment.container)
    deployment.start()
    return deployment


def test_two_tenants_replicate_independently(world):
    s1, s2 = CounterService(world), CounterService(world)
    d1 = make_tenant(world, "tenant-a", "10.0.1.51", s1)
    d2 = make_tenant(world, "tenant-b", "10.0.1.52", s2)
    world.run(until=ms(800))
    d1.stop()
    d2.stop()
    # Both progressed through epochs and committed on the backup.
    assert d1.primary_agent.epoch > 5
    assert d2.primary_agent.epoch > 5
    assert d1.backup_agent.committed_epoch >= d1.primary_agent.epoch - 2
    assert d2.backup_agent.committed_epoch >= d2.primary_agent.epoch - 2
    # The shared-channel routers dropped nothing.
    router_a = EndpointRouter.attach(world.pair_channel.a, world.engine)
    router_b = EndpointRouter.attach(world.pair_channel.b, world.engine)
    assert router_a.dropped == 0 and router_b.dropped == 0


def test_tenant_isolation_no_state_crosstalk(world):
    s1, s2 = CounterService(world), CounterService(world)
    d1 = make_tenant(world, "tenant-a", "10.0.1.51", s1)
    d2 = make_tenant(world, "tenant-b", "10.0.1.52", s2)

    # Write distinct state into each tenant.
    for deployment, token in ((d1, b"alpha"), (d2, b"beta")):
        proc = deployment.container.processes[0]
        proc.mm.write(deployment.container.heap_vma.start + 5, token)

    world.run(until=ms(500))
    d1.stop()
    d2.stop()

    page1 = d1.backup_agent.page_store.pages_of(d1.container.processes[0].pid)
    page2 = d2.backup_agent.page_store.pages_of(d2.container.processes[0].pid)
    assert page1[d1.container.heap_vma.start + 5] == b"alpha"
    assert page2[d2.container.heap_vma.start + 5] == b"beta"


def test_one_tenant_fails_other_keeps_running(world):
    """A container-level fail-stop must not disturb the co-tenant.

    (Note: a host-level failure kills both; this injects failure of one
    container + its agents only, e.g. a wedged workload/agent pair.)
    """
    s1, s2 = CounterService(world), CounterService(world)
    d1 = make_tenant(world, "tenant-a", "10.0.1.51", s1)
    d2 = make_tenant(world, "tenant-b", "10.0.1.52", s2)

    stack = make_client(world)
    results = []
    world.engine.process(
        client_loop(world, stack, results, n_requests=40, server_ip="10.0.1.52",
                    gap_us=ms(10))
    )

    def fault():
        yield world.engine.timeout(ms(600))
        # Container-level fail-stop of tenant-a only: its container dies
        # and its heartbeats stop, but the host and channel stay up.
        d1.container.kill()
        d1.heartbeat.stop()
        d1.primary_agent.crash()

    world.engine.process(fault())
    world.run(until=sec(8))

    # Tenant A failed over...
    assert d1.failed_over
    assert d1.restored_container is not None
    # ...while tenant B's client never noticed anything.
    assert len(results) == 40
    counts = [r["count"] for r in results]
    assert counts == sorted(counts) and len(set(counts)) == 40
    assert not d2.failed_over
