"""Unit tests for replication components: netbuffer, DRBD, heartbeat."""

import pytest

from repro.container import ContainerRuntime, ContainerSpec, ProcessSpec
from repro.kernel.netdev import Packet
from repro.net import Channel, World
from repro.replication.drbd import BackupDrbd, PrimaryDrbd
from repro.replication.heartbeat import FailureDetector, HeartbeatSender
from repro.replication.netbuffer import NetworkBuffer
from repro.sim import Engine, ms


@pytest.fixture
def world():
    return World(seed=31)


@pytest.fixture
def container(world):
    runtime = ContainerRuntime(world.primary.kernel, world.bridge)
    return runtime.create(
        ContainerSpec(name="c", ip="10.0.1.10",
                      processes=[ProcessSpec(comm="p", heap_pages=100)])
    )


def mkpkt(payload=b"x"):
    return Packet(src_ip="10.0.1.10", src_port=1, dst_ip="10.0.9.1", dst_port=2,
                  payload=payload)


class TestNetworkBuffer:
    def test_output_held_until_release(self, world, container):
        nb = NetworkBuffer(world.engine, world.costs, container)
        container.veth.egress_plug.enqueue(mkpkt(b"epoch0"))
        nb.insert_epoch_barrier(0)
        assert container.veth.egress_plug.queued == 1
        nb.acked_epoch = 0
        released = nb.release_epoch(0)
        assert released == 1

    def test_epoch_barriers_isolate_epochs(self, world, container):
        nb = NetworkBuffer(world.engine, world.costs, container)
        plug = container.veth.egress_plug
        plug.enqueue(mkpkt(b"e0"))
        nb.insert_epoch_barrier(0)
        plug.enqueue(mkpkt(b"e1"))
        nb.insert_epoch_barrier(1)
        nb.acked_epoch = 0
        assert nb.release_epoch(0) == 1  # only epoch 0's packet
        assert plug.queued == 1

    def test_audit_flags_premature_release(self, world, container):
        nb = NetworkBuffer(world.engine, world.costs, container)
        container.veth.egress_plug.enqueue(mkpkt())
        nb.insert_epoch_barrier(5)
        nb.acked_epoch = 3  # backup has NOT acked epoch 5
        nb.release_epoch(5)
        violations = nb.audit_output_commit()
        assert len(violations) == 1 and "epoch 5" in violations[0]

    def test_audit_clean_when_acked(self, world, container):
        nb = NetworkBuffer(world.engine, world.costs, container)
        nb.insert_epoch_barrier(0)
        nb.acked_epoch = 0
        nb.release_epoch(0)
        assert nb.audit_output_commit() == []

    def test_plug_input_blocking_cheap_firewall_expensive(self, world, container):
        def time_block(mode):
            w = World(seed=31)
            rt = ContainerRuntime(w.primary.kernel, w.bridge)
            c = rt.create(ContainerSpec(name="c", ip="10.0.1.10",
                                        processes=[ProcessSpec(comm="p")]))
            nb = NetworkBuffer(w.engine, w.costs, c, input_block=mode)

            def driver():
                start = w.engine.now
                yield from nb.block_input()
                yield from nb.unblock_input()
                return w.engine.now - start

            return w.run(until=w.engine.process(driver()))

        assert time_block("firewall") > time_block("plug") * 10

    def test_drop_unreleased_output(self, world, container):
        nb = NetworkBuffer(world.engine, world.costs, container)
        container.veth.egress_plug.enqueue(mkpkt())
        container.veth.egress_plug.enqueue(mkpkt())
        assert nb.drop_unreleased_output() == 2


class TestDrbd:
    def test_writes_mirror_to_backup_buffer(self):
        eng = Engine()
        world = World(seed=1)
        primary_dev = world.primary.kernel.add_block_device("vda")
        backup_dev = world.backup.kernel.add_block_device("vda")
        primary = PrimaryDrbd(primary_dev, world.primary.endpoint("pair"))
        backup = BackupDrbd(world.engine, world.costs, backup_dev)

        def receiver():
            while True:
                delivery = yield world.backup.endpoint("pair").recv()
                msg = delivery.message
                if msg["kind"] == "disk_write":
                    backup.on_disk_write(msg["epoch"], msg["block"], msg["data"])
                elif msg["kind"] == "disk_barrier":
                    backup.on_barrier(msg["epoch"], msg["writes"])

        world.engine.process(receiver())
        primary_dev.write_block(1, b"block-1")
        primary_dev.write_block(2, b"block-2")
        primary.send_barrier(0)
        world.run(until=ms(10))

        assert backup.is_epoch_complete(0)
        # Not yet applied to the backup disk.
        assert backup_dev.read_block(1) == b""

        def committer():
            n = yield from backup.commit_epoch(0)
            return n

        assert world.run(until=world.engine.process(committer())) == 2
        assert backup_dev.read_block(1) == b"block-1"
        assert backup_dev.read_block(2) == b"block-2"

    def test_barrier_before_all_writes_received_blocks(self):
        world = World(seed=1)
        backup_dev = world.backup.kernel.add_block_device("vda")
        backup = BackupDrbd(world.engine, world.costs, backup_dev)
        backup.on_barrier(0, writes=2)
        backup.on_disk_write(0, 1, b"only-one")
        assert not backup.is_epoch_complete(0)
        backup.on_disk_write(0, 2, b"second")
        assert backup.is_epoch_complete(0)

    def test_epoch_complete_event_triggers(self):
        world = World(seed=1)
        backup_dev = world.backup.kernel.add_block_device("vda")
        backup = BackupDrbd(world.engine, world.costs, backup_dev)
        got = []

        def waiter():
            yield backup.epoch_complete(0)
            got.append(world.now)

        world.engine.process(waiter())
        world.run(until=ms(1))
        assert got == []
        backup.on_barrier(0, writes=1)
        backup.on_disk_write(0, 5, b"d")
        world.run(until=ms(2))
        assert got != []

    def test_discard_uncommitted(self):
        world = World(seed=1)
        backup_dev = world.backup.kernel.add_block_device("vda")
        backup = BackupDrbd(world.engine, world.costs, backup_dev)
        backup.on_disk_write(3, 9, b"ghost")
        assert backup.discard_uncommitted() == 1
        assert backup_dev.read_block(9) == b""

    def test_backup_applies_raw_without_remirroring(self):
        world = World(seed=1)
        backup_dev = world.backup.kernel.add_block_device("vda")
        hooked = []
        backup_dev.add_write_hook(lambda idx, data: hooked.append(idx))
        backup = BackupDrbd(world.engine, world.costs, backup_dev)
        backup.on_barrier(0, writes=1)
        backup.on_disk_write(0, 1, b"d")

        def committer():
            yield from backup.commit_epoch(0)

        world.run(until=world.engine.process(committer()))
        assert hooked == []  # raw writes bypass hooks


class TestHeartbeat:
    def test_sender_skips_when_no_cpu_progress(self):
        eng = Engine()
        chan = Channel(eng)
        usage = {"value": 0}
        sender = HeartbeatSender(eng, chan.a, lambda: usage["value"], interval_us=ms(30))
        sender.start()
        eng.run(until=ms(100))
        assert sender.sent == 0
        assert sender.skipped_idle >= 2
        usage["value"] = 100
        eng.run(until=ms(130))
        assert sender.sent == 1
        sender.stop()

    def test_detector_fires_after_threshold_misses(self):
        eng = Engine()
        fired = []
        det = FailureDetector(eng, on_failure=lambda: fired.append(eng.now),
                              interval_us=ms(30), miss_threshold=3)
        det.start()
        det.on_heartbeat()  # arm
        eng.run(until=ms(500))
        assert det.fired
        # 3 consecutive 30 ms misses => fires ~90-120 ms after the last beat.
        assert ms(80) <= fired[0] <= ms(150)

    def test_detector_not_armed_before_first_heartbeat(self):
        eng = Engine()
        fired = []
        det = FailureDetector(eng, on_failure=lambda: fired.append(eng.now),
                              interval_us=ms(30))
        det.start()
        eng.run(until=ms(500))
        assert not det.fired

    def test_heartbeats_reset_miss_counter(self):
        eng = Engine()
        fired = []
        det = FailureDetector(eng, on_failure=lambda: fired.append(eng.now),
                              interval_us=ms(30), miss_threshold=3)
        det.start()

        def beats():
            for _ in range(20):
                det.on_heartbeat()
                yield eng.timeout(ms(30))

        eng.process(beats())
        eng.run(until=ms(500))
        assert not det.fired  # kept alive until beats stop...
        eng.run(until=ms(800))
        assert det.fired  # ...then detected

    def test_detector_stop_cancels(self):
        eng = Engine()
        det = FailureDetector(eng, on_failure=lambda: None, interval_us=ms(30))
        det.start()
        det.on_heartbeat()
        det.stop()
        eng.run(until=ms(500))
        assert not det.fired
