"""Tests for configuration objects and the Table I optimization walk."""

from repro.criu.config import CriuConfig
from repro.replication.config import TABLE1_LEVELS, NiliconConfig


class TestCriuConfig:
    def test_nilicon_defaults_are_fully_optimized(self):
        config = CriuConfig.nilicon()
        assert config.vma_source == "netlink"
        assert config.parasite_transport == "shm"
        assert config.freeze_poll
        assert config.fs_cache_mode == "fgetfc"
        assert config.cache_infrequent_state
        assert not config.use_proxy_processes
        assert config.repair_rto_patch

    def test_stock_is_fully_unoptimized(self):
        config = CriuConfig.stock()
        assert config.vma_source == "smaps"
        assert config.parasite_transport == "pipe"
        assert not config.freeze_poll
        assert config.fs_cache_mode == "nas_flush"
        assert not config.cache_infrequent_state
        assert config.use_proxy_processes
        assert not config.repair_rto_patch

    def test_with_returns_new_instance(self):
        base = CriuConfig.nilicon()
        variant = base.with_(vma_source="smaps")
        assert variant.vma_source == "smaps"
        assert base.vma_source == "netlink"


class TestTable1Walk:
    def test_level0_is_basic(self):
        assert NiliconConfig.table1_level(0) == NiliconConfig.basic()

    def test_level6_matches_nilicon_checkpoint_path(self):
        full = NiliconConfig.table1_level(len(TABLE1_LEVELS) - 1)
        assert full.criu.vma_source == "netlink"
        assert full.criu.parasite_transport == "shm"
        assert full.criu.cache_infrequent_state
        assert full.input_block == "plug"
        assert full.staging_buffer
        assert full.page_store == "radix"

    def test_each_level_changes_exactly_its_knob(self):
        l0 = NiliconConfig.table1_level(0)
        l1 = NiliconConfig.table1_level(1)
        assert l0.page_store == "list" and l1.page_store == "radix"
        assert not l0.criu.freeze_poll and l1.criu.freeze_poll
        l2 = NiliconConfig.table1_level(2)
        assert not l1.criu.cache_infrequent_state and l2.criu.cache_infrequent_state
        l3 = NiliconConfig.table1_level(3)
        assert l2.input_block == "firewall" and l3.input_block == "plug"
        l4 = NiliconConfig.table1_level(4)
        assert l3.criu.vma_source == "smaps" and l4.criu.vma_source == "netlink"
        l5 = NiliconConfig.table1_level(5)
        assert not l4.staging_buffer and l5.staging_buffer
        l6 = NiliconConfig.table1_level(6)
        assert l5.criu.parasite_transport == "pipe"
        assert l6.criu.parasite_transport == "shm"

    def test_out_of_range_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            NiliconConfig.table1_level(7)
        with pytest.raises(ValueError):
            NiliconConfig.table1_level(-1)
