"""Failure-detector edge cases: boundaries, phase offsets, arming.

The detector counts *empty windows*, not late beats, and it only starts
counting once the first heartbeat has been seen — so the long initial
full checkpoint (a frozen, silent primary) can never be misread as a
failure.
"""

from repro.net.link import Channel
from repro.replication.heartbeat import FailureDetector, HeartbeatSender
from repro.sim.engine import Engine

INTERVAL = 30_000


def make_detector(engine, **kwargs):
    fired = []
    detector = FailureDetector(
        engine, on_failure=lambda: fired.append(engine.now),
        interval_us=INTERVAL, **kwargs
    )
    detector.start()
    return detector, fired


def beat_every(engine, detector, period_us, first_at_us=0, stop_at_us=None):
    def run():
        if first_at_us:
            yield engine.timeout(first_at_us)
        while stop_at_us is None or engine.now < stop_at_us:
            detector.on_heartbeat()
            yield engine.timeout(period_us)

    engine.process(run())


def test_beat_exactly_on_window_boundary_never_fires():
    engine = Engine()
    detector, fired = make_detector(engine)
    # Beats land at t = 0, 30ms, 60ms, ... — the exact instants the
    # detector closes its windows.  A >=-boundary off-by-one would count
    # these as misses.
    beat_every(engine, detector, INTERVAL)
    engine.run(until=INTERVAL * 40)
    assert fired == []
    assert detector.misses == 0


def test_phase_offset_half_window_never_fires():
    engine = Engine()
    detector, fired = make_detector(engine)
    # Sender phase-shifted by half a window (e.g. link latency): every
    # detector window still contains exactly one beat.
    beat_every(engine, detector, INTERVAL, first_at_us=INTERVAL // 2)
    engine.run(until=INTERVAL * 40)
    assert fired == []


def test_unarmed_detector_never_fires_over_long_silence():
    engine = Engine()
    detector, fired = make_detector(engine)
    # No heartbeat ever arrives — the initial full checkpoint can keep the
    # primary frozen and silent for many windows.  Until the first beat
    # arms the detector, silence must not count as misses.
    engine.run(until=INTERVAL * 50)
    assert not detector.armed
    assert detector.misses == 0
    assert fired == []


def test_detector_arms_on_first_beat_then_fires_after_threshold():
    engine = Engine()
    detector, fired = make_detector(engine)
    first_beat = INTERVAL * 10 + INTERVAL // 3
    beat_every(engine, detector, INTERVAL * 100, first_at_us=first_beat,
               stop_at_us=first_beat + 1)
    engine.run(until=INTERVAL * 30)
    assert detector.armed
    assert fired, "armed detector must fire after sustained silence"
    # Three consecutive empty windows after the beat's own window.
    assert fired[0] == detector.fired_at
    windows_after_beat = (detector.fired_at - first_beat) // INTERVAL
    assert 3 <= windows_after_beat <= 4
    assert detector.misses == 3


def test_two_missed_windows_do_not_fire():
    engine = Engine()
    detector, fired = make_detector(engine)

    def run():
        detector.on_heartbeat()
        # Stay silent for two full windows, then resume beating.
        yield engine.timeout(INTERVAL * 3 - 1)
        while True:
            detector.on_heartbeat()
            yield engine.timeout(INTERVAL)

    engine.process(run())
    engine.run(until=INTERVAL * 20)
    assert fired == []


def test_sender_withholds_heartbeat_when_cpu_is_idle():
    engine = Engine()
    channel = Channel(engine)
    usage = {"value": 0, "rising": True}

    def read_cpuacct():
        if usage["rising"]:
            usage["value"] += 1
        return usage["value"]

    sender = HeartbeatSender(engine, channel.a, read_cpuacct,
                             interval_us=INTERVAL)
    sender.start()
    engine.run(until=INTERVAL * 5 + 1)
    assert sender.sent == 5
    assert sender.skipped_idle == 0
    usage["rising"] = False  # container stops making progress
    engine.run(until=INTERVAL * 10 + 1)
    assert sender.sent == 5
    assert sender.skipped_idle == 5
    assert channel.messages_sent == 5
