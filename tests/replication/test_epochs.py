"""Tests of normal-operation replication: epochs, metrics, knobs."""

from repro.sim import ms

from .conftest import make_deployment


def test_epochs_advance_and_record_metrics(world, deployment):
    deployment.start()
    world.run(until=ms(500))
    deployment.stop()
    metrics = deployment.metrics
    # ~500 ms / (30 ms + stop) -> at least a dozen epochs.
    assert metrics.n_epochs >= 8
    assert all(e.stop_us > 0 for e in metrics.epochs)
    assert metrics.epochs[0].epoch == 0
    assert [e.epoch for e in metrics.epochs] == list(range(metrics.n_epochs))


def test_first_checkpoint_full_then_incremental(world, deployment):
    container = deployment.container
    proc = container.processes[0]
    heap = container.heap_vma
    # Pre-populate memory so the full checkpoint has content.
    for i in range(100):
        proc.mm.write(heap.start + i, b"seed")
    deployment.start()
    world.run(until=ms(200))
    deployment.stop()
    epochs = deployment.metrics.epochs
    assert epochs[0].dirty_pages >= 100  # full
    # Quiet container: incrementals carry (almost) nothing.
    assert all(e.dirty_pages <= 2 for e in epochs[1:])


def test_dirty_pages_flow_to_backup_store(world, deployment):
    container = deployment.container
    proc = container.processes[0]
    heap = container.heap_vma

    def workload():
        step = 0
        while not container.dead and world.now < ms(300):
            def mutate(s=step):
                proc.mm.write(heap.start + (s % 50), f"v{s}".encode())
            try:
                yield from container.run_slice(proc, 500, mutate=mutate)
            except Exception:
                return
            step += 1

    world.engine.process(workload())
    deployment.start()
    world.run(until=ms(300))
    deployment.stop()
    store = deployment.backup_agent.page_store
    pages = store.pages_of(proc.pid)
    assert len(pages) >= 50
    # The committed content matches what the primary last checkpointed.
    committed_epoch = deployment.backup_agent.committed_epoch
    assert committed_epoch >= 2


def test_backup_commits_lag_primary_epochs(world, deployment):
    deployment.start()
    world.run(until=ms(400))
    deployment.stop()
    assert deployment.backup_agent.committed_epoch >= deployment.primary_agent.epoch - 2
    assert deployment.backup_agent.committed_epoch <= deployment.primary_agent.epoch


def test_stop_time_includes_collection(world, deployment):
    deployment.start()
    world.run(until=ms(200))
    deployment.stop()
    for e in deployment.metrics.epochs:
        assert e.collect_us > 0
        assert e.stop_us >= e.collect_us


def test_state_cache_hits_after_first_epoch(world, deployment):
    deployment.start()
    world.run(until=ms(300))
    deployment.stop()
    epochs = deployment.metrics.epochs
    assert not epochs[0].infrequent_from_cache
    assert all(e.infrequent_from_cache for e in epochs[1:])
    cache = deployment.primary_agent.state_cache
    assert cache is not None
    assert cache.hits == len(epochs) - 1


def test_state_cache_invalidated_by_container_mutation(world, deployment):
    container = deployment.container

    def mutator():
        yield world.engine.timeout(ms(100))
        while container.frozen:  # mutations can't happen while frozen
            yield world.engine.timeout(ms(1))
        container.set_hostname("renamed")  # fires the ftrace hook

    world.engine.process(mutator())
    deployment.start()
    world.run(until=ms(600))
    deployment.stop()
    cache = deployment.primary_agent.state_cache
    assert cache.invalidations >= 1
    assert cache.misses >= 2  # initial + post-invalidation
    # At least one later epoch re-collected.
    later = [e for e in deployment.metrics.epochs[1:] if not e.infrequent_from_cache]
    assert later


def test_no_cache_config_collects_every_epoch(world):
    from repro.replication import NiliconConfig

    config = NiliconConfig.nilicon()
    config = config.with_(criu=config.criu.with_(cache_infrequent_state=False))
    deployment = make_deployment(world, config=config)
    deployment.start()
    world.run(until=ms(400))
    deployment.stop()
    assert all(not e.infrequent_from_cache for e in deployment.metrics.epochs)
    # Without the cache, each epoch pays ~160 ms of collection.
    assert deployment.metrics.avg_stop_us() > ms(100)


def test_cache_cuts_stop_time_massively(world):
    cached = make_deployment(world, name="appc")
    cached.start()
    world.run(until=ms(300))
    cached.stop()
    assert cached.metrics.avg_stop_us() < ms(20)


def test_firewall_blocking_costs_more_than_plug(world):
    from repro.replication import NiliconConfig

    w1, w2 = world, type(world)(seed=23)
    plug = make_deployment(w1, config=NiliconConfig.nilicon())
    fw = make_deployment(w2, config=NiliconConfig.nilicon().with_(input_block="firewall"))
    for w, d in ((w1, plug), (w2, fw)):
        d.start()
        w.run(until=ms(300))
        d.stop()
    assert fw.metrics.avg_stop_us() > plug.metrics.avg_stop_us() + ms(5)


def test_staging_buffer_reduces_stop_time(world):
    from repro.replication import NiliconConfig

    def run_with(staging):
        w = type(world)(seed=23)
        d = make_deployment(w, config=NiliconConfig.nilicon().with_(staging_buffer=staging))
        container = d.container
        proc = container.processes[0]
        heap = container.heap_vma

        def workload():
            step = 0
            while not container.dead and w.now < ms(300):
                def mutate(s=step):
                    for i in range(20):
                        proc.mm.write(heap.start + (s * 20 + i) % 1500, b"x")
                try:
                    yield from container.run_slice(proc, 500, mutate=mutate)
                except Exception:
                    return
                step += 1

        w.engine.process(workload())
        d.start()
        w.run(until=ms(300))
        d.stop()
        return d.metrics.avg_stop_us()

    assert run_with(True) < run_with(False)
