"""HyCoR mode unit behaviors: flush digests, log shipping, replay.

The end-to-end failure windows (log gap at failover, replay divergence,
crash mid-ship) live in the fault-injection campaign; these tests pin the
building blocks — the wire digest against the NDLog's own window digest,
the shipper's fence-then-ship ordering, and the backup's durable-sequence
bookkeeping — at unit scale.
"""

import pytest

from repro.net import World
from repro.replication import NiliconConfig
from repro.replication.hycor import flush_digest, hycor_flush_seq
from repro.sim import ms, sec
from repro.sim.ndlog import NDLog

from .conftest import make_deployment


def make_hycor(world, **kwargs):
    return make_deployment(world, config=NiliconConfig.hycor(), **kwargs)


# --------------------------------------------------------------------- #
# flush_digest == NDLog.window_digest (the docstring's promised pin)     #
# --------------------------------------------------------------------- #
def test_flush_digest_matches_ndlog_window_digest():
    log = NDLog()
    start = log.draw_counts()
    log.record("mm0", "write", (3, "tok-a"))
    log.record("mm0", "write", (7, "tok-b"))
    log.record("mm1", "write", (1, "tok-c"))
    end = log.draw_counts()
    entries = [list(e) for e in log.window_entries(start, end)]
    assert flush_digest(entries) == log.window_digest(start, end)
    # And for a later window, where the global per-stream sequence numbers
    # have advanced: the digests must stay aligned window-for-window.
    log.record("mm1", "write", (2, "tok-d"))
    later = log.draw_counts()
    tail = [list(e) for e in log.window_entries(end, later)]
    assert flush_digest(tail) == log.window_digest(end, later)
    assert flush_digest(tail) != flush_digest(entries)


def test_flush_digest_detects_any_entry_mutation():
    log = NDLog()
    start = log.draw_counts()
    log.record("mm0", "write", (3, "tok-a"))
    end = log.draw_counts()
    entries = [list(e) for e in log.window_entries(start, end)]
    good = flush_digest(entries)
    entries[0][2] = "corrupted-write"
    assert flush_digest(entries) != good


def test_empty_window_digest_is_stable():
    log = NDLog()
    counts = log.draw_counts()
    assert flush_digest([]) == log.window_digest(counts, counts)


# --------------------------------------------------------------------- #
# Steady-state shipping                                                  #
# --------------------------------------------------------------------- #
def test_hycor_ships_flushes_and_advances_durable_seq():
    world = World(seed=11)
    deployment = make_hycor(world)
    deployment.start()
    world.run(until=ms(600))
    deployment.stop()

    backup = deployment.backup_agent
    shipper = deployment.primary_agent.shipper
    assert backup.log_flushes_received > 10
    assert backup.log_crc_mismatches == 0
    # Every shipped flush arrived in order: durable tracks the shipper
    # (the last in-flight flush may still be on the wire at stop).
    assert shipper.seq - 2 <= backup.durable_seq <= shipper.seq
    assert not backup._future_flushes
    # The adoption horizon is persisted on the container itself.
    assert hycor_flush_seq(deployment.container) == shipper.seq


def test_hycor_releases_output_on_log_commit_not_checkpoint():
    world = World(seed=12)
    deployment = make_hycor(world)
    deployment.start()
    world.run(until=ms(600))
    deployment.stop()

    # Barriers are flush sequences (one per ~3ms window), not checkpoint
    # epochs (one per ~30ms): far more release fences than epochs.
    releases = deployment.netbuffer.releases
    assert len(releases) > 2 * deployment.primary_agent.epoch
    assert not deployment.audit_output_commit()
    assert deployment.netbuffer.release_lag() == 0


def test_hycor_failover_replays_log_tail():
    world = World(seed=13)
    deployment = make_hycor(world)
    deployment.start()

    def dirty():
        proc = deployment.container.processes[0]
        heap = deployment.container.heap_vma_of(proc)
        i = 0
        while not deployment.container.dead:
            yield world.engine.timeout(ms(2))
            proc.mm.write(heap.start + i % 40, f"tok-{i}".encode())
            i += 1

    world.engine.process(dirty())
    world.run(until=ms(500))
    deployment.inject_fail_stop()
    world.run(until=world.now + sec(2))

    backup = deployment.backup_agent
    assert deployment.failed_over
    assert deployment.restored_container is not None
    # Replay advanced the horizon past the checkpoint's frozen log_seq,
    # through every durable flush.
    assert backup.replay_horizon_seq == backup.durable_seq
    assert backup.replayed_flushes > 0
    assert backup.replay_divergences == 0
    assert backup.log_gap_detected is False
    assert deployment.metrics.recovery.replay_us > 0


def test_nilicon_deployment_has_no_shipper():
    world = World(seed=14)
    deployment = make_deployment(world)
    deployment.start()
    world.run(until=ms(200))
    deployment.stop()
    assert not hasattr(deployment.primary_agent, "shipper")
    assert deployment.mode.release_rule == "checkpoint-commit"
    assert hycor_flush_seq(deployment.container) == 0


# --------------------------------------------------------------------- #
# Backup-side sequence discipline                                        #
# --------------------------------------------------------------------- #
def test_backup_parks_past_gap_and_heals_on_checkpoint_supersede():
    world = World(seed=15)
    deployment = make_hycor(world)
    deployment.start()
    world.run(until=ms(300))
    backup = deployment.backup_agent

    durable = backup.durable_seq
    hole, after = durable + 1, durable + 2
    # A flush arrives past a hole: it must park, not commit.
    backup._on_ndlog({"seq": after, "entries": [], "counts": {}, "crc": flush_digest([])})
    assert backup.durable_seq == durable
    assert after in backup._future_flushes
    # A checkpoint whose frozen log_seq covers the hole supersedes it:
    # durable jumps to the base and the parked successor unparks.
    backup._after_commit(backup.committed_epoch, {"log_seq": hole})
    assert backup.durable_seq >= after
    assert not backup._future_flushes
    deployment.stop()


def test_backup_refuses_flush_with_bad_digest():
    world = World(seed=16)
    deployment = make_hycor(world)
    deployment.start()
    world.run(until=ms(300))
    backup = deployment.backup_agent

    durable = backup.durable_seq
    backup._on_ndlog({
        "seq": durable + 1,
        "entries": [["mm0", 0, "write", (1, "tok")]],
        "counts": {"mm0": 1},
        "crc": "ffffffff",
    })
    assert backup.durable_seq == durable
    assert backup.log_crc_mismatches == 1
    deployment.stop()


@pytest.mark.parametrize("mode,expected", [
    ("nilicon", "epoch_commit"),
    ("hycor", "log_commit"),
])
def test_netbuffer_ledger_kind_follows_mode(mode, expected):
    world = World(seed=17)
    deployment = make_deployment(
        world, config=NiliconConfig.nilicon().with_(mode=mode)
    )
    assert deployment.netbuffer.commit_ledger_kind == expected
