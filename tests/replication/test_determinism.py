"""End-to-end determinism: identical seeds produce identical runs.

Everything in the reproduction — the 50-run fault campaign, the
calibration tables, debugging itself — rests on bit-reproducibility of
whole deployments, not just of the raw engine.
"""

from repro.experiments.common import run_server_benchmark
from repro.experiments.validation import run_one_injection
from repro.sim import ms


def fingerprint(result):
    return (
        result.throughput,
        result.stats.completed,
        tuple(result.stats.latencies_us),
        tuple((e.epoch, e.stop_us, e.dirty_pages, e.state_bytes, e.at_us)
              for e in result.metrics.epochs),
        result.metrics.backup_cpu_us,
    )


def test_identical_seed_identical_run():
    a = run_server_benchmark("net", "nilicon", duration_us=ms(800), seed=7)
    b = run_server_benchmark("net", "nilicon", duration_us=ms(800), seed=7)
    assert fingerprint(a) == fingerprint(b)


def test_different_seed_different_run():
    a = run_server_benchmark("net-echo", "nilicon", duration_us=ms(800), seed=7)
    b = run_server_benchmark("net-echo", "nilicon", duration_us=ms(800), seed=8)
    # Random request sizes differ, so the latency series must differ.
    assert tuple(a.stats.latencies_us) != tuple(b.stats.latencies_us)


def test_fault_injection_replays_identically():
    assert run_one_injection("net-echo", seed=202) == run_one_injection(
        "net-echo", seed=202
    )
