"""Primary-agent lifecycle: no leaked processes, no orphaned receipts.

``stop()`` used to leave the ack loop parked on ``endpoint.recv()``
forever, and the non-staging path used to allocate its receipt event
*after* sending state — a receipt arriving in between found no event and
froze the container permanently.  These tests pin the fixed behaviour.
"""

from repro.faultinject import FaultPlan, PointFault
from repro.replication import NiliconConfig
from repro.sim.units import ms
from tests.replication.conftest import make_deployment


def test_stop_reaps_the_blocked_ack_loop(world, deployment):
    deployment.start()
    world.run(until=ms(200))
    deployment.stop()
    # Deliver the teardown interrupts (they are scheduled, not immediate).
    world.run(until=ms(201))
    for process in deployment.primary_agent._processes:
        assert not process.is_alive, f"{process.name} leaked past stop()"


def test_stop_resolves_pending_receipt_events(world):
    config = NiliconConfig.nilicon().with_(staging_buffer=False)
    deployment = make_deployment(world, config=config)
    deployment.start()
    world.run(until=ms(200))
    deployment.stop()
    assert deployment.primary_agent._receipt_events == {}


def test_receipt_event_exists_before_state_is_sent(world):
    config = NiliconConfig.nilicon().with_(staging_buffer=False)
    deployment = make_deployment(world, config=config)
    deployment.start()
    seen = {}

    def record(_engine):
        # At pre_send the state message has NOT gone out yet; the receipt
        # event must already be registered so an instant receipt finds it.
        seen["registered"] = 2 in deployment.primary_agent._receipt_events

    plan = FaultPlan(points=[
        PointFault("primary.pre_send", epoch=2, action=record),
    ]).arm(world.engine)
    world.run(until=ms(300))
    deployment.stop()
    plan.disarm()
    assert seen == {"registered": True}


def test_crash_clears_receipt_bookkeeping(world):
    config = NiliconConfig.nilicon().with_(staging_buffer=False)
    deployment = make_deployment(world, config=config)
    deployment.start()
    world.run(until=ms(160))
    deployment.inject_fail_stop()
    assert deployment.primary_agent._receipt_events == {}
    # And the crashed agent's processes die once the interrupts land.
    world.run(until=ms(161))
    for process in deployment.primary_agent._processes:
        assert not process.is_alive
