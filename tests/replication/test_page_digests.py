"""Tests for the per-page digest cache (statecache.PageDigestCache).

Unit tests drive the cache with fake images/processes to pin the contract
— optimized mode hashes exactly the dirty (in-image) pages and counts the
clean remainder as cache hits; the ``perf_unoptimized_digest`` regression
knob re-hashes the whole resident set — and the end-to-end test asserts
the backup verifies every transfer of a live deployment with zero
mismatches.
"""

import zlib
from types import SimpleNamespace

from repro.replication.config import NiliconConfig
from repro.replication.statecache import PageDigestCache, verify_page_digests
from repro.sim.units import ms

from .conftest import make_deployment


def fake_image(page_map):
    """``{pid: {idx: content}}`` -> an object shaped like CheckpointImage."""
    return SimpleNamespace(processes=[
        SimpleNamespace(pid=pid, pages=dict(pages))
        for pid, pages in sorted(page_map.items())
    ])


def fake_processes(page_map):
    """``{pid: {idx: content}}`` -> objects shaped like kernel processes."""
    return [
        SimpleNamespace(pid=pid, mm=SimpleNamespace(pages=dict(pages)))
        for pid, pages in sorted(page_map.items())
    ]


def test_optimized_mode_hashes_only_image_pages():
    cache = PageDigestCache()
    resident = {7: {0: b"aaaa", 1: b"bbbb", 2: b"cccc", 3: b"dddd"}}
    dirty = {7: {1: b"bbbb", 3: b"dddd"}}
    digests = cache.digest_image(fake_image(dirty), fake_processes(resident))
    assert digests == {
        "7:1": zlib.crc32(b"bbbb"),
        "7:3": zlib.crc32(b"dddd"),
    }
    assert cache.pages_digested == 2
    # The two clean resident pages were served without hashing.
    assert cache.cache_hits == 2


def test_optimized_mode_reuses_cached_digest_for_clean_pages():
    cache = PageDigestCache()
    resident = {7: {0: b"aaaa", 1: b"bbbb"}}
    # Epoch 1: both pages dirty.
    cache.digest_image(fake_image(resident), fake_processes(resident))
    # Epoch 2: only page 1 dirty — but the transfer still carries page 1's
    # digest freshly and page 0's digest stays available in the cache.
    second = cache.digest_image(
        fake_image({7: {1: b"b2b2"}}), fake_processes(resident)
    )
    assert second == {"7:1": zlib.crc32(b"b2b2")}
    assert cache.pages_digested == 3  # 2 + 1, page 0 never re-hashed
    assert cache.generation == 2


def test_unoptimized_knob_rehashes_entire_resident_set():
    cache = PageDigestCache(unoptimized=True)
    resident = {7: {0: b"aaaa", 1: b"bbbb", 2: b"cccc"}}
    dirty = {7: {1: b"bbbb"}}
    digests = cache.digest_image(fake_image(dirty), fake_processes(resident))
    # The transfer map still covers exactly the image pages...
    assert set(digests) == {"7:1"}
    # ...but all three resident pages were hashed, and nothing was cached.
    assert cache.pages_digested == 3
    assert cache.cache_hits == 0


def test_digests_cover_multiple_processes():
    cache = PageDigestCache()
    dirty = {1: {0: b"p1"}, 2: {0: b"p2", 5: b"p2x"}}
    digests = cache.digest_image(fake_image(dirty), fake_processes(dirty))
    assert set(digests) == {"1:0", "2:0", "2:5"}


def test_verify_page_digests_intact_and_corrupted():
    cache = PageDigestCache()
    dirty = {7: {0: b"aaaa", 1: b"bbbb"}}
    image = fake_image(dirty)
    digests = cache.digest_image(image, fake_processes(dirty))
    assert verify_page_digests(image, digests) == 0

    corrupted = fake_image({7: {0: b"aaaa", 1: b"XXXX"}})
    assert verify_page_digests(corrupted, digests) == 1
    # Pages the primary sent no digest for are not checkable.
    assert verify_page_digests(fake_image({7: {9: b"zz"}}), digests) == 0


def _populate(deployment, n_pages=100):
    proc = deployment.container.processes[0]
    heap = deployment.container.heap_vma
    for i in range(n_pages):
        proc.mm.write(heap.start + i, b"seed")


def test_backup_verifies_live_deployment_transfers(world):
    deployment = make_deployment(world)
    _populate(deployment)
    deployment.start()
    world.run(until=ms(500))
    deployment.stop()
    backup = deployment.backup_agent
    assert backup.digests_verified > 0
    assert backup.digest_mismatches == 0
    assert deployment.primary_agent.digest_cache.pages_digested > 0


def test_knob_deployment_still_verifies_clean(world):
    config = NiliconConfig.nilicon().with_(perf_unoptimized_digest=True)
    deployment = make_deployment(world, config=config)
    _populate(deployment)
    deployment.start()
    world.run(until=ms(500))
    deployment.stop()
    backup = deployment.backup_agent
    assert backup.digests_verified > 0
    assert backup.digest_mismatches == 0
    # The knob did strictly more hashing than the dirty sets required.
    cache = deployment.primary_agent.digest_cache
    assert cache.unoptimized is True
    assert cache.cache_hits == 0
