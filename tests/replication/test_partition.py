"""Split-brain safety under network partition.

The fail-stop assumption (§IV) can be violated in practice: a partition of
the replication link leaves the primary *alive* while the backup declares
it dead and takes over.  Output commit makes this safe anyway: the old
primary can keep executing, but its outputs can never be released — they
wait for acknowledgments that can no longer arrive — so the external world
only ever observes one of the two.  This is the deeper reason Remus-style
buffering is the right design, and it deserves a test.
"""

from repro.sim import ms, sec

from .conftest import make_deployment
from .test_failover import CounterService, client_loop, make_client


def test_partition_does_not_split_brain(world):
    service = CounterService(world)
    deployment = make_deployment(world, on_failover=service.attach)
    service.attach(deployment.container)
    deployment.start()

    stack = make_client(world)
    results = []
    world.engine.process(client_loop(world, stack, results, n_requests=50))

    def partition():
        yield world.engine.timeout(ms(700))
        # Cut ONLY the replication link: the primary host, its container
        # and its workload all keep running.
        world.pair_channel.cut()

    world.engine.process(partition())
    world.run(until=sec(10))

    # The backup detected "failure" and took over.
    assert deployment.failed_over
    assert deployment.restored_container is not None
    # The old primary is genuinely still alive and executing...
    assert not deployment.container.dead
    assert not world.primary.failed

    # ...but the client's view is single-system: every request answered,
    # counter strictly monotonic, no duplicates, no resets.
    assert len(results) == 50
    counts = [r["count"] for r in results]
    assert counts == sorted(counts)
    assert len(set(counts)) == len(counts)
    assert all(s.state.value != "reset" for s in stack.connections.values())

    # The old primary's post-partition output never escaped: everything it
    # generated after the cut is still sitting in its egress plug.
    assert deployment.container.veth.egress_plug.queued > 0
    assert deployment.audit_output_commit() == []
