"""End-to-end failover tests: detection, recovery, and client transparency.

These exercise the paper's headline claim (§VII-A): fail-stop primary
failure is detected in ~90 ms, the container is restored on the backup, the
client's TCP connection survives, and no acknowledged state is lost.

The service used is a counter server: each 8-byte ``PINGxxxx`` request
increments a counter page in container memory and answers ``PONG`` plus the
counter value.  Because the counter lives in checkpointed memory and every
response is output-committed, the client-observed counter must be strictly
increasing **across the failover** — a linearizability check that fails if
the backup restores stale state or releases uncommitted output.
"""

import pytest

from repro.kernel.costmodel import CostModel
from repro.kernel.netdev import NetDevice
from repro.kernel.tcp import TcpStack
from repro.sim import Interrupt, ms, sec

from .conftest import make_deployment

PORT = 7777


class CounterService:
    """The replicated workload: counter server re-attachable after failover."""

    def __init__(self, world):
        self.world = world
        self.container = None

    def attach(self, container):
        self.container = container
        stack = container.stack
        listener = stack.listeners.get(PORT)
        if listener is None:
            listener = stack.socket()
            listener.listen(PORT)
        self.world.engine.process(self._accept_loop(container, listener))
        for sock in list(stack.connections.values()):
            self.world.engine.process(self._handler(container, sock))

    def _accept_loop(self, container, listener):
        while not container.dead:
            try:
                child = yield listener.accept()
            except Interrupt:
                return
            self.world.engine.process(self._handler(container, child))

    def _counter_page(self, container):
        return container.heap_vma.start  # counter lives in page 0 of heap

    def read_counter(self, container):
        raw = container.processes[0].mm.read(self._counter_page(container))
        return int(raw or b"0")

    def _handler(self, container, sock):
        proc = container.processes[0]
        page = self._counter_page(container)
        buffered = b""
        while not container.dead:
            try:
                data = yield sock.recv(4096)
            except Exception:
                return
            if data == b"":
                return
            buffered += data
            while len(buffered) >= 8:
                request, buffered = buffered[:8], buffered[8:]
                if container.dead:
                    return

                def mutate():
                    value = int(proc.mm.read(page) or b"0") + 1
                    proc.mm.write(page, str(value).encode())

                try:
                    yield from container.run_slice(proc, 200, mutate=mutate)
                except Exception:
                    return
                count = int(proc.mm.read(page) or b"0")
                sock.send(b"PONG" + str(count).zfill(8).encode())


def make_client(world, ip="10.0.0.100"):
    stack = TcpStack(world.engine, world.costs, ip, name="client")
    dev = NetDevice("client-eth0", ip, "cc:cc", world.engine)
    stack.attach_device(dev)
    world.bridge.attach(dev)
    return stack


def client_loop(world, stack, results, n_requests, server_ip="10.0.1.10", gap_us=ms(8)):
    sock = stack.socket()
    yield sock.connect(server_ip, PORT)
    for i in range(n_requests):
        sock.send(f"PING{i:04d}".encode())
        start = world.now
        reply = b""
        while len(reply) < 12:
            chunk = yield sock.recv(12 - len(reply))
            assert chunk != b"", "server closed unexpectedly"
            reply += chunk
        assert reply[:4] == b"PONG"
        results.append({"i": i, "latency": world.now - start, "count": int(reply[4:])})
        yield world.engine.timeout(gap_us)


@pytest.fixture
def service_world(world):
    service = CounterService(world)
    deployment = make_deployment(world, on_failover=service.attach)
    service.attach(deployment.container)
    return world, deployment, service


def test_normal_operation_serves_requests(service_world):
    world, deployment, service = service_world
    deployment.start()
    stack = make_client(world)
    results = []
    world.engine.process(client_loop(world, stack, results, n_requests=20))
    world.run(until=sec(2))
    deployment.stop()
    assert len(results) == 20
    counts = [r["count"] for r in results]
    assert counts == sorted(counts)
    assert counts == list(range(1, 21))


def test_responses_delayed_by_output_commit(service_world):
    """Buffered output means ~one epoch of extra latency (Table VI cause 2)."""
    world, deployment, service = service_world
    deployment.start()
    stack = make_client(world)
    results = []
    world.engine.process(client_loop(world, stack, results, n_requests=10))
    world.run(until=sec(2))
    deployment.stop()
    latencies = [r["latency"] for r in results]
    # Response cannot be released before the *next* checkpoint commits, so
    # latency is on the order of the epoch length, not the ~1 ms RTT.
    assert min(latencies) > ms(5)
    assert deployment.audit_output_commit() == []


def test_failover_preserves_counter_monotonicity(service_world):
    world, deployment, service = service_world
    deployment.start()
    stack = make_client(world)
    results = []
    world.engine.process(client_loop(world, stack, results, n_requests=60))

    def fault():
        yield world.engine.timeout(ms(700))
        deployment.inject_fail_stop()

    world.engine.process(fault())
    world.run(until=sec(8))

    # The client finished every request despite the failover.
    assert len(results) == 60
    counts = [r["count"] for r in results]
    assert counts == sorted(counts), "counter went backwards across failover"
    assert len(set(counts)) == len(counts), "duplicate counter values observed"
    assert deployment.failed_over
    assert deployment.restored_container is not None
    # Committed restored state is at least the last client-visible count.
    final = service.read_counter(deployment.restored_container)
    assert final >= counts[-1]
    assert deployment.audit_output_commit() == []


def test_detection_latency_about_90ms(service_world):
    world, deployment, _service = service_world
    deployment.start()
    world.run(until=ms(500))  # reach steady state
    injected_at = world.now
    deployment.inject_fail_stop()
    world.run(until=injected_at + sec(2))
    detector = deployment.backup_agent.detector
    assert detector.fired
    detection = detector.fired_at - injected_at
    # 3 * 30 ms windows; allow scheduling slack.
    assert ms(60) <= detection <= ms(160)


def test_recovery_breakdown_recorded(service_world):
    world, deployment, _service = service_world
    deployment.start()
    world.run(until=ms(500))
    deployment.inject_fail_stop()
    world.run(until=world.now + sec(2))
    recovery = deployment.metrics.recovery
    assert recovery is not None
    assert recovery.restore_us > 0
    assert recovery.arp_us == world.costs.gratuitous_arp
    assert recovery.total_recovery_us >= recovery.restore_us + recovery.arp_us


def test_no_rst_reaches_client_during_recovery(service_world):
    world, deployment, service = service_world
    deployment.start()
    stack = make_client(world)
    results = []
    world.engine.process(client_loop(world, stack, results, n_requests=40))

    def fault():
        yield world.engine.timeout(ms(600))
        deployment.inject_fail_stop()

    world.engine.process(fault())
    world.run(until=sec(8))
    assert len(results) == 40
    # No connection on the client stack was ever reset.
    assert all(s.state.value != "reset" for s in stack.connections.values())


def test_failover_disk_state_matches_committed(world):
    """Backup disk after failover == primary disk at the committed epoch."""
    deployment = make_deployment(world)
    container = deployment.container
    proc = container.processes[0]
    fs = container.mounted_filesystems()[0]
    fs.create("/data/journal")
    written = []

    def workload():
        seq = 0
        while not container.dead:
            def mutate(s=seq):
                fs.write("/data/journal", s * 16, f"rec{s:05d}".ljust(16).encode())
                written.append(s)
            try:
                yield from container.run_slice(proc, 400, mutate=mutate)
            except Exception:
                return
            # Periodically force writeback so DRBD traffic flows.
            if seq % 5 == 4:
                fs.writeback()
            seq += 1

    world.engine.process(workload())
    deployment.start()

    def fault():
        yield world.engine.timeout(ms(400))
        deployment.inject_fail_stop()

    world.engine.process(fault())
    world.run(until=sec(3))
    assert deployment.failed_over
    restored = deployment.restored_container
    backup_fs = restored.mounted_filesystems()[0]
    content = backup_fs.file_content("/data/journal")
    # Every complete record in the restored file is exactly what was written.
    n_records = len(content) // 16
    assert n_records >= 1
    for s in range(n_records):
        record = content[s * 16 : (s + 1) * 16]
        if record.strip():
            assert record == f"rec{s:05d}".ljust(16).encode()


def test_uncommitted_disk_writes_discarded(world):
    deployment = make_deployment(world)
    deployment.start()
    world.run(until=ms(200))
    # Queue disk writes that will never be barriered/committed.
    backup_drbd = deployment.backup_drbd[0]
    backup_drbd.on_disk_write(999, 5, b"ghost")
    deployment.inject_fail_stop()
    world.run(until=world.now + sec(1))
    assert deployment.failed_over
    device = deployment.restored_container.mounted_filesystems()[0].device
    assert device.read_block(5) != b"ghost"
