"""Output release is epoch-addressed, cumulative and idempotent.

The pre-fix release popped the *oldest* barrier per ack, so a duplicated
ack drained a later epoch's output early and a dropped ack left
acknowledged output stuck forever.  These tests drive the NetworkBuffer
directly through ack patterns (duplicate, reorder, drop) and assert the
fixed semantics — then flip ``unsafe_release_oldest_barrier`` and assert
the audit catches both legacy symptoms.
"""

from repro.replication import NiliconConfig
from repro.replication.netbuffer import NetworkBuffer
from tests.replication.conftest import make_deployment

from repro.sim.units import ms


def buffer_of(deployment) -> NetworkBuffer:
    return deployment.netbuffer


def test_cumulative_release_drains_in_epoch_order(deployment):
    nb = buffer_of(deployment)
    for epoch in range(3):
        nb.insert_epoch_barrier(epoch)
    nb.acked_epoch = 1
    nb.release_epoch(1)
    assert [r.epoch for r in nb.releases] == [0, 1]
    nb.acked_epoch = 2
    nb.release_epoch(2)
    assert [r.epoch for r in nb.releases] == [0, 1, 2]
    assert nb.release_lag() == 0
    assert nb.audit_output_commit() == []


def test_duplicate_ack_releases_nothing_twice(deployment):
    nb = buffer_of(deployment)
    nb.insert_epoch_barrier(0)
    nb.insert_epoch_barrier(1)
    nb.acked_epoch = 0
    nb.release_epoch(0)
    # The duplicated/reordered ack re-asserts an already-released epoch.
    nb.release_epoch(0)
    nb.release_epoch(0)
    assert [r.epoch for r in nb.releases] == [0]
    assert nb.audit_output_commit() == []


def test_stale_ack_after_newer_one_is_inert(deployment):
    nb = buffer_of(deployment)
    for epoch in range(2):
        nb.insert_epoch_barrier(epoch)
    nb.acked_epoch = 1
    nb.release_epoch(1)
    # Epoch 0's ack arrives late (reordered); acked_epoch stays at the max.
    nb.release_epoch(0)
    assert [r.epoch for r in nb.releases] == [0, 1]


def test_dropped_ack_healed_by_next_release(deployment):
    nb = buffer_of(deployment)
    for epoch in range(3):
        nb.insert_epoch_barrier(epoch)
    # Acks for epochs 0 and 1 are lost; epoch 2's ack arrives.
    nb.acked_epoch = 2
    nb.release_epoch(2)
    assert [r.epoch for r in nb.releases] == [0, 1, 2]
    assert nb.release_lag() == 0


def test_legacy_pop_oldest_duplicate_ack_drains_wrong_epoch(world):
    config = NiliconConfig.nilicon().with_(unsafe_release_oldest_barrier=True)
    nb = buffer_of(make_deployment(world, config=config))
    nb.insert_epoch_barrier(0)
    nb.insert_epoch_barrier(1)
    nb.acked_epoch = 0
    nb.release_epoch(0)
    nb.release_epoch(0)  # duplicated ack: pops epoch 1's barrier early
    assert [r.epoch for r in nb.releases] == [0, 1]
    violations = nb.audit_output_commit()
    assert violations and "epoch 1" in violations[0]


def test_legacy_pop_oldest_dropped_ack_strands_acked_output(world):
    config = NiliconConfig.nilicon().with_(unsafe_release_oldest_barrier=True)
    nb = buffer_of(make_deployment(world, config=config))
    nb.insert_epoch_barrier(0)
    nb.insert_epoch_barrier(1)
    # Epoch 0's ack was dropped; only epoch 1's arrives — one pop drains
    # barrier 0 and leaves acknowledged barrier 1 queued forever.
    nb.acked_epoch = 1
    nb.release_epoch(1)
    assert [r.epoch for r in nb.releases] == [0]
    assert nb.release_lag() == 1


def test_live_run_releases_every_acked_epoch_exactly_once(world, deployment):
    deployment.start()
    world.run(until=ms(400))
    deployment.stop()
    nb = buffer_of(deployment)
    epochs = [r.epoch for r in nb.releases]
    assert epochs == sorted(set(epochs)), "double or out-of-order release"
    assert epochs and epochs == list(range(epochs[0], epochs[-1] + 1))
    assert nb.audit_output_commit() == []
    assert nb.release_lag() == 0
