"""Regression proof for the two historical output-commit races.

Each test re-enables one of the ``unsafe_*`` config knobs that preserve a
pre-fix behavior and asserts the happens-before detector flags the exact
broken site.  With both knobs off, the same probe must stay silent — so
these tests pin both directions of the detector's discrimination.
"""

from repro.analysis.fuzz import run_race_probe

PROBE = dict(workloads=("net",), seeds=(1,), run_ms=900)


def _messages(report):
    return " || ".join(f["message"] for f in report["findings"])


def test_clean_configuration_reports_no_races():
    report = run_race_probe(**PROBE)
    assert report["ok"] is True
    assert report["findings"] == []
    assert report["audit_violations"] == []
    # The probe actually exercised the instrumented surfaces.
    assert report["accesses_recorded"] > 100


def test_ack_before_commit_race_is_detected():
    """Pre-fix bug #1: the backup acked an epoch before committing it, so
    a duplicated ack could release output whose epoch was never durable."""
    report = run_race_probe(knob="ack-before-commit", **PROBE)
    assert report["ok"] is False
    assert report["findings"], "detector missed the ack-before-commit race"
    msgs = _messages(report)
    # The finding names the release site and the commit it never saw.
    assert "netbuffer.release_barrier" in msgs
    assert "backup.commit_publish" in msgs
    assert any(f["field"] == "epoch_commit" for f in report["findings"])


def test_release_oldest_barrier_race_is_detected():
    """Pre-fix bug #2: the netbuffer released its *oldest* barrier on any
    ack instead of the acked epoch's barrier, running output ahead of the
    commit frontier."""
    report = run_race_probe(knob="release-oldest", **PROBE)
    assert report["ok"] is False
    checks = {f["check"] for f in report["findings"]}
    # Output released for an epoch whose commit never happened (or hadn't
    # happened yet when the packet left).
    assert checks & {
        "missing-write-for-ordered-read",
        "unordered-ordered-read",
        "write-after-unordered-read",
    }
    assert "netbuffer.release_barrier" in _messages(report)
    # The independent runtime auditor corroborates from the outside.
    assert report["audit_violations"]
    assert any("output released" in v for v in report["audit_violations"])


def test_unknown_knob_rejected():
    import pytest

    with pytest.raises(KeyError):
        run_race_probe(knob="no-such-knob", **PROBE)
