"""Chained failovers: re-protection after recovery ("nine lives").

After the first failover the restored container runs unprotected on the
old backup host.  ``reprotect()`` wires a fresh deployment around it with a
replacement backup host — and the service must then survive a *second*
fail-stop with the same guarantees.
"""

import pytest

from repro.sim import ms, sec

from .conftest import make_deployment
from .test_failover import CounterService, client_loop, make_client


def test_reprotect_requires_failover(world):
    deployment = make_deployment(world)
    deployment.start()
    world.run(until=ms(300))
    with pytest.raises(RuntimeError, match="requires a completed failover"):
        deployment.reprotect(world.add_host("spare"))


def test_service_survives_two_failures(world):
    service = CounterService(world)
    deployment = make_deployment(world, on_failover=service.attach)
    service.attach(deployment.container)
    deployment.start()

    stack = make_client(world)
    results = []
    world.engine.process(
        client_loop(world, stack, results, n_requests=90, gap_us=ms(10))
    )

    chain = {"current": deployment, "generation": 1}
    host_c = world.add_host("backup2")

    def orchestrate():
        # First failure.
        yield world.engine.timeout(ms(600))
        chain["current"].inject_fail_stop()
        while not chain["current"].failed_over:
            yield world.engine.timeout(ms(20))
        while chain["current"].restored_container is None:
            yield world.engine.timeout(ms(20))
        # Re-protect onto the spare host.
        redeployment = chain["current"].reprotect(host_c)
        redeployment.start()
        chain["current"] = redeployment
        chain["generation"] = 2
        # Let it reach steady state (initial full checkpoint), then kill
        # the second primary too.
        yield world.engine.timeout(ms(800))
        redeployment.inject_fail_stop()

    world.engine.process(orchestrate())
    world.run(until=sec(20))

    second = chain["current"]
    assert chain["generation"] == 2
    assert second.failed_over, "second failure was not detected"
    assert second.restored_container is not None
    assert second.restored_container.kernel is host_c.kernel

    # The client saw one uninterrupted, monotonic counter across BOTH
    # failovers, with every request answered.
    assert len(results) == 90
    counts = [r["count"] for r in results]
    assert counts == sorted(counts)
    assert len(set(counts)) == len(counts)
    assert all(s.state.value != "reset" for s in stack.connections.values())
    assert second.audit_output_commit() == []


def test_reprotect_resumes_incremental_replication(world):
    service = CounterService(world)
    deployment = make_deployment(world, on_failover=service.attach)
    service.attach(deployment.container)
    # Seed state so the restored container has pages to re-replicate.
    proc0 = deployment.container.processes[0]
    heap = deployment.container.heap_vma
    for i in range(20):
        proc0.mm.write(heap.start + 4 + i, f"seed{i}".encode())
    deployment.start()
    host_c = world.add_host("backup2")
    box = {}

    def orchestrate():
        yield world.engine.timeout(ms(500))
        deployment.inject_fail_stop()
        while deployment.restored_container is None:
            yield world.engine.timeout(ms(20))
        redeployment = deployment.reprotect(host_c)
        redeployment.start()
        box["re"] = redeployment

    world.engine.process(orchestrate())
    world.run(until=sec(5))

    redeployment = box["re"]
    # The new pair reached steady state: epochs advancing, commits landing.
    assert redeployment.primary_agent.epoch > 5
    assert redeployment.backup_agent.committed_epoch >= redeployment.primary_agent.epoch - 2
    # The restored counter state got replicated to the new backup's store.
    proc = redeployment.container.processes[0]
    pages = redeployment.backup_agent.page_store.pages_of(proc.pid)
    assert pages, "no pages committed on the replacement backup"
