"""Tests for the framing protocol, including hypothesis round-trips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads import protocol


def test_frame_roundtrip():
    body = b"hello world"
    framed = protocol.frame(body)
    got, rest = protocol.peel_frame(framed)
    assert got == body and rest == b""


def test_peel_incomplete_header():
    assert protocol.peel_frame(b"0000") == (None, b"0000")


def test_peel_incomplete_body():
    framed = protocol.frame(b"abcdef")
    assert protocol.peel_frame(framed[:-2]) == (None, framed[:-2])


def test_peel_two_frames():
    data = protocol.frame(b"one") + protocol.frame(b"two")
    first, rest = protocol.peel_frame(data)
    second, rest = protocol.peel_frame(rest)
    assert (first, second, rest) == (b"one", b"two", b"")


def test_frame_ready_counts_missing_bytes():
    framed = protocol.frame(b"abcdef")
    assert protocol.frame_ready(framed) == 0
    assert protocol.frame_ready(framed[:-4]) == 4
    assert protocol.frame_ready(b"") == protocol.HEADER_LEN
    assert protocol.frame_ready(framed[:3]) == protocol.HEADER_LEN - 3


def test_encode_decode_structures():
    obj = ("BATCH", [("set", 3, "value"), ("get", 7, None)])
    assert protocol.decode_body(protocol.encode_body(obj)) == obj


@given(st.binary(max_size=2000))
def test_property_frame_roundtrip(body):
    got, rest = protocol.peel_frame(protocol.frame(body))
    assert got == body and rest == b""


@given(st.lists(st.binary(max_size=200), max_size=10))
def test_property_concatenated_frames_parse_in_order(bodies):
    stream = b"".join(protocol.frame(b) for b in bodies)
    out = []
    while True:
        body, stream = protocol.peel_frame(stream)
        if body is None:
            break
        out.append(body)
    assert out == bodies and stream == b""


@given(
    st.recursive(
        st.one_of(st.integers(), st.text(max_size=20), st.none(), st.binary(max_size=20)),
        lambda children: st.lists(children, max_size=4).map(tuple),
        max_leaves=12,
    )
)
def test_property_encode_decode_roundtrip(obj):
    assert protocol.decode_body(protocol.encode_body(obj)) == obj
