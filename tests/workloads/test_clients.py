"""Edge-case tests for the client generators."""

from repro.baselines.stock import StockDeployment
from repro.net import World
from repro.sim import ms, sec
from repro.workloads import protocol
from repro.workloads.base import ClientStats
from repro.workloads.clients import ClosedLoopClients, PipelinedClient, make_client_stack
from repro.workloads.microbench import EchoServer


def deploy_echo(world, **kw):
    workload = EchoServer(name="echo", min_len=16, max_len=16, **kw)
    deployment = StockDeployment(world, workload.spec())
    workload.attach(world, deployment.container)
    return workload, deployment


def echo_request(i):
    body = f"payload-{i:04d}!!".encode()
    return body, (lambda response, b=body: None if response == b else "mismatch"), 1


def test_pipelined_client_counts_and_latencies():
    world = World(seed=3)
    deploy_echo(world)
    stats = ClientStats()
    client = PipelinedClient(world, "10.0.1.10", 7000, echo_request, stats,
                             window=4, n_requests=12)
    client.start()
    world.run(until=sec(2))
    assert client.done
    assert stats.completed == 12
    assert len(stats.latencies_us) == 12
    assert all(lat > 0 for lat in stats.latencies_us)
    assert stats.bytes_received == 12 * len(echo_request(0)[0])


def test_pipelined_client_connect_refused_records_error():
    world = World(seed=3)  # nobody listening
    stats = ClientStats()
    client = PipelinedClient(world, "10.0.1.99", 7000, echo_request, stats,
                             n_requests=3)
    client.start()
    world.run(until=sec(8))
    assert client.done
    assert stats.errors == 1
    assert stats.completed == 0


def test_pipelined_client_validation_failure_recorded():
    world = World(seed=3)
    deploy_echo(world)
    stats = ClientStats()

    def bad_request(i):
        body = b"0123456789abcdef"
        return body, (lambda response: "always wrong"), 1

    client = PipelinedClient(world, "10.0.1.10", 7000, bad_request, stats,
                             n_requests=2)
    client.start()
    world.run(until=sec(2))
    assert len(stats.validation_failures) == 2
    assert not stats.ok
    # Unvalidated responses are not latency samples: a corrupt fast reply
    # must not improve the reported percentiles.
    assert stats.completed == 2
    assert stats.latencies_us == []


def serve_raw(world, port=7000, name="raw-srv"):
    """A bare in-test server socket outside any container."""
    stack = make_client_stack(world, name)
    srv = stack.socket()
    srv.listen(port)
    return stack, srv


def test_pipelined_half_close_counts_every_abandoned_request():
    world = World(seed=3)
    stack, srv = serve_raw(world)

    def server():
        conn = yield srv.accept()
        buf = b""
        body = None
        while body is None:
            buf += yield conn.recv(1 << 16)
            body, buf = protocol.peel_frame(buf)
        # Answer exactly one request, then half-close with the remaining
        # three still in flight.
        conn.send(protocol.frame(body))
        yield world.engine.timeout(ms(50))
        conn.close()

    world.engine.process(server(), name="half-close-server")
    stats = ClientStats()
    client = PipelinedClient(world, stack.ip, 7000, echo_request, stats,
                             window=4, n_requests=4)
    client.start()
    world.run(until=sec(2))
    assert client.done
    assert stats.completed == 1
    # Historically the empty chunk recorded a single error; all three
    # abandoned in-flight requests must count.
    assert stats.errors == 3


def test_closed_loop_recv_deadline_unwedges_stalled_upstream():
    world = World(seed=3)
    stack, srv = serve_raw(world, name="blackhole-srv")

    def server():
        conns = []
        while True:
            conn = yield srv.accept()
            conns.append(conn)  # accept, then never reply

    world.engine.process(server(), name="blackhole-server")
    stats = ClientStats()
    clients = ClosedLoopClients(world, stack.ip, 7000, echo_request, stats,
                                n_clients=2, run_until_us=ms(100))
    clients.start()
    # Historically these clients wedged in recv forever; the implicit
    # run_until + grace deadline must retire them.
    world.run(until=ms(100) + sec(6))
    assert clients.done
    assert stats.completed == 0
    assert stats.errors == 2


def test_closed_loop_explicit_recv_timeout():
    world = World(seed=3)
    stack, srv = serve_raw(world, name="blackhole-srv")

    def server():
        conns = []
        while True:
            conn = yield srv.accept()
            conns.append(conn)

    world.engine.process(server(), name="blackhole-server")
    stats = ClientStats()
    clients = ClosedLoopClients(world, stack.ip, 7000, echo_request, stats,
                                n_clients=3, n_requests_per_client=1,
                                recv_timeout_us=ms(200))
    clients.start()
    world.run(until=sec(2))
    assert clients.done
    assert stats.errors == 3


def test_closed_loop_finished_on_connect_failure():
    world = World(seed=3)  # nobody listening
    stats = ClientStats()
    clients = ClosedLoopClients(world, "10.0.1.99", 7000, echo_request, stats,
                                n_clients=2, n_requests_per_client=1)
    clients.start()
    world.run(until=sec(8))
    assert clients.done  # _finished incremented on the error path
    assert stats.errors == 2


def test_closed_loop_clients_run_until_deadline():
    world = World(seed=3)
    deploy_echo(world)
    stats = ClientStats()
    clients = ClosedLoopClients(world, "10.0.1.10", 7000, echo_request, stats,
                                n_clients=3, run_until_us=ms(200))
    clients.start()
    world.run(until=ms(400))
    assert clients.done
    assert stats.completed >= 3
    assert stats.ok


def test_closed_loop_think_time_limits_rate():
    world = World(seed=3)

    def run_with(think_us):
        w = World(seed=3)
        deploy_echo(w)
        stats = ClientStats()
        clients = ClosedLoopClients(w, "10.0.1.10", 7000, echo_request, stats,
                                    n_clients=1, think_us=think_us,
                                    run_until_us=ms(500))
        clients.start()
        w.run(until=ms(600))
        return stats.completed

    assert run_with(0) > run_with(ms(50)) * 2


def test_client_stacks_get_distinct_ips():
    world = World(seed=3)
    a = make_client_stack(world)
    b = make_client_stack(world)
    assert a.ip != b.ip
    assert world.bridge.arp_lookup(a.ip) != world.bridge.arp_lookup(b.ip)


def test_throughput_math():
    stats = ClientStats()
    stats.operations = 500
    assert stats.throughput(1_000_000) == 500.0
    assert stats.throughput(500_000) == 1000.0
