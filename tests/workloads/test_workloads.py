"""Tests for the workload catalog and the restart-safe server machinery."""

import pytest

from repro.baselines.stock import StockDeployment
from repro.net import World
from repro.sim import ms, sec
from repro.workloads.base import ClientStats, ComputeWorkload, ServerWorkload
from repro.workloads.catalog import PAPER_BENCHMARKS, WORKLOADS, make_workload
from repro.workloads.kvstore import KvServer
from repro.workloads.microbench import DiskRwWorkload
from repro.workloads.parsec import ParsecWorkload
from repro.workloads.webserver import WebServer, web_response


def deploy(world, workload):
    deployment = StockDeployment(world, workload.spec())
    workload.warmup(world, deployment.container)
    workload.attach(world, deployment.container)
    deployment.start()
    return deployment


class TestCatalog:
    def test_all_workloads_instantiate(self):
        for name in WORKLOADS:
            workload = make_workload(name)
            spec = workload.spec()
            assert spec.processes, name

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError, match="unknown workload"):
            make_workload("nope")

    def test_paper_benchmark_shapes(self):
        node = make_workload("node")
        assert node.n_clients == 128  # saturation requires 128 clients
        assert len(node.spec().processes) == 1
        lighttpd = make_workload("lighttpd")
        assert len(lighttpd.spec().processes) == 4
        djcms = make_workload("djcms")
        assert len(djcms.spec().processes) == 3
        redis = make_workload("redis")
        assert not redis.persistence
        ssdb = make_workload("ssdb")
        assert ssdb.persistence and ssdb.spec().mounts

    def test_workload_kwargs_forwarded(self):
        w = make_workload("streamcluster", n_threads=8)
        assert w.n_workers == 8
        assert w.spec().processes[0].n_threads == 8


class TestKvServer:
    def test_serves_batches_and_validates(self):
        world = World(seed=5)
        workload = make_workload("redis")
        deploy(world, workload)
        stats = ClientStats()
        workload.start_clients(world, stats, batch_size=20, n_requests=10)
        world.run(until=sec(1))
        assert stats.completed == 10
        assert stats.operations == 200
        assert stats.ok, stats.validation_failures[:2]

    def test_ssdb_persists_through_page_cache(self):
        world = World(seed=5)
        workload = make_workload("ssdb")
        deployment = deploy(world, workload)
        stats = ClientStats()
        workload.start_clients(world, stats, batch_size=20, n_requests=5)
        world.run(until=sec(1))
        assert stats.ok
        fs = deployment.container.mounted_filesystems()[0]
        assert fs.exists(workload.store_path)
        # The background flusher pushed data to the block device.
        assert fs.device.writes > 0

    def test_warmup_populates_all_keys(self):
        world = World(seed=5)
        workload = KvServer(name="kv", n_keys=50, value_len=64)
        deployment = StockDeployment(world, workload.spec())
        workload.warmup(world, deployment.container)
        process = deployment.container.processes[0]
        for key in range(50):
            raw = process.mm.read(workload.key_page(deployment.container, key))
            assert raw.startswith(f"k{key:06d}=init".encode())


class TestWebServer:
    def test_golden_copy_responses(self):
        world = World(seed=6)
        workload = WebServer(name="web", n_clients=4, cpu_per_request_us=200,
                             dirty_pages_per_request=5, response_len=1024,
                             heap_pages=2000, resident_pages=1000)
        deploy(world, workload)
        stats = ClientStats()
        workload.start_clients(world, stats, n_requests_per_client=5)
        world.run(until=sec(1))
        assert stats.completed == 20
        assert stats.ok, stats.validation_failures[:2]

    def test_web_response_deterministic(self):
        a = web_response("x", 3, 500)
        b = web_response("x", 3, 500)
        assert a == b and len(a) == 500
        assert web_response("x", 4, 500) != a

    def test_requests_dirty_pages(self):
        world = World(seed=6)
        workload = WebServer(name="web", n_clients=2, cpu_per_request_us=100,
                             dirty_pages_per_request=7, response_len=256,
                             heap_pages=2000, resident_pages=500)
        deployment = deploy(world, workload)
        process = deployment.container.processes[0]
        process.mm.start_tracking("soft_dirty")
        stats = ClientStats()
        workload.start_clients(world, stats, n_requests_per_client=3)
        world.run(until=sec(1))
        assert len(process.mm.dirty_pages()) >= 7


class TestParsec:
    def test_completes_and_tracks_progress(self):
        world = World(seed=7)
        workload = ParsecWorkload(name="mini", n_threads=2, resident_pages=100,
                                  dirty_pages_per_epoch=50, unit_cpu_us=100,
                                  total_units=200)
        deployment = deploy(world, workload)
        world.run(until=sec(1))
        assert workload.is_complete(deployment.container)
        assert workload.total_progress(deployment.container) == 200

    def test_parallelism_speeds_completion(self):
        def completion_time(threads):
            world = World(seed=7)
            workload = ParsecWorkload(name="mini", n_threads=threads,
                                      resident_pages=64, dirty_pages_per_epoch=10,
                                      unit_cpu_us=100, total_units=400)
            deployment = deploy(world, workload)
            while not workload.is_complete(deployment.container):
                world.run(until=world.now + ms(10))
            return world.now

        assert completion_time(4) < completion_time(1) / 2

    def test_result_signature_reflects_writes(self):
        world = World(seed=7)
        workload = ParsecWorkload(name="mini", n_threads=1, resident_pages=64,
                                  dirty_pages_per_epoch=640, unit_cpu_us=50,
                                  total_units=64)
        deployment = deploy(world, workload)
        world.run(until=sec(1))
        signature = workload.result_signature(deployment.container)
        assert any(v != b"in" and v != b"" for v in signature.values())


class TestDiskRw:
    def test_self_validation_passes_without_faults(self):
        world = World(seed=8)
        workload = DiskRwWorkload(n_regions=8)
        deployment = deploy(world, workload)
        world.run(until=ms(300))
        deployment.container.kill()
        world.run(until=world.now + ms(10))
        assert workload.operations > 100
        assert workload.errors == []


class TestSingleThreadSaturation:
    def test_single_threaded_server_uses_one_core(self):
        """Concurrent handlers on a 1-thread process serialize (Table V)."""
        world = World(seed=9)
        workload = WebServer(name="web", n_clients=8, cpu_per_request_us=500,
                             dirty_pages_per_request=1, response_len=128,
                             heap_pages=1000, resident_pages=100)
        deployment = deploy(world, workload)
        stats = ClientStats()
        workload.start_clients(world, stats, run_until_us=ms(500))
        world.run(until=ms(500))
        cpu = deployment.container.cgroup.read_cpuacct()
        # 8 concurrent clients, but <= ~1 core of CPU accumulated.
        assert cpu <= ms(500) * 1.1
        assert cpu > ms(200)  # and the core was actually busy
