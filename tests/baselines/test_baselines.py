"""Tests for the stock and MC baseline deployments."""

from repro.baselines import McDeployment, StockDeployment
from repro.container import ContainerSpec, ProcessSpec
from repro.net import World
from repro.sim import ms


def spec(with_disk=False):
    return ContainerSpec(
        name="app",
        ip="10.0.1.10",
        processes=[ProcessSpec(comm="srv", n_threads=2, heap_pages=500, n_mapped_files=5)],
        mounts=[("/data", "appfs")] if with_disk else [],
    )


class TestStock:
    def test_container_runs_without_replication(self):
        world = World(seed=1)
        deployment = StockDeployment(world, spec())
        deployment.start()
        proc = deployment.container.processes[0]

        def workload():
            yield from deployment.container.run_slice(proc, 500)

        world.engine.process(workload())
        world.run(until=ms(10))
        deployment.stop()
        assert deployment.container.cgroup.read_cpuacct() == 500
        assert not deployment.failed_over

    def test_local_filesystem_created(self):
        world = World(seed=1)
        deployment = StockDeployment(world, spec(with_disk=True))
        assert deployment.container.mounted_filesystems()


class TestMc:
    def test_epochs_record_metrics(self):
        world = World(seed=2)
        deployment = McDeployment(world, spec())
        deployment.start()
        world.run(until=ms(200))
        deployment.stop()
        assert deployment.metrics.n_epochs >= 4
        assert all(e.stop_us > 0 for e in deployment.metrics.epochs)

    def test_vm_level_dirty_tracking_is_wrprotect(self):
        world = World(seed=2)
        deployment = McDeployment(world, spec())
        proc = deployment.container.processes[0]
        assert proc.mm.tracking_mode == "wrprotect"

    def test_guest_kernel_pages_added_to_dirty(self):
        world = World(seed=2)
        deployment = McDeployment(world, spec(), guest_kernel_dirty_per_epoch=100)
        container = deployment.container
        proc = container.processes[0]
        deployment.start()

        def workload():
            heap = container.heap_vma
            step = 0
            while world.now < ms(300) and not container.dead:
                def mutate(s=step):
                    proc.mm.write(heap.start + s % 50, b"x")
                try:
                    yield from container.run_slice(proc, 400, mutate=mutate)
                except Exception:
                    return
                step += 1

        world.engine.process(workload())
        world.run(until=ms(300))
        deployment.stop()
        steady = deployment.metrics.steady_epochs()
        # App dirties ~50 distinct pages; the rest is guest-kernel pages.
        assert all(e.dirty_pages > 50 for e in steady)

    def test_cpu_tax_slows_slices(self):
        def run_with(tax):
            world = World(seed=2)
            deployment = McDeployment(world, spec(), cpu_tax=tax)
            proc = deployment.container.processes[0]
            done = []

            def workload():
                for _ in range(10):
                    yield from deployment.container.run_slice(proc, 1000)
                done.append(world.now)

            world.engine.process(workload())
            world.run(until=ms(100))
            return done[0]

        assert run_with(0.5) > run_with(0.0) * 1.3

    def test_output_commit_machinery_attached(self):
        world = World(seed=2)
        deployment = McDeployment(world, spec())
        deployment.start()
        world.run(until=ms(200))
        deployment.stop()
        # The egress plug is engaged and epochs produce barrier/ack flow.
        assert deployment.container.veth.egress_plug.plugged
        assert deployment.netbuffer.acked_epoch >= 0
        assert deployment.netbuffer.audit_output_commit() == []

    def test_backup_acks_cost_backup_cpu(self):
        world = World(seed=2)
        deployment = McDeployment(world, spec())
        deployment.start()
        world.run(until=ms(300))
        deployment.stop()
        assert deployment.metrics.backup_cpu_us > 0
