"""Tests for the COLO-style active-replication baseline."""

import pytest

from repro.baselines.colo import ColoDeployment
from repro.net import World
from repro.sim import ms, sec
from repro.workloads.base import ClientStats
from repro.workloads.microbench import EchoServer


@pytest.fixture
def world():
    return World(seed=55)


def make_colo(world, **kw):
    workload = EchoServer(name="echo", min_len=32, max_len=32, n_clients=2)
    deployment = ColoDeployment(
        world,
        workload.spec(),
        attach_workload=lambda c: workload.attach(world, c),
        **kw,
    )
    workload.attach(world, deployment.container)
    deployment.start()
    return workload, deployment


def test_clients_get_valid_responses(world):
    workload, deployment = make_colo(world)
    stats = ClientStats()
    workload.start_clients(world, stats, n_requests_per_client=10)
    world.run(until=sec(3))
    deployment.stop()
    assert stats.completed == 20
    assert stats.ok, stats.validation_failures[:2]


def test_outputs_released_only_after_comparison(world):
    workload, deployment = make_colo(world)
    stats = ClientStats()
    workload.start_clients(world, stats, n_requests_per_client=5)
    world.run(until=sec(3))
    deployment.stop()
    # Every data response was matched against the replica's copy.
    assert deployment.outputs_compared >= 10
    assert deployment.syncs == 0  # deterministic workload: no divergence


def test_response_latency_below_remus_style_buffering(world):
    """COLO's selling point: matched outputs release immediately — no
    ~epoch-scale commit delay."""
    workload, deployment = make_colo(world)
    stats = ClientStats()
    workload.start_clients(world, stats, n_requests_per_client=5)
    world.run(until=sec(3))
    deployment.stop()
    median = sorted(stats.latencies_us)[len(stats.latencies_us) // 2]
    assert median < ms(10)  # vs ~35-40 ms under NiLiCon (Table VI)


def test_backup_burns_a_full_workload_of_cpu(world):
    """COLO's cost: duplicate execution (paper SSVIII: 'more than 100%')."""
    workload, deployment = make_colo(world)
    stats = ClientStats()
    workload.start_clients(world, stats, run_until_us=sec(1))
    world.run(until=sec(1))
    deployment.stop()
    primary_cpu = deployment.container.cgroup.read_cpuacct()
    replica_cpu = deployment.replica.cgroup.read_cpuacct()
    # The replica re-executes every request: same order of CPU as primary.
    assert replica_cpu > 0.5 * primary_cpu
    # Dramatically above NiLiCon's backup (Table V: 0.07-0.40 cores while
    # active burns 1-4); here backup ~= active.
    assert deployment.backup_core_utilization() > 0.3 * (
        primary_cpu / deployment.metrics.elapsed_us
    )


def test_divergence_triggers_synchronization(world):
    """A replica that answers differently forces the COLO state sync."""
    workload, deployment = make_colo(world, sync_timeout_us=10_000)

    # Sabotage determinism: make the replica's echo differ.
    replica = deployment.replica

    original = EchoServer.handle_request

    def divergent(self, container, process, body, outcome):
        response = original(self, container, process, body, outcome)
        if container is replica:
            return b"DIVERGED" + response[8:]
        return response

    EchoServer.handle_request = divergent
    try:
        stats = ClientStats()
        workload.start_clients(world, stats, n_requests_per_client=3)
        world.run(until=sec(3))
        deployment.stop()
    finally:
        EchoServer.handle_request = original
    assert deployment.syncs >= 1
    # Clients still get the (primary's) correct answers after the sync.
    assert stats.completed == 6
    assert stats.ok
