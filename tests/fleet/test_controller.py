"""FleetController end-to-end: failover chains, repair, migration."""

from repro.fleet import FleetSpec
from repro.sim.units import ms, sec

from .conftest import assert_clean, at, build_fleet


def test_deploy_protects_every_member(world):
    pool, controller, workload = build_fleet(
        world, FleetSpec(n_containers=3, n_hosts=3, slots_per_host=2),
        n_requests=10,
    )
    world.run(until=sec(1))
    controller.stop()
    assert_clean(controller, workload)
    assert workload.total_completed() == 30
    assert all(m.failovers == 0 for m in controller.members.values())


def test_three_chained_failovers_then_reprotect(world):
    """One member loses its primary host three times in a row; each
    failover must promote the backup, find a fresh spare, and re-protect —
    with the client's acknowledged counter strictly monotonic throughout."""
    spec = FleetSpec(n_containers=1, n_hosts=5, slots_per_host=2)
    pool, controller, workload = build_fleet(
        world, spec, n_requests=25, gap_us=ms(25),
    )
    member = controller.members["svc0"]

    def kill_primary():
        controller.inject_host_failstop(pool.host(member.primary))

    at(world, ms(600), kill_primary)
    at(world, ms(1500), kill_primary)
    at(world, ms(2400), kill_primary)
    world.run(until=ms(3500))
    controller.stop()

    assert member.failovers == 3
    assert member.reprotects >= 3
    assert len(member.deployments) == 4  # initial + one per re-protection
    assert_clean(controller, workload)
    assert workload.stats["svc0"].completed == 25
    # Three dead hosts; the member now runs on the two survivors.
    assert member.primary != member.backup
    assert not pool.host(member.primary).failed
    assert not pool.host(member.backup).failed


def test_backup_host_loss_triggers_repair_with_epoch_continuity(world):
    """Losing only the *backup* re-pairs the running primary in place:
    no failover, no restore — and epoch numbering continues, it does not
    restart from zero (a reset would let stale epoch-0 barriers alias)."""
    spec = FleetSpec(n_containers=1, n_hosts=3, slots_per_host=2)
    pool, controller, workload = build_fleet(world, spec, n_requests=20)
    member = controller.members["svc0"]

    at(world, ms(700),
       lambda: controller.inject_host_failstop(pool.host(member.backup)))
    world.run(until=ms(2500))
    controller.stop()

    assert member.failovers == 0
    assert member.reprotects == 1
    assert member.deployment.initial_epoch > 0
    assert_clean(controller, workload)


def test_migration_moves_primary_and_reprotects(world):
    spec = FleetSpec(n_containers=1, n_hosts=3, slots_per_host=2)
    pool, controller, workload = build_fleet(
        world, spec, n_requests=25, gap_us=ms(25),
    )
    member = controller.members["svc0"]
    source = member.primary
    outcome = {}

    def timeline():
        yield world.engine.timeout(ms(700))
        stats = yield from controller.migrate_container(
            "svc0", pool.host("node2")
        )
        outcome["stats"] = stats

    world.engine.process(timeline(), name="migrate")
    world.run(until=ms(3500))
    controller.stop()

    assert outcome["stats"] is not None
    assert outcome["stats"].downtime_us > 0
    assert member.migrations == 1
    assert member.migration_aborts == 0
    assert member.primary == "node2" != source
    assert pool.allocation("svc0", "primary") == "node2"
    assert pool.allocation("svc0", "primary-next") is None
    assert_clean(controller, workload)
    assert workload.stats["svc0"].completed == 25


def test_degraded_path_is_deterministic_across_seeds():
    """Spare-pool exhaustion -> degraded -> capacity returns -> re-protect
    must replay identically for every seed (states, counters, requests)."""
    from repro.fleet import run_fleet_scenario

    for seed in (1, 2, 3):
        first = run_fleet_scenario("fleet.pool_exhausted_degraded", seed=seed)
        second = run_fleet_scenario("fleet.pool_exhausted_degraded", seed=seed)
        assert first.ok, (seed, first.violations)
        assert first.states == second.states
        assert first.completed == second.completed
        assert first.plan_log == second.plan_log
