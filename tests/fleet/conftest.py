"""Shared fleet test harness: build a fleet, run it, evaluate oracles."""

from typing import Any, Generator

import pytest

from repro.fleet import (
    FleetController,
    FleetSpec,
    FleetWorkload,
    HostPool,
)
from repro.net import World
from repro.replication import NiliconConfig
from repro.sim.units import ms


@pytest.fixture
def world():
    return World(seed=11)


def build_fleet(
    world: World,
    fleet_spec: FleetSpec,
    decisions=None,
    gap_us: int = ms(15),
    n_requests: int = 20,
    start_clients: bool = True,
):
    """Deploy + attach workload + start controller; returns the triple."""
    pool = HostPool(world, fleet_spec.n_hosts,
                    slots_per_host=fleet_spec.slots_per_host)
    controller = FleetController(
        world, pool, fleet_spec=fleet_spec,
        config=NiliconConfig.nilicon(), seed=11,
    )
    controller.deploy(decisions=decisions)
    workload = FleetWorkload(world, controller, gap_us=gap_us)
    workload.attach_services()
    if start_clients:
        workload.start_clients(n_requests=n_requests)
    controller.start()
    return pool, controller, workload


def at(world: World, at_us: int, fn) -> None:
    """Run *fn* at simulated time *at_us*."""

    def timeline() -> Generator[Any, Any, None]:
        yield world.engine.timeout(at_us)
        fn()

    world.engine.process(timeline(), name=f"at-{at_us}")


def assert_clean(controller, workload) -> None:
    """The base fleet oracles: no lost acks, no split brain, all protected."""
    assert workload.violations() == []
    assert controller.audit() == []
    for name, member in sorted(controller.members.items()):
        assert member.state == "protected", (
            f"{name} ended {member.state}, expected protected"
        )
