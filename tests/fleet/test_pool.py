"""HostPool slot bookkeeping, pair-link pooling and growth."""

import pytest

from repro.fleet import HostPool, PoolExhausted
from repro.net import World


@pytest.fixture
def pool(world):
    return HostPool(world, 3, slots_per_host=2)


def test_pool_builds_named_hosts(pool):
    assert sorted(pool.hosts) == ["node0", "node1", "node2"]
    assert all(not h.failed for h in pool.alive_hosts())
    assert pool.total_free_slots() == 6


def test_allocate_and_release_track_load(pool):
    pool.allocate("svc0", "primary", pool.host("node0"))
    pool.allocate("svc0", "backup", pool.host("node1"))
    assert pool.load("node0") == 1
    assert pool.free_slots("node1") == 1
    assert pool.allocation("svc0", "primary") == "node0"
    pool.release("svc0", "primary")
    assert pool.load("node0") == 0
    # Releasing an unheld slot is a no-op (idempotent re-drives).
    pool.release("svc0", "primary")


def test_allocate_is_idempotent_for_same_host_only(pool):
    pool.allocate("svc0", "primary", pool.host("node0"))
    pool.allocate("svc0", "primary", pool.host("node0"))  # re-drive: fine
    assert pool.load("node0") == 1
    with pytest.raises(ValueError):
        pool.allocate("svc0", "primary", pool.host("node1"))


def test_allocate_rejects_full_and_failed_hosts(pool):
    pool.allocate("svc0", "primary", pool.host("node0"))
    pool.allocate("svc1", "primary", pool.host("node0"))
    with pytest.raises(PoolExhausted):
        pool.allocate("svc2", "primary", pool.host("node0"))
    pool.host("node1").fail_stop()
    with pytest.raises(PoolExhausted):
        pool.allocate("svc2", "primary", pool.host("node1"))
    assert [h.name for h in pool.alive_hosts()] == ["node0", "node2"]


def test_promote_backup_relabels_without_capacity_change(pool):
    pool.allocate("svc0", "primary", pool.host("node0"))
    pool.allocate("svc0", "backup", pool.host("node1"))
    before = pool.load("node1")
    pool.promote_backup("svc0")
    assert pool.allocation("svc0", "primary") == "node1"
    assert pool.allocation("svc0", "backup") is None
    assert pool.load("node1") == before


def test_commit_role_relabels_migration_slot(pool):
    pool.allocate("svc0", "primary-next", pool.host("node2"))
    pool.commit_role("svc0", "primary-next", "primary")
    assert pool.allocation("svc0", "primary") == "node2"
    assert pool.allocation("svc0", "primary-next") is None


def test_pair_count_counts_directional_pairs(pool):
    pool.allocate("svc0", "primary", pool.host("node0"))
    pool.allocate("svc0", "backup", pool.host("node1"))
    pool.allocate("svc1", "primary", pool.host("node0"))
    pool.allocate("svc1", "backup", pool.host("node1"))
    assert pool.pair_count("node0", "node1") == 2
    assert pool.pair_count("node1", "node0") == 0


def all_pairs(pool):
    """Every directional host pair, indexed vs the reference scan."""
    names = sorted(pool.hosts)
    return {
        (a, b): (pool.pair_count(a, b), pool._pair_count_scan(a, b))
        for a in names for b in names
    }


def test_pair_index_matches_scan_through_every_mutation(pool):
    """The O(1) pair index must agree with the O(allocations) reference
    scan after every kind of slot mutation (the lockstep contract that
    retired the PERF006 full-scan finding)."""
    def check():
        for pair, (indexed, scanned) in all_pairs(pool).items():
            assert indexed == scanned, pair

    pool.allocate("svc0", "primary", pool.host("node0"))
    check()  # half-allocated member forms no pair yet
    pool.allocate("svc0", "backup", pool.host("node1"))
    pool.allocate("svc1", "primary", pool.host("node1"))
    pool.allocate("svc1", "backup", pool.host("node2"))
    check()
    # Failover path: backup slot relabels to primary (pair dissolves).
    pool.promote_backup("svc0")
    check()
    pool.allocate("svc0", "backup", pool.host("node2"))
    check()  # re-protection forms the new node1->node2 pair
    # Migration path: staging role holds no pair until committed.
    pool.release("svc1", "primary")
    pool.allocate("svc1", "primary-next", pool.host("node0"))
    check()
    pool.commit_role("svc1", "primary-next", "primary")
    check()
    pool.release("svc0", "primary")
    pool.release("svc0", "backup")
    check()
    assert pool.pair_count("node1", "node2") == 0


def test_channel_between_is_cached_and_symmetric(pool):
    a, b = pool.host("node0"), pool.host("node1")
    channel = pool.channel_between(a, b)
    assert pool.channel_between(b, a) is channel
    assert pool.channel_between(a, pool.host("node2")) is not channel


def test_add_host_grows_pool_and_rejects_duplicates(pool):
    host = pool.add_host()
    assert host.name == "node3"
    assert pool.total_free_slots() == 8
    with pytest.raises(ValueError):
        pool.add_host("node0")


def test_pool_never_checkpointed():
    assert HostPool.__ckpt_ignore__ is True
