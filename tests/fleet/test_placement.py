"""Placement policy: determinism, hard constraints, anti-affinity."""

import pytest

from repro.fleet import HostPool, PlacementDecision, place, replacement_backup
from repro.fleet.placement import STRATEGIES, pick_host
from repro.fleet.pool import PoolExhausted
from repro.net import World

MEMBERS = [f"svc{i}" for i in range(8)]


def fresh_pool(world, n_hosts=4, slots=6):
    return HostPool(world, n_hosts, slots_per_host=slots)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_hard_constraints_hold(world, strategy):
    decisions = place(fresh_pool(world), list(MEMBERS), strategy, seed=3)
    assert [d.member for d in decisions] == MEMBERS
    for d in decisions:
        assert d.primary != d.backup


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_same_seed_same_placement(strategy):
    runs = []
    for _ in range(2):
        world = World(seed=5)
        runs.append(place(fresh_pool(world), list(MEMBERS), strategy, seed=9))
    assert runs[0] == runs[1]


def test_random_strategy_uses_the_seed():
    world = World(seed=5)
    a = place(fresh_pool(world), list(MEMBERS), "random", seed=1)
    world = World(seed=5)
    b = place(fresh_pool(world), list(MEMBERS), "random", seed=2)
    # Different seeds must be allowed to differ (and do, for 8 members
    # over 4 hosts; equality here would mean the seed is ignored).
    assert a != b


def test_packed_fills_hosts_in_order(world):
    pool = fresh_pool(world)
    decisions = place(pool, list(MEMBERS), "packed", seed=0)
    # First-fit: every primary lands on the lowest-indexed host with room.
    assert decisions[0] == PlacementDecision("svc0", "node0", "node1")
    assert pool.load("node0") == 6  # filled to capacity first


def test_spread_balances_load(world):
    # Spread trades perfect balance for pair anti-affinity (backups rank
    # pair_count before load), so allow a spread of 2 — but never the
    # pile-up packed produces.
    pool = fresh_pool(world)
    place(pool, list(MEMBERS), "spread", seed=0)
    loads = [pool.load(name) for name in pool.hosts]
    assert max(loads) - min(loads) <= 2


def _max_pair_usage(decisions):
    pair_sizes = {}
    for d in decisions:
        pair_sizes[(d.primary, d.backup)] = pair_sizes.get(
            (d.primary, d.backup), 0
        ) + 1
    return max(pair_sizes.values())


def test_spread_backups_avoid_repeating_pairs():
    # Soft anti-affinity: spread never stacks more than 2 of the 8
    # members on one (primary, backup) host pair, while packed (which
    # ignores pairs entirely) piles most of the fleet onto one link.
    world = World(seed=5)
    spread_max = _max_pair_usage(
        place(fresh_pool(world), list(MEMBERS), "spread", seed=0)
    )
    world = World(seed=5)
    packed_max = _max_pair_usage(
        place(fresh_pool(world), list(MEMBERS), "packed", seed=0)
    )
    assert spread_max <= 2
    assert spread_max < packed_max


def test_place_raises_when_pool_cannot_fit(world):
    pool = HostPool(world, 2, slots_per_host=1)
    with pytest.raises(PoolExhausted):
        # Two members need 4 slots; the pool has 2.
        place(pool, ["svc0", "svc1"], "spread", seed=0)
    # The failed member's half-allocation was rolled back.
    assert pool.allocation("svc1", "primary") is None


def test_pick_host_excludes_and_rejects_unknown_strategy(world):
    pool = fresh_pool(world, n_hosts=2, slots=1)
    host = pick_host(pool, "spread", 0, "svc0", "primary", exclude=("node0",))
    assert host.name == "node1"
    with pytest.raises(ValueError):
        pick_host(pool, "bogus", 0, "svc0", "primary")


def test_replacement_backup_selects_without_allocating(world):
    pool = fresh_pool(world, n_hosts=3, slots=2)
    pool.allocate("svc0", "primary", pool.host("node0"))
    choice = replacement_backup(pool, "svc0", pool.host("node0"))
    assert choice is not None and choice.name != "node0"
    # Selection only: nothing was booked.
    assert pool.allocation("svc0", "backup") is None


def test_replacement_backup_returns_none_on_exhaustion(world):
    pool = HostPool(world, 2, slots_per_host=1)
    pool.allocate("svc0", "primary", pool.host("node0"))
    pool.allocate("svc1", "primary", pool.host("node1"))
    assert replacement_backup(pool, "svc0", pool.host("node0")) is None
