"""FleetMetrics rollup: per-member summaries, aggregates, report table."""

import json

from repro.fleet import FleetMetrics, FleetSpec
from repro.sim.units import ms, sec

from .conftest import at, build_fleet


def run_small_fleet(world, with_failover=False):
    pool, controller, workload = build_fleet(
        world, FleetSpec(n_containers=2, n_hosts=3, slots_per_host=2),
        n_requests=10,
    )
    if with_failover:
        member = controller.members["svc0"]
        at(world, ms(600),
           lambda: controller.inject_host_failstop(pool.host(member.primary)))
    world.run(until=sec(2))
    controller.stop()
    return controller


def test_collect_rolls_up_every_member(world):
    metrics = FleetMetrics.collect(run_small_fleet(world))
    assert [m.name for m in metrics.members] == ["svc0", "svc1"]
    for member in metrics.members:
        assert member.state == "protected"
        assert member.generations == 1
        assert member.epochs > 0
        assert member.avg_stop_us > 0
    assert metrics.total_failovers == 0
    assert metrics.protected_members == 2
    assert metrics.hosts_failed == 0
    assert metrics.mean_stop_us() > 0
    assert metrics.mean_reprotect_latency_us() == 0.0


def test_collect_after_failover_counts_recovery(world):
    metrics = FleetMetrics.collect(run_small_fleet(world, with_failover=True))
    assert metrics.total_failovers == 1
    assert metrics.total_reprotects >= 1
    assert metrics.hosts_failed == 1
    assert metrics.mean_reprotect_latency_us() > 0
    svc0 = next(m for m in metrics.members if m.name == "svc0")
    assert svc0.generations == 2
    assert svc0.reprotect_latencies_us


def test_to_dict_is_json_serializable(world):
    metrics = FleetMetrics.collect(run_small_fleet(world))
    payload = json.loads(json.dumps(metrics.to_dict()))
    assert payload["protected_members"] == 2
    assert len(payload["members"]) == 2
    assert payload["members"][0]["name"] == "svc0"


def test_table_renders_one_row_per_member_plus_summary(world):
    table = FleetMetrics.collect(run_small_fleet(world)).table()
    lines = table.splitlines()
    header_cells = lines[0].count("|") - 1
    for row in lines[1:4]:
        assert row.count("|") - 1 == header_cells
    assert "svc0" in table and "svc1" in table
    assert "2 protected" in table
