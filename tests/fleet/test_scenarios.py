"""The fleet fault-scenario catalog: every scenario passes its oracles,
and together they cover every declared fleet fault point."""

import pytest

from repro.faultinject.points import FAULT_POINTS
from repro.fleet import FLEET_SCENARIOS, run_fleet_scenario


@pytest.mark.parametrize("name", sorted(FLEET_SCENARIOS))
def test_scenario_passes_all_oracles(name):
    result = run_fleet_scenario(name, seed=7)
    assert result.ok, result.violations
    assert result.completed > 0


def test_catalog_covers_every_fleet_fault_point():
    fleet_points = {p for p in FAULT_POINTS if p.startswith("fleet.")}
    exercised = {
        point
        for scenario in FLEET_SCENARIOS.values()
        for point in scenario.points
    }
    assert exercised == fleet_points


def test_scenario_points_are_declared():
    for scenario in FLEET_SCENARIOS.values():
        for point in scenario.points:
            assert point in FAULT_POINTS, (scenario.name, point)


def test_scenario_edges_are_declared():
    from repro.fleet.controller import MEMBER_EDGES

    declared = {f"{a}->{b}" for a, b in MEMBER_EDGES}
    for scenario in FLEET_SCENARIOS.values():
        for edge in scenario.edges:
            assert edge in declared, (scenario.name, edge)


def test_member_edges_are_well_formed():
    """deploying is the dataclass-initial state: nothing may re-enter it,
    and every edge endpoint must be a known state."""
    from repro.fleet.controller import MEMBER_EDGES, MEMBER_STATES

    for src, dst in MEMBER_EDGES:
        assert src in MEMBER_STATES and dst in MEMBER_STATES, (src, dst)
        assert dst != "deploying", "no edge may re-enter the initial state"


def test_backup_failstop_during_reprotect_restarts_reprotect():
    """Killing the freshly chosen backup host mid-reprotect must send the
    member back through repair and land it protected on the spare."""
    result = run_fleet_scenario("fleet.backup_failstop_during_reprotect",
                                seed=7)
    assert result.ok, result.violations
    assert result.states == {"svc0": "protected", "svc1": "protected"}


def test_dest_failstop_during_migration_aborts_and_reprotects():
    """Killing the migration destination right after the primary-next
    reservation must abort the cutover, roll back to the old primary and
    re-protect both the migrating member and the collateral victim."""
    result = run_fleet_scenario("fleet.dest_failstop_during_migration",
                                seed=7)
    assert result.ok, result.violations
    assert result.states == {"svc0": "protected", "svc1": "protected"}


def test_both_hosts_failstop_kills_only_that_member():
    result = run_fleet_scenario("fleet.both_hosts_failstop", seed=7)
    assert result.ok, result.violations
    assert result.states == {"svc0": "dead", "svc1": "protected"}


def test_set_state_is_idempotent_on_reentry():
    """Regression: a restarted control loop resuming a half-done reprotect
    re-sets the state it already holds; that must not surface as a
    self-edge in the coverage recorder (or re-notify state listeners)."""
    from repro.analysis.ftreplay import FtcovRecorder

    recorder = FtcovRecorder()
    result = run_fleet_scenario("fleet.controller_crash_mid_reprotect",
                                seed=7, instrument=recorder.install)
    assert result.ok, result.violations
    self_edges = [
        key for key in recorder.counters
        if key.startswith("edge:")
        and len(set(key.split(":", 1)[1].split("->"))) == 1
    ]
    assert self_edges == []


def test_double_failure_resolves_shared_backup_contention():
    """Regression pin for the one scenario with no injection point: two
    simultaneous primary fail-stops whose detectors both live on one
    shared backup host."""
    result = run_fleet_scenario("fleet.double_failure_shared_backup", seed=7)
    assert result.ok, result.violations
    assert result.states == {"svc0": "protected", "svc1": "protected"}
