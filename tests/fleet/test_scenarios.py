"""The fleet fault-scenario catalog: every scenario passes its oracles,
and together they cover every declared fleet fault point."""

import pytest

from repro.faultinject.points import FAULT_POINTS
from repro.fleet import FLEET_SCENARIOS, run_fleet_scenario


@pytest.mark.parametrize("name", sorted(FLEET_SCENARIOS))
def test_scenario_passes_all_oracles(name):
    result = run_fleet_scenario(name, seed=7)
    assert result.ok, result.violations
    assert result.completed > 0


def test_catalog_covers_every_fleet_fault_point():
    fleet_points = {p for p in FAULT_POINTS if p.startswith("fleet.")}
    exercised = {
        point
        for scenario in FLEET_SCENARIOS.values()
        for point in scenario.points
    }
    assert exercised == fleet_points


def test_scenario_points_are_declared():
    for scenario in FLEET_SCENARIOS.values():
        for point in scenario.points:
            assert point in FAULT_POINTS, (scenario.name, point)


def test_double_failure_resolves_shared_backup_contention():
    """Regression pin for the one scenario with no injection point: two
    simultaneous primary fail-stops whose detectors both live on one
    shared backup host."""
    result = run_fleet_scenario("fleet.double_failure_shared_backup", seed=7)
    assert result.ok, result.violations
    assert result.states == {"svc0": "protected", "svc1": "protected"}
