"""Unit tests for the deterministic hot-path profiler (perf Layer 3).

The profiler is a pure counter instrument: no wall clock, no entropy —
two same-seed runs must produce byte-identical counter sets, and the
engine must pay nothing when no profiler is installed.
"""

from repro.sim.engine import Engine
from repro.sim.profiler import (
    SimProfiler,
    counter_digest,
    install_profiler,
    uninstall_profiler,
)


def test_hit_accumulates_by_site():
    prof = SimProfiler()
    prof.hit("mm.pages_written")
    prof.hit("mm.pages_written", 4)
    prof.hit("digest.bytes_hashed", 4096)
    assert prof.counters == {
        "mm.pages_written": 5,
        "digest.bytes_hashed": 4096,
    }


def test_harvest_folds_object_counters():
    prof = SimProfiler()
    prof.hit("pool.slot_ops", 2)
    prof.harvest({"pool.slot_ops": 3, "pagestore.pages_stored": 7})
    assert prof.counters["pool.slot_ops"] == 5
    assert prof.counters["pagestore.pages_stored"] == 7


def test_snapshot_is_sorted_by_site():
    prof = SimProfiler()
    prof.hit("zz.last")
    prof.hit("aa.first")
    prof.hit("mm.middle")
    assert list(prof.snapshot()) == ["aa.first", "mm.middle", "zz.last"]


def test_counter_digest_is_order_independent_and_value_sensitive():
    a = {"engine.events": 10, "mm.pages_written": 3}
    b = {"mm.pages_written": 3, "engine.events": 10}
    assert counter_digest(a) == counter_digest(b)
    assert counter_digest(a) != counter_digest({**a, "engine.events": 11})
    assert counter_digest(a) != counter_digest({"engine.events": 10})
    assert len(counter_digest(a)) == 8
    int(counter_digest(a), 16)  # 8 hex chars


def test_install_and_uninstall():
    engine = Engine()
    assert engine._profiler is None
    prof = install_profiler(engine)
    assert engine._profiler is prof
    uninstall_profiler(engine)
    assert engine._profiler is None


def _ticker(engine, n):
    for _ in range(n):
        yield engine.timeout(5)


def test_engine_hooks_count_dispatch_and_resume():
    engine = Engine()
    prof = install_profiler(engine)
    engine.process(_ticker(engine, 10), name="tick")
    engine.run()
    counters = prof.snapshot()
    # Each timeout is one dispatched event; the initial kick plus each
    # timeout completion resumes the process.
    assert counters["engine.events"] >= 10
    assert counters["engine.resume.tick"] == 11
    assert counters["engine.heap_push"] >= 10
    # Per-class attribution sums to the total.
    per_class = sum(
        count for site, count in counters.items()
        if site.startswith("engine.events.")
    )
    assert per_class == counters["engine.events"]


def test_same_seedless_sim_replays_identical_digest():
    digests = []
    for _ in range(2):
        engine = Engine()
        prof = install_profiler(engine)
        engine.process(_ticker(engine, 25), name="a")
        engine.process(_ticker(engine, 13), name="b")
        engine.run()
        digests.append(prof.digest())
    assert digests[0] == digests[1]


def test_uninstalled_engine_counts_nothing():
    engine = Engine()
    prof = install_profiler(engine)
    uninstall_profiler(engine)
    engine.process(_ticker(engine, 5), name="tick")
    engine.run()
    assert prof.counters == {}
    assert engine.n_dispatched > 0
