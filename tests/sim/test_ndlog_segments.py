"""Epoch-segmented NDLog: per-segment digests and truncation-tolerant
tail replay (the HyCoR log-shipping format)."""

import pytest

from repro.sim.ndlog import NDLog, ReplayDivergence


def _record_three_epochs() -> NDLog:
    log = NDLog(mode="record")
    for epoch in range(3):
        log.begin_segment(epoch)
        for i in range(4):
            log.record("svc.mm0", "write", (epoch * 10 + i, f"v{epoch}.{i}"))
        log.record("svc.clock", "tick", epoch)
    return log


def test_segment_digests_are_stable_and_per_epoch():
    a = _record_three_epochs()
    b = _record_three_epochs()
    assert a.segment_epochs() == [0, 1, 2]
    assert a.segment_digests() == b.segment_digests()
    # Segments with different draws hash differently.
    assert len(set(a.segment_digests())) == 3


def test_segment_entries_cover_exactly_the_window():
    log = _record_three_epochs()
    middle = list(log.segment_entries(1))
    assert len(middle) == 5
    assert all(seq in range(4, 8) for s, seq, m, v in middle
               if s == "svc.mm0")
    assert ("svc.clock", 1, "tick", 1) in middle


def test_segmented_roundtrip_replays_identically():
    log = _record_three_epochs()
    loaded = NDLog.from_segmented_dict(log.to_segmented_dict(), mode="replay")
    assert not loaded.truncated_tail
    for epoch in range(3):
        for i in range(4):
            assert loaded.replay("svc.mm0", "write") == \
                (epoch * 10 + i, f"v{epoch}.{i}")
        assert loaded.replay("svc.clock", "tick") == epoch
    assert loaded.unconsumed() == {}


def test_mid_epoch_crash_truncation_of_tail_is_tolerated():
    log = _record_three_epochs()
    data = log.to_segmented_dict()
    # Crash mid-epoch 2: only a prefix of the open segment shipped.
    data["streams"]["svc.mm0"] = data["streams"]["svc.mm0"][:-2]
    data["streams"]["svc.clock"] = data["streams"]["svc.clock"][:-1]
    loaded = NDLog.from_segmented_dict(data, mode="replay")
    assert loaded.truncated_tail
    # Closed segments replay in full; the tail replays its prefix...
    for epoch in range(2):
        for i in range(4):
            assert loaded.replay("svc.mm0", "write") == \
                (epoch * 10 + i, f"v{epoch}.{i}")
        assert loaded.replay("svc.clock", "tick") == epoch
    for i in range(2):
        assert loaded.replay("svc.mm0", "write") == (20 + i, f"v2.{i}")
    # ...and drawing past the truncation point is a named divergence.
    with pytest.raises(ReplayDivergence) as exc:
        loaded.replay("svc.mm0", "write")
    assert "log exhausted" in str(exc.value)


def test_truncation_inside_a_closed_segment_is_refused():
    log = _record_three_epochs()
    data = log.to_segmented_dict()
    # Chop into epoch 1's window: a *closed* segment can't be partial.
    data["streams"]["svc.mm0"] = data["streams"]["svc.mm0"][:6]
    with pytest.raises(ReplayDivergence) as exc:
        NDLog.from_segmented_dict(data, mode="replay")
    assert "truncated" in str(exc.value)


def test_corrupted_closed_segment_digest_is_refused():
    log = _record_three_epochs()
    data = log.to_segmented_dict()
    data["streams"]["svc.mm0"][5] = ["write", [999, "corrupt"]]
    with pytest.raises(ReplayDivergence) as exc:
        NDLog.from_segmented_dict(data, mode="replay")
    assert "digest mismatch" in str(exc.value)
    assert "epoch 1" in str(exc.value)


def test_corrupted_complete_tail_is_still_verified():
    log = _record_three_epochs()
    data = log.to_segmented_dict()
    data["streams"]["svc.clock"][2] = ["tick", 99]
    with pytest.raises(ReplayDivergence):
        NDLog.from_segmented_dict(data, mode="replay")


def test_unsegmented_log_acts_as_one_implicit_segment():
    log = NDLog(mode="record")
    log.record("s", "draw", 1)
    log.record("s", "draw", 2)
    assert len(log.segment_digests()) == 1
    assert list(log.segment_entries(0)) == [
        ("s", 0, "draw", 1), ("s", 1, "draw", 2)]
    loaded = NDLog.from_segmented_dict(log.to_segmented_dict())
    assert loaded.replay("s", "draw") == 1
