"""Unit tests for the DES engine core."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Engine,
    Interrupt,
    SimulationError,
    ms,
)


def test_clock_starts_at_zero():
    eng = Engine()
    assert eng.now == 0
    assert eng.peek() is None


def test_timeout_advances_clock():
    eng = Engine()
    trace = []

    def proc():
        yield eng.timeout(100)
        trace.append(eng.now)
        yield eng.timeout(250)
        trace.append(eng.now)

    eng.process(proc())
    eng.run()
    assert trace == [100, 350]


def test_timeout_value_passthrough():
    eng = Engine()
    got = []

    def proc():
        value = yield eng.timeout(5, value="hello")
        got.append(value)

    eng.process(proc())
    eng.run()
    assert got == ["hello"]


def test_negative_timeout_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.timeout(-1)


def test_process_return_value():
    eng = Engine()

    def child():
        yield eng.timeout(10)
        return 42

    def parent(results):
        value = yield eng.process(child())
        results.append(value)

    results = []
    eng.process(parent(results))
    eng.run()
    assert results == [42]


def test_same_time_events_fire_in_schedule_order():
    eng = Engine()
    order = []

    def make(tag):
        def proc():
            yield eng.timeout(100)
            order.append(tag)

        return proc

    for tag in ["a", "b", "c", "d"]:
        eng.process(make(tag)())
    eng.run()
    assert order == ["a", "b", "c", "d"]


def test_run_until_time_stops_clock_exactly():
    eng = Engine()

    def proc():
        while True:
            yield eng.timeout(30)

    eng.process(proc())
    eng.run(until=100)
    assert eng.now == 100


def test_run_until_event_returns_value():
    eng = Engine()

    def proc():
        yield eng.timeout(7)
        return "done"

    p = eng.process(proc())
    assert eng.run(until=p) == "done"
    assert eng.now == 7


def test_run_until_past_raises():
    eng = Engine()

    def proc():
        yield eng.timeout(50)

    eng.process(proc())
    eng.run(until=50)
    with pytest.raises(SimulationError):
        eng.run(until=10)


def test_event_succeed_wakes_waiter():
    eng = Engine()
    ev = eng.event()
    woke = []

    def waiter():
        value = yield ev
        woke.append((eng.now, value))

    def trigger():
        yield eng.timeout(200)
        ev.succeed("payload")

    eng.process(waiter())
    eng.process(trigger())
    eng.run()
    assert woke == [(200, "payload")]


def test_event_double_trigger_rejected():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_failed_event_raises_in_waiter():
    eng = Engine()
    ev = eng.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    def trigger():
        yield eng.timeout(1)
        ev.fail(ValueError("boom"))

    eng.process(waiter())
    eng.process(trigger())
    eng.run()
    assert caught == ["boom"]


def test_unhandled_failed_event_surfaces_from_run():
    eng = Engine()
    ev = eng.event()
    ev.fail(RuntimeError("lost failure"))
    with pytest.raises(RuntimeError, match="lost failure"):
        eng.run()


def test_defused_failure_does_not_crash():
    eng = Engine()
    ev = eng.event()
    ev.fail(RuntimeError("handled"))
    ev.defuse()
    eng.run()  # should not raise


def test_crashing_process_surfaces_exception():
    eng = Engine()

    def proc():
        yield eng.timeout(1)
        raise KeyError("oops")

    eng.process(proc())
    with pytest.raises(KeyError):
        eng.run()


def test_parent_can_catch_child_failure():
    eng = Engine()
    caught = []

    def child():
        yield eng.timeout(1)
        raise KeyError("child-crash")

    def parent():
        try:
            yield eng.process(child())
        except KeyError:
            caught.append(eng.now)

    eng.process(parent())
    eng.run()
    assert caught == [1]


def test_yield_non_event_is_an_error():
    eng = Engine()

    def proc():
        yield 12345

    eng.process(proc())
    with pytest.raises(SimulationError, match="non-event"):
        eng.run()


def test_interrupt_delivers_cause():
    eng = Engine()
    seen = []

    def victim():
        try:
            yield eng.timeout(ms(100))
        except Interrupt as intr:
            seen.append((eng.now, intr.cause))

    def attacker(proc):
        yield eng.timeout(ms(10))
        proc.interrupt("fail-stop")

    v = eng.process(victim())
    eng.process(attacker(v))
    eng.run()
    assert seen == [(ms(10), "fail-stop")]


def test_interrupt_detaches_from_original_target():
    """After an interrupt, the original timeout must not resume the process."""
    eng = Engine()
    resumptions = []

    def victim():
        try:
            yield eng.timeout(100)
        except Interrupt:
            pass
        resumptions.append(eng.now)
        yield eng.timeout(500)
        resumptions.append(eng.now)

    def attacker(proc):
        yield eng.timeout(10)
        proc.interrupt()

    v = eng.process(victim())
    eng.process(attacker(v))
    eng.run()
    assert resumptions == [10, 510]


def test_interrupt_dead_process_rejected():
    eng = Engine()

    def quick():
        yield eng.timeout(1)

    p = eng.process(quick())
    eng.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_interrupt_on_finished_but_unprocessed_is_swallowed():
    """Interrupt racing with natural completion in the same instant."""
    eng = Engine()

    def victim():
        yield eng.timeout(10)

    def attacker(proc):
        yield eng.timeout(10)
        if proc.is_alive:
            proc.interrupt()

    v = eng.process(victim())
    eng.process(attacker(v))
    eng.run()  # must not raise


def test_any_of_triggers_on_first():
    eng = Engine()
    result = []

    def proc():
        t1 = eng.timeout(100, value="slow")
        t2 = eng.timeout(10, value="fast")
        done = yield AnyOf(eng, [t1, t2])
        result.append((eng.now, list(done.values())))

    eng.process(proc())
    eng.run()
    assert result == [(10, ["fast"])]


def test_all_of_waits_for_every_event():
    eng = Engine()
    result = []

    def proc():
        t1 = eng.timeout(100, value=1)
        t2 = eng.timeout(10, value=2)
        done = yield AllOf(eng, [t1, t2])
        result.append((eng.now, sorted(done.values())))

    eng.process(proc())
    eng.run()
    assert result == [(100, [1, 2])]


def test_all_of_empty_triggers_immediately():
    eng = Engine()
    result = []

    def proc():
        done = yield AllOf(eng, [])
        result.append(done)

    eng.process(proc())
    eng.run()
    assert result == [{}]


def test_yield_already_processed_event_resumes_at_same_time():
    eng = Engine()
    times = []

    def proc():
        ev = eng.event()
        ev.succeed("x")
        yield eng.timeout(50)
        value = yield ev  # already processed by now
        times.append((eng.now, value))

    eng.process(proc())
    eng.run()
    assert times == [(50, "x")]


def test_deterministic_replay():
    """Two identical runs produce identical event traces."""

    def run_once():
        eng = Engine()
        trace = []

        def worker(tag, period):
            while eng.now < 1000:
                yield eng.timeout(period)
                trace.append((eng.now, tag))

        eng.process(worker("a", 7))
        eng.process(worker("b", 13))
        eng.process(worker("c", 13))
        eng.run(until=1000)
        return trace

    assert run_once() == run_once()
