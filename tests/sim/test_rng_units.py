"""Tests for RNG streams and time-unit helpers."""

from repro.sim import RngRegistry
from repro.sim.units import MILLISECOND, SECOND, fmt_time, ms, sec, us


def test_units_are_integer_microseconds():
    assert us(1) == 1
    assert ms(1) == MILLISECOND == 1_000
    assert sec(1) == SECOND == 1_000_000
    assert ms(0.5) == 500
    assert sec(0.03) == 30_000
    assert isinstance(ms(1.5), int)


def test_fmt_time_picks_unit():
    assert fmt_time(5) == "5us"
    assert fmt_time(1500) == "1.500ms"
    assert fmt_time(2_500_000) == "2.500s"


def test_rng_streams_reproducible():
    a = RngRegistry(seed=42).stream("faults")
    b = RngRegistry(seed=42).stream("faults")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_rng_streams_independent_of_creation_order():
    reg1 = RngRegistry(seed=7)
    s1 = reg1.stream("alpha")
    reg1.stream("beta")
    first = [s1.random() for _ in range(3)]

    reg2 = RngRegistry(seed=7)
    reg2.stream("beta")  # created in swapped order
    s2 = reg2.stream("alpha")
    assert [s2.random() for _ in range(3)] == first


def test_rng_distinct_names_distinct_streams():
    reg = RngRegistry(seed=1)
    xs = [reg.stream("x").random() for _ in range(4)]
    ys = [reg.stream("y").random() for _ in range(4)]
    assert xs != ys


def test_rng_same_name_returns_same_stream():
    reg = RngRegistry(seed=9)
    assert reg.stream("s") is reg.stream("s")


def test_rng_golden_values_pinned():
    """Stream draws are pinned forever: these exact values are what every
    experiment seed in the repo reproduces.  ``random.Random.random`` is
    guaranteed stable across Python versions, so a change here means the
    seed-derivation scheme itself changed — a replayability break."""
    reg = RngRegistry(seed=42)
    faults = reg.stream("faults")
    assert [faults.random() for _ in range(4)] == [
        0.32275310513885425,
        0.7164008028809598,
        0.4577420671860519,
        0.9709664115862929,
    ]
    epochs = reg.stream("epochs")
    assert [epochs.randint(0, 10**6) for _ in range(4)] == [
        286440,
        71490,
        38997,
        149296,
    ]
    assert RngRegistry(seed=42).spawn("host1").seed == 1094124638426376144


def test_rng_new_stream_does_not_perturb_existing_draws():
    """Adding a stream mid-run must not shift any other stream's sequence
    (per-stream seeding, not a shared generator)."""
    solo = RngRegistry(seed=123).stream("workload")
    expected = [solo.random() for _ in range(6)]

    reg = RngRegistry(seed=123)
    interleaved = reg.stream("workload")
    got = [interleaved.random() for _ in range(3)]
    reg.stream("latecomer").random()  # new stream appears mid-run
    reg.spawn("child").stream("w").random()
    got += [interleaved.random() for _ in range(3)]
    assert got == expected


def test_rng_spawn_children_differ():
    reg = RngRegistry(seed=5)
    c1 = reg.spawn("host1")
    c2 = reg.spawn("host2")
    assert c1.seed != c2.seed
    assert c1.stream("w").random() != c2.stream("w").random()
    # but spawning is itself deterministic
    assert reg.spawn("host1").seed == c1.seed
