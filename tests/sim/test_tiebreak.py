"""Pluggable same-timestamp tie-break policies (`Engine.set_tiebreak`).

The default is pure insertion order (key 0 for everything, seq decides).
Policies permute the interleaving of *scheduling contexts* at one instant;
events scheduled by a single callback keep their relative order, and
priorities always outrank the policy key.
"""

from repro.analysis.fuzz import PermutedTieBreak, ReversedTieBreak
from repro.sim import Engine, Event
from repro.sim.engine import NORMAL, URGENT


def _spawn_emitter(eng, order, name, delay):
    def proc():
        yield eng.timeout(delay)
        order.append(name)

    eng.process(proc())


def test_default_is_insertion_order():
    eng = Engine()
    order = []
    for name in ("a", "b", "c"):
        _spawn_emitter(eng, order, name, 100)
    eng.run()
    assert order == ["a", "b", "c"]


def test_reversed_tiebreak_flips_same_time_contexts():
    eng = Engine()
    eng.set_tiebreak(ReversedTieBreak())
    order = []
    for name in ("a", "b", "c"):
        _spawn_emitter(eng, order, name, 100)
    eng.run()
    assert order == ["c", "b", "a"]


def test_tiebreak_never_reorders_distinct_times():
    eng = Engine()
    eng.set_tiebreak(ReversedTieBreak())
    order = []
    _spawn_emitter(eng, order, "late", 200)
    _spawn_emitter(eng, order, "early", 100)
    eng.run()
    assert order == ["early", "late"]


def test_priority_outranks_tiebreak_key():
    eng = Engine()
    eng.set_tiebreak(ReversedTieBreak())
    order = []

    urgent = Event(eng)
    normal = Event(eng)
    normal.callbacks.append(lambda e: order.append("normal"))
    urgent.callbacks.append(lambda e: order.append("urgent"))
    eng._schedule(normal, NORMAL, 0)
    eng._schedule(urgent, URGENT, 0)
    eng.run()
    assert order == ["urgent", "normal"]


def test_events_from_one_context_keep_fifo():
    """Events scheduled by the same callback share a context serial, so a
    permuting policy cannot reorder them against each other."""
    eng = Engine()
    eng.set_tiebreak(ReversedTieBreak())
    order = []

    def spawner():
        # One resume = one scheduling context: both succeed() calls below
        # get the same tie-break key and keep insertion order.
        if False:
            yield  # pragma: no cover
        a, b = Event(eng), Event(eng)
        a.callbacks.append(lambda e: order.append("first"))
        b.callbacks.append(lambda e: order.append("second"))
        a.succeed(None)
        b.succeed(None)

    eng.process(spawner())
    eng.run()
    assert order == ["first", "second"]


def test_permuted_tiebreak_is_deterministic_per_seed():
    def run(seed):
        eng = Engine()
        eng.set_tiebreak(PermutedTieBreak(seed))
        order = []
        for name in ("a", "b", "c", "d", "e"):
            _spawn_emitter(eng, order, name, 100)
        eng.run()
        return order

    assert run(7) == run(7)
    # Different seeds explore different interleavings (for this particular
    # pair; splitmix mixing makes collisions vanishingly unlikely).
    assert run(1) != run(2) or run(1) != run(3)


def test_set_tiebreak_affects_only_future_events():
    eng = Engine()
    order = []
    for name in ("a", "b"):
        _spawn_emitter(eng, order, name, 100)
    # Installed after the processes' Initialize events were queued, but
    # before their t=100 timeouts are scheduled (at first resume, t=0).
    eng.set_tiebreak(ReversedTieBreak())
    eng.run()
    assert order == ["b", "a"]
