"""Engine edge cases: conditions over settled events, interrupting
condition waiters, and same-timestamp URGENT/NORMAL ordering."""

import pytest

from repro.sim import AllOf, AnyOf, Engine, Event, Interrupt
from repro.sim.engine import NORMAL, URGENT


# --------------------------------------------------------------------------- #
# AnyOf / AllOf with already-settled constituents                             #
# --------------------------------------------------------------------------- #


def test_anyof_with_already_triggered_event():
    eng = Engine()
    done = Event(eng).succeed("early")
    results = []

    def proc():
        got = yield AnyOf(eng, [done, eng.timeout(100)])
        results.append((eng.now, dict(got)))

    eng.process(proc())
    eng.run()
    assert len(results) == 1
    at, got = results[0]
    assert at == 0  # no waiting: one constituent was already settled
    assert got[done] == "early"


def test_allof_with_already_triggered_event_still_waits_for_rest():
    eng = Engine()
    done = Event(eng).succeed("early")
    results = []

    def proc():
        timeout = eng.timeout(100, value="late")
        got = yield AllOf(eng, [done, timeout])
        results.append((eng.now, got[done], got[timeout]))

    eng.process(proc())
    eng.run()
    assert results == [(100, "early", "late")]


def test_allof_all_already_triggered_completes_immediately():
    eng = Engine()
    a = Event(eng).succeed(1)
    b = Event(eng).succeed(2)
    results = []

    def proc():
        got = yield AllOf(eng, [a, b])
        results.append((eng.now, got[a], got[b]))

    eng.process(proc())
    eng.run()
    assert results == [(0, 1, 2)]


def test_anyof_with_failed_event_raises_in_waiter():
    eng = Engine()
    boom = RuntimeError("boom")
    caught = []

    def proc():
        failed = Event(eng)
        failed.fail(boom)
        try:
            yield AnyOf(eng, [failed, eng.timeout(100)])
        except RuntimeError as exc:
            caught.append((eng.now, exc))

    eng.process(proc())
    eng.run()
    assert caught == [(0, boom)]


def test_allof_fails_fast_on_constituent_failure():
    eng = Engine()
    boom = ValueError("nope")
    caught = []

    def proc():
        failing = Event(eng)
        eng.process(_fail_later(eng, failing, boom, at=50))
        try:
            yield AllOf(eng, [failing, eng.timeout(100)])
        except ValueError:
            caught.append(eng.now)

    eng.process(proc())
    eng.run()
    # The condition fails when the constituent fails, not at the horizon.
    assert caught == [50]


def _fail_later(eng, event, exc, at):
    yield eng.timeout(at)
    event.fail(exc)


# --------------------------------------------------------------------------- #
# Interrupting a process blocked on a condition                               #
# --------------------------------------------------------------------------- #


def test_interrupt_while_blocked_on_anyof():
    eng = Engine()
    log = []

    def waiter():
        try:
            yield AnyOf(eng, [eng.timeout(1_000), eng.timeout(2_000)])
            log.append("completed")
        except Interrupt as intr:
            log.append(("interrupted", eng.now, intr.cause))
            # The process must remain usable after the interrupt.
            yield eng.timeout(10)
            log.append(("resumed", eng.now))

    proc = eng.process(waiter())

    def interrupter():
        yield eng.timeout(100)
        proc.interrupt(cause="hurry")

    eng.process(interrupter())
    eng.run()
    assert log == [("interrupted", 100, "hurry"), ("resumed", 110)]


def test_interrupt_while_blocked_on_allof_condition_keeps_engine_running():
    eng = Engine()
    log = []
    slow = []

    def slow_proc():
        yield eng.timeout(500)
        slow.append(eng.now)

    def waiter():
        try:
            yield AllOf(eng, [eng.timeout(1_000), eng.timeout(50)])
        except Interrupt:
            log.append(eng.now)

    proc = eng.process(waiter())
    eng.process(slow_proc())

    def interrupter():
        yield eng.timeout(200)
        proc.interrupt()

    eng.process(interrupter())
    eng.run()
    assert log == [200]
    # Unrelated work is unaffected by the waiter's demise.
    assert slow == [500]


# --------------------------------------------------------------------------- #
# Same-timestamp URGENT vs NORMAL ordering                                    #
# --------------------------------------------------------------------------- #


def test_urgent_orders_before_normal_at_same_timestamp():
    eng = Engine()
    order = []

    normal = Event(eng)
    urgent = Event(eng)
    normal.callbacks.append(lambda e: order.append("normal"))
    urgent.callbacks.append(lambda e: order.append("urgent"))

    # Schedule NORMAL first so sequence numbers would pick it; priority
    # must win the tie regardless of insertion order.
    eng._schedule(normal, NORMAL, 0)
    eng._schedule(urgent, URGENT, 0)
    eng.run()
    assert order == ["urgent", "normal"]


def test_interrupt_beats_same_time_timeout():
    """An interrupt issued at time T is delivered before the victim's own
    timeout firing at the same instant: the Interrupt is scheduled URGENT,
    so it overtakes the already-queued NORMAL timeout despite the
    timeout's earlier sequence number."""
    eng = Engine()
    log = []
    proc_box = []

    def interrupter():
        # Spawned first so this resumes at t=100 *before* the victim's
        # same-instant timeout pops (earlier sequence number).
        yield eng.timeout(100)
        proc_box[0].interrupt(cause="now")

    def victim():
        try:
            yield eng.timeout(100)
            log.append("timeout-side")
        except Interrupt as intr:
            log.append(("interrupt-side", eng.now, intr.cause))

    eng.process(interrupter())
    proc_box.append(eng.process(victim()))
    eng.run()
    assert log == [("interrupt-side", 100, "now")]


def test_interrupt_dead_process_rejected():
    from repro.sim import SimulationError

    eng = Engine()

    def quick():
        yield eng.timeout(1)

    proc = eng.process(quick())
    eng.run()
    with pytest.raises(SimulationError):
        proc.interrupt()
