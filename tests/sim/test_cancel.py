"""Tests for event cancellation semantics."""

import pytest

from repro.sim import Engine, SimulationError


def test_cancelled_timer_never_fires():
    eng = Engine()
    fired = []
    timer = eng.timeout(100)
    timer.callbacks.append(lambda _ev: fired.append(eng.now))
    timer.cancel()
    eng.run()
    assert fired == []


def test_cancelled_timer_does_not_advance_clock():
    eng = Engine()
    eng.timeout(1_000_000).cancel()
    short = eng.timeout(10)
    fired = []
    short.callbacks.append(lambda _ev: fired.append(eng.now))
    eng.run()
    assert fired == [10]
    assert eng.now == 10  # not dragged out to the cancelled timer


def test_peek_skips_cancelled_events():
    eng = Engine()
    eng.timeout(5).cancel()
    eng.timeout(50)
    assert eng.peek() == 50


def test_run_until_event_ignores_cancelled_noise():
    eng = Engine()

    def proc():
        yield eng.timeout(20)
        return "done"

    for _ in range(5):
        eng.timeout(1).cancel()
    p = eng.process(proc())
    assert eng.run(until=p) == "done"


def test_step_on_only_cancelled_heap_raises():
    eng = Engine()
    eng.timeout(5).cancel()
    with pytest.raises(SimulationError):
        eng.step()


def test_cancel_then_run_empty():
    eng = Engine()
    eng.timeout(5).cancel()
    eng.run()  # no-op, no crash
    assert eng.now == 0
