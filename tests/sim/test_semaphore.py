"""Unit tests for the counting semaphore."""

import pytest

from repro.sim import Engine, SimulationError
from repro.sim.resources import Semaphore


def test_capacity_limits_concurrency():
    eng = Engine()
    sem = Semaphore(eng, capacity=2)
    concurrency = {"now": 0, "peak": 0}

    def worker():
        yield sem.acquire()
        concurrency["now"] += 1
        concurrency["peak"] = max(concurrency["peak"], concurrency["now"])
        yield eng.timeout(100)
        concurrency["now"] -= 1
        sem.release()

    for _ in range(6):
        eng.process(worker())
    eng.run()
    assert concurrency["peak"] == 2
    assert eng.now == 300  # 6 workers / 2 slots * 100 us


def test_fair_fifo_handoff():
    eng = Engine()
    sem = Semaphore(eng, capacity=1)
    order = []

    def worker(tag):
        yield sem.acquire()
        order.append(tag)
        yield eng.timeout(10)
        sem.release()

    for tag in "abcd":
        eng.process(worker(tag))
    eng.run()
    assert order == list("abcd")


def test_release_idle_rejected():
    eng = Engine()
    sem = Semaphore(eng, capacity=1)
    with pytest.raises(SimulationError):
        sem.release()


def test_zero_capacity_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        Semaphore(eng, capacity=0)


def test_in_use_tracking():
    eng = Engine()
    sem = Semaphore(eng, capacity=3)

    def worker():
        yield sem.acquire()
        yield eng.timeout(50)
        sem.release()

    eng.process(worker())
    eng.process(worker())
    eng.run(until=10)
    assert sem.in_use == 2
    eng.run()
    assert sem.in_use == 0
