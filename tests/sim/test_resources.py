"""Unit tests for Queue, Lock and Gate primitives."""

import pytest

from repro.sim import Engine, SimulationError
from repro.sim.resources import Gate, Lock, Queue


def test_queue_put_then_get():
    eng = Engine()
    q = Queue(eng)
    got = []

    def consumer():
        item = yield q.get()
        got.append(item)

    q.put("first")
    eng.process(consumer())
    eng.run()
    assert got == ["first"]


def test_queue_get_blocks_until_put():
    eng = Engine()
    q = Queue(eng)
    got = []

    def consumer():
        item = yield q.get()
        got.append((eng.now, item))

    def producer():
        yield eng.timeout(40)
        q.put("late")

    eng.process(consumer())
    eng.process(producer())
    eng.run()
    assert got == [(40, "late")]


def test_queue_fifo_order_across_waiters():
    eng = Engine()
    q = Queue(eng)
    got = []

    def consumer(tag):
        item = yield q.get()
        got.append((tag, item))

    eng.process(consumer("c1"))
    eng.process(consumer("c2"))

    def producer():
        yield eng.timeout(1)
        q.put("x")
        q.put("y")

    eng.process(producer())
    eng.run()
    assert got == [("c1", "x"), ("c2", "y")]


def test_queue_get_nowait_and_len():
    eng = Engine()
    q = Queue(eng)
    q.put(1)
    q.put(2)
    assert len(q) == 2
    assert q.get_nowait() == 1
    assert q.items == (2,)
    assert q.get_nowait() == 2
    with pytest.raises(SimulationError):
        q.get_nowait()


def test_queue_clear_drains_items():
    eng = Engine()
    q = Queue(eng)
    q.put("a")
    q.put("b")
    assert q.clear() == ["a", "b"]
    assert len(q) == 0


def test_lock_mutual_exclusion():
    eng = Engine()
    lock = Lock(eng)
    log = []

    def worker(tag, hold):
        yield lock.acquire()
        log.append(("enter", tag, eng.now))
        yield eng.timeout(hold)
        log.append(("exit", tag, eng.now))
        lock.release()

    eng.process(worker("a", 100))
    eng.process(worker("b", 50))
    eng.run()
    assert log == [
        ("enter", "a", 0),
        ("exit", "a", 100),
        ("enter", "b", 100),
        ("exit", "b", 150),
    ]


def test_lock_release_unlocked_rejected():
    eng = Engine()
    lock = Lock(eng)
    with pytest.raises(SimulationError):
        lock.release()


def test_lock_fair_handoff_order():
    eng = Engine()
    lock = Lock(eng)
    order = []

    def worker(tag):
        yield lock.acquire()
        order.append(tag)
        yield eng.timeout(1)
        lock.release()

    for tag in ["w1", "w2", "w3"]:
        eng.process(worker(tag))
    eng.run()
    assert order == ["w1", "w2", "w3"]


def test_gate_open_passes_immediately():
    eng = Engine()
    gate = Gate(eng)
    times = []

    def proc():
        yield gate.wait()
        times.append(eng.now)

    eng.process(proc())
    eng.run()
    assert times == [0]


def test_gate_closed_blocks_until_open():
    eng = Engine()
    gate = Gate(eng, open_=False)
    times = []

    def proc(tag):
        yield gate.wait()
        times.append((tag, eng.now))

    eng.process(proc("p1"))
    eng.process(proc("p2"))

    def opener():
        yield eng.timeout(75)
        assert gate.waiting == 2
        gate.open()

    eng.process(opener())
    eng.run()
    assert times == [("p1", 75), ("p2", 75)]
    assert gate.is_open


def test_gate_reclose_holds_new_waiters():
    eng = Engine()
    gate = Gate(eng)
    times = []

    def cycle():
        gate.close()
        yield eng.timeout(10)
        gate.open()
        gate.close()
        yield eng.timeout(10)
        gate.open()

    def waiter(start):
        yield eng.timeout(start)
        yield gate.wait()
        times.append((start, eng.now))

    eng.process(cycle())
    eng.process(waiter(5))
    eng.process(waiter(15))
    eng.run()
    assert times == [(5, 10), (15, 20)]
