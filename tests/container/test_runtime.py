"""Tests for the container runtime: creation, freezer, execution gate."""

import pytest

from repro.container import ContainerRuntime, ContainerSpec, ProcessSpec
from repro.kernel.errors import KernelError
from repro.kernel.task import TaskState
from repro.net import World
from repro.sim import ms


@pytest.fixture
def world():
    return World(seed=7)


@pytest.fixture
def runtime(world):
    return ContainerRuntime(world.primary.kernel, world.bridge)


def make_spec(**kw):
    defaults = dict(
        name="app",
        ip="10.0.1.10",
        processes=[ProcessSpec(comm="server", n_threads=4, heap_pages=1000, n_mapped_files=10)],
        cgroup_attributes={"cpu.shares": 1024},
    )
    defaults.update(kw)
    return ContainerSpec(**defaults)


def test_create_materializes_processes_and_threads(runtime):
    c = runtime.create(make_spec())
    assert len(c.processes) == 1
    assert c.processes[0].n_threads == 4
    assert c.n_threads == 4


def test_create_duplicate_rejected(runtime):
    runtime.create(make_spec())
    with pytest.raises(KernelError):
        runtime.create(make_spec())


def test_memory_layout_has_heap_stack_and_libs(runtime):
    c = runtime.create(make_spec())
    mm = c.processes[0].mm
    kinds = {v.kind for v in mm.vmas}
    assert {"heap", "stack", "file"} <= kinds
    assert len(mm.mapped_files) == 10
    assert c.heap_vma.n_pages == 1000


def test_container_attached_to_bridge(world, runtime):
    c = runtime.create(make_spec())
    assert world.bridge.arp_lookup("10.0.1.10") is not None
    assert c.stack.ip == "10.0.1.10"


def test_cgroup_attributes_and_ftrace_traces(world, runtime):
    c = runtime.create(make_spec(mounts=[("/data", "datafs")]))
    assert c.cgroup.attributes["cpu.shares"] == 1024
    counts = world.primary.kernel.ftrace.call_counts
    assert counts["cgroup_write"] == 1
    assert counts["do_mount"] == 1
    assert counts["do_mmap_file"] == 10


def test_run_slice_charges_time_and_cpu(world, runtime):
    c = runtime.create(make_spec())
    proc = c.processes[0]

    def workload():
        yield from c.run_slice(proc, 500)

    world.engine.process(workload())
    world.run()
    assert world.now == 500
    assert c.cgroup.read_cpuacct() == 500
    assert proc.cpu_time_us == 500


def test_run_slice_includes_fault_time(world, runtime):
    c = runtime.create(make_spec())
    proc = c.processes[0]
    proc.mm.start_tracking("soft_dirty")
    heap = c.heap_vma

    def workload():
        for i in range(10):
            proc.mm.write(heap.start + i, b"w")
        yield from c.run_slice(proc, 100)

    world.engine.process(workload())
    world.run()
    fault_us = (10 * world.costs.soft_dirty_fault_ns) // 1000
    assert world.now == 100 + fault_us
    assert c.cgroup.read_cpuacct() == 100 + fault_us


def test_freeze_blocks_run_slice(world, runtime):
    c = runtime.create(make_spec())
    proc = c.processes[0]
    slices = []

    def workload():
        while len(slices) < 3:
            yield from c.run_slice(proc, 100)
            slices.append(world.now)

    def freezer():
        yield world.engine.timeout(150)
        yield from c.freeze(poll=True)
        yield world.engine.timeout(ms(5))
        yield from c.thaw()

    world.engine.process(workload())
    world.engine.process(freezer())
    world.run()
    # First slice at 100, second at 200 (started before freeze completed or
    # queued), third only after thaw (>5 ms later).
    assert slices[0] == 100
    assert any(t > ms(5) for t in slices)


def test_freeze_waits_for_inflight_slice(world, runtime):
    c = runtime.create(make_spec())
    proc = c.processes[0]

    def workload():
        yield from c.run_slice(proc, 1000)

    freeze_done = []

    def freezer():
        yield world.engine.timeout(100)  # freeze mid-slice
        took = yield from c.freeze(poll=True)
        freeze_done.append((world.now, took))

    world.engine.process(workload())
    world.engine.process(freezer())
    world.run()
    done_at, took = freeze_done[0]
    assert done_at >= 1000  # waited for the in-flight slice
    assert took >= 900
    assert all(t.state is TaskState.FROZEN for t in c.tasks)


def test_freeze_unoptimized_sleeps_100ms(world, runtime):
    c = runtime.create(make_spec())
    durations = []

    def freezer():
        took = yield from c.freeze(poll=False)
        durations.append(took)

    world.engine.process(freezer())
    world.run()
    assert durations[0] >= world.costs.freeze_sleep_unoptimized


def test_freeze_optimized_is_fast_when_idle(world, runtime):
    c = runtime.create(make_spec())
    durations = []

    def freezer():
        took = yield from c.freeze(poll=True)
        durations.append(took)

    world.engine.process(freezer())
    world.run()
    assert durations[0] < ms(1)


def test_double_freeze_rejected(world, runtime):
    c = runtime.create(make_spec())

    def freezer():
        yield from c.freeze()
        with pytest.raises(KernelError):
            yield from c.freeze()

    world.engine.process(freezer())
    world.run()


def test_thaw_without_freeze_rejected(world, runtime):
    c = runtime.create(make_spec())

    def proc():
        with pytest.raises(KernelError):
            yield from c.thaw()

    world.engine.process(proc())
    world.run()


def test_frozen_time_accounting(world, runtime):
    c = runtime.create(make_spec())

    def cycle():
        yield from c.freeze()
        yield world.engine.timeout(ms(10))
        yield from c.thaw()

    world.engine.process(cycle())
    world.run()
    assert c.total_frozen_us >= ms(10)


def test_tcp_stack_marks_frozen(world, runtime):
    c = runtime.create(make_spec())

    def cycle():
        yield from c.freeze()
        assert c.stack.frozen
        yield from c.thaw()
        assert not c.stack.frozen

    world.engine.process(cycle())
    world.run()


def test_keepalive_bumps_cpuacct(world, runtime):
    c = runtime.create(make_spec())
    c.start_keepalive()
    world.run(until=ms(100))
    usage = c.cgroup.read_cpuacct()
    assert usage >= 3  # one tick per 30 ms
    c.destroy()


def test_destroy_detaches_and_kills(world, runtime):
    c = runtime.create(make_spec())
    c.destroy()
    assert c.dead
    assert all(p.exited for p in c.processes)
    # Traffic to the container's IP now drops at the bridge.
    assert c.veth.bridge is None


def test_mutation_wrappers_fire_ftrace(world, runtime):
    c = runtime.create(make_spec())
    counts = world.primary.kernel.ftrace.call_counts
    c.set_hostname("newname")
    assert counts["sethostname"] == 1
    c.add_mount("/extra", "extrafs")
    assert counts["do_mount"] == 1
    c.set_cgroup_attribute("cpu.weight", 50)
    assert counts["cgroup_write"] == 2  # one from spec, one now
    c.mmap_file(c.processes[0], "/data/blob", 16)
    assert counts["do_mmap_file"] == 11
    assert c.namespaces.version >= 3
