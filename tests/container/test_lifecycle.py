"""Container lifecycle edge cases: kill, destroy, multi-process helpers."""

import pytest

from repro.container import ContainerRuntime, ContainerSpec, ProcessSpec
from repro.kernel.errors import KernelError
from repro.net import World
from repro.sim import ms


@pytest.fixture
def world():
    return World(seed=13)


@pytest.fixture
def runtime(world):
    return ContainerRuntime(world.primary.kernel, world.bridge)


def multi_spec():
    return ContainerSpec(
        name="multi",
        ip="10.0.1.60",
        processes=[ProcessSpec(comm=f"w{i}", n_threads=2, heap_pages=64) for i in range(3)],
    )


def test_heap_vma_of_per_process(runtime):
    c = runtime.create(multi_spec())
    heaps = {c.heap_vma_of(p).start for p in c.processes}
    assert len(heaps) == 1 or len(heaps) == 3  # distinct address spaces
    for p in c.processes:
        assert c.heap_vma_of(p).kind == "heap"


def test_kill_releases_blocked_slices(world, runtime):
    c = runtime.create(multi_spec())
    proc = c.processes[0]
    outcomes = []

    def worker():
        try:
            while True:
                yield from c.run_slice(proc, 100)
        except KernelError:
            outcomes.append("killed")

    def freezer_then_kill():
        yield from c.freeze()
        yield world.engine.timeout(ms(5))
        c.kill()

    world.engine.process(worker())
    world.engine.process(freezer_then_kill())
    world.run(until=ms(50))
    assert outcomes == ["killed"]
    assert c.dead and c.veth.cable_cut


def test_kill_is_effective_mid_slice(world, runtime):
    c = runtime.create(multi_spec())
    proc = c.processes[0]
    served = []

    def worker():
        try:
            while True:
                yield from c.run_slice(proc, 100, mutate=lambda: served.append(world.now))
        except KernelError:
            return

    def killer():
        yield world.engine.timeout(550)
        c.kill()

    world.engine.process(worker())
    world.engine.process(killer())
    world.run(until=ms(20))
    # Mutations stop at/after the kill; nothing applied afterwards.
    assert served and served[-1] <= 600


def test_destroy_after_kill_is_safe(world, runtime):
    c = runtime.create(multi_spec())
    c.kill()
    c.destroy()
    assert c.dead
    assert all(p.exited for p in c.processes)


def test_runtime_destroy_by_name(world, runtime):
    runtime.create(multi_spec())
    runtime.destroy("multi")
    assert "multi" not in runtime.containers
    runtime.destroy("multi")  # idempotent


def test_mounted_filesystems_skips_unknown_sources(world, runtime):
    spec = ContainerSpec(
        name="m2", ip="10.0.1.61",
        processes=[ProcessSpec(comm="a")],
        mounts=[("/ghost", "does-not-exist")],
    )
    c = runtime.create(spec)
    assert c.mounted_filesystems() == []


def test_freeze_counts_queued_cpu_waiters_correctly(world, runtime):
    """Slices queued on the per-process CPU semaphore when the freeze hits
    must not run during the frozen window."""
    c = runtime.create(ContainerSpec(
        name="m3", ip="10.0.1.62",
        processes=[ProcessSpec(comm="a", n_threads=1)],
    ))
    proc = c.processes[0]
    ran_at = []

    def worker(tag):
        yield from c.run_slice(proc, 400, mutate=lambda: ran_at.append((tag, world.now)))

    frozen_window = []

    def freezer():
        yield world.engine.timeout(100)
        yield from c.freeze()
        frozen_window.append(world.now)
        yield world.engine.timeout(ms(10))
        yield from c.thaw()
        frozen_window.append(world.now)

    for tag in range(4):
        world.engine.process(worker(tag))
    world.engine.process(freezer())
    world.run(until=ms(60))
    start, end = frozen_window
    for _tag, t in ran_at:
        assert not (start < t <= end - 1), (t, start, end)
