"""Tests for container/process specifications."""

from repro.container import ContainerSpec, ProcessSpec


def test_total_threads_sums_processes():
    spec = ContainerSpec(
        name="c",
        ip="10.0.0.1",
        processes=[
            ProcessSpec(comm="a", n_threads=4),
            ProcessSpec(comm="b", n_threads=2),
            ProcessSpec(comm="c"),
        ],
    )
    assert spec.total_threads == 7


def test_defaults_are_sane():
    pspec = ProcessSpec(comm="app")
    assert pspec.n_threads == 1
    assert pspec.heap_pages > 0
    assert pspec.n_mapped_files > 0
    spec = ContainerSpec(name="c", ip="10.0.0.1")
    assert spec.mounts == []
    assert spec.cgroup_attributes == {}
    assert spec.n_cores == 4


def test_specs_are_plain_data():
    """Specs must survive dataclass asdict round-trips (image files)."""
    from dataclasses import asdict

    spec = ContainerSpec(
        name="c", ip="10.0.0.1",
        processes=[ProcessSpec(comm="a", n_threads=2)],
        mounts=[("/data", "fs")],
        cgroup_attributes={"cpu.shares": 99},
    )
    d = asdict(spec)
    rebuilt = ContainerSpec(
        name=d["name"], ip=d["ip"],
        processes=[ProcessSpec(**p) for p in d["processes"]],
        mounts=[tuple(m) for m in d["mounts"]],
        cgroup_attributes=d["cgroup_attributes"],
        n_cores=d["n_cores"],
    )
    assert rebuilt == spec
