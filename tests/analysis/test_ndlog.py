"""NDLog unit tests: record/replay fidelity, digests, serialization, and
divergence detection.

The load-bearing properties are the ISSUE acceptance criteria for the
runtime layer: a replay fed from the serialized log alone reproduces
every draw; any truncation, corruption, extra draw or method mismatch is
refused with the exact stream name and sequence number.
"""

import json

import pytest

from repro.net import World
from repro.sim.ndlog import (
    NDLog,
    ReplayDivergence,
    ReplayTieBreak,
    TIEBREAK_STREAM,
    attach_ndlog,
    detach_ndlog,
)
from repro.sim.rng import RngRegistry


def _recorded_pair():
    """A record-mode registry plus its log, with a few draws taken."""
    from repro.sim.ndlog import _RegistryRecorder

    log = NDLog(mode="record")
    registry = RngRegistry(seed=7)
    registry.set_recorder(_RegistryRecorder(log))
    stream = registry.stream("zz-test")
    values = [
        stream.random(),
        stream.randrange(100),
        stream.randint(5, 9),
        stream.uniform(0.0, 2.0),
        stream.expovariate(3.0),
        stream.getrandbits(16),
        stream.choice(["a", "b", "c", "d"]),
    ]
    deck = list(range(8))
    stream.shuffle(deck)
    return log, values, deck


def _replay_registry(log):
    from repro.sim.ndlog import _RegistryRecorder

    registry = RngRegistry(seed=999)  # wrong seed on purpose: never consulted
    registry.set_recorder(_RegistryRecorder(log))
    return registry


def test_record_replay_roundtrip_reproduces_every_draw():
    log, values, deck = _recorded_pair()
    replay_log = NDLog.from_dict(log.to_dict(), mode="replay")
    stream = _replay_registry(replay_log).stream("zz-test")
    replayed = [
        stream.random(),
        stream.randrange(100),
        stream.randint(5, 9),
        stream.uniform(0.0, 2.0),
        stream.expovariate(3.0),
        stream.getrandbits(16),
        stream.choice(["a", "b", "c", "d"]),
    ]
    redeck = list(range(8))
    stream.shuffle(redeck)
    assert replayed == values
    assert redeck == deck
    assert replay_log.unconsumed() == {}
    assert replay_log.digest() == log.digest()


def test_json_roundtrip_is_bit_identical():
    log, _, _ = _recorded_pair()
    wire = json.dumps(log.to_dict())
    back = NDLog.from_dict(json.loads(wire), mode="record")
    assert back.digest() == log.digest()
    assert back.draw_counts() == log.draw_counts()


def test_truncated_log_is_detected_with_stream_and_seq():
    log, _, _ = _recorded_pair()
    data = log.to_dict()
    data["streams"]["zz-test"] = data["streams"]["zz-test"][:3]
    del data["digest"]  # truncation without the digest tripwire
    replay_log = NDLog.from_dict(data, mode="replay")
    stream = _replay_registry(replay_log).stream("zz-test")
    stream.random()
    stream.randrange(100)
    stream.randint(5, 9)
    with pytest.raises(ReplayDivergence) as exc:
        stream.uniform(0.0, 2.0)
    assert exc.value.stream == "zz-test"
    assert exc.value.seq == 3
    assert "log exhausted" in str(exc.value)


def test_corrupted_log_is_refused_before_replay_begins():
    log, _, _ = _recorded_pair()
    data = log.to_dict()
    data["streams"]["zz-test"][1][1] = 0  # tamper with a recorded value
    with pytest.raises(ReplayDivergence) as exc:
        NDLog.from_dict(data, mode="replay")
    assert "digest mismatch" in str(exc.value)


def test_method_mismatch_names_the_decision():
    log = NDLog(mode="record")
    log.record("zz-s", "random", 0.5)
    replay_log = NDLog.from_dict(log.to_dict(), mode="replay")
    with pytest.raises(ReplayDivergence) as exc:
        replay_log.replay("zz-s", "getrandbits")
    assert exc.value.stream == "zz-s"
    assert exc.value.seq == 0
    assert "method mismatch" in str(exc.value)


def test_never_recorded_stream_is_a_divergence():
    log = NDLog(mode="record")
    log.record("zz-s", "random", 0.5)
    replay_log = NDLog.from_dict(log.to_dict(), mode="replay")
    with pytest.raises(ReplayDivergence) as exc:
        replay_log.replay("zz-other", "random")
    assert exc.value.stream == "zz-other"
    assert "never recorded" in str(exc.value)


def test_unlogged_draw_during_replay_is_a_divergence():
    # A consumer that calls record() while the log replays is exactly the
    # unsafe_unlogged_draw bug class: refuse loudly.
    replay_log = NDLog.from_dict(
        NDLog(mode="record").to_dict(), mode="replay")
    with pytest.raises(ReplayDivergence) as exc:
        replay_log.record("zz-s", "random", 0.1)
    assert "unlogged" in str(exc.value)


def test_unconsumed_reports_leftover_draws():
    log = NDLog(mode="record")
    for _ in range(4):
        log.record("zz-s", "random", 0.25)
    replay_log = NDLog.from_dict(log.to_dict(), mode="replay")
    replay_log.replay("zz-s", "random")
    assert replay_log.unconsumed() == {"zz-s": 3}


def test_digest_is_per_stream_order_only():
    # Interleaving across streams is scheduling, not provenance: two logs
    # whose per-stream sequences match digest identically regardless of
    # global record order.
    a = NDLog(mode="record")
    a.record("zz-x", "random", 0.1)
    a.record("zz-y", "random", 0.2)
    a.record("zz-x", "random", 0.3)
    b = NDLog(mode="record")
    b.record("zz-y", "random", 0.2)
    b.record("zz-x", "random", 0.1)
    b.record("zz-x", "random", 0.3)
    assert a.digest() == b.digest()
    # ...but per-stream reordering must change it.
    c = NDLog(mode="record")
    c.record("zz-x", "random", 0.3)
    c.record("zz-y", "random", 0.2)
    c.record("zz-x", "random", 0.1)
    assert c.digest() != a.digest()


def test_attach_and_detach_on_a_world():
    world = World(seed=3)
    log = NDLog(mode="record")
    attach_ndlog(world, log)
    world.rng.stream("zz-live").random()
    assert log.draw_counts() == {"zz-live": 1}
    detach_ndlog(world)
    world.rng.stream("zz-live").random()  # no longer recorded
    assert log.draw_counts() == {"zz-live": 1}


def test_replay_mode_installs_tiebreak_replayer_iff_recorded():
    record = NDLog(mode="record")
    record.record(TIEBREAK_STREAM, "key", 17)
    world = World(seed=3)
    attach_ndlog(world, NDLog.from_dict(record.to_dict(), mode="replay"))
    assert isinstance(world.engine._tiebreak, ReplayTieBreak)
    assert world.engine._tiebreak.key(0) == 17

    bare = World(seed=3)
    attach_ndlog(bare, NDLog.from_dict(
        NDLog(mode="record").to_dict(), mode="replay"))
    assert bare.engine._tiebreak is None
