"""Tests for perf Layer 3: deterministic profiling, the L2<->L3
cross-reference, and the benchmark regression gate.

The load-bearing property is ISSUE acceptance: two same-seed profiled
runs must produce *identical* counter digests.  The cross-reference tests
pin the knob regression end to end — ``perf_unoptimized_digest`` re-hashes
every resident page, so on a memory-heavy workload the statecache PERF002
finding is confirmed-hot; a short run of the page-light ``net`` workload
downgrades pool findings whose counters stayed cold.
"""

from repro.analysis.linter import Finding
from repro.analysis.perfbench import (
    HOT_THRESHOLD,
    _bench_pool_index,
    check_bench,
    crossref,
    run_profiled_deployment,
)
from repro.replication.config import NiliconConfig


def test_profiled_run_is_deterministic():
    runs = [
        run_profiled_deployment("net", run_ms=300, seed=1) for _ in range(2)
    ]
    assert runs[0].digest == runs[1].digest
    assert runs[0].counters == runs[1].counters
    assert runs[0].events == runs[1].events > 0


def test_profiled_digest_tracks_work_done():
    # Catalog workloads draw no randomness (seed feeds fault injection
    # only), so sensitivity is tested by run length: a longer run does
    # strictly more work and must change the digest.
    a = run_profiled_deployment("net", run_ms=300, seed=1)
    b = run_profiled_deployment("net", run_ms=600, seed=1)
    assert b.events > a.events
    assert a.digest != b.digest


def test_profiled_counters_cover_every_subsystem():
    run = run_profiled_deployment("net", run_ms=400, seed=1)
    c = run.counters
    assert c["engine.events"] == run.events
    # The replication pipeline ran: epochs traced, pages written/digested,
    # images stored, digests verified on the backup.
    assert c.get("trace.epoch", 0) > 0
    assert c.get("mm.pages_written", 0) > 0
    assert c.get("digest.pages_digested", 0) > 0
    assert c.get("pagestore.pages_stored", 0) > 0


def test_unoptimized_digest_knob_is_confirmed_hot():
    # The statecache PERF002 debt is paid (the real tree lints clean), so
    # the L2<->L3 contract is pinned with a synthetic finding at the same
    # site: under the knob, the profiler's digest counters must confirm a
    # statecache finding as hot.
    finding = Finding(
        rule_id="PERF002",
        path="src/repro/replication/statecache.py",
        line=1,
        col=0,
        message="synthetic",
        severity="warning",
    )
    config = NiliconConfig.nilicon().with_(perf_unoptimized_digest=True)
    run = run_profiled_deployment("lighttpd", run_ms=400, seed=1,
                                  config=config)
    entries = crossref([finding], run.counters)
    assert all(e["status"] == "confirmed-hot" for e in entries)
    assert all(e["observed"] >= HOT_THRESHOLD for e in entries)
    assert all("digest.pages_digested" in e["evidence"] for e in entries)


def test_knob_rehashes_more_pages_than_default():
    config = NiliconConfig.nilicon().with_(perf_unoptimized_digest=True)
    unopt = run_profiled_deployment("lighttpd", run_ms=400, seed=1,
                                    config=config)
    opt = run_profiled_deployment("lighttpd", run_ms=400, seed=1)
    assert (
        unopt.counters["digest.pages_digested"]
        > opt.counters["digest.pages_digested"]
    )


def test_crossref_downgrades_cold_findings():
    finding = Finding(
        rule_id="PERF006",
        path="src/repro/fleet/pool.py",
        line=1,
        col=0,
        message="synthetic",
        severity="warning",
    )
    entries = crossref([finding], {"pool.slot_ops": 0})
    assert entries[0]["status"] == "downgraded"
    assert entries[0]["observed"] == 0
    assert entries[0]["rule"] == "PERF006"

    hot = crossref([finding], {"pool.slot_ops": 40, "pool.load_queries": 30})
    assert hot[0]["status"] == "confirmed-hot"
    assert hot[0]["observed"] == 70


def _bench_doc(events_per_sec=40_000, speedup=1.1):
    return {
        "workloads": {
            "net": {"events_per_sec": events_per_sec},
        },
        "optimizations": {
            "engine_run_fast_path": {"speedup": speedup},
        },
    }


def test_check_bench_passes_within_tolerance():
    assert check_bench(_bench_doc(33_000), _bench_doc(40_000)) == []


def test_check_bench_flags_workload_regression():
    problems = check_bench(_bench_doc(events_per_sec=10_000),
                           _bench_doc(events_per_sec=40_000))
    assert len(problems) == 1
    assert "net" in problems[0]


def test_check_bench_flags_fast_path_regression():
    problems = check_bench(_bench_doc(speedup=0.5), _bench_doc())
    assert len(problems) == 1
    assert "engine_run_fast_path" in problems[0]


def test_check_bench_skips_workloads_missing_from_baseline():
    current = _bench_doc(events_per_sec=10_000)
    current["workloads"]["zz_new"] = {"events_per_sec": 1}
    baseline = _bench_doc(events_per_sec=10_000)
    assert check_bench(current, baseline) == []


def test_pool_index_matches_scan_and_wins():
    result = _bench_pool_index(queries=20_000, seed=1)
    assert result["equivalent"] is True
    assert result["speedup"] > 1.0
