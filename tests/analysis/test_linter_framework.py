"""Tests for the nlint framework: registry, suppressions, reporters."""

import json
from pathlib import Path

import pytest

from repro.analysis.linter import REGISTRY, Finding, all_rules, lint_paths, lint_source
from repro.analysis.report import render_json, render_text

SRC_ROOT = Path(__file__).parents[2] / "src"


def test_registry_has_at_least_six_rules():
    rules = all_rules()
    ids = {rule.rule_id for rule in rules}
    assert len(ids) >= 6
    assert {"DET001", "DET002", "DET003", "SIM001", "EXC001", "CKPT001"} <= ids


def test_all_rules_select_subset_and_unknown():
    only = all_rules(select=["DET001"])
    assert [r.rule_id for r in only] == ["DET001"]
    with pytest.raises(KeyError):
        all_rules(select=["NOPE999"])


def test_every_rule_documents_itself():
    for rule in all_rules():
        assert rule.summary, f"{rule.rule_id} has no summary"
        assert rule.interests, f"{rule.rule_id} declares no node interests"
        assert rule.rule_id in REGISTRY


def test_suppression_specific_rule():
    src = "import time\ndef f():\n    return time.time()  # nlint: disable=DET001\n"
    assert lint_source(src, "src/repro/sim/x.py") == []


def test_suppression_bare_disables_all():
    src = "import time\ndef f():\n    return time.time()  # nlint: disable\n"
    assert lint_source(src, "src/repro/sim/x.py") == []


def test_suppression_wrong_rule_id_does_not_apply():
    src = "import time\ndef f():\n    return time.time()  # nlint: disable=DET002\n"
    findings = lint_source(src, "src/repro/sim/x.py")
    assert [f.rule_id for f in findings] == ["DET001"]


def test_syntax_error_reported_as_e999():
    findings = lint_source("def broken(:\n", "src/repro/x.py")
    assert len(findings) == 1
    assert findings[0].rule_id == "E999"


def test_findings_sorted_deterministically():
    src = (
        "import time, os\n"
        "def f():\n"
        "    a = os.urandom(4)\n"
        "    b = time.time()\n"
    )
    findings = lint_source(src, "src/repro/kernel/x.py")
    assert [f.line for f in findings] == sorted(f.line for f in findings)


def test_render_text_includes_position_and_summary():
    findings = [
        Finding(rule_id="DET001", path="a.py", line=3, col=4, message="msg")
    ]
    text = render_text(findings)
    assert "a.py:3:4: DET001 msg" in text
    assert "1 finding(s)" in text
    assert render_text([]) == "nlint: no findings"


def test_render_json_shape():
    findings = [
        Finding(rule_id="DET002", path="b.py", line=1, col=0, message="m")
    ]
    payload = json.loads(render_json(findings))
    assert payload["count"] == 1
    assert payload["findings"][0] == {
        "rule": "DET002",
        "path": "b.py",
        "line": 1,
        "col": 0,
        "message": "m",
        "severity": "error",
    }


def test_lint_paths_walks_directories(tmp_path):
    bad = tmp_path / "sim" / "bad.py"
    bad.parent.mkdir()
    bad.write_text("import time\ndef f():\n    return time.time()\n")
    (tmp_path / "sim" / "__pycache__").mkdir()
    findings = lint_paths([tmp_path])
    assert [f.rule_id for f in findings] == ["DET001"]


def test_source_tree_is_clean():
    """The self-clean guarantee: the shipped tree has zero findings, so the
    CI gate (`python -m repro lint src/` exiting non-zero) stays meaningful."""
    assert lint_paths([SRC_ROOT]) == []
