"""Unit tests for the happens-before race detector (nraces)."""

from repro.analysis.races import (
    TRACKED_STATE,
    install_detector,
    recorded_fields,
    uninstall_detector,
    verify_access_coverage,
)
from repro.sim import AnyOf, Engine, Event
from repro.sim.access import record_access


def _checks(detector):
    return [f.check for f in detector.findings]


# --------------------------------------------------------------------------- #
# Same-timestamp conflicts                                                    #
# --------------------------------------------------------------------------- #


def test_unordered_same_time_writes_flagged():
    eng = Engine()
    det = install_detector(eng)

    def writer(name):
        yield eng.timeout(100)
        record_access(eng, "state", "field", "w", site=name)

    eng.process(writer("a"), name="writer-a")
    eng.process(writer("b"), name="writer-b")
    eng.run()

    assert _checks(det) == ["same-time-conflict"]
    finding = det.findings[0]
    assert finding.at_us == 100
    assert {a[1] for a in finding.accesses} == {"writer-a", "writer-b"}
    assert "writer-a" in finding.message and "writer-b" in finding.message


def test_same_time_writes_with_happens_before_edge_not_flagged():
    eng = Engine()
    det = install_detector(eng)
    gate = Event(eng)

    def first():
        yield eng.timeout(100)
        record_access(eng, "state", "field", "w", site="first")
        gate.succeed(None)

    def second():
        yield gate
        record_access(eng, "state", "field", "w", site="second")

    eng.process(first())
    eng.process(second())
    eng.run()
    assert det.findings == []
    assert det.accesses_recorded == 2


def test_reads_never_conflict_with_reads():
    eng = Engine()
    det = install_detector(eng)

    def reader():
        yield eng.timeout(100)
        record_access(eng, "state", "field", "r")

    eng.process(reader())
    eng.process(reader())
    eng.run()
    assert det.findings == []


def test_unordered_same_time_read_write_flagged():
    eng = Engine()
    det = install_detector(eng)

    def reader():
        yield eng.timeout(100)
        record_access(eng, "state", "field", "r", site="reader")

    def writer():
        yield eng.timeout(100)
        record_access(eng, "state", "field", "w", site="writer")

    eng.process(reader())
    eng.process(writer())
    eng.run()
    assert _checks(det) == ["same-time-conflict"]


def test_same_task_accesses_never_conflict():
    eng = Engine()
    det = install_detector(eng)

    def proc():
        yield eng.timeout(100)
        record_access(eng, "state", "field", "w")
        record_access(eng, "state", "field", "w")

    eng.process(proc())
    eng.run()
    assert det.findings == []


def test_different_fields_and_keys_do_not_conflict():
    eng = Engine()
    det = install_detector(eng)

    def writer(field, key):
        yield eng.timeout(100)
        record_access(eng, "state", field, "w", key=key)

    eng.process(writer("a", None))
    eng.process(writer("b", None))
    eng.process(writer("a", 1))
    eng.process(writer("a", 2))
    eng.run()
    assert det.findings == []


def test_different_timestamps_do_not_conflict():
    eng = Engine()
    det = install_detector(eng)

    def writer(delay):
        yield eng.timeout(delay)
        record_access(eng, "state", "field", "w")

    eng.process(writer(100))
    eng.process(writer(200))
    eng.run()
    assert det.findings == []


def test_interrupt_creates_happens_before_edge():
    """The interrupter's clock travels on the Interrupt, so a write made
    by the victim's except-handler at the same instant is ordered."""
    from repro.sim import Interrupt

    eng = Engine()
    det = install_detector(eng)
    box = []

    def interrupter():
        yield eng.timeout(100)
        record_access(eng, "state", "field", "w", site="pre-interrupt")
        box[0].interrupt()

    def victim():
        try:
            yield eng.timeout(1_000)
        except Interrupt:
            record_access(eng, "state", "field", "w", site="handler")

    eng.process(interrupter())
    box.append(eng.process(victim()))
    eng.run()
    assert det.findings == []


def test_anyof_join_creates_happens_before_edges():
    """A condition waiter happens-after *all* constituents it joined —
    including already-settled ones."""
    eng = Engine()
    det = install_detector(eng)
    a, b = Event(eng), Event(eng)

    def producer(event, delay, site):
        yield eng.timeout(delay)
        record_access(eng, "state", "field", "w", site=site)
        event.succeed(None)

    def waiter():
        yield AnyOf(eng, [a, b])
        # Resumes at t=100 when `a` fires; joined a's producer clock.
        record_access(eng, "state", "field", "w", site="waiter")

    eng.process(producer(a, 100, "prod-a"))
    eng.process(waiter())
    eng.run()
    assert det.findings == []


# --------------------------------------------------------------------------- #
# Ordering obligations ("r+")                                                 #
# --------------------------------------------------------------------------- #


def test_ordered_read_with_no_write_at_all():
    eng = Engine()
    det = install_detector(eng)

    def reader():
        yield eng.timeout(100)
        record_access(eng, "ledger", "commit", "r+", key=7, site="release")

    eng.process(reader())
    eng.run()
    assert _checks(det) == ["missing-write-for-ordered-read"]
    assert det.findings[0].key == 7


def test_ordered_read_after_ordered_write_is_clean():
    eng = Engine()
    det = install_detector(eng)
    gate = Event(eng)

    def committer():
        yield eng.timeout(50)
        record_access(eng, "ledger", "commit", "w", key=7, site="commit")
        gate.succeed(None)

    def releaser():
        yield gate
        yield eng.timeout(100)  # any later time; the edge persists
        record_access(eng, "ledger", "commit", "r+", key=7, site="release")

    eng.process(committer())
    eng.process(releaser())
    eng.run()
    assert det.findings == []


def test_ordered_read_after_unordered_write_flagged():
    eng = Engine()
    det = install_detector(eng)

    def committer():
        yield eng.timeout(50)
        record_access(eng, "ledger", "commit", "w", key=7, site="commit")

    def releaser():
        # No edge from the committer: different process, independent timer.
        yield eng.timeout(100)
        record_access(eng, "ledger", "commit", "r+", key=7, site="release")

    eng.process(committer())
    eng.process(releaser())
    eng.run()
    assert _checks(det) == ["unordered-ordered-read"]
    assert "release" in det.findings[0].message
    assert "commit" in det.findings[0].message


def test_write_after_unordered_read_flagged():
    eng = Engine()
    det = install_detector(eng)

    def releaser():
        yield eng.timeout(50)
        record_access(eng, "ledger", "commit", "r+", key=7, site="release")

    def committer():
        yield eng.timeout(100)
        record_access(eng, "ledger", "commit", "w", key=7, site="commit")

    eng.process(releaser())
    eng.process(committer())
    eng.run()
    # The read itself is a missing-write finding; the late write is the
    # companion write-after-unordered-read.
    assert sorted(_checks(det)) == [
        "missing-write-for-ordered-read",
        "write-after-unordered-read",
    ]


# --------------------------------------------------------------------------- #
# Reporting mechanics                                                         #
# --------------------------------------------------------------------------- #


def test_findings_deduplicate_across_keys():
    """One broken path produces one finding, not one per epoch."""
    eng = Engine()
    det = install_detector(eng)

    def reader():
        for key in range(5):
            yield eng.timeout(10)
            record_access(eng, "ledger", "commit", "r+", key=key, site="release")

    eng.process(reader(), name="releaser")
    eng.run()
    assert len(det.findings) == 1
    assert det.dropped_findings == 4
    report = det.report()
    assert report["count"] == 1
    assert report["dropped_findings"] == 4
    assert report["accesses_recorded"] == 5
    assert "releaser" in report["tasks"]


def test_max_findings_cap():
    eng = Engine()
    det = install_detector(eng, max_findings=2)

    def reader(field):
        yield eng.timeout(10)
        record_access(eng, "ledger", field, "r+")

    for i in range(5):
        eng.process(reader(f"f{i}"))
    eng.run()
    assert len(det.findings) == 2
    assert det.dropped_findings == 3


def test_record_access_is_noop_without_detector():
    eng = Engine()

    def proc():
        yield eng.timeout(10)
        record_access(eng, "state", "field", "w")

    eng.process(proc())
    eng.run()  # nothing to assert beyond "does not blow up"
    assert eng._race_detector is None


def test_uninstall_detaches():
    eng = Engine()
    det = install_detector(eng)
    uninstall_detector(eng)

    def proc():
        yield eng.timeout(10)
        record_access(eng, "state", "field", "r+")

    eng.process(proc())
    eng.run()
    assert det.findings == []
    assert det.accesses_recorded == 0


def test_object_labels_are_stable_and_distinct():
    eng = Engine()
    det = install_detector(eng)

    class Store:
        pass

    s1, s2 = Store(), Store()

    def writer(obj, site):
        yield eng.timeout(100)
        record_access(eng, obj, "field", "w", site=site)

    eng.process(writer(s1, "a"))
    eng.process(writer(s2, "b"))  # distinct object: no conflict
    eng.process(writer(s1, "c"))  # same object as "a": conflict
    eng.run()
    assert len(det.findings) == 1
    assert det.findings[0].label == "Store"


# --------------------------------------------------------------------------- #
# AST coverage check                                                          #
# --------------------------------------------------------------------------- #


def test_repo_access_coverage_is_complete():
    assert verify_access_coverage("src") == []


def test_recorded_fields_sees_real_sites():
    found = recorded_fields("src")
    assert ("egress_barrier", "w") in found["replication/netbuffer.py"]
    assert ("epoch_commit", "w") in found["replication/backup.py"]
    # The HyCoR log path owns the flush-durability ledger and the backup's
    # stored-flush window.  (The netbuffer's cross-module ordering read is
    # parameterized by commit_ledger_kind — epoch_commit vs log_commit — so
    # the literal-only AST scan no longer sees it; the runtime detector
    # still orders both kinds through the same durable:<name> object.)
    assert ("log_commit", "w") in found["replication/hycor.py"]
    assert ("log_store", "w") in found["replication/hycor.py"]


def test_coverage_check_catches_missing_write(tmp_path, monkeypatch):
    pkg = tmp_path / "replication"
    pkg.mkdir()
    (pkg / "netbuffer.py").write_text(
        "def f(engine):\n"
        "    record_access(engine, 'x', 'egress_barrier', 'r')\n",
        encoding="utf-8",
    )
    problems = verify_access_coverage(tmp_path)
    assert any("no record_access(..., 'w')" in p for p in problems)
    # Other declared modules have no sites at all under tmp_path.
    assert any("no record_access sites" in p for p in problems)


def test_coverage_check_catches_undeclared_field(tmp_path):
    pkg = tmp_path / "somewhere"
    pkg.mkdir()
    (pkg / "mod.py").write_text(
        "def f(engine):\n"
        "    record_access(engine, 'x', 'not_a_declared_field', 'w')\n",
        encoding="utf-8",
    )
    problems = verify_access_coverage(tmp_path)
    assert any("undeclared field 'not_a_declared_field'" in p for p in problems)


def test_tracked_state_names_are_declared_once():
    # A field name appearing under two modules would make the "who writes
    # it" contract ambiguous; keep declarations disjoint.
    seen = {}
    for module, fields in TRACKED_STATE.items():
        for field in fields:
            assert field not in seen, (
                f"{field!r} declared by both {seen[field]} and {module}"
            )
            seen[field] = module
