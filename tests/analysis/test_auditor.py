"""Tests for the runtime state auditor: unit sweeps, injected faults, and
the end-to-end audit-enabled epoch loop."""

import pytest

from repro.analysis.auditor import InvariantViolation, StateAuditor
from repro.kernel.costmodel import CostModel
from repro.kernel.mm import AddressSpace, Vma
from repro.kernel.task import Process
from repro.net import World
from repro.replication import NiliconConfig
from repro.sim import ms

from tests.replication.conftest import make_deployment


def make_mm(n_pages=64):
    mm = AddressSpace(CostModel(), name="test-mm")
    mm.mmap(Vma(start=0, n_pages=n_pages, kind="heap", name="[heap]"))
    return mm


class FakeContainer:
    """Minimal container shim: one process, no sockets, no mounts."""

    def __init__(self, mm):
        self.processes = [Process(comm="fake", address_space=mm)]
        self.stack = _EmptyStack()

    def mounted_filesystems(self):
        return []


class _EmptyStack:
    connections: dict = {}
    name = "fake-stack"


# --------------------------------------------------------------------------- #
# Soft-dirty shadow                                                            #
# --------------------------------------------------------------------------- #
class TestSoftDirtyShadow:
    def test_clean_epoch_passes(self):
        mm = make_mm()
        auditor = StateAuditor()
        auditor.attach_address_space(mm)
        mm.start_tracking("soft_dirty")
        for i in range(10):
            mm.write(i, b"x")
        assert auditor.audit_epoch(FakeContainer(mm)) == []
        mm.clear_refs()
        mm.write(3, b"y")
        assert auditor.audit_epoch(FakeContainer(mm)) == []
        assert auditor.epochs_audited == 2

    def test_dropped_dirty_bit_detected(self):
        """The satellite requirement: a dirty page silently dropped from
        soft-dirty tracking must be caught."""
        mm = make_mm()
        auditor = StateAuditor()
        auditor.attach_address_space(mm)
        mm.start_tracking("soft_dirty")
        for i in range(8):
            mm.write(i, b"x")
        mm._tracking.dirty.discard(5)  # inject: kernel loses a dirty bit
        with pytest.raises(InvariantViolation) as excinfo:
            auditor.audit_epoch(FakeContainer(mm))
        (violation,) = excinfo.value.violations
        assert violation.invariant == "soft_dirty"
        assert "missing=[5]" in violation.diff()

    def test_spurious_dirty_bit_detected(self):
        mm = make_mm()
        auditor = StateAuditor(raise_on_violation=False)
        auditor.attach_address_space(mm)
        mm.start_tracking("soft_dirty")
        mm.write(1, b"x")
        mm._tracking.dirty.add(9)  # inject: phantom dirty bit
        found = auditor.audit_epoch(FakeContainer(mm))
        assert any("spurious=[9]" in v.diff() for v in found)

    def test_munmap_keeps_shadow_consistent(self):
        mm = make_mm()
        vma2 = Vma(start=100, n_pages=8, kind="anon")
        mm.mmap(vma2)
        auditor = StateAuditor()
        auditor.attach_address_space(mm)
        mm.start_tracking("soft_dirty")
        mm.write(2, b"a")
        mm.write(101, b"b")
        mm.munmap(vma2)
        assert auditor.audit_epoch(FakeContainer(mm)) == []

    def test_attach_mid_run_adopts_current_view(self):
        mm = make_mm()
        mm.start_tracking("soft_dirty")
        mm.write(4, b"pre-attach")
        auditor = StateAuditor()
        auditor.attach_address_space(mm)  # after writes already happened
        mm.write(5, b"post-attach")
        assert auditor.audit_epoch(FakeContainer(mm)) == []


# --------------------------------------------------------------------------- #
# VMA / fd invariants                                                          #
# --------------------------------------------------------------------------- #
class TestStructuralInvariants:
    def test_resident_page_outside_vma_detected(self):
        mm = make_mm()
        mm.pages[999] = b"stray"  # inject: bypass write() mapping check
        auditor = StateAuditor(raise_on_violation=False)
        found = auditor.audit_epoch(FakeContainer(mm))
        assert any(v.invariant == "vma" for v in found)

    def test_fd_key_mismatch_detected(self):
        mm = make_mm()
        container = FakeContainer(mm)
        process = container.processes[0]
        entry = process.install_fd("file", object())
        process.fds[entry.fd + 7] = process.fds.pop(entry.fd)  # inject
        auditor = StateAuditor(raise_on_violation=False)
        found = auditor.audit_epoch(container)
        assert any(v.invariant == "fd" for v in found)

    def test_dead_fd_object_detected(self):
        mm = make_mm()
        container = FakeContainer(mm)
        container.processes[0].install_fd("socket", None)  # inject
        auditor = StateAuditor(raise_on_violation=False)
        found = auditor.audit_epoch(container)
        assert any(
            v.invariant == "fd" and "no kernel object" in v.message for v in found
        )


# --------------------------------------------------------------------------- #
# TCP invariants (real sockets via a world-level connection)                   #
# --------------------------------------------------------------------------- #
def established_pair():
    """Build a genuinely established client/server socket pair."""
    world = World(seed=11)
    from repro.kernel.netdev import NetDevice
    from repro.kernel.tcp import TcpStack

    stacks = []
    for i in range(2):
        stack = TcpStack(world.engine, world.costs, f"10.9.0.{i + 1}", name=f"s{i}")
        dev = NetDevice(f"t{i}", f"10.9.0.{i + 1}", f"02:00:00:00:09:{i:02x}", world.engine)
        stack.attach_device(dev)
        world.bridge.attach(dev)
        stacks.append(stack)
    server_stack, client_stack = stacks

    listener = server_stack.socket()
    listener.listen(80)
    client = client_stack.socket()
    result = {}

    def connect():
        yield client.connect("10.9.0.1", 80)

    def accept():
        sock = yield listener.accept()
        result["server"] = sock

    world.engine.process(connect())
    world.engine.process(accept())
    world.run(until=ms(50))
    return world, client, result["server"], server_stack, client_stack


class TestTcpInvariants:
    def test_established_connection_passes(self):
        world, client, server, server_stack, client_stack = established_pair()
        client.send(b"hello" * 100)
        world.run(until=ms(100))
        auditor = StateAuditor(raise_on_violation=False)
        for stack in (server_stack, client_stack):
            assert auditor._check_tcp(stack) == []

    def test_corrupted_snd_una_detected(self):
        world, client, server, server_stack, client_stack = established_pair()
        client.snd_una = client.snd_nxt + 100  # inject
        auditor = StateAuditor(raise_on_violation=False)
        found = auditor._check_tcp(client_stack)
        assert any("snd_una" in v.message for v in found)

    def test_write_queue_gap_detected(self):
        world, client, server, server_stack, client_stack = established_pair()
        # Inject: unacked bytes present but missing from the write queue.
        client.snd_nxt += 40
        auditor = StateAuditor(raise_on_violation=False)
        found = auditor._check_tcp(client_stack)
        assert any(v.invariant == "tcp" for v in found)


# --------------------------------------------------------------------------- #
# End-to-end: audit-enabled replication epoch loop                             #
# --------------------------------------------------------------------------- #
class TestEndToEnd:
    def test_epoch_loop_with_auditing_has_no_false_positives(self):
        world = World(seed=23)
        deployment = make_deployment(
            world, config=NiliconConfig.nilicon().with_(audit=True)
        )
        container = deployment.container
        proc = container.processes[0]
        heap = container.heap_vma

        def workload():
            step = 0
            while not container.dead and world.now < ms(400):
                def mutate(s=step):
                    proc.mm.write(heap.start + (s % 64), f"v{s}".encode())
                try:
                    yield from container.run_slice(proc, 500, mutate=mutate)
                except Exception:
                    return
                step += 1

        world.engine.process(workload())
        deployment.start()
        world.run(until=ms(400))
        deployment.stop()
        auditor = deployment.auditor
        assert auditor is not None
        assert auditor.epochs_audited >= 5
        assert auditor.violations == []
        assert deployment.metrics.n_epochs >= 5  # replication ran normally

    def test_failover_restore_is_audited(self):
        world = World(seed=23)
        deployment = make_deployment(
            world, config=NiliconConfig.nilicon().with_(audit=True)
        )
        deployment.start()
        world.run(until=ms(500))
        deployment.inject_fail_stop()
        world.run(until=ms(1500))
        assert deployment.failed_over
        auditor = deployment.auditor
        assert auditor.restores_audited == 1
        assert auditor.violations == []

    def test_audit_off_installs_no_hook(self):
        world = World(seed=23)
        deployment = make_deployment(world)  # default: audit=False
        assert deployment.auditor is None
        assert all(
            p.mm.audit_hook is None for p in deployment.container.processes
        )
