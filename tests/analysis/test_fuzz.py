"""Schedule fuzzer, digests, and golden-file pinning."""

import json
from pathlib import Path

from repro.analysis.fuzz import (
    GOLDEN_RUN_MS,
    GOLDEN_SEEDS,
    ReversedTieBreak,
    golden_digests,
    run_fuzz,
    run_instrumented,
    trace_digest,
)
from repro.sim.trace import Tracer

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "golden" / "digests.json"


# --------------------------------------------------------------------------- #
# Digest mechanics                                                            #
# --------------------------------------------------------------------------- #


def test_trace_digest_is_order_insensitive_but_content_sensitive():
    a, b = Tracer(), Tracer()
    a.emit(10, "net", "send", epoch=1)
    a.emit(20, "net", "recv", epoch=1)
    b.emit(20, "net", "recv", epoch=1)
    b.emit(10, "net", "send", epoch=1)
    assert trace_digest(a) == trace_digest(b)

    c = Tracer()
    c.emit(10, "net", "send", epoch=2)  # different detail
    c.emit(20, "net", "recv", epoch=1)
    assert trace_digest(c) != trace_digest(a)


def test_trace_digest_ignores_timestamps_but_counts_multiplicity():
    a, b = Tracer(), Tracer()
    a.emit(10, "net", "send", epoch=1)
    b.emit(99, "net", "send", epoch=1)  # same content, shifted in time
    assert trace_digest(a) == trace_digest(b)

    b.emit(100, "net", "send", epoch=1)  # same content *twice*
    assert trace_digest(a) != trace_digest(b)


def test_dropped_events_poison_the_digest():
    full = Tracer(limit=2)
    full.emit(1, "net", "send", n=1)
    full.emit(2, "net", "send", n=2)
    intact = trace_digest(full)

    full.emit(3, "net", "send", n=3)  # over the limit
    assert full.dropped == 1
    assert trace_digest(full) != intact


# --------------------------------------------------------------------------- #
# Instrumented runs and the fuzz grid                                         #
# --------------------------------------------------------------------------- #


def test_run_instrumented_clean_run_has_no_findings():
    probe = run_instrumented("net", seed=1, run_ms=500)
    assert probe.findings == []
    assert probe.audit_violations == []
    assert probe.accesses_recorded > 0
    assert probe.trace_dropped == 0
    assert probe.metrics["completed"] > 0
    assert probe.metrics["errors"] == 0
    d = probe.as_dict()
    assert d["schedule"] == "fifo"
    assert d["trace_digest"] == probe.trace_digest


def test_run_instrumented_is_schedule_independent():
    base = run_instrumented("net", seed=1, run_ms=500)
    flipped = run_instrumented(
        "net", seed=1, run_ms=500,
        tiebreak=ReversedTieBreak(), schedule_name="reversed",
    )
    assert flipped.trace_digest == base.trace_digest
    assert flipped.metrics_digest == base.metrics_digest


def test_run_fuzz_small_grid_converges():
    report = run_fuzz(
        workloads=("net",), seeds=(1,), permutations=2, run_ms=500,
    )
    assert report["ok"] is True
    assert report["divergences"] == []
    assert report["findings"] == []
    # Alternates vs the fifo baseline: reversed + 1 permutation.
    assert len(report["cells"]) == 2
    assert all(c["identical"] for c in report["cells"])


# --------------------------------------------------------------------------- #
# Golden digests                                                              #
# --------------------------------------------------------------------------- #


def test_golden_digests_match_checked_in_file():
    """Pin per-seed digests: a diff here means either a deliberate protocol
    change (regenerate with `make golden-regen`) or an accidental
    nondeterminism regression."""
    on_disk = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    recomputed = golden_digests()
    assert on_disk["run_ms"] == GOLDEN_RUN_MS
    assert recomputed["run_ms"] == GOLDEN_RUN_MS
    cells = [k for k in recomputed if k != "run_ms"]
    assert len(cells) == len(GOLDEN_SEEDS) * 2  # two pinned workloads
    for cell in cells:
        assert on_disk[cell]["trace"] == recomputed[cell]["trace"], cell
        assert on_disk[cell]["metrics"] == recomputed[cell]["metrics"], cell
