"""Tests for the recovery-path coverage analyzer's static layers.

Synthetic scope-file overrides exercise the inventory, the selfcheck and
each FTC rule in isolation (``zz_``-prefixed names keep clear of real
code); the real-tree tests pin the ISSUE acceptance criteria: the
selfcheck accounts for every failure-handling site in the package, every
``fault_point()`` call site is registered, and the only FTC finding is
the frozen ``UNSAFE_DROP_SCENARIO`` knob entry.
"""

import textwrap
from pathlib import Path

from repro.analysis.ftcov import (
    analyze_ftcov,
    build_ft_inventory,
    ftcov_selfcheck,
    load_ftcov_sources,
)

_SCOPE = "replication/zz_scope.py"


def inventory(code, path=_SCOPE):
    sources = load_ftcov_sources({path: textwrap.dedent(code)})
    inv = build_ft_inventory(sources)
    return [s for s in inv.sites if s.path.endswith(path)]


def findings(code, select=None, path=_SCOPE):
    report = analyze_ftcov(
        select=select, overrides={path: textwrap.dedent(code)})
    return [f for f in report.findings if f.path.endswith(path)]


def selfcheck_problems(code, path=_SCOPE):
    sources = load_ftcov_sources({path: textwrap.dedent(code)})
    problems, _ = ftcov_selfcheck(sources)
    return [p for p in problems if path in p]


# --------------------------------------------------------------------------- #
# Layer 1: inventory + classification                                         #
# --------------------------------------------------------------------------- #


def test_hooked_handler_is_auto_exercised():
    (site,) = inventory(
        """
        def zz_loop(self):
            try:
                pass
            except Exception:
                coverage_mark(self.engine, "handler", "zz.recover")
        """
    )
    assert site.kind == "handler"
    assert site.hook == "zz.recover"
    assert site.broad
    assert site.ft_class == "exercised"
    assert site.accounted


def test_annotation_classifies_and_carries_why():
    (site,) = inventory(
        """
        def zz_loop(self):
            try:
                pass
            except Exception:  # ft: defensive -- model makes this dead
                return None
        """
    )
    assert site.annotated == "defensive"
    assert site.why == "model makes this dead"
    assert site.accounted


def test_narrow_handler_is_inventoried_but_not_broad():
    (site,) = inventory(
        """
        def zz_loop(self):
            try:
                pass
            except ValueError:  # ft: defensive -- parse guard
                return None
        """
    )
    assert site.kind == "handler"
    assert not site.broad


def test_point_site_checks_runtime_registry():
    good, bad = inventory(
        """
        def zz_run(engine):
            fault_point(engine, "primary.post_freeze")
            fault_point(engine, "zz.unregistered")
        """
    )
    assert good.registered is True
    assert bad.registered is False


def test_unsafe_knob_is_inventoried_with_value():
    sites = inventory(
        """
        ZZ_OK = 1
        UNSAFE_ZZ_KNOB = "crash@zz"  # ft: unsafe -- regression knob
        """
    )
    (knob,) = [s for s in sites if s.kind == "knob"]
    assert knob.name == "UNSAFE_ZZ_KNOB"
    assert knob.extra == "crash@zz"
    assert knob.annotated == "unsafe"
    assert not knob.accounted  # unsafe stays lint-visible


def test_deadline_bounded_wait_loop_is_not_inventoried():
    assert inventory(
        """
        def zz_wait(engine, deadline):
            while engine.now < deadline:
                yield engine.timeout(5)
        """
    ) == []


def test_loop_with_break_is_not_inventoried():
    assert inventory(
        """
        def zz_wait(engine, flag):
            while not flag.done:
                if flag.cancelled:
                    break
                yield engine.timeout(5)
        """
    ) == []


def test_deadline_free_wait_loop_needs_annotation():
    (site,) = inventory(
        """
        def zz_wait(engine, flag):
            while not flag.done:
                yield engine.timeout(5)
        """
    )
    assert site.kind == "loop"
    assert site.ft_class is None


# --------------------------------------------------------------------------- #
# Layer 1.5: selfcheck rejections                                             #
# --------------------------------------------------------------------------- #


def test_selfcheck_rejects_unknown_vocabulary():
    problems = selfcheck_problems(
        """
        def zz_wait(engine, flag):
            while not flag.done:  # ft: bogus -- not a class
                yield engine.timeout(5)
        """
    )
    assert any("unknown ft class 'bogus'" in p for p in problems)


def test_selfcheck_rejects_orphan_annotation():
    problems = selfcheck_problems(
        """
        ZZ_PLAIN = 1  # ft: defensive -- classifies nothing
        """
    )
    assert any("annotation is not on an inventoried" in p for p in problems)


def test_selfcheck_rejects_unaccounted_site():
    problems = selfcheck_problems(
        """
        def zz_loop(self):
            try:
                pass
            except Exception:
                return None
        """
    )
    assert any("unaccounted failure-handling site" in p for p in problems)


def test_selfcheck_rejects_unregistered_point_site():
    problems = selfcheck_problems(
        """
        def zz_run(engine):
            fault_point(engine, "zz.unregistered")
        """
    )
    assert any("not in the points.py registry" in p for p in problems)


def test_selfcheck_rejects_backlog_without_scenario_name():
    problems = selfcheck_problems(
        """
        def zz_wait(engine, flag):
            while not flag.done:  # ft: backlog -- someday
                yield engine.timeout(5)
        """
    )
    assert any("must name the missing scenario" in p for p in problems)


def test_selfcheck_rejects_dynamic_point_name():
    problems = selfcheck_problems(
        """
        def zz_run(engine, name):
            fault_point(engine, f"zz.{name}")
        """
    )
    assert any("not a string literal" in p for p in problems)


# --------------------------------------------------------------------------- #
# Layer 2: one positive / suppressed / annotated-negative per rule            #
# --------------------------------------------------------------------------- #


def test_ftc001_flags_swallowing_broad_except():
    (f,) = findings(
        """
        def zz_loop(self):
            try:
                pass
            except Exception:
                return None
        """,
        select=["FTC001"],
    )
    assert f.rule_id == "FTC001"
    assert "swallows" in f.message


def test_ftc001_respects_suppression():
    assert findings(
        """
        def zz_loop(self):
            try:
                pass
            except Exception:  # nlint: disable=FTC001
                return None
        """,
        select=["FTC001"],
    ) == []


def test_ftc001_reraise_and_annotation_are_negative():
    assert findings(
        """
        def zz_loop(self):
            try:
                pass
            except Exception:  # ft: defensive -- guard argued here
                return None
            try:
                pass
            except Exception:
                raise
        """,
        select=["FTC001"],
    ) == []


def test_ftc002_flags_point_registered_but_never_armed():
    (f,) = findings(
        """
        FAULT_POINTS: dict = {
            "zz.never_armed": "a point no scenario arms",
        }
        """,
        select=["FTC002"],
        path="faultinject/points.py",
    )
    assert f.rule_id == "FTC002"
    assert "zz.never_armed" in f.message


def test_ftc002_flags_unsafe_knob_even_when_annotated():
    (f,) = findings(
        """
        UNSAFE_ZZ_KNOB = "crash@zz"  # ft: unsafe -- regression knob
        """,
        select=["FTC002"],
    )
    assert "UNSAFE_ZZ_KNOB" in f.message


def test_ftc003_flags_unclaimed_declared_edge():
    hits = findings(
        """
        MEMBER_STATES = ("zz_a", "zz_b")
        MEMBER_EDGES = (
            ("zz_a", "zz_b"),
        )
        """,
        select=["FTC003"],
        path="fleet/controller.py",
    )
    assert [f.rule_id for f in hits] == ["FTC003"]
    assert "zz_a->zz_b" in hits[0].message


def test_ftc003_backlog_annotation_is_negative():
    assert findings(
        """
        MEMBER_STATES = ("zz_a", "zz_b")
        MEMBER_EDGES = (
            ("zz_a", "zz_b"),  # ft: backlog -- scenario: zz.someday
        )
        """,
        select=["FTC003"],
        path="fleet/controller.py",
    ) == []


def test_ftc004_flags_deadline_free_wait_loop():
    (f,) = findings(
        """
        def zz_wait(engine, flag):
            while not flag.done:
                yield engine.timeout(5)
        """,
        select=["FTC004"],
    )
    assert f.rule_id == "FTC004"
    assert "no deadline" in f.message


def test_ftc004_bounded_annotation_is_negative():
    assert findings(
        """
        def zz_wait(engine, flag):
            while not flag.done:  # ft: bounded -- stop() flips done
                yield engine.timeout(5)
        """,
        select=["FTC004"],
    ) == []


def test_ftc005_flags_unobservable_inject():
    (f,) = findings(
        """
        def inject_zz_failure(self, host):
            host.fail_stop()
        """,
        select=["FTC005"],
    )
    assert f.rule_id == "FTC005"
    assert "inject_zz_failure" in f.message


def test_ftc005_coverage_hook_is_negative():
    assert findings(
        """
        def inject_zz_failure(self, host):
            coverage_mark(self.engine, "inject", "zz.failure")
            host.fail_stop()
        """,
        select=["FTC005"],
    ) == []


# --------------------------------------------------------------------------- #
# Real tree                                                                   #
# --------------------------------------------------------------------------- #


def test_real_tree_selfcheck_is_clean():
    problems, dispositions = ftcov_selfcheck()
    assert problems == []
    assert len(dispositions) >= 80  # points, edges, handlers, loops, ...


def test_real_tree_every_point_site_is_registered():
    inv = build_ft_inventory(load_ftcov_sources())
    point_sites = [s for s in inv.sites if s.kind == "point-site"]
    assert len(point_sites) >= 13
    assert all(s.registered for s in point_sites)
    assert len(inv.registry) >= 13


def test_real_tree_every_registered_point_is_armed():
    inv = build_ft_inventory(load_ftcov_sources())
    registry_sites = [s for s in inv.sites if s.kind == "point"]
    assert {s.name for s in registry_sites} == inv.registry
    assert all(s.name in inv.armed_points for s in registry_sites)


def test_real_tree_findings_are_exactly_the_knob():
    report = analyze_ftcov()
    assert [(f.rule_id, f.path) for f in report.findings] == [
        ("FTC002", "src/repro/faultinject/scenarios.py"),
    ]


def test_real_tree_findings_match_checked_in_baseline():
    from repro.analysis.baseline import apply_baseline, load_baseline

    baseline_file = (
        Path(__file__).resolve().parents[2] / "ftcov-baseline.json")
    baseline = load_baseline(baseline_file)
    part = apply_baseline(analyze_ftcov().findings, baseline)
    assert part.new == [], "un-baselined FTC findings: run repro ftcov lint"
    assert part.stale == [], "stale ftcov-baseline.json entries: re-freeze"
