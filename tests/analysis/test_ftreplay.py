"""Tests for the ftcov coverage recorder, crossref and catalog runner.

The crossref gap logic is pure (counters + inventory in, gaps out), so
every gap kind is pinned on synthetic inputs; the runner tests use small
catalog subsets to keep the determinism check fast, plus the real
drop-scenario knob run as the dynamic half of the two-witness story.
"""

import pytest

from repro.analysis.ftcov import FtInventory, FtSite
from repro.analysis.ftreplay import (
    FtcovRecorder,
    crossref_coverage,
    run_ftcov_record,
)


def _site(kind, name, **kw):
    return FtSite(kind=kind, path="zz.py", line=1, col=0, node=None,
                  name=name, **kw)


def _inventory():
    inv = FtInventory()
    inv.declared_edges = {"a->b", "b->c"}
    inv.claimed_edges = {"a->b"}
    for site in (
        _site("point", "zz.point", auto="exercised"),
        _site("edge", "a->b", auto="exercised"),
        _site("edge", "b->c", annotated="backlog",
              why="scenario: zz.missing"),
        _site("handler", "zz.recover", hook="zz.recover",
              auto="exercised"),
        _site("inject", "inject_zz", hook="zz.inject", auto="exercised"),
    ):
        inv.add(site)
    return inv


_FULL = {
    "point:zz.point": 5,
    "fired:zz.point": 1,
    "edge:a->b": 2,
    "handler:zz.recover": 1,
    "inject:zz.inject": 1,
}


def test_recorder_counts_and_digests_deterministically():
    a, b = FtcovRecorder(), FtcovRecorder()
    for rec in (a, b):
        rec.record("point", "zz.point")
        rec.record("point", "zz.point")
        rec.record("edge", "a->b")
    assert a.counters == {"point:zz.point": 2, "edge:a->b": 1}
    assert a.digest() == b.digest()
    assert len(a.digest()) == 8


def test_crossref_clean_when_everything_is_covered():
    report = crossref_coverage(_FULL, _inventory())
    assert report["gaps"] == []
    assert report["missing_scenarios"] == [
        {"edge": "b->c", "scenario": "zz.missing"}
    ]
    assert report["points"]["zz.point"] == {"reached": 5, "fired": 1}


@pytest.mark.parametrize("missing,expected", [
    ("point:zz.point", "point-unreached:zz.point"),
    ("fired:zz.point", "point-unfired:zz.point"),
    ("edge:a->b", "edge-unobserved:a->b"),
    ("handler:zz.recover", "handler-unentered:zz.recover"),
    ("inject:zz.inject", "inject-unused:zz.inject"),
])
def test_crossref_detects_each_gap_kind(missing, expected):
    counters = {k: v for k, v in _FULL.items() if k != missing}
    gaps = crossref_coverage(counters, _inventory())["gaps"]
    assert any(g.startswith(expected) for g in gaps)
    assert len(gaps) == 1


def test_crossref_flags_driven_backlog_edge_as_stale():
    counters = dict(_FULL, **{"edge:b->c": 1})
    report = crossref_coverage(counters, _inventory())
    assert any(g.startswith("stale-backlog:b->c") for g in report["gaps"])
    assert report["missing_scenarios"] == []


def test_crossref_flags_observed_undeclared_edge():
    counters = dict(_FULL, **{"edge:c->d": 1})
    gaps = crossref_coverage(counters, _inventory())["gaps"]
    assert any(g.startswith("undeclared-edge:c->d") for g in gaps)


def test_unknown_knob_is_rejected():
    with pytest.raises(KeyError):
        run_ftcov_record(knob="zz-bogus")


def test_record_subset_is_deterministic():
    kwargs = dict(
        pair_scenarios=["crash@primary.post_freeze"],
        fleet_scenarios=["fleet.both_hosts_failstop"],
        traffic_events=[],
    )
    first = run_ftcov_record(**kwargs)
    second = run_ftcov_record(**kwargs)
    assert first["runs_ok"] and second["runs_ok"]
    assert first["counters"] == second["counters"]
    assert first["digest"] == second["digest"]


def test_drop_scenario_knob_detects_the_seeded_gap():
    report = run_ftcov_record(knob="drop-scenario")
    assert report["mode"] == "knob"
    assert report["runs_ok"]
    assert report["seeded_gap_detected"]
    assert report["unexpected_gaps"] == []
    assert report["ok"]
    # The catalog really was mutilated: the dropped scenario is absent.
    assert all(r["name"] != "crash@backup.mid_commit" for r in report["runs"])
