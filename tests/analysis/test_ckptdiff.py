"""Tests for the differential checkpoint oracle (Layer 3).

The comparator unit tests run on synthetic classes with a synthetic
inventory; the oracle tests drive the real checkpoint -> restore ->
deep-compare loop, including the ISSUE acceptance path: a deliberately
dropped dump site must show up as a live state diff classified as a
*confirmed* CKPT101, not an analyzer bug.
"""

import pytest

from repro.analysis.ckptdiff import (
    ORACLE_WORKLOADS,
    _Comparator,
    compare_containers,
    run_oracle,
    run_oracle_suite,
)
from repro.analysis.coverage import analyze_coverage, build_inventory, load_source_set
from repro.criu.config import CriuConfig

# --------------------------------------------------------------------------- #
# Comparator unit tests (synthetic inventory + synthetic objects)             #
# --------------------------------------------------------------------------- #

_SYNTH_SRC = {
    "src/repro/kernel/synth.py": (
        "class Gadget:\n"
        "    def __init__(self):\n"
        "        self.value = 0\n"
        "        self.tags = {}\n"
        "        self.items = []\n"
        "        self.child = None\n"
        "        self.scratch = 0  # ckpt: ephemeral -- unit test\n"
        "        self.cache = 0  # ckpt: derived -- unit test\n"
        "    def poke(self):\n"
        "        self.value += 1\n"
        "class Child:\n"
        "    def __init__(self):\n"
        "        self.depth = 0\n"
        "    def sink(self):\n"
        "        self.depth += 1\n"
    )
}


class Child:
    def __init__(self, depth=0):
        self.depth = depth


class Gadget:
    def __init__(self, value=0, tags=None, items=None, child=None,
                 scratch=0, cache=0):
        self.value = value
        self.tags = dict(tags or {})
        self.items = list(items or [])
        self.child = child
        self.scratch = scratch
        self.cache = cache


@pytest.fixture(scope="module")
def synth_inventory():
    return build_inventory(_SYNTH_SRC)


def run_compare(inventory, a, b):
    cmp = _Comparator(inventory)
    cmp.compare_object("g", a, b)
    return cmp


def test_equal_objects_no_diffs(synth_inventory):
    cmp = run_compare(
        synth_inventory,
        Gadget(value=3, tags={"a": 1}, items=[1, 2]),
        Gadget(value=3, tags={"a": 1}, items=[1, 2]),
    )
    assert cmp.diffs == []
    assert cmp.fields_compared == 4  # value, tags, items, child


def test_scalar_diff_attributed_to_class_and_field(synth_inventory):
    cmp = run_compare(synth_inventory, Gadget(value=1), Gadget(value=2))
    assert [d.key for d in cmp.diffs] == [("Gadget", "value")]
    assert cmp.diffs[0].subject == "g.value"


def test_ephemeral_and_derived_fields_skipped(synth_inventory):
    cmp = run_compare(
        synth_inventory, Gadget(scratch=1, cache=5), Gadget(scratch=9, cache=0)
    )
    assert cmp.diffs == []


def test_dict_key_set_diff(synth_inventory):
    cmp = run_compare(
        synth_inventory, Gadget(tags={"a": 1, "b": 2}), Gadget(tags={"a": 1})
    )
    assert [d.key for d in cmp.diffs] == [("Gadget", "tags")]
    assert "'b'" in cmp.diffs[0].primary


def test_dict_value_diff_names_key_in_subject(synth_inventory):
    cmp = run_compare(
        synth_inventory, Gadget(tags={"a": 1}), Gadget(tags={"a": 2})
    )
    assert [d.key for d in cmp.diffs] == [("Gadget", "tags")]
    assert cmp.diffs[0].subject == "g.tags['a']"


def test_list_length_diff(synth_inventory):
    cmp = run_compare(synth_inventory, Gadget(items=[1]), Gadget(items=[1, 2]))
    assert [d.key for d in cmp.diffs] == [("Gadget", "items")]
    assert "len 1" in cmp.diffs[0].primary


def test_nested_object_diff_attributed_to_inner_class(synth_inventory):
    cmp = run_compare(
        synth_inventory,
        Gadget(child=Child(depth=1)),
        Gadget(child=Child(depth=2)),
    )
    assert [d.key for d in cmp.diffs] == [("Child", "depth")]
    assert cmp.diffs[0].subject == "g.child.depth"


def test_missing_attribute_reported(synth_inventory):
    a, b = Gadget(), Gadget()
    del b.value
    cmp = run_compare(synth_inventory, a, b)
    assert [d.key for d in cmp.diffs] == [("Gadget", "value")]
    assert cmp.diffs[0].restored == "<missing>"


def test_bytearray_and_deque_normalized(synth_inventory):
    from collections import deque

    cmp = run_compare(
        synth_inventory,
        Gadget(value=bytearray(b"xy"), items=deque([1, 2])),
        Gadget(value=b"xy", items=[1, 2]),
    )
    assert cmp.diffs == []


# --------------------------------------------------------------------------- #
# The live oracle                                                             #
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def real_inventory():
    return build_inventory(load_source_set().inventory)


def test_oracle_clean_on_net_echo(real_inventory):
    result = run_oracle("net-echo", static_uncovered=set(),
                        inventory=real_inventory)
    assert result.ok, [str(d) for d in result.diffs]
    assert result.fields_compared > 100
    assert result.froze_at_us > 150_000
    summary = result.summary()
    assert summary["diffs"] == 0 and summary["workload"] == "net-echo"


def test_oracle_suite_runs_multiple_workloads(real_inventory):
    results = run_oracle_suite(
        ("disk-rw", "swaptions"), static_uncovered=set(),
        inventory=real_inventory,
    )
    assert [r.workload for r in results] == ["disk-rw", "swaptions"]
    assert all(r.ok for r in results)


def test_oracle_workload_constant_covers_each_family():
    assert set(ORACLE_WORKLOADS) == {
        "swaptions", "ssdb", "lighttpd", "net-echo", "disk-rw"
    }


def _drop_cpuacct_config():
    return CriuConfig.nilicon().with_(
        unsafe_drop_dump=("cgroup.cpuacct_usage_us",)
    )


def test_acceptance_dropped_dump_site_is_confirmed_gap(real_inventory):
    """ISSUE acceptance, dynamic half: dropping one field's dump output
    produces a live state diff, and — because the static pass (see
    test_coverage.test_acceptance_deleted_dump_site_is_ckpt101) reports the
    same (class, field) as uncovered — it classifies as a confirmed CKPT101
    with zero analyzer bugs."""
    result = run_oracle(
        "ssdb",
        config=_drop_cpuacct_config(),
        static_uncovered={("Cgroup", "cpuacct_usage_us")},
        inventory=real_inventory,
    )
    assert not result.ok
    assert result.analyzer_bugs == []
    assert {d.key for d in result.confirmed_gaps} == {
        ("Cgroup", "cpuacct_usage_us")
    }
    gap = result.confirmed_gaps[0]
    assert gap.restored == "0" and gap.primary != "0"


def test_dropped_dump_site_without_static_verdict_is_analyzer_bug(real_inventory):
    result = run_oracle(
        "net-echo",
        config=_drop_cpuacct_config(),
        static_uncovered=set(),
        inventory=real_inventory,
    )
    assert not result.ok
    assert result.confirmed_gaps == []
    assert {d.key for d in result.analyzer_bugs} == {
        ("Cgroup", "cpuacct_usage_us")
    }


def test_static_and_dynamic_verdicts_agree_end_to_end(real_inventory):
    """Tie the two halves together with the analyzer's own verdicts: the
    static pass on the override-broken tree reports Cgroup.cpuacct_usage_us
    uncovered, and feeding *that* set to the oracle (with the matching
    drop-dump knob) yields a confirmed gap."""
    from tests.analysis.test_coverage import acceptance_overrides

    uncovered = analyze_coverage(overrides=acceptance_overrides()).uncovered()
    assert ("Cgroup", "cpuacct_usage_us") in uncovered
    result = run_oracle(
        "disk-rw",
        config=_drop_cpuacct_config(),
        static_uncovered=uncovered,
        inventory=real_inventory,
    )
    assert not result.ok
    assert result.analyzer_bugs == []
    assert {d.key for d in result.confirmed_gaps} == {
        ("Cgroup", "cpuacct_usage_us")
    }
