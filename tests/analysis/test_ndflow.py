"""Tests for the nondeterminism-provenance analyzer's static layers.

Synthetic scope-file overrides exercise the inventory, the selfcheck and
each NDF rule in isolation (``zz_``-prefixed names keep clear of real
code); the real-tree tests pin the ISSUE acceptance criteria: the
selfcheck accounts for every source in the package, the drift guard
covers every module-level id counter, and the only NDF findings are the
two frozen ``unsafe_unlogged_draw`` knob entries.
"""

import textwrap
from pathlib import Path

from repro.analysis.ndflow import (
    analyze_ndflow,
    build_nd_inventory,
    load_ndflow_sources,
    ndflow_selfcheck,
)

_SCOPE = "replication/zz_scope.py"


def inventory(code, path=_SCOPE):
    sources = load_ndflow_sources({path: textwrap.dedent(code)})
    inv = build_nd_inventory(sources)
    return [s for s in inv.sources if s.path.endswith(path)]


def findings(code, select=None, path=_SCOPE):
    report = analyze_ndflow(
        select=select, overrides={path: textwrap.dedent(code)})
    return [f for f in report.findings if f.path.endswith(path)]


def selfcheck_problems(code, path=_SCOPE):
    sources = load_ndflow_sources({path: textwrap.dedent(code)})
    problems, _ = ndflow_selfcheck(sources)
    return [p for p in problems if path in p]


# --------------------------------------------------------------------------- #
# Layer 1: inventory + classification                                         #
# --------------------------------------------------------------------------- #


def test_literal_stream_site_is_auto_logged():
    (src,) = inventory(
        """
        def zz_make(world):
            return world.rng.stream("zz-literal")
        """
    )
    assert src.kind == "stream"
    assert src.name == "zz-literal"
    assert not src.dynamic
    assert src.nd_class == "logged"


def test_dynamic_stream_name_needs_annotation():
    (src,) = inventory(
        """
        def zz_make(world, name):
            return world.rng.stream(f"zz-{name}")
        """
    )
    assert src.dynamic
    assert src.nd_class is None


def test_annotation_classifies_and_carries_why():
    (src,) = inventory(
        """
        def zz_make(world, name):
            return world.rng.stream(name)  # nd: logged -- caller-chosen
        """
    )
    assert src.annotated == "logged"
    assert src.why == "caller-chosen"
    assert src.accounted


def test_bare_random_is_unaccounted_by_default():
    (src,) = inventory(
        """
        import random

        def zz_jitter():
            return random.random()
        """
    )
    assert src.kind == "global-random"
    assert src.nd_class is None


def test_nd_exempt_class_spans_are_skipped():
    assert inventory(
        """
        import random

        class ZzInstrument:
            __nd_exempt__ = True

            def sample(self):
                return random.random()
        """
    ) == []


def test_tiebreak_policy_is_auto_seed():
    (src,) = inventory(
        """
        class ZzPolicy:
            def key(self, ctx_serial):
                return ctx_serial
        """
    )
    assert src.kind == "tiebreak"
    assert src.nd_class == "seed"


def test_unregistered_module_counter_is_flagged():
    (src,) = inventory(
        """
        import itertools

        zz_ids = itertools.count()
        """
    )
    assert src.kind == "counter"
    assert src.registered is False
    assert src.nd_class is None


# --------------------------------------------------------------------------- #
# Layer 1.5: selfcheck                                                        #
# --------------------------------------------------------------------------- #


def test_selfcheck_rejects_unknown_vocabulary():
    problems = selfcheck_problems(
        """
        def zz_make(world):
            return world.rng.stream("zz-x")  # nd: quantum -- what
        """
    )
    assert any("unknown nd class 'quantum'" in p for p in problems)


def test_selfcheck_rejects_annotation_on_no_source():
    problems = selfcheck_problems(
        """
        ZZ_LIMIT = 3  # nd: seed -- not a source at all
        """
    )
    assert any("classifies nothing" in p for p in problems)


def test_selfcheck_rejects_unaccounted_sources():
    problems = selfcheck_problems(
        """
        import random

        def zz_jitter():
            return random.random()
        """
    )
    assert any("unaccounted nondeterminism source" in p for p in problems)


def test_selfcheck_flags_unregistered_counter_as_drift():
    problems = selfcheck_problems(
        """
        import itertools

        zz_ids = itertools.count()  # nd: counter -- registered elsewhere, honest
        """
    )
    assert any("not rewound by reset_id_counters" in p for p in problems)


def test_selfcheck_accepts_annotated_unsafe():
    # 'unsafe' is accounted for the selfcheck (an honest declaration) even
    # though the NDF rules keep flagging it.
    problems = selfcheck_problems(
        """
        import random

        def zz_jitter():
            return random.random()  # nd: unsafe -- deliberate hazard
        """
    )
    assert problems == []


# --------------------------------------------------------------------------- #
# Layer 2: rules                                                              #
# --------------------------------------------------------------------------- #


def test_ndf001_flags_bare_entropy():
    hits = findings(
        """
        import random

        def zz_jitter():
            return random.random()
        """,
        select=["NDF001"],
    )
    assert [f.rule_id for f in hits] == ["NDF001"]


def test_ndf001_respects_seed_annotation():
    assert findings(
        """
        import random

        def zz_stable(seed):
            return random.Random(seed)  # nd: seed -- derived from the seed
        """,
        select=["NDF001"],
    ) == []


def test_ndf001_still_fires_on_declared_unsafe():
    hits = findings(
        """
        import random

        def zz_jitter():
            return random.random()  # nd: unsafe -- knob
        """,
        select=["NDF001"],
    )
    assert [f.rule_id for f in hits] == ["NDF001"]


def test_ndf002_flags_unannotated_dynamic_stream_name():
    hits = findings(
        """
        def zz_make(world, name):
            return world.rng.stream(f"zz-{name}")
        """,
        select=["NDF002"],
    )
    assert [f.rule_id for f in hits] == ["NDF002"]


def test_ndf002_accepts_annotated_dynamic_name():
    assert findings(
        """
        def zz_make(world, name):
            return world.rng.stream(f"zz-{name}")  # nd: logged -- a stream either way
        """,
        select=["NDF002"],
    ) == []


def test_ndf003_flags_unrouted_control_path_draw():
    hits = findings(
        """
        def zz_decide(self):
            return self.gen.choice([1, 2, 3])
        """,
        select=["NDF003"],
    )
    assert [f.rule_id for f in hits] == ["NDF003"]


def test_ndf003_accepts_stream_bound_receivers():
    assert findings(
        """
        class ZzAgent:
            def __init__(self, world):
                self.gen = world.rng.stream("zz-agent")

            def zz_decide(self):
                return self.gen.choice([1, 2, 3])
        """,
        select=["NDF003"],
    ) == []


def test_ndf003_ignores_non_control_paths():
    assert findings(
        """
        def zz_decide(self):
            return self.gen.choice([1, 2, 3])
        """,
        select=["NDF003"],
        path="workloads/zz_scope.py",
    ) == []


def test_ndf004_flags_unregistered_counter():
    hits = findings(
        """
        import itertools

        zz_ids = itertools.count()
        """,
        select=["NDF004"],
    )
    assert [f.rule_id for f in hits] == ["NDF004"]


def test_ndf005_flags_shared_stream_without_owner():
    report = analyze_ndflow(
        select=["NDF005"],
        overrides={
            "replication/zz_one.py": "def a(w):\n    return w.rng.stream('zz-shared')\n",
            "fleet/zz_two.py": "def b(w):\n    return w.rng.stream('zz-shared')\n",
        },
    )
    hits = [f for f in report.findings if "zz_" in f.path]
    assert len(hits) == 2
    assert all(f.rule_id == "NDF005" for f in hits)
    assert all("zz-shared" in f.message for f in hits)


def test_ndf005_accepts_owned_shared_stream():
    # 'fault-injection' is drawn from several modules but has a
    # STREAM_OWNERS entry — the real tree must stay clean.
    report = analyze_ndflow(select=["NDF005"])
    assert not any(
        "fault-injection" in f.message for f in report.findings
    )


def test_suppression_comment_silences_a_rule():
    assert findings(
        """
        import random

        def zz_jitter():
            return random.random()  # nlint: disable=NDF001 -- test fixture
        """,
        select=["NDF001"],
    ) == []


# --------------------------------------------------------------------------- #
# Real tree                                                                   #
# --------------------------------------------------------------------------- #


def test_real_tree_selfcheck_is_clean():
    problems, dispositions = ndflow_selfcheck()
    assert problems == []
    assert len(dispositions) >= 20  # streams, counters, knobs, tiebreaks


def test_real_tree_every_counter_is_registered():
    inv = build_nd_inventory(load_ndflow_sources())
    counters = [s for s in inv.sources if s.kind == "counter"]
    assert len(counters) >= 7  # tid, pid, ino, ns, packet, seq, mac
    assert all(s.registered for s in counters)


def test_real_tree_findings_are_exactly_the_knob():
    report = analyze_ndflow()
    assert [(f.rule_id, f.path) for f in report.findings] == [
        ("NDF001", "src/repro/replication/primary.py"),
        ("NDF003", "src/repro/replication/primary.py"),
    ]


def test_real_tree_findings_match_checked_in_baseline():
    from repro.analysis.baseline import apply_baseline, load_baseline

    baseline_file = (
        Path(__file__).resolve().parents[2] / "ndflow-baseline.json")
    baseline = load_baseline(baseline_file)
    part = apply_baseline(analyze_ndflow().findings, baseline)
    assert part.new == [], "un-baselined NDF findings: run repro ndflow lint"
    assert part.stale == [], "stale ndflow-baseline.json entries: re-freeze"
