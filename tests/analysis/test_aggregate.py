"""The consolidated ``repro analyze`` gate wiring.

These tests pin the step list and the merged-findings tagging without
paying for a full ``run_all`` (the individual steps are each covered by
their own suites and by CI's ``make analyze``).
"""

from repro.analysis.aggregate import _BASELINES, STEPS, collect_findings


def test_steps_cover_all_six_analyzers_plus_hycor_gate():
    analyzers = {analyzer for analyzer, _, _ in STEPS}
    assert analyzers == {"nlint", "races", "ckptcov", "perf", "ndflow",
                         "ftcov", "hycor"}


def test_hycor_step_mirrors_the_make_target():
    hycor_smoke = [smoke for analyzer, smoke, _ in STEPS
                   if analyzer == "hycor"]
    assert ("hycor", "bench", "--smoke", "--check", "BENCH_hycor.json") in \
        hycor_smoke
    full = [full for analyzer, _, full in STEPS if analyzer == "hycor"]
    assert ("hycor", "bench", "--check", "BENCH_hycor.json") in full


def test_ftcov_steps_mirror_the_make_target():
    ftcov_smoke = [smoke for analyzer, smoke, _ in STEPS
                   if analyzer == "ftcov"]
    assert ("ftcov", "selfcheck") in ftcov_smoke
    assert ("ftcov", "lint", "--baseline", "ftcov-baseline.json") in \
        ftcov_smoke
    assert ("ftcov", "record") in ftcov_smoke
    assert ("ftcov", "record", "--knob", "drop-scenario") in ftcov_smoke


def test_every_static_pass_has_a_baseline_entry():
    assert set(_BASELINES) == {"nlint", "ckptcov", "perf", "ndflow",
                               "ftcov"}
    assert _BASELINES["ftcov"] == "ftcov-baseline.json"


def test_merged_findings_tag_the_ftcov_knob_as_baselined():
    merged = collect_findings()
    ftcov = [f for f in merged if f["analyzer"] == "ftcov"]
    assert [f["rule"] for f in ftcov] == ["FTC002"]
    assert ftcov[0]["baselined"] is True
    assert ftcov[0]["path"] == "src/repro/faultinject/scenarios.py"
