"""Tests for the checkpoint state-coverage analyzer (Layers 1+2).

Synthetic :class:`SourceSet`s exercise each CKPT1xx rule in isolation;
the real-tree tests pin the analyzer's verdict on the actual package,
including the acceptance probe: deleting a real dump site (via source
overrides, no disk writes) must surface as CKPT101.
"""

import ast
import re
from pathlib import Path

import pytest

import repro
from repro.analysis.coverage import (
    COVERAGE_RULE_IDS,
    SourceSet,
    analyze_coverage,
    analyze_source_set,
    build_inventory,
    inventory_selfcheck,
    load_source_set,
)


def make_srcs(inventory, dump="", restore="", wrappers=""):
    return SourceSet(
        inventory={"src/repro/kernel/fake.py": inventory},
        dump={"src/repro/criu/fake_dump.py": dump},
        restore={"src/repro/criu/fake_restore.py": restore},
        wrappers={"src/repro/container/fake_rt.py": wrappers},
    )


def rule_ids(report):
    return sorted(f.rule_id for f in report.findings)


# --------------------------------------------------------------------------- #
# Layer 1: inventory                                                          #
# --------------------------------------------------------------------------- #


def test_inventory_discovers_init_and_dataclass_fields():
    inv = build_inventory({
        "src/repro/kernel/x.py": (
            "class A:\n"
            "    count: int = 0\n"
            "    def __init__(self):\n"
            "        self.items = []\n"
            "    def push(self, v):\n"
            "        self.items.append(v)\n"
        )
    })
    info = inv.by_name("A")
    assert set(info.fields) == {"count", "items"}
    assert "push" in info.fields["items"].mutators


def test_annotations_classify_fields():
    inv = build_inventory({
        "src/repro/kernel/x.py": (
            "class A:\n"
            "    def __init__(self):\n"
            "        self.real = 0\n"
            "        self.cache = {}  # ckpt: derived -- recomputed\n"
            "        self.timer = None  # ckpt: ephemeral -- re-armed\n"
        )
    })
    fields = inv.by_name("A").fields
    assert fields["real"].classification == "relevant"
    assert fields["cache"].classification == "derived"
    assert fields["timer"].classification == "ephemeral"


def test_class_level_ignore_markers():
    inv = build_inventory({
        "src/repro/kernel/x.py": (
            "class Infra:\n"
            "    __ckpt_ignore__ = True\n"
            "    def __init__(self):\n"
            "        self.stuff = 1\n"
            "class B:\n"
            "    __ckpt_ignore__ = (\"scratch\",)\n"
            "    __ckpt_cadence__ = \"infrequent\"\n"
            "    def __init__(self):\n"
            "        self.scratch = 0\n"
            "        self.kept = 0\n"
        )
    })
    assert inv.by_name("Infra").ignored
    b = inv.by_name("B")
    assert b.cadence == "infrequent"
    assert b.fields["scratch"].classification == "ignored"
    assert b.fields["kept"].classification == "relevant"


def test_enums_and_exceptions_exempt():
    inv = build_inventory({
        "src/repro/kernel/x.py": (
            "from enum import Enum\n"
            "class Phase(Enum):\n"
            "    A = 1\n"
            "class BoomError(Exception):\n"
            "    def __init__(self):\n"
            "        self.detail = 'x'\n"
        )
    })
    assert inv.by_name("Phase").exempt
    assert inv.by_name("BoomError").exempt


# --------------------------------------------------------------------------- #
# Layer 2: the rule catalog on synthetic sources                              #
# --------------------------------------------------------------------------- #

_WIDGET = (
    "class Widget:\n"
    "    def __init__(self):\n"
    "        self.alpha = 0\n"
    "        self.beta = 0\n"
    "    def describe(self):\n"
    "        return {'alpha': self.alpha}\n"
    "    def restore_from(self, d):\n"
    "        self.alpha = d['alpha']\n"
    "    def bump(self):\n"
    "        self.beta += 1\n"
)


def test_ckpt100_class_never_dumped():
    srcs = make_srcs(
        "class Orphan:\n"
        "    def __init__(self):\n"
        "        self.value = 0\n"
        "    def tick(self):\n"
        "        self.value += 1\n",
        dump="def dump(x):\n    return x.unrelated\n",
    )
    report = analyze_source_set(srcs)
    assert rule_ids(report) == ["CKPT100"]
    assert report.findings[0].severity == "error"
    assert "Orphan" in report.findings[0].message


def test_ckpt101_field_mutated_never_dumped():
    srcs = make_srcs(
        _WIDGET,
        dump="def dump(w):\n    return w.describe()\n",
        restore="def restore(w, d):\n    w.restore_from(d)\n",
    )
    report = analyze_source_set(srcs)
    assert rule_ids(report) == ["CKPT101"]
    assert "Widget.beta" in report.findings[0].message
    assert ("Widget", "beta") in report.uncovered()
    assert ("Widget", "alpha") not in report.uncovered()


def test_ckpt102_dumped_never_restored():
    srcs = make_srcs(
        _WIDGET,
        dump="def dump(w):\n    return (w.describe(), w.beta)\n",
        restore="def restore(w, d):\n    w.alpha = d['alpha']\n",
    )
    report = analyze_source_set(srcs)
    assert rule_ids(report) == ["CKPT102"]
    assert "Widget.beta" in report.findings[0].message


def test_ckpt103_restored_never_dumped():
    srcs = make_srcs(
        _WIDGET,
        dump="def dump(w):\n    return {'alpha': w.alpha}\n",
        restore=(
            "def restore(w, d):\n"
            "    w.alpha = d['alpha']\n"
            "    w.beta = d.get('beta', 0)\n"
        ),
    )
    report = analyze_source_set(srcs)
    assert rule_ids(report) == ["CKPT103"]
    assert "Widget.beta" in report.findings[0].message


def test_restore_via_constructor_kwargs_counts():
    srcs = make_srcs(
        "class Entry:\n"
        "    def __init__(self, key=0):\n"
        "        self.key = key\n"
        "    def touch(self):\n"
        "        self.key += 1\n",
        dump="def dump(e):\n    return {'key': e.key}\n",
        restore="def restore(d):\n    return Entry(key=d['key'])\n",
    )
    assert analyze_source_set(srcs).findings == []


def test_restore_via_star_kwargs_counts_all_fields():
    srcs = make_srcs(
        "class Entry:\n"
        "    def __init__(self, key=0, value=0):\n"
        "        self.key = key\n"
        "        self.value = value\n"
        "    def touch(self):\n"
        "        self.key += 1\n"
        "        self.value += 1\n",
        dump="def dump(e):\n    return {'key': e.key, 'value': e.value}\n",
        restore="def restore(d):\n    return Entry(**d)\n",
    )
    assert analyze_source_set(srcs).findings == []


_CADENCE_CLASS = (
    "class Slowpoke:\n"
    "    __ckpt_cadence__ = \"infrequent\"\n"
    "    def __init__(self):\n"
    "        self.hostname = 'a'\n"
    "        self.version = 1\n"
    "    def describe(self):\n"
    "        return {'hostname': self.hostname, 'version': self.version}\n"
    "    def restore_from(self, d):\n"
    "        self.hostname = d['hostname']\n"
    "        self.version = d['version']\n"
)


def test_ckpt104_untracked_mutator_on_infrequent_class():
    srcs = make_srcs(
        _CADENCE_CLASS + (
            "    def sneaky_rename(self, name):\n"
            "        self.hostname = name\n"
        ),
        dump="def dump(s):\n    return s.describe()\n",
        restore="def restore(s, d):\n    s.restore_from(d)\n",
    )
    report = analyze_source_set(srcs)
    assert rule_ids(report) == ["CKPT104"]
    assert "sneaky_rename" in report.findings[0].message


def test_ckpt104_quiet_when_mutator_bumps_version():
    srcs = make_srcs(
        _CADENCE_CLASS + (
            "    def rename(self, name):\n"
            "        self.hostname = name\n"
            "        self.version += 1\n"
        ),
        dump="def dump(s):\n    return s.describe()\n",
        restore="def restore(s, d):\n    s.restore_from(d)\n",
    )
    assert analyze_source_set(srcs).findings == []


def test_ckpt104_quiet_when_wrapper_fires_ftrace_hook():
    srcs = make_srcs(
        _CADENCE_CLASS + (
            "    def rename(self, name):\n"
            "        self.hostname = name\n"
        ),
        dump=(
            "HOOKED_FUNCTIONS = (\"sethostname\",)\n"
            "def dump(s):\n    return s.describe()\n"
        ),
        restore="def restore(s, d):\n    s.restore_from(d)\n",
        wrappers=(
            "class Runtime:\n"
            "    def set_hostname(self, name):\n"
            "        self.ns.rename(name)\n"
            "        self.ftrace.trace(\"sethostname\", self)\n"
        ),
    )
    assert analyze_source_set(srcs).findings == []


def test_ckpt104_soft_dirty_flavor():
    srcs = make_srcs(
        "class Mem:\n"
        "    def __init__(self):\n"
        "        self.pages = {}\n"
        "        self._tracking = set()\n"
        "    def clear_refs(self):\n"
        "        self._tracking = set()\n"
        "    def write(self, i, tok):\n"
        "        self._tracking.add(i)\n"
        "        self.pages[i] = tok\n"
        "    def backdoor_write(self, i, tok):\n"
        "        self.pages[i] = tok\n",
        dump="def dump(m):\n    return (m.pages, m._tracking)\n",
        restore=(
            "def restore(m, d):\n"
            "    m.pages = d[0]\n"
            "    m._tracking = d[1]\n"
        ),
    )
    report = analyze_source_set(srcs)
    assert rule_ids(report) == ["CKPT104"]
    assert "backdoor_write" in report.findings[0].message


def test_suppression_comment_silences_finding():
    srcs = make_srcs(
        "class Widget:\n"
        "    def __init__(self):\n"
        "        self.beta = 0  # nlint: disable=CKPT101 -- demo waiver\n"
        "    def bump(self):\n"
        "        self.beta += 1\n"
        "    def describe(self):\n"
        "        return {}\n"
        "    def restore_from(self, d):\n"
        "        self.other = d\n",
        dump="def dump(w):\n    return w.describe()\n",
        restore="def restore(w, d):\n    w.restore_from(d)\n",
    )
    report = analyze_source_set(srcs)
    assert "CKPT101" not in rule_ids(report)


def test_select_and_ignore_filters():
    srcs = make_srcs(
        _WIDGET,
        dump="def dump(w):\n    return {'alpha': w.alpha, 'beta': w.beta}\n",
        restore="def restore(w, d):\n    w.alpha = d['alpha']\n",
    )
    assert rule_ids(analyze_source_set(srcs, select=["CKPT102"])) == ["CKPT102"]
    assert rule_ids(analyze_source_set(srcs, ignore=["CKPT102"])) == []
    with pytest.raises(KeyError):
        analyze_source_set(srcs, select=["CKPT999"])


def test_rules_registered_with_linter_registry():
    from repro.analysis.linter import all_rules

    registered = {r.rule_id for r in all_rules()}
    assert set(COVERAGE_RULE_IDS) <= registered
    # Whole-program rules must not fire during per-file linting.
    from repro.analysis.linter import lint_source

    findings = lint_source("class A:\n    def f(self):\n        self.x = 1\n")
    assert not any(f.rule_id.startswith("CKPT1") for f in findings)


# --------------------------------------------------------------------------- #
# The real tree                                                               #
# --------------------------------------------------------------------------- #


def test_real_tree_only_known_gap():
    report = analyze_coverage()
    assert report.uncovered() == {("AddressSpace", "pending_fault_ns")}
    assert [f.rule_id for f in report.findings] == ["CKPT101"]
    assert report.findings[0].path == "src/repro/kernel/mm.py"


def test_real_tree_selfcheck_clean():
    problems, dispositions = inventory_selfcheck()
    assert problems == []
    # Spot-check dispositions: infra ignored, kernel state inventoried.
    assert dispositions["Kernel"].startswith("ignored")
    assert dispositions["World"].startswith("ignored")
    assert "relevant" in dispositions["TcpSocket"]
    assert "relevant" in dispositions["Task"]


def test_selfcheck_flags_unknown_annotation_and_bad_ignore():
    srcs = make_srcs(
        "class A:\n"
        "    __ckpt_ignore__ = (\"nope\",)\n"
        "    __ckpt_cadence__ = \"sometimes\"\n"
        "    def __init__(self):\n"
        "        self.x = 1  # ckpt: derrived -- typo\n",
    )
    problems, _ = inventory_selfcheck(srcs)
    text = "\n".join(problems)
    assert "derrived" in text
    assert "nonexistent field(s) nope" in text
    assert "sometimes" in text


def _strip_lines(text: str, needle: str) -> str:
    return "\n".join(l for l in text.splitlines() if needle not in l)


def acceptance_overrides():
    """Source overrides deleting Cgroup.cpuacct_usage_us's dump site (and
    its restore line, so the gap reads as a true CKPT101)."""
    root = Path(repro.__file__).resolve().parent
    cgroup_src = (root / "kernel/cgroup.py").read_text()
    restore_src = (root / "criu/restore.py").read_text()
    broken_cgroup = _strip_lines(
        cgroup_src, '"cpuacct_usage_us": self.cpuacct_usage_us'
    )
    broken_restore = re.sub(
        r'container\.cgroup\.cpuacct_usage_us = state\.cgroup\.get\(\s*'
        r'"cpuacct_usage_us", 0\s*\)',
        "pass",
        restore_src,
    )
    assert broken_cgroup != cgroup_src and broken_restore != restore_src
    ast.parse(broken_cgroup)
    ast.parse(broken_restore)
    return {
        "kernel/cgroup.py": broken_cgroup,
        "criu/restore.py": broken_restore,
    }


def test_acceptance_deleted_dump_site_is_ckpt101():
    """ISSUE acceptance: deleting one field's dump site (source override,
    nothing on disk changes) must surface as CKPT101."""
    report = analyze_coverage(overrides=acceptance_overrides())
    hits = [f for f in report.findings
            if f.rule_id == "CKPT101" and "Cgroup.cpuacct_usage_us" in f.message]
    assert hits, [str(f.message) for f in report.findings]
    assert ("Cgroup", "cpuacct_usage_us") in report.uncovered()


def test_deleted_dump_site_with_restore_intact_is_ckpt103():
    root = Path(repro.__file__).resolve().parent
    broken = _strip_lines(
        (root / "kernel/cgroup.py").read_text(),
        '"cpuacct_usage_us": self.cpuacct_usage_us',
    )
    report = analyze_coverage(overrides={"kernel/cgroup.py": broken})
    assert any(
        f.rule_id == "CKPT103" and "Cgroup.cpuacct_usage_us" in f.message
        for f in report.findings
    )


def test_override_matching_is_suffix_based():
    srcs = load_source_set(overrides={"src/repro/kernel/cgroup.py": "class X:\n    pass\n"})
    assert srcs.inventory["src/repro/kernel/cgroup.py"] == "class X:\n    pass\n"
