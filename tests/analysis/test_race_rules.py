"""Fixture tests for the race-surface lint rules (RACE001/RACE002/ORD001)
and for the severity / rule-filter plumbing they introduced."""

import pytest

from repro.analysis.linter import Finding, all_rules, lint_source
from repro.analysis.report import render_text


def run_rule(rule_id: str, source: str, path: str):
    return lint_source(source, path, rules=all_rules(select=[rule_id]))


# --------------------------------------------------------------------------- #
# RACE001 — untracked shared mutation                                         #
# --------------------------------------------------------------------------- #
class TestRace001:
    SHARED = (
        "class Buffer:\n"
        "    def __init__(self):\n"
        "        self.pending = []\n"
        "    def producer(self, engine):\n"
        "        yield engine.timeout(1)\n"
        "        self.pending.append(1)\n"
        "    def consumer(self, engine):\n"
        "        yield engine.timeout(1)\n"
        "        self.pending.pop()\n"
    )

    def test_flags_field_mutated_by_two_generator_methods(self):
        findings = run_rule("RACE001", self.SHARED, "src/repro/replication/x.py")
        assert [f.rule_id for f in findings] == ["RACE001"]
        assert findings[0].severity == "warning"
        assert "pending" in findings[0].message
        # Anchored at the first mutation, so a trailing suppression works.
        assert findings[0].line == 6

    def test_exempt_when_field_is_recorded(self):
        src = self.SHARED.replace(
            "        self.pending.append(1)\n",
            "        self.pending.append(1)\n"
            "        record_access(engine, self, 'pending', 'w')\n",
        )
        assert run_rule("RACE001", src, "src/repro/replication/x.py") == []

    def test_single_mutator_is_fine(self):
        src = (
            "class Buffer:\n"
            "    def __init__(self):\n"
            "        self.pending = []\n"
            "    def producer(self, engine):\n"
            "        yield engine.timeout(1)\n"
            "        self.pending.append(1)\n"
            "    def peek(self, engine):\n"
            "        yield engine.timeout(1)\n"
            "        return len(self.pending)\n"
        )
        assert run_rule("RACE001", src, "src/repro/replication/x.py") == []

    def test_non_determinism_dirs_are_exempt(self):
        assert run_rule("RACE001", self.SHARED, "src/repro/workloads/x.py") == []

    def test_suppression_on_anchor_line(self):
        src = self.SHARED.replace(
            "        self.pending.append(1)\n",
            "        self.pending.append(1)"
            "  # nlint: disable=RACE001 -- phase-sequenced\n",
        )
        assert run_rule("RACE001", src, "src/repro/replication/x.py") == []


# --------------------------------------------------------------------------- #
# RACE002 — check-then-act across a yield                                     #
# --------------------------------------------------------------------------- #
class TestRace002:
    STALE = (
        "class Gate:\n"
        "    def __init__(self):\n"
        "        self.open = False\n"
        "    def close(self, engine):\n"
        "        yield engine.timeout(1)\n"
        "        self.open = False\n"
        "    def waiter(self, engine):\n"
        "        if not self.open:\n"
        "            yield engine.timeout(5)\n"
        "            self.open = True\n"
    )

    def test_flags_stale_check_across_yield(self):
        findings = run_rule("RACE002", self.STALE, "src/repro/replication/x.py")
        assert [f.rule_id for f in findings] == ["RACE002"]
        assert "open" in findings[0].message

    def test_revalidation_after_yield_is_fine(self):
        src = self.STALE.replace(
            "            yield engine.timeout(5)\n"
            "            self.open = True\n",
            "            yield engine.timeout(5)\n"
            "            if not self.open:\n"
            "                self.open = True\n",
        )
        assert run_rule("RACE002", src, "src/repro/replication/x.py") == []

    def test_init_does_not_count_as_concurrent_writer(self):
        # Only __init__ and one generator write the field: not shared.
        src = (
            "class Gate:\n"
            "    def __init__(self):\n"
            "        self.open = False\n"
            "    def waiter(self, engine):\n"
            "        if not self.open:\n"
            "            yield engine.timeout(5)\n"
            "            self.open = True\n"
        )
        assert run_rule("RACE002", src, "src/repro/replication/x.py") == []

    def test_recorded_field_is_exempt(self):
        src = self.STALE.replace(
            "            self.open = True\n",
            "            self.open = True\n"
            "            record_access(engine, self, 'open', 'w')\n",
        )
        assert run_rule("RACE002", src, "src/repro/replication/x.py") == []


# --------------------------------------------------------------------------- #
# ORD001 — waking waiters from a live registration list                       #
# --------------------------------------------------------------------------- #
class TestOrd001:
    def test_flags_live_iteration(self):
        src = (
            "class Pool:\n"
            "    def drain(self):\n"
            "        for ev in self.waiters:\n"
            "            ev.succeed(None)\n"
        )
        findings = run_rule("ORD001", src, "src/repro/net/x.py")
        assert [f.rule_id for f in findings] == ["ORD001"]
        assert "waiters" in findings[0].message

    def test_copy_and_swap_idioms_are_fine(self):
        src = (
            "class Pool:\n"
            "    def drain_copy(self):\n"
            "        for ev in list(self.waiters):\n"
            "            ev.succeed(None)\n"
            "    def drain_swap(self):\n"
            "        waiters, self.waiters = self.waiters, []\n"
            "        for ev in waiters:\n"
            "            ev.succeed(None)\n"
            "    def drain_sorted(self):\n"
            "        for ev in sorted(self.waiters):\n"
            "            ev.fail(None)\n"
        )
        assert run_rule("ORD001", src, "src/repro/net/x.py") == []

    def test_iteration_without_settling_is_fine(self):
        src = (
            "class Pool:\n"
            "    def count_live(self):\n"
            "        n = 0\n"
            "        for ev in self.waiters:\n"
            "            n += 1\n"
            "        return n\n"
        )
        assert run_rule("ORD001", src, "src/repro/net/x.py") == []


# --------------------------------------------------------------------------- #
# Severity and filter plumbing                                                #
# --------------------------------------------------------------------------- #
class TestSeverityPlumbing:
    def test_race_rules_are_warnings_det_rules_errors(self):
        by_id = {r.rule_id: r for r in all_rules()}
        assert by_id["RACE001"].severity == "warning"
        assert by_id["RACE002"].severity == "warning"
        assert by_id["ORD001"].severity == "warning"
        assert by_id["DET001"].severity == "error"

    def test_severity_travels_into_finding_and_dict(self):
        src = TestRace001.SHARED
        findings = run_rule("RACE001", src, "src/repro/replication/x.py")
        assert findings[0].severity == "warning"
        assert findings[0].as_dict()["severity"] == "warning"

    def test_all_rules_ignore_filter(self):
        ids = {r.rule_id for r in all_rules(ignore=["RACE001", "ORD001"])}
        assert "RACE001" not in ids and "ORD001" not in ids
        assert "DET001" in ids

    def test_unknown_ids_raise(self):
        with pytest.raises(KeyError):
            all_rules(select=["NOPE001"])
        with pytest.raises(KeyError):
            all_rules(ignore=["NOPE001"])

    def test_render_text_tags_warnings(self):
        findings = [
            Finding(
                rule_id="RACE001",
                path="src/x.py",
                line=1,
                col=0,
                message="m",
                severity="warning",
            ),
            Finding(rule_id="DET001", path="src/x.py", line=2, col=0, message="m"),
        ]
        text = render_text(findings)
        assert "[warning] " in text
        assert "1 error(s)" in text
