"""Tests for finding baselines (shared by ``repro lint`` and ``repro ckptcov``)."""

import json

import pytest

from repro.analysis.baseline import (
    BaselineError,
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.analysis.linter import Finding
from repro.cli import main


def mk(rule_id="CKPT101", path="src/a.py", line=1, message="field x uncovered",
       severity="warning"):
    return Finding(rule_id=rule_id, path=path, line=line, col=0,
                   message=message, severity=severity)


# --------------------------------------------------------------------------- #
# Fingerprints and file round-trip                                            #
# --------------------------------------------------------------------------- #


def test_fingerprint_is_line_free():
    assert fingerprint(mk(line=1)) == fingerprint(mk(line=99))
    assert fingerprint(mk(message="a")) != fingerprint(mk(message="b"))
    assert fingerprint(mk(path="src/a.py")) != fingerprint(mk(path="src/b.py"))


def test_write_then_load_round_trip(tmp_path):
    file = tmp_path / "base.json"
    entries = write_baseline(file, [mk(), mk(), mk(message="other")])
    assert entries == load_baseline(file)
    assert entries[fingerprint(mk())] == 2
    assert entries[fingerprint(mk(message="other"))] == 1


def test_missing_file_is_empty_baseline(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == {}


@pytest.mark.parametrize("payload", [
    "not json {",
    json.dumps([1, 2]),
    json.dumps({"version": 99, "entries": {}}),
    json.dumps({"version": 1, "entries": {"fp": 0}}),
    json.dumps({"version": 1, "entries": "fp"}),
])
def test_malformed_baseline_raises(tmp_path, payload):
    file = tmp_path / "bad.json"
    file.write_text(payload)
    with pytest.raises(BaselineError):
        load_baseline(file)


# --------------------------------------------------------------------------- #
# Partitioning                                                                #
# --------------------------------------------------------------------------- #


def test_apply_partitions_new_baselined_stale():
    known, gone = mk(message="known"), mk(message="fixed")
    baseline = {fingerprint(known): 1, fingerprint(gone): 1}
    report = apply_baseline([known, mk(message="fresh")], baseline)
    assert [f.message for f in report.baselined] == ["known"]
    assert [f.message for f in report.new] == ["fresh"]
    assert report.stale == [(fingerprint(gone), 1)]
    assert not report.ok


def test_duplicate_allowance_is_a_count():
    baseline = {fingerprint(mk()): 2}
    report = apply_baseline([mk(line=1), mk(line=5), mk(line=9)], baseline)
    assert len(report.baselined) == 2
    assert len(report.new) == 1
    assert report.stale == []


def test_empty_everything_is_ok():
    report = apply_baseline([], {})
    assert report.ok and report.stale == []


# --------------------------------------------------------------------------- #
# CLI integration (`repro ckptcov` / `repro lint` with --baseline)            #
# --------------------------------------------------------------------------- #


def test_ckptcov_update_then_gate(tmp_path, capsys):
    base = tmp_path / "ckptcov.json"
    # Bootstrap: freeze the tree's current findings.
    assert main(["ckptcov", "--baseline", str(base), "--update-baseline"]) == 0
    entries = load_baseline(base)
    assert len(entries) == 1 and next(iter(entries)).startswith("CKPT101::")
    capsys.readouterr()
    # Gated: the known finding is baselined, exit 0.
    assert main(["ckptcov", "--baseline", str(base)]) == 0
    out = capsys.readouterr().out
    assert "baselined" in out


def test_ckptcov_empty_baseline_gates_on_known_gap(tmp_path, capsys):
    base = tmp_path / "empty.json"
    base.write_text(json.dumps({"version": 1, "entries": {}}))
    assert main(["ckptcov", "--baseline", str(base)]) == 1
    out = capsys.readouterr().out
    assert "CKPT101" in out and "new" in out


def test_lint_accepts_baseline_flag(tmp_path, capsys):
    # The real tree lints clean, so any baseline gate passes trivially and
    # a stale-entry warning must surface without failing the run.
    base = tmp_path / "lint.json"
    fp = "RACE001::src/repro/kernel/task.py::stale demo entry"
    base.write_text(json.dumps({"version": 1, "entries": {fp: 1}}))
    assert main(["lint", "src", "--baseline", str(base)]) == 0
    out = capsys.readouterr().out
    assert "stale" in out


def test_checked_in_ckptcov_baseline_matches_tree(capsys):
    """The repo-root baseline must stay in sync with the tree (CI runs this
    same gate via `make ckptcov-smoke`)."""
    assert main(["ckptcov", "--baseline", "ckptcov-baseline.json"]) == 0
