"""Per-rule fixture tests: each rule flags its seeded violation and spares
the documented exemptions."""

from repro.analysis.linter import all_rules, lint_source


def run_rule(rule_id: str, source: str, path: str):
    return lint_source(source, path, rules=all_rules(select=[rule_id]))


# --------------------------------------------------------------------------- #
# DET001 — wall clock / OS entropy                                            #
# --------------------------------------------------------------------------- #
class TestDet001:
    def test_flags_wall_clock_and_entropy(self):
        src = (
            "import time, os, uuid\n"
            "from datetime import datetime\n"
            "def f():\n"
            "    a = time.time()\n"
            "    b = time.monotonic_ns()\n"
            "    c = os.urandom(8)\n"
            "    d = uuid.uuid4()\n"
            "    e = datetime.now()\n"
        )
        findings = run_rule("DET001", src, "src/repro/kernel/x.py")
        assert [f.line for f in findings] == [4, 5, 6, 7, 8]

    def test_flags_global_random_but_not_seeded_instances(self):
        src = (
            "import random\n"
            "def f():\n"
            "    bad = random.random()\n"
            "    ok = random.Random(7).random()\n"
        )
        findings = run_rule("DET001", src, "src/repro/sim/x.py")
        assert [f.line for f in findings] == [3]

    def test_rng_module_is_exempt(self):
        src = "import os\ndef seed_material():\n    return os.urandom(8)\n"
        assert run_rule("DET001", src, "src/repro/sim/rng.py") == []

    def test_import_alias_still_resolved(self):
        src = "import time as t\ndef f():\n    return t.time()\n"
        findings = run_rule("DET001", src, "src/repro/kernel/x.py")
        assert [f.rule_id for f in findings] == ["DET001"]


# --------------------------------------------------------------------------- #
# DET002 — unordered collections                                              #
# --------------------------------------------------------------------------- #
class TestDet002:
    def test_flags_returned_set_and_annotation(self):
        src = (
            "def dirty() -> set[int]:\n"
            "    return {1, 2}\n"
        )
        findings = run_rule("DET002", src, "src/repro/kernel/mm2.py")
        assert len(findings) == 2  # annotation + the return itself

    def test_flags_iteration_over_set_local(self):
        src = (
            "def f(xs):\n"
            "    seen = set(xs)\n"
            "    for x in seen:\n"
            "        print(x)\n"
            "    return [y for y in seen]\n"
        )
        findings = run_rule("DET002", src, "src/repro/sim/x.py")
        assert [f.line for f in findings] == [3, 5]

    def test_flags_returned_dict_view(self):
        src = "def f(d):\n    return d.keys()\n"
        findings = run_rule("DET002", src, "src/repro/replication/x.py")
        assert [f.line for f in findings] == [2]

    def test_dict_iteration_not_flagged(self):
        # Python dicts are insertion-ordered; iterating them is fine.
        src = "def f(d):\n    for k in d:\n        print(k)\n"
        assert run_rule("DET002", src, "src/repro/kernel/x.py") == []

    def test_sorted_tuple_not_flagged(self):
        src = "def f(s):\n    return tuple(sorted(s))\n"
        assert run_rule("DET002", src, "src/repro/kernel/x.py") == []

    def test_out_of_scope_dirs_not_flagged(self):
        src = "def f() -> set[int]:\n    return {1}\n"
        assert run_rule("DET002", src, "src/repro/experiments/x.py") == []


# --------------------------------------------------------------------------- #
# DET003 — id()/hash() ordering                                               #
# --------------------------------------------------------------------------- #
class TestDet003:
    def test_flags_id_and_hash_in_event_paths(self):
        src = (
            "def order(items):\n"
            "    return sorted(items, key=id)\n"
            "def key(o):\n"
            "    return id(o)\n"
            "def ino(path):\n"
            "    return hash(path) & 0xFFFF\n"
        )
        findings = run_rule("DET003", src, "src/repro/criu/x.py")
        assert [f.line for f in findings] == [4, 6]  # sorted(key=id) has no Call

    def test_repr_is_exempt(self):
        src = (
            "class C:\n"
            "    def __repr__(self):\n"
            "        return f'<C {id(self):#x}>'\n"
            "    def __str__(self):\n"
            "        return str(hash(self))\n"
        )
        assert run_rule("DET003", src, "src/repro/sim/x.py") == []

    def test_shadowed_id_not_flagged(self):
        src = (
            "from mymod import id\n"
            "def f(o):\n"
            "    return id(o)\n"
        )
        assert run_rule("DET003", src, "src/repro/kernel/x.py") == []


# --------------------------------------------------------------------------- #
# SIM001 — blocking calls in generator processes                              #
# --------------------------------------------------------------------------- #
class TestSim001:
    def test_flags_blocking_calls_in_generator(self):
        src = (
            "import time, subprocess\n"
            "def proc(engine):\n"
            "    yield engine.timeout(5)\n"
            "    time.sleep(1)\n"
            "    subprocess.run(['ls'])\n"
            "    input()\n"
        )
        findings = run_rule("SIM001", src, "src/repro/workloads/x.py")
        assert [f.line for f in findings] == [4, 5, 6]

    def test_non_generator_not_flagged(self):
        src = "import time\ndef setup():\n    time.sleep(0.1)\n"
        assert run_rule("SIM001", src, "src/repro/workloads/x.py") == []

    def test_nested_def_inside_generator_not_flagged(self):
        # The nested plain function is its own (non-generator) scope.
        src = (
            "import time\n"
            "def proc(engine):\n"
            "    def helper():\n"
            "        time.sleep(1)\n"
            "    yield engine.timeout(5)\n"
        )
        assert run_rule("SIM001", src, "src/repro/sim/x.py") == []


# --------------------------------------------------------------------------- #
# EXC001 — broad except swallowing Interrupt                                  #
# --------------------------------------------------------------------------- #
class TestExc001:
    def test_flags_broad_except_in_generator(self):
        src = (
            "def proc(engine):\n"
            "    try:\n"
            "        yield engine.timeout(5)\n"
            "    except Exception:\n"
            "        pass\n"
        )
        findings = run_rule("EXC001", src, "src/repro/replication/x.py")
        assert [f.line for f in findings] == [4]

    def test_bare_except_also_flagged(self):
        src = (
            "def proc(engine):\n"
            "    try:\n"
            "        yield engine.timeout(5)\n"
            "    except:\n"
            "        pass\n"
        )
        assert len(run_rule("EXC001", src, "src/repro/sim/x.py")) == 1

    def test_preceding_interrupt_handler_makes_it_safe(self):
        src = (
            "from repro.sim.engine import Interrupt\n"
            "def proc(engine):\n"
            "    try:\n"
            "        yield engine.timeout(5)\n"
            "    except Interrupt:\n"
            "        raise\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert run_rule("EXC001", src, "src/repro/replication/x.py") == []

    def test_reraise_inside_handler_is_safe(self):
        src = (
            "def proc(engine):\n"
            "    try:\n"
            "        yield engine.timeout(5)\n"
            "    except Exception:\n"
            "        if engine.failed:\n"
            "            return\n"
            "        raise\n"
        )
        assert run_rule("EXC001", src, "src/repro/replication/x.py") == []

    def test_non_generator_broad_except_not_flagged(self):
        src = (
            "def main():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert run_rule("EXC001", src, "src/repro/cli.py") == []


# --------------------------------------------------------------------------- #
# CKPT001 — checkpoint field coverage                                         #
# --------------------------------------------------------------------------- #
class TestCkpt001:
    def test_flags_unserialized_mutable_field(self):
        src = (
            "from dataclasses import dataclass, field\n"
            "@dataclass\n"
            "class Widget:\n"
            "    name: str = 'w'\n"
            "    queue: list = field(default_factory=list)\n"
            "    def describe(self):\n"
            "        return {'name': self.name}\n"
        )
        findings = run_rule("CKPT001", src, "src/repro/kernel/x.py")
        assert [f.line for f in findings] == [5]
        assert "queue" in findings[0].message

    def test_private_and_immutable_fields_exempt(self):
        src = (
            "from dataclasses import dataclass, field\n"
            "@dataclass\n"
            "class Widget:\n"
            "    name: str = 'w'\n"
            "    count: int = 0\n"
            "    _cache: dict = field(default_factory=dict)\n"
            "    def describe(self):\n"
            "        return {'name': self.name, 'count': self.count}\n"
        )
        assert run_rule("CKPT001", src, "src/repro/kernel/x.py") == []

    def test_init_assigned_mutable_fields_checked(self):
        src = (
            "class Sock:\n"
            "    def __init__(self):\n"
            "        self.seq = 0\n"
            "        self.queue = []\n"
            "    def get_repair_state(self):\n"
            "        return {'seq': self.seq}\n"
        )
        findings = run_rule("CKPT001", src, "src/repro/kernel/x.py")
        assert len(findings) == 1 and "queue" in findings[0].message

    def test_restore_reading_unserialized_key_flagged(self):
        src = (
            "class Widget:\n"
            "    def __init__(self):\n"
            "        self.name = 'w'\n"
            "    def describe(self):\n"
            "        return {'name': self.name}\n"
            "    def restore_from(self, desc):\n"
            "        self.name = desc['name']\n"
            "        self.extra = desc['missing']\n"
        )
        findings = run_rule("CKPT001", src, "src/repro/kernel/x.py")
        assert len(findings) == 1 and "missing" in findings[0].message

    def test_class_without_serializer_skipped(self):
        src = (
            "class Helper:\n"
            "    def __init__(self):\n"
            "        self.scratch = []\n"
        )
        assert run_rule("CKPT001", src, "src/repro/kernel/x.py") == []

    def test_non_kernel_dirs_skipped(self):
        src = (
            "class W:\n"
            "    def __init__(self):\n"
            "        self.items = []\n"
            "    def describe(self):\n"
            "        return {'n': 1}\n"
        )
        assert run_rule("CKPT001", src, "src/repro/metrics/x.py") == []
