"""Record→replay oracle tests (ndflow Layer 3).

The ISSUE acceptance criteria live here: with the knob off, every
catalog workload replays digest-identical from seed + NDLog alone; with
``unsafe_unlogged_draw`` armed, the oracle detects the divergence — the
dynamic half of the two-witness pattern (the static half is the frozen
NDF001/NDF003 baseline, pinned in test_ndflow.py).
"""

import json
from pathlib import Path

import pytest

from repro.analysis.ndreplay import (
    DEFAULT_RUN_MS,
    DEFAULT_SEEDS,
    DEFAULT_WORKLOADS,
    crossref_streams,
    golden_ndlog_digests,
    run_oracle,
    run_record,
    run_roundtrip,
)
from repro.replication.config import NiliconConfig
from repro.workloads.catalog import WORKLOADS

GOLDEN_PATH = (
    Path(__file__).resolve().parents[1] / "golden" / "ndlog_digests.json")


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_every_catalog_workload_replays_identical(workload):
    cell = run_roundtrip(workload, seed=1, run_ms=DEFAULT_RUN_MS)
    assert cell["divergence"] is None
    assert cell["unconsumed"] == {}
    assert cell["identical"], cell
    assert cell["n_draws"] > 0  # the log is doing real work


def test_replay_consumes_serialized_log_only():
    # run_roundtrip round-trips through to_dict/from_dict; this pins the
    # stronger property that the JSON wire form suffices too.
    from repro.analysis.fuzz import PermutedTieBreak, run_instrumented
    from repro.net.world import reset_id_counters
    from repro.sim.ndlog import NDLog

    reset_id_counters()
    record_log = NDLog(mode="record")
    recorded = run_instrumented(
        "net", 1, run_ms=400, tiebreak=PermutedTieBreak(1),
        schedule_name="ndlog-record", detect=False, ndlog=record_log)
    wire = json.dumps(record_log.to_dict())

    reset_id_counters()
    replay_log = NDLog.from_dict(json.loads(wire), mode="replay")
    replayed = run_instrumented(
        "net", 1, run_ms=400, tiebreak=None,
        schedule_name="ndlog-replay", detect=False, ndlog=replay_log)
    assert replayed.trace_digest == recorded.trace_digest
    assert replayed.metrics_digest == recorded.metrics_digest
    assert replay_log.unconsumed() == {}


def test_oracle_smoke_matrix_is_clean():
    report = run_oracle(("net",), (1,), run_ms=500)
    assert report["ok"]
    assert all(cell["identical"] for cell in report["cells"])


def test_knob_divergence_is_detected():
    # The dynamic witness: with the unlogged draw armed the sweep must
    # diverge somewhere (any-cell — the draw is OS entropy).
    report = run_oracle(("net", "disk-rw"), (1, 2), run_ms=600,
                        knob="unsafe-unlogged-draw")
    assert report["knob"] == "unsafe-unlogged-draw"
    assert report["ok"], "oracle failed to catch the unlogged-draw knob"
    diverged = [c for c in report["cells"] if not c["identical"]]
    assert diverged
    for cell in diverged:
        # Divergence is actionable: either the exact decision is named or
        # the digests disagree.
        assert (
            cell["divergence"] is not None
            or cell.get("replay_trace_digest") != cell["record_trace_digest"]
            or cell["unconsumed"]
            or cell.get("replay_ndlog_digest") != cell["ndlog_digest"]
        )


def test_knob_divergence_names_the_stream_when_log_exhausts():
    # Run single cells until one produces a named divergence (the other
    # failure mode is a digest mismatch); bounded to keep the test fast.
    config = NiliconConfig.nilicon().with_(unsafe_unlogged_draw=True)
    for _ in range(5):
        cell = run_roundtrip("disk-rw", seed=1, run_ms=600, config=config)
        if cell["divergence"] is not None:
            # The OS-entropy jitter means the first divergent draw can land
            # on the tiebreak stream or exhaust a workload stream; either
            # way the message must name the stream and draw index.
            assert "#" in cell["divergence"], cell["divergence"]
            return
        if not cell["identical"]:
            return  # diverged via digests: still caught, accept
    pytest.fail("knob never diverged in 5 attempts")


def test_unknown_knob_is_rejected():
    with pytest.raises(KeyError):
        run_oracle(("net",), (1,), knob="zz-no-such-knob")


def test_record_mode_crossrefs_every_stream():
    report = run_record(("ssdb",), (1,), run_ms=500)
    assert report["ok"]
    crossref = report["crossref"]
    assert crossref["unmatched"] == []
    # The tie-break stream maps to the built-in; the kv client stream maps
    # to its static call site.
    assert "engine.tiebreak" in crossref["matched"]
    assert any(name.startswith("kv-client") for name in crossref["matched"])


def test_crossref_reports_inventory_gaps():
    # Against an inventory holding only literal sites, an unknown runtime
    # stream is an inventory gap.
    from repro.analysis.ndflow import build_nd_inventory

    inv = build_nd_inventory({
        "src/repro/zz_mod.py":
            "def a(w):\n    return w.rng.stream('zz-known')\n",
    })
    result = crossref_streams(
        {"zz-known": 1, "zz-stream-nobody-mints": 3}, inventory=inv)
    assert result["unmatched"] == ["zz-stream-nobody-mints"]
    assert result["matched"]["zz-known"] == "src/repro/zz_mod.py:2"


def test_crossref_wildcard_site_claims_caller_chosen_names():
    # openloop's rng_name parameter can mint any name, so unknown streams
    # legitimately map there against the real tree — most-specific literal
    # and f-string sites still win for the names they match.
    result = crossref_streams({"zz-stream-nobody-mints": 3})
    assert result["unmatched"] == []
    assert "openloop" in result["matched"]["zz-stream-nobody-mints"]


def test_golden_ndlog_digests_match_checked_in_file():
    """Pin the NDLog digests: a diff here means either a deliberate
    protocol/draw change (regenerate with `make golden-regen`) or an
    accidental nondeterminism regression in the recorded streams."""
    on_disk = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    recomputed = golden_ndlog_digests()
    assert on_disk["run_ms"] == DEFAULT_RUN_MS
    cells = [k for k in on_disk if k != "run_ms"]
    assert len(cells) == len(DEFAULT_WORKLOADS) * len(DEFAULT_SEEDS)
    for cell in cells:
        assert on_disk[cell] == recomputed[cell], cell
