"""Tests for the hot-path analyzer's static layers (classification + rules).

Synthetic scope-file overrides exercise the classifier and each PERF rule
in isolation (unique ``zz_``-prefixed names keep the name-based call graph
from reaching real code); the real-tree tests pin the analyzer's verdict
on the actual package, including the regression probe: the
``perf_unoptimized_digest`` re-hash loop must surface as PERF002.
"""

import textwrap

from repro.analysis.perf import (
    DEFAULT_ROOTS,
    analyze_perf,
    build_hot_map,
    load_perf_sources,
    perf_selfcheck,
)


def classify(code, roots):
    sources = load_perf_sources({"sim/engine.py": textwrap.dedent(code)})
    return build_hot_map(sources, roots)


def analyze(code, roots, select=None):
    report = analyze_perf(
        select=select,
        overrides={"sim/engine.py": textwrap.dedent(code)},
        roots=roots,
    )
    return [f for f in report.findings if f.path.endswith("sim/engine.py")]


def selfcheck(code, roots):
    sources = load_perf_sources({"sim/engine.py": textwrap.dedent(code)})
    return perf_selfcheck(sources, roots)


# --------------------------------------------------------------------------- #
# Layer 1: classification                                                     #
# --------------------------------------------------------------------------- #


def test_reachability_from_root():
    hot = classify(
        """
        def zz_root():
            zz_helper()

        def zz_helper():
            zz_deep()

        def zz_deep():
            pass

        def zz_unreachable():
            pass
        """,
        roots=(("zz_root", "per-event"),),
    )
    assert hot["zz_root"].hotness == "per-event"
    assert hot["zz_helper"].hotness == "per-event"
    assert hot["zz_deep"].hotness == "per-event"
    assert hot["zz_unreachable"].hotness is None


def test_strongest_class_wins_on_shared_paths():
    hot = classify(
        """
        def zz_epoch_root():
            zz_shared()

        def zz_event_root():
            zz_shared()

        def zz_shared():
            pass
        """,
        roots=(
            ("zz_epoch_root", "per-epoch"),
            ("zz_event_root", "per-event"),
        ),
    )
    assert hot["zz_shared"].hotness == "per-event"


def test_method_calls_propagate_by_name():
    hot = classify(
        """
        class ZzA:
            def zz_entry(self):
                self.zz_work()

        class ZzB:
            def zz_work(self):
                pass
        """,
        roots=(("ZzA.zz_entry", "per-page"),),
    )
    # Name-based over-approximation: x.zz_work() reaches every zz_work.
    assert hot["ZzB.zz_work"].hotness == "per-page"


def test_header_annotation_seeds_classification():
    hot = classify(
        """
        def zz_isolated():  # hot: per-page -- called from C, invisible here
            zz_callee()

        def zz_callee():
            pass
        """,
        roots=(),
    )
    assert hot["zz_isolated"].hotness == "per-page"
    assert hot["zz_isolated"].declared == "per-page"
    assert hot["zz_callee"].hotness == "per-page"


def test_multiline_def_header_annotation():
    hot = classify(
        """
        def zz_spread(
            a,
            b,
        ):  # hot: per-event -- annotation on the closing-paren line
            pass
        """,
        roots=(),
    )
    assert hot["zz_spread"].hotness == "per-event"


def test_exempt_annotation_blocks_classification_and_propagation():
    hot = classify(
        """
        def zz_root():
            zz_reference()

        def zz_reference():  # hot: exempt -- bench reference only
            zz_downstream()

        def zz_downstream():
            pass
        """,
        roots=(("zz_root", "per-event"),),
    )
    assert hot["zz_reference"].exempt
    assert hot["zz_reference"].hotness is None
    # Exempt functions neither receive nor forward hotness.
    assert hot["zz_downstream"].hotness is None


def test_perf_exempt_class_attribute():
    hot = classify(
        """
        class ZzInstrument:
            __perf_exempt__ = True

            def zz_probe(self):
                pass

        def zz_root():
            zz_probe()
        """,
        roots=(("zz_root", "per-event"),),
    )
    assert hot["ZzInstrument.zz_probe"].exempt
    assert hot["ZzInstrument.zz_probe"].hotness is None


# --------------------------------------------------------------------------- #
# Layer 1: selfcheck                                                          #
# --------------------------------------------------------------------------- #


def test_selfcheck_flags_unreachable_root():
    problems, _ = selfcheck("def zz_fn():\n    pass\n",
                            roots=(("zz_missing_root", "per-event"),))
    assert any("zz_missing_root" in p for p in problems)


def test_selfcheck_flags_unknown_vocabulary():
    problems, _ = selfcheck(
        "def zz_fn():  # hot: blazing -- not a class\n    pass\n", roots=()
    )
    assert any("blazing" in p for p in problems)


def test_selfcheck_flags_misplaced_annotation():
    problems, _ = selfcheck(
        """
        def zz_fn():
            x = 1
            return x  # hot: per-event -- not on a def header
        """,
        roots=(),
    )
    assert any("not on a function def header" in p for p in problems)


def test_selfcheck_flags_understated_annotation():
    problems, _ = selfcheck(
        """
        def zz_root():
            zz_understated()

        def zz_understated():  # hot: per-epoch -- stale claim
            pass
        """,
        roots=(("zz_root", "per-event"),),
    )
    assert any("understates" in p for p in problems)


def test_selfcheck_real_tree_is_clean():
    problems, dispositions = perf_selfcheck()
    assert problems == []
    # The documented roots are all classified.
    for qualname, hotness in DEFAULT_ROOTS:
        assert dispositions[qualname].startswith(hotness)
    # The exemption vocabulary is in live use.
    assert dispositions["SimProfiler.hit"] == "exempt"
    assert dispositions["HostPool._load_scan"] == "exempt"


# --------------------------------------------------------------------------- #
# Layer 2: rules                                                              #
# --------------------------------------------------------------------------- #

_EVENT_ROOT = (("zz_hot", "per-event"),)
_EPOCH_ROOT = (("zz_hot", "per-epoch"),)


def test_perf001_allocation_in_hot_loop():
    findings = analyze(
        """
        def zz_hot(self):
            for item in self.items:
                row = [part for part in item.parts]
                box = dict(k=item)
        """,
        roots=_EVENT_ROOT,
        select=["PERF001"],
    )
    assert [f.rule_id for f in findings] == ["PERF001", "PERF001"]


def test_perf001_not_reported_per_epoch_or_cold():
    code = """
        def zz_hot(self):
            for item in self.items:
                row = [part for part in item.parts]

        def zz_cold(self):
            for item in self.items:
                row = [part for part in item.parts]
        """
    # per-epoch: building a list once per epoch is fine.
    assert analyze(code, roots=_EPOCH_ROOT, select=["PERF001"]) == []
    # cold function with the same body: never linted.
    assert analyze(code, roots=(), select=["PERF001"]) == []


def test_perf002_hashing_in_hot_loop_and_suppression():
    code = """
        import zlib

        def zz_hot(self):
            for page in self.pages:
                self.crc = zlib.crc32(page)
        """
    findings = analyze(code, roots=_EPOCH_ROOT, select=["PERF002"])
    assert [f.rule_id for f in findings] == ["PERF002"]

    suppressed = code.replace(
        "zlib.crc32(page)",
        "zlib.crc32(page)  # nlint: disable=PERF002 -- dirty pages only",
    )
    assert analyze(suppressed, roots=_EPOCH_ROOT, select=["PERF002"]) == []


def test_perf003_sort_per_event_and_in_hot_loops():
    # sorted() anywhere in a per-event function fires...
    findings = analyze(
        """
        def zz_hot(self):
            return sorted(self.keys)
        """,
        roots=_EVENT_ROOT,
        select=["PERF003"],
    )
    assert [f.rule_id for f in findings] == ["PERF003"]
    # ...but in a per-epoch function only loop bodies fire.
    code = """
        def zz_hot(self):
            once = sorted(self.keys)
            for group in self.groups:
                group.members.sort()
        """
    findings = analyze(code, roots=_EPOCH_ROOT, select=["PERF003"])
    assert len(findings) == 1
    assert ".sort()" in findings[0].message


def test_perf004_repeated_attribute_chain():
    findings = analyze(
        """
        def zz_hot(self):
            for item in self.items:
                self.engine.emit(item)
                self.engine.emit(item.left)
                self.engine.emit(item.right)
        """,
        roots=_EVENT_ROOT,
        select=["PERF004"],
    )
    assert [f.rule_id for f in findings] == ["PERF004"]
    assert "'self.engine.emit'" in findings[0].message


def test_perf004_two_lookups_do_not_fire():
    assert analyze(
        """
        def zz_hot(self):
            for item in self.items:
                self.engine.emit(item)
                self.engine.emit(item.left)
        """,
        roots=_EVENT_ROOT,
        select=["PERF004"],
    ) == []


def test_perf005_lambda_per_event():
    findings = analyze(
        """
        def zz_hot(self):
            return min(self.hosts, key=lambda h: h.load)
        """,
        roots=_EVENT_ROOT,
        select=["PERF005"],
    )
    assert [f.rule_id for f in findings] == ["PERF005"]
    # The same lambda in a per-epoch function (outside loops) is fine.
    assert analyze(
        """
        def zz_hot(self):
            return min(self.hosts, key=lambda h: h.load)
        """,
        roots=_EPOCH_ROOT,
        select=["PERF005"],
    ) == []


def test_perf006_aggregate_scans():
    findings = analyze(
        """
        def zz_hot(self):
            return sum(1 for host in self.allocations.values() if host)

        def zz_hot_loop(self):
            count = 0
            for key, value in self.table.items():
                if value:
                    count += 1
            return count
        """,
        roots=(("zz_hot", "per-event"), ("zz_hot_loop", "per-event")),
        select=["PERF006"],
    )
    assert [f.rule_id for f in findings] == ["PERF006", "PERF006"]
    assert "'self.allocations.values'" in findings[0].message
    assert "'self.table'" in findings[1].message


def test_perf006_transforming_loop_does_not_fire():
    # A loop that does real per-item work is not an aggregate scan.
    assert analyze(
        """
        def zz_hot(self):
            for key, value in self.table.items():
                self.emit(key, value)
        """,
        roots=_EVENT_ROOT,
        select=["PERF006"],
    ) == []


# --------------------------------------------------------------------------- #
# Real tree                                                                   #
# --------------------------------------------------------------------------- #


def test_real_tree_digest_debt_is_paid():
    # Both digest loops carry justified suppressions now: the dirty-page
    # loop hashes only what changed, and the re-hash-everything loop is
    # the perf_unoptimized_digest regression knob itself — the statecache
    # must stay clean under PERF002.
    report = analyze_perf(select=["PERF002"])
    assert not any(
        f.path.endswith("replication/statecache.py") for f in report.findings
    ), "statecache digest loop regressed to whole-buffer hashing"


def test_real_tree_disk_commit_scan_debt_is_paid():
    # The per-epoch sum() over every drbd buffer was the last PERF006
    # debt; commit now pops a counter maintained at dispatch time.
    report = analyze_perf(select=["PERF006"])
    assert not any(
        f.path.endswith("replication/backup.py") for f in report.findings
    ), "backup commit regressed to rescanning the drbd buffers"


def test_real_tree_pair_count_scan_debt_is_paid():
    # pair_count used to be the documented PERF006 debt (a full member
    # scan per call); it is now an O(1) maintained index, with the scan
    # kept only as the exempt reference implementation for the
    # equivalence test — so pool.py must stay clean.
    report = analyze_perf(select=["PERF006"])
    assert not any(
        f.path.endswith("fleet/pool.py") for f in report.findings
    ), "HostPool.pair_count regressed to a full scan"


def test_real_tree_engine_dispatch_loop_is_clean():
    report = analyze_perf()
    assert [f for f in report.findings if f.path.endswith("sim/engine.py")] == []


def test_real_tree_findings_match_checked_in_baseline():
    from pathlib import Path

    from repro.analysis.baseline import apply_baseline, load_baseline

    baseline_file = Path(__file__).resolve().parents[2] / "perf-baseline.json"
    baseline = load_baseline(baseline_file)
    part = apply_baseline(analyze_perf().findings, baseline)
    assert part.new == [], "un-baselined PERF findings: run repro perf lint"
    assert part.stale == [], "stale perf-baseline.json entries: re-freeze"
