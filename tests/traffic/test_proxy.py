"""L7 proxy unit tests: routing, draining, eviction, zero-drop retry."""

from typing import Any, Generator

import pytest

from repro.fleet import FleetController, FleetSpec, FleetWorkload, HostPool
from repro.kernel.tcp import TcpStack
from repro.kernel.netdev import NetDevice
from repro.net import World
from repro.replication import NiliconConfig
from repro.sim.units import ms, sec
from repro.traffic.proxy import REPLY_BYTES, REQUEST_BYTES, TrafficProxy

SMALL_FLEET = FleetSpec(n_containers=3, n_hosts=3, slots_per_host=8)


@pytest.fixture
def world():
    return World(seed=7)


def build_proxied_fleet(world: World, fleet_spec: FleetSpec = SMALL_FLEET):
    pool = HostPool(world, fleet_spec.n_hosts,
                    slots_per_host=fleet_spec.slots_per_host)
    controller = FleetController(
        world, pool, fleet_spec=fleet_spec,
        config=NiliconConfig.nilicon(), seed=7,
    )
    controller.deploy()
    workload = FleetWorkload(world, controller)
    workload.attach_services()
    controller.start()
    proxy = TrafficProxy(world, controller)
    proxy.start()
    return pool, controller, workload, proxy


def make_session_stack(world: World, index: int = 0) -> TcpStack:
    ip = f"10.0.8.{200 + index}"
    stack = TcpStack(world.engine, world.costs, ip, name=f"test-sess{index}")
    device = NetDevice(f"test-sess{index}-eth0", ip, f"ae:{index:02x}",
                       world.engine)
    stack.attach_device(device)
    world.bridge.attach(device)
    return stack


def run_session(world: World, proxy: TrafficProxy, results: list,
                n_requests: int = 3, start_at_us: int = ms(300),
                gap_us: int = ms(40), index: int = 0) -> None:
    """A keep-alive client session; appends each validated reply."""
    stack = make_session_stack(world, index)

    def session() -> Generator[Any, Any, None]:
        yield world.engine.timeout(start_at_us)
        sock = stack.socket()
        yield sock.connect(proxy.ip, proxy.port)
        for r in range(n_requests):
            sock.send(f"R{index:03d}{r:04d}".encode()[:REQUEST_BYTES])
            reply = b""
            while len(reply) < REPLY_BYTES:
                chunk = yield sock.recv(REPLY_BYTES - len(reply))
                assert chunk != b""
                reply += chunk
            results.append(reply)
            yield world.engine.timeout(gap_us)
        sock.close()

    world.engine.process(session(), name=f"test-session-{index}")


def test_keep_alive_session_relays_and_sticks(world):
    _pool, controller, _workload, proxy = build_proxied_fleet(world)
    results: list[bytes] = []
    run_session(world, proxy, results, n_requests=4)
    world.run(until=sec(2))
    controller.stop()
    assert len(results) == 4
    assert all(r.startswith(b"PONG") for r in results)
    # Keep-alive affinity: one session's requests all hit one member, and
    # its counter sequence is strictly increasing.
    counts = [int(r[4:]) for r in results]
    assert counts == sorted(counts)
    assert proxy.counters.routed == proxy.counters.relayed + proxy.inflight()
    assert proxy.counters.dropped == 0


def test_many_sessions_spread_over_members(world):
    _pool, controller, _workload, proxy = build_proxied_fleet(world)
    results: list[bytes] = []
    for i in range(6):
        run_session(world, proxy, results, n_requests=2, index=i,
                    start_at_us=ms(300) + i * ms(7))
    world.run(until=sec(2))
    controller.stop()
    assert len(results) == 12
    # Round-robin assignment reaches every member.
    routed_members = {
        m for m, n in proxy.counters.per_member_routed.items() if n > 0
    }
    assert routed_members == set(controller.members)


def test_drain_stops_new_routing_and_runs_dry(world):
    _pool, controller, _workload, proxy = build_proxied_fleet(world)
    member = sorted(controller.members)[0]
    results: list[bytes] = []
    for i in range(4):
        run_session(world, proxy, results, n_requests=4, index=i)
    drained: list[bool] = []

    def drain_timeline() -> Generator[Any, Any, None]:
        yield world.engine.timeout(ms(500))
        done = yield from proxy.drain(member)
        drained.append(done)
        routed_before = proxy.counters.per_member_routed.get(member, 0)
        yield world.engine.timeout(ms(400))
        # While draining no new request may be routed to the member.
        assert proxy.counters.per_member_routed.get(member, 0) == routed_before
        proxy.undrain(member)

    world.engine.process(drain_timeline(), name="drain-timeline")
    world.run(until=sec(3))
    controller.stop()
    assert drained == [True]
    assert proxy.upstreams[member].inflight() == 0
    assert len(results) == 16
    assert proxy.counters.drains == 1


def test_controller_migrating_state_begins_drain(world):
    _pool, controller, _workload, proxy = build_proxied_fleet(world)
    member = sorted(controller.members)[0]
    controller._set_state(controller.members[member], "migrating")
    assert proxy.upstreams[member].draining
    controller._set_state(controller.members[member], "protected")
    assert not proxy.upstreams[member].draining


def test_controller_dead_state_evicts(world):
    _pool, controller, _workload, proxy = build_proxied_fleet(world)
    member = sorted(controller.members)[0]
    controller._set_state(controller.members[member], "dead")
    upstream = proxy.upstreams[member]
    assert upstream.dead
    assert not upstream.routable
    assert proxy.counters.evictions == 1
    # The router never picks the dead member.
    for _ in range(10):
        assert proxy._route(member) != member


def test_probe_eviction_and_readmission_on_silent_member(world):
    """Members that answer nothing (no service attached — no fail-stop, so
    the controller never signals) must be evicted by probe timeouts alone,
    then readmitted once the service comes up and probes reply."""
    pool = HostPool(world, SMALL_FLEET.n_hosts,
                    slots_per_host=SMALL_FLEET.slots_per_host)
    controller = FleetController(
        world, pool, fleet_spec=SMALL_FLEET,
        config=NiliconConfig.nilicon(), seed=7,
    )
    controller.deploy()
    workload = FleetWorkload(world, controller)
    controller.start()
    proxy = TrafficProxy(world, controller)
    proxy.start()

    def attach_late() -> Generator[Any, Any, None]:
        yield world.engine.timeout(ms(2500))
        workload.attach_services()

    world.engine.process(attach_late(), name="attach-late")
    world.run(until=sec(6))
    controller.stop()
    assert proxy.counters.probe_misses >= proxy.probes_to_evict
    assert proxy.counters.evictions >= len(controller.members)
    assert proxy.counters.readmissions >= len(controller.members)
    assert all(u.healthy for u in proxy.upstreams.values())


def test_failstop_transparent_to_inflight_requests(world):
    """A host fail-stop mid-session: TCP repair carries the proxy's
    upstream connections to the promoted backup, replies keep flowing,
    and the count sequence stays monotonic (zero drops)."""
    pool, controller, _workload, proxy = build_proxied_fleet(world)
    results: list[bytes] = []
    for i in range(3):
        run_session(world, proxy, results, n_requests=5, index=i,
                    gap_us=ms(120))

    def failstop() -> Generator[Any, Any, None]:
        yield world.engine.timeout(ms(600))
        controller.inject_host_failstop(pool.host("node0"))

    world.engine.process(failstop(), name="failstop-timeline")
    world.run(until=sec(6))
    controller.stop()
    assert len(results) == 15
    assert all(r.startswith(b"PONG") for r in results)
    assert proxy.counters.dropped == 0
    assert proxy.counters.routed == proxy.counters.relayed + proxy.inflight()
