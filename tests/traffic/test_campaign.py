"""Traffic campaign oracles: zero drops across faults, replay-identical SLOs."""

from repro.experiments.traffic import (
    SMOKE_FLEET,
    _run_scenario_once,
    check_traffic_bench,
    run_traffic_campaign,
    traffic_profiles,
)
from repro.sim.units import sec


def _scenario(name: str):
    for scenario in traffic_profiles(smoke=True):
        if scenario.profile.name == name:
            return scenario
    raise KeyError(name)


def _run(name: str):
    return _run_scenario_once(
        3, SMOKE_FLEET, _scenario(name), tail_us=sec(2),
        trace_limit=2_000_000,
    )


def test_failstop_drops_no_inflight_requests():
    """A host fail-stop under open-loop load: every request sent before,
    during and after the outage resolves — zero errors, zero timeouts,
    zero proxy drops; the outage shows up only in the latency tail."""
    result = _run("failover")
    assert result["violations"] == []
    client = result["client"]
    assert client["errors"] == 0
    assert client["timeouts"] == 0
    assert client["completed"] == client["sent"]
    assert result["proxy"]["dropped"] == 0
    assert result["proxy"]["routed"] == result["proxy"]["relayed"]
    assert any(e["event"] == "failover" for e in result["events"])


def test_migration_drains_dry_and_drops_nothing():
    """drain -> migrate_container -> undrain: the cutover happens with the
    moving member's in-flight count at zero, and no request is lost."""
    result = _run("migration")
    assert result["violations"] == []
    done = [e for e in result["events"] if e["event"] == "migration_done"]
    assert done and done[0]["drained_dry"] and done[0]["migrated"]
    client = result["client"]
    assert client["errors"] == 0
    assert client["completed"] == client["sent"]
    assert result["proxy"]["dropped"] == 0
    assert result["row"].drains == 1


def test_same_seed_scenarios_replay_identically():
    """PR 5's campaign convention applied to client-visible numbers: the
    trace digest AND every SLO cell must reproduce under the same seed."""
    first = _run("steady")
    second = _run("steady")
    assert first["digest"] == second["digest"]
    assert first["row"] == second["row"]
    assert first["client"] == second["client"]


def test_different_seeds_diverge():
    scenario = _scenario("steady")
    a = _run_scenario_once(3, SMOKE_FLEET, scenario, tail_us=sec(2),
                           trace_limit=2_000_000)
    b = _run_scenario_once(4, SMOKE_FLEET, scenario, tail_us=sec(2),
                           trace_limit=2_000_000)
    assert a["digest"] != b["digest"]


def test_smoke_campaign_green_and_deterministic():
    report = run_traffic_campaign(seed=1, smoke=True)
    assert report["ok"], report["violations"]
    assert report["deterministic"]
    assert report["slo_digest"] == report["replay_slo_digest"]
    assert {p["name"] for p in report["profiles"]} == {
        "steady", "bursty", "failover", "migration",
    }
    # The open-loop generator actually sustained concurrent sessions.
    assert report["peak_sessions"] >= 30


def test_bench_gate_flags_regressions():
    base = {
        "ok": True,
        "profiles": {"steady": {"p99_us": 40_000, "throughput_rps": 150.0}},
    }
    good = {
        "ok": True,
        "profiles": {"steady": {"p99_us": 44_000, "throughput_rps": 140.0}},
    }
    slow = {
        "ok": True,
        "profiles": {"steady": {"p99_us": 50_000, "throughput_rps": 150.0}},
    }
    starved = {
        "ok": True,
        "profiles": {"steady": {"p99_us": 40_000, "throughput_rps": 100.0}},
    }
    assert check_traffic_bench(good, base) == []
    assert any("p99" in p for p in check_traffic_bench(slow, base))
    assert any("req/s" in p for p in check_traffic_bench(starved, base))
    # Profiles absent from the baseline do not gate.
    extra = {
        "ok": True,
        "profiles": {"novel": {"p99_us": 1, "throughput_rps": 1.0}},
    }
    assert check_traffic_bench(extra, base) == []
    # A failing current bench gates regardless of the cells.
    failing = dict(good, ok=False)
    assert check_traffic_bench(failing, base)
