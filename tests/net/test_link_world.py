"""Tests for channels, hosts and the world topology."""

from repro.net import Channel, World
from repro.sim import Engine, ms


def test_channel_delivers_message():
    eng = Engine()
    chan = Channel(eng, latency_us=50)
    got = []

    def receiver():
        delivery = yield chan.b.recv()
        got.append((eng.now, delivery.message, delivery.chunks))

    eng.process(receiver())
    chan.a.send({"kind": "hello"}, size_bytes=100, chunks=4)
    eng.run()
    assert got[0][1] == {"kind": "hello"}
    assert got[0][2] == 4
    assert got[0][0] >= 50


def test_channel_fifo_order():
    eng = Engine()
    chan = Channel(eng)
    got = []

    def receiver():
        for _ in range(3):
            delivery = yield chan.b.recv()
            got.append(delivery.message)

    eng.process(receiver())
    for i in range(3):
        chan.a.send(i, size_bytes=1000)
    eng.run()
    assert got == [0, 1, 2]


def test_channel_bandwidth_serialization():
    eng = Engine()
    chan = Channel(eng, bandwidth_bps=8_000_000, latency_us=0)  # 1 byte/us
    times = []

    def receiver():
        for _ in range(2):
            yield chan.b.recv()
            times.append(eng.now)

    eng.process(receiver())
    chan.a.send("m1", size_bytes=1000)
    chan.a.send("m2", size_bytes=1000)
    eng.run()
    assert times == [1000, 2000]


def test_channel_directions_independent():
    eng = Engine()
    chan = Channel(eng, bandwidth_bps=8_000_000, latency_us=0)
    times = {}

    def receiver(end, tag):
        def proc():
            yield end.recv()
            times[tag] = eng.now

        return proc

    eng.process(receiver(chan.b, "b")())
    eng.process(receiver(chan.a, "a")())
    chan.a.send("to-b", size_bytes=1000)
    chan.b.send("to-a", size_bytes=1000)
    eng.run()
    assert times == {"a": 1000, "b": 1000}


def test_cut_channel_drops_messages():
    eng = Engine()
    chan = Channel(eng)
    got = []

    def receiver():
        delivery = yield chan.b.recv()
        got.append(delivery.message)

    eng.process(receiver())
    chan.cut()
    chan.a.send("lost")
    eng.run(until=ms(100))
    assert got == []


def test_cut_drops_in_flight_messages():
    eng = Engine()
    chan = Channel(eng, latency_us=1000)
    got = []

    def receiver():
        delivery = yield chan.b.recv()
        got.append(delivery.message)

    def cutter():
        yield eng.timeout(10)  # message already in flight
        chan.cut()

    eng.process(receiver())
    eng.process(cutter())
    chan.a.send("in-flight")
    eng.run(until=ms(10))
    assert got == []


def test_host_fail_stop_cuts_channels():
    world = World()
    world.primary.fail_stop()
    assert world.pair_channel.is_cut
    assert world.primary.kernel.failed
    got = []

    def receiver():
        delivery = yield world.backup.endpoint("pair").recv()
        got.append(delivery)

    world.engine.process(receiver())
    world.primary.endpoint("pair").send("from the grave")
    world.run(until=ms(10))
    assert got == []


def test_world_topology():
    world = World(seed=3)
    assert world.primary.endpoint("pair").peer is world.backup.endpoint("pair")
    assert world.bridge.bandwidth_bps == 1_000_000_000
    assert world.pair_channel.bandwidth_bps == 10_000_000_000
    # RNG reproducibility at the world level.
    assert World(seed=3).rng.stream("x").random() == world.rng.stream("x").random()


def test_endpoint_send_after_restore():
    eng = Engine()
    chan = Channel(eng)
    got = []

    def receiver():
        delivery = yield chan.b.recv()
        got.append(delivery.message)

    eng.process(receiver())
    chan.cut()
    chan.a.send("dropped")
    chan.restore()
    chan.a.send("arrives")
    eng.run()
    assert got == ["arrives"]
