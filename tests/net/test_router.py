"""Tests for the per-container channel router."""

from repro.net import Channel, World
from repro.net.router import EndpointRouter
from repro.sim import Engine, ms


def test_router_dispatches_by_container_tag():
    eng = Engine()
    chan = Channel(eng)
    tx_router = EndpointRouter.attach(chan.a, eng)
    rx_router = EndpointRouter.attach(chan.b, eng)
    got = {"a": [], "b": []}

    def consumer(tag):
        port = rx_router.port(tag)
        while True:
            delivery = yield port.recv()
            got[tag].append(delivery.message["n"])

    eng.process(consumer("a"))
    eng.process(consumer("b"))
    tx_router.send("a", {"n": 1})
    tx_router.send("b", {"n": 2})
    tx_router.send("a", {"n": 3})
    eng.run(until=ms(10))
    assert got == {"a": [1, 3], "b": [2]}


def test_attach_is_idempotent():
    eng = Engine()
    chan = Channel(eng)
    r1 = EndpointRouter.attach(chan.a, eng)
    r2 = EndpointRouter.attach(chan.a, eng)
    assert r1 is r2


def test_untagged_or_unknown_messages_counted_dropped():
    eng = Engine()
    chan = Channel(eng)
    rx_router = EndpointRouter.attach(chan.b, eng)
    rx_router.subscribe("known")
    chan.a.send({"kind": "mystery"})  # untagged
    chan.a.send({"kind": "x", "container": "stranger"})  # unknown tag
    eng.run(until=ms(10))
    assert rx_router.dropped == 2


def test_routed_port_send_preserves_size_and_chunks():
    eng = Engine()
    chan = Channel(eng)
    tx_router = EndpointRouter.attach(chan.a, eng)
    rx_router = EndpointRouter.attach(chan.b, eng)
    port_tx = tx_router.port("c1")
    port_rx = rx_router.port("c1")
    seen = []

    def consumer():
        delivery = yield port_rx.recv()
        seen.append((delivery.size_bytes, delivery.chunks))

    eng.process(consumer())
    port_tx.send({"kind": "state"}, size_bytes=8192, chunks=7)
    eng.run(until=ms(10))
    assert seen == [(8192, 7)]


def test_world_add_host_and_connect_pair():
    world = World(seed=1)
    spare = world.add_host("spare")
    assert spare.kernel.hostname == "spare"
    channel = world.connect_pair(world.backup, spare)
    got = []

    def consumer():
        delivery = yield channel.b.recv()
        got.append(delivery.message)

    world.engine.process(consumer())
    channel.a.send("hello-spare")
    world.run(until=ms(10))
    assert got == ["hello-spare"]
    # Fail-stop of either end silences the new channel too.
    spare.fail_stop()
    assert channel.is_cut
