"""Tests for the TCP stack: handshake, streams, retransmission, repair."""

import pytest

from repro.kernel.costmodel import CostModel
from repro.kernel.errors import ConnectionReset, SocketError
from repro.kernel.netdev import Bridge, NetDevice
from repro.kernel.tcp import MSS, TcpSocket, TcpStack, TcpState
from repro.sim import Engine, ms


class Net:
    """Two hosts ("server" 10.0.0.2, "client" 10.0.0.1) on one bridge."""

    def __init__(self):
        self.engine = Engine()
        self.costs = CostModel()
        self.bridge = Bridge(self.engine, latency_us=100)
        self.client = self._host("client", "10.0.0.1")
        self.server = self._host("server", "10.0.0.2")

    def _host(self, name, ip):
        stack = TcpStack(self.engine, self.costs, ip, name=name)
        dev = NetDevice(f"{name}-eth0", ip, f"{name}-mac", self.engine)
        stack.attach_device(dev)
        self.bridge.attach(dev)
        return stack

    def run(self, until=None):
        self.engine.run(until=until)


@pytest.fixture
def net():
    return Net()


def connect_pair(net, port=80):
    """Establish a connection; returns (client_sock, server_child_sock)."""
    listener = net.server.socket()
    listener.listen(port)
    accepted = listener.accept()
    client = net.client.socket()
    connected = client.connect("10.0.0.2", port)
    net.run()
    assert connected.processed and accepted.processed
    return client, accepted.value


def test_handshake_establishes_both_ends(net):
    client, child = connect_pair(net)
    assert client.state is TcpState.ESTABLISHED
    assert child.state is TcpState.ESTABLISHED
    assert child.remote_ip == "10.0.0.1"
    assert net.server.socket_count == 2  # listener + child


def test_data_transfer_client_to_server(net):
    client, child = connect_pair(net)
    client.send(b"hello server")
    got = child.recv(100)
    net.run()
    assert got.value == b"hello server"


def test_data_transfer_server_to_client(net):
    client, child = connect_pair(net)
    child.send(b"response")
    got = client.recv(100)
    net.run()
    assert got.value == b"response"


def test_large_transfer_segments_and_reassembles(net):
    client, child = connect_pair(net)
    blob = bytes(range(256)) * 40  # 10240 bytes, > 7 segments
    client.send(blob)
    received = bytearray()

    def reader():
        while len(received) < len(blob):
            chunk = yield child.recv(4096)
            received.extend(chunk)

    net.engine.process(reader())
    net.run()
    assert bytes(received) == blob


def test_acks_clear_write_queue(net):
    client, child = connect_pair(net)
    client.send(b"x" * 3000)
    assert client.unacked_bytes == 3000
    net.run()
    assert client.unacked_bytes == 0
    assert client.snd_una == client.snd_nxt


def test_recv_blocks_until_data(net):
    client, child = connect_pair(net)
    results = []

    def reader():
        data = yield child.recv(10)
        results.append((net.engine.now, data))

    def writer():
        yield net.engine.timeout(ms(5))
        client.send(b"late")

    net.engine.process(reader())
    net.engine.process(writer())
    net.run()
    assert results[0][1] == b"late"
    assert results[0][0] >= ms(5)


def test_send_on_closed_socket_rejected(net):
    sock = net.client.socket()
    with pytest.raises(SocketError):
        sock.send(b"x")


def test_listen_port_conflict_rejected(net):
    a, b = net.server.socket(), net.server.socket()
    a.listen(80)
    with pytest.raises(SocketError):
        b.listen(80)


def test_rst_on_demux_miss_breaks_client(net):
    client = net.client.socket()
    connected = client.connect("10.0.0.2", 9999)  # nobody listening
    connected.defuse()
    net.run()
    assert client.state is TcpState.RESET
    assert net.server.rsts_sent == 1


def test_recv_on_reset_socket_fails(net):
    client = net.client.socket()
    client.connect("10.0.0.2", 9999).defuse()
    net.run()
    errors = []

    def reader():
        try:
            yield client.recv(10)
        except ConnectionReset:
            errors.append("reset")

    net.engine.process(reader())
    net.run()
    assert errors == ["reset"]


def test_fin_gives_eof_to_reader(net):
    client, child = connect_pair(net)
    client.send(b"bye")
    client.close()
    chunks = []

    def reader():
        while True:
            chunk = yield child.recv(100)
            chunks.append(chunk)
            if chunk == b"":
                return

    net.engine.process(reader())
    net.run()
    assert chunks == [b"bye", b""]
    assert child.state is TcpState.PEER_CLOSED


def test_retransmission_after_loss(net):
    client, child = connect_pair(net)
    # Cut the server's ingress so the data is lost, then restore.
    net.server.device.cable_cut = True
    client.send(b"must arrive")
    net.run(until=ms(10))
    assert client.unacked_bytes == len(b"must arrive")
    net.server.device.cable_cut = False
    got = child.recv(100)
    net.run()
    assert got.value == b"must arrive"
    assert client.retransmits >= 1
    assert client.unacked_bytes == 0


def test_retransmit_uses_default_rto(net):
    client, child = connect_pair(net)
    net.server.device.cable_cut = True
    client.send(b"delayed")
    net.run(until=ms(10))  # original segment dropped at the cut NIC
    net.server.device.cable_cut = False
    # The retransmit should happen at ~tcp_rto_default (1 s).
    net.run(until=net.costs.tcp_rto_default - ms(1))
    assert child.recv_buffer == bytearray()
    net.run()
    assert bytes(child.recv_buffer) == b"delayed"


def test_duplicate_segments_are_idempotent(net):
    client, child = connect_pair(net)
    # Cut the *client's* ingress: data arrives at server but ACKs are lost,
    # so the client retransmits an already-delivered segment.
    net.client.device.cable_cut = True
    client.send(b"once only")
    net.run(until=net.costs.tcp_rto_default + ms(50))
    net.client.device.cable_cut = False
    net.run()
    assert bytes(child.recv_buffer) == b"once only"
    assert client.retransmits >= 1


def test_syn_retry_after_silent_drop(net):
    """Firewall-dropped SYN stalls connect by ~syn_retry_timeout (SSV-C)."""
    listener = net.server.socket()
    listener.listen(80)
    net.server.device.firewall_drop_input = True

    def unblock():
        yield net.engine.timeout(ms(50))
        net.server.device.firewall_drop_input = False

    net.engine.process(unblock())
    client = net.client.socket()
    connected = client.connect("10.0.0.2", 80)
    net.run(until=connected)
    # Connection established only after the 1 s SYN retry.
    assert net.engine.now >= net.costs.syn_retry_timeout


def test_plugged_ingress_avoids_syn_stall(net):
    """Buffering input (NiLiCon SSV-C) releases the SYN with tiny delay."""
    listener = net.server.socket()
    listener.listen(80)
    net.server.device.ingress_plug.plug()

    def unblock():
        yield net.engine.timeout(ms(50))
        net.server.device.ingress_plug.unplug()

    net.engine.process(unblock())
    client = net.client.socket()
    connected = client.connect("10.0.0.2", 80)
    net.run(until=connected)
    assert net.engine.now < ms(60)  # no retry needed


class TestRepairMode:
    def test_repair_requires_established(self, net):
        sock = net.client.socket()
        with pytest.raises(SocketError):
            sock.enter_repair()

    def test_get_state_requires_repair_mode(self, net):
        client, child = connect_pair(net)
        with pytest.raises(SocketError):
            child.get_repair_state()

    def test_repair_roundtrip_preserves_streams(self, net):
        client, child = connect_pair(net)
        client.send(b"inflight-c2s")
        child.send(b"inflight-s2c")
        net.run()
        child.enter_repair()
        state = child.get_repair_state()
        child.leave_repair()
        assert state["recv_buffer"] == b"inflight-c2s"
        assert state["snd_nxt"] > state["snd_una"] or state["write_queue"] == []

    def test_restored_socket_resumes_stream(self, net):
        """Migrate the server-side socket to a fresh stack (failover)."""
        client, child = connect_pair(net)
        client.send(b"before failover")
        net.run()

        child.enter_repair()
        state = child.get_repair_state()

        # Tear down the old server entirely; attach a new one with same IP.
        net.server.device.cable_cut = True
        backup = TcpStack(net.engine, net.costs, "10.0.0.2", name="backup")
        dev = NetDevice("backup-eth0", "10.0.0.2", "backup-mac", net.engine)
        backup.attach_device(dev)
        port = net.bridge.attach(dev)
        net.bridge.gratuitous_arp("10.0.0.2", port)

        restored = backup.socket()
        restored.repair = True
        restored.set_repair_state(state, rto_patch=True)
        restored.leave_repair()

        assert restored.rto == net.costs.tcp_rto_min

        # Unread pre-failover data is preserved in the read queue.
        pre = restored.recv(100)
        net.run()
        assert pre.value == b"before failover"

        # The stream continues transparently in both directions.
        restored.send(b"welcome back")
        got = client.recv(100)
        net.run()
        assert got.value == b"welcome back"

        client.send(b"more data")
        got2 = restored.recv(100)
        net.run()
        assert got2.value == b"more data"

    def test_restored_socket_retransmits_unacked(self, net):
        """Unacked data at checkpoint is retransmitted after min RTO (SSV-E)."""
        client, child = connect_pair(net)
        # Ensure the server's response is checkpointed as unacked: cut the
        # client before ACKs flow back.
        net.client.device.cable_cut = True
        child.send(b"unacked response")
        net.run(until=ms(10))
        child.enter_repair()
        state = child.get_repair_state()
        assert state["write_queue"]

        net.server.device.cable_cut = True
        backup = TcpStack(net.engine, net.costs, "10.0.0.2", name="backup")
        dev = NetDevice("backup-eth0", "10.0.0.2", "backup-mac", net.engine)
        backup.attach_device(dev)
        port = net.bridge.attach(dev)
        net.bridge.gratuitous_arp("10.0.0.2", port)
        restored = backup.socket()
        restored.repair = True
        restored.set_repair_state(state, rto_patch=True)
        restored.leave_repair()
        restored.kick_retransmit()

        net.client.device.cable_cut = False
        start = net.engine.now
        got = client.recv(100)
        net.run(until=got)
        assert got.value == b"unacked response"
        # Arrived via the repaired-socket min RTO, far below the default.
        assert net.engine.now - start <= net.costs.tcp_rto_min + ms(50)

    def test_rto_patch_disabled_uses_default(self, net):
        client, child = connect_pair(net)
        child.enter_repair()
        state = child.get_repair_state()
        restored = net.server.socket()
        restored.repair = True
        net.server.unregister_connection(child)
        restored.set_repair_state(state, rto_patch=False)
        assert restored.rto == net.costs.tcp_rto_default
