"""Tests for the VFS, page cache, DNC state and fgetfc."""

import pytest

from repro.kernel.blockdev import BlockDevice
from repro.kernel.errors import FileSystemError
from repro.kernel.fs import FileSystem


@pytest.fixture
def fs():
    return FileSystem(BlockDevice("disk0"), name="testfs")


def test_create_open_write_read(fs):
    fs.create("/data/log")
    fs.write("/data/log", 0, b"hello world")
    assert fs.read("/data/log", 0, 11) == b"hello world"
    assert fs.lookup("/data/log").size == 11


def test_create_duplicate_rejected(fs):
    fs.create("/a")
    with pytest.raises(FileSystemError):
        fs.create("/a")


def test_lookup_missing_rejected(fs):
    with pytest.raises(FileSystemError):
        fs.lookup("/nope")


def test_open_create_flag(fs):
    f = fs.open("/new", create=True)
    assert f.path == "/new"
    assert fs.exists("/new")


def test_write_at_offset_splices(fs):
    fs.create("/f")
    fs.write("/f", 0, b"aaaaaaaaaa")
    fs.write("/f", 3, b"BBB")
    assert fs.read("/f", 0, 10) == b"aaaBBBaaaa"


def test_write_across_page_boundary(fs):
    fs.create("/f")
    data = b"x" * 5000  # spans two 4 KiB pages
    touched = fs.write("/f", 4090, data)
    assert touched == 3  # pages 0 (tail), 1 (full), 2 (head)
    assert fs.read("/f", 4090, 5000) == data


def test_read_in_sparse_hole_returns_zeros(fs):
    fs.create("/f")
    fs.write("/f", 8192, b"tail")
    assert fs.read("/f", 0, 4) == b"\0\0\0\0"


def test_read_beyond_eof_truncated(fs):
    fs.create("/f")
    fs.write("/f", 0, b"abc")
    assert fs.read("/f", 0, 100) == b"abc"
    assert fs.read("/f", 50, 10) == b""


def test_negative_offset_rejected(fs):
    fs.create("/f")
    with pytest.raises(FileSystemError):
        fs.write("/f", -1, b"x")


def test_writeback_persists_to_device(fs):
    fs.create("/f")
    fs.write("/f", 0, b"persist me")
    assert fs.dirty_page_count() == 1
    flushed = fs.writeback()
    assert flushed == 1
    assert fs.dirty_page_count() == 0
    inode = fs.lookup("/f")
    block = inode.block_map[0]
    assert fs.device.read_block(block).startswith(b"persist me")


def test_writeback_limit(fs):
    fs.create("/f")
    for i in range(5):
        fs.write("/f", i * 4096, b"page")
    assert fs.writeback(limit=2) == 2
    assert fs.dirty_page_count() == 3


def test_read_after_writeback_comes_from_disk(fs):
    fs.create("/f")
    fs.write("/f", 0, b"on disk")
    fs.writeback()
    # Simulate cache eviction by clearing the cache dict.
    fs._cache.clear()
    assert fs.read("/f", 0, 7) == b"on disk"


def test_dnc_set_on_write_cleared_by_fgetfc(fs):
    fs.create("/f")
    fs.write("/f", 0, b"dirty")
    inodes, pages = fs.fgetfc()
    assert any(m["path"] == "/f" for m in inodes)
    assert [(p[0], p[1]) for p in pages] == [("/f", 0)]
    # Second call: nothing new.
    inodes2, pages2 = fs.fgetfc()
    assert inodes2 == [] and pages2 == []


def test_fgetfc_does_not_clear_writeback_dirty(fs):
    fs.create("/f")
    fs.write("/f", 0, b"x")
    fs.fgetfc()
    assert fs.dirty_page_count() == 1  # still needs disk writeback


def test_writeback_does_not_clear_dnc(fs):
    fs.create("/f")
    fs.write("/f", 0, b"x")
    fs.writeback()
    _inodes, pages = fs.fgetfc()
    assert len(pages) == 1  # flushed page still needs checkpointing


def test_metadata_mutations_set_dnc(fs):
    fs.create("/f")
    fs.fgetfc()  # drain creation DNC
    fs.chown("/f", 1000, 1000)
    inodes, _pages = fs.fgetfc()
    assert len(inodes) == 1
    fs.chmod("/f", 0o600)
    inodes, _ = fs.fgetfc()
    assert inodes[0]["mode"] == 0o600
    fs.truncate("/f", 0)
    inodes, _ = fs.fgetfc()
    assert inodes[0]["size"] == 0


def test_truncate_drops_cache_and_blocks(fs):
    fs.create("/f")
    fs.write("/f", 0, b"a" * 10000)
    fs.writeback()
    fs.truncate("/f", 4096)
    inode = fs.lookup("/f")
    assert inode.size == 4096
    assert all(p < 1 for p in inode.block_map)
    assert fs.read("/f", 0, 4096) == b"a" * 4096


def test_apply_fc_checkpoint_recreates_state(fs):
    fs.create("/src")
    fs.write("/src", 100, b"replicate")
    fs.chown("/src", 42, 43)
    inodes, pages = fs.fgetfc()

    backup = FileSystem(BlockDevice("disk1"), name="backupfs")
    backup.apply_fc_checkpoint(inodes, pages)
    assert backup.file_content("/src") == fs.file_content("/src")
    restored = backup.lookup("/src")
    assert (restored.uid, restored.gid) == (42, 43)


def test_logical_state_merges_cache_over_disk(fs):
    fs.create("/f")
    fs.write("/f", 0, b"version1")
    fs.writeback()
    fs.write("/f", 0, b"version2")  # cached, not yet on disk
    assert fs.logical_state() == {"/f": b"version2"}


def test_unlink_removes_file(fs):
    fs.create("/f")
    fs.write("/f", 0, b"x")
    fs.unlink("/f")
    assert not fs.exists("/f")
    with pytest.raises(FileSystemError):
        fs.read("/f", 0, 1)


def test_flush_all_models_nas_commit(fs):
    fs.create("/f")
    for i in range(10):
        fs.write("/f", i * 4096, b"p")
    assert fs.flush_all_to_device() == 10
    assert fs.dirty_page_count() == 0
