"""Tests for NICs, the plug qdisc and the learning bridge."""

from repro.kernel.netdev import Bridge, NetDevice, Packet, PlugQdisc
from repro.sim import Engine


def mkpkt(payload=b"", src="10.0.0.1", dst="10.0.0.2", **kw):
    return Packet(src_ip=src, src_port=1, dst_ip=dst, dst_port=2, payload=payload, **kw)


class TestPlugQdisc:
    def test_open_plug_passes_through(self):
        out = []
        plug = PlugQdisc("p", out.append)
        plug.enqueue(mkpkt(b"a"))
        assert len(out) == 1

    def test_closed_plug_buffers(self):
        out = []
        plug = PlugQdisc("p", out.append)
        plug.plug()
        plug.enqueue(mkpkt(b"a"))
        plug.enqueue(mkpkt(b"b"))
        assert out == [] and plug.queued == 2

    def test_unplug_releases_in_fifo_order(self):
        out = []
        plug = PlugQdisc("p", out.append)
        plug.plug()
        p1, p2 = mkpkt(b"first"), mkpkt(b"second")
        plug.enqueue(p1)
        plug.enqueue(p2)
        plug.unplug()
        assert [p.payload for p in out] == [b"first", b"second"]
        assert plug.buffered_total == 2 and plug.released_total == 2

    def test_replug_during_release_stops_drain(self):
        out = []
        plug = PlugQdisc("p", lambda p: (out.append(p), plug.plug()))
        plug.plug()
        plug.enqueue(mkpkt(b"a"))
        plug.enqueue(mkpkt(b"b"))
        plug.unplug()
        # The delivery callback re-plugged after the first packet.
        assert len(out) == 1 and plug.queued == 1

    def test_drop_all_discards(self):
        out = []
        plug = PlugQdisc("p", out.append)
        plug.plug()
        plug.enqueue(mkpkt(b"doomed"))
        dropped = plug.drop_all()
        assert len(dropped) == 1 and plug.queued == 0
        plug.unplug()
        assert out == []


class TestBridge:
    def setup_method(self):
        self.engine = Engine()
        self.bridge = Bridge(self.engine, bandwidth_bps=1_000_000_000, latency_us=100)
        self.received = {"a": [], "b": []}
        self.dev_a = NetDevice("veth-a", "10.0.0.1", "aa:aa", self.engine,
                               on_ingress=self.received["a"].append)
        self.dev_b = NetDevice("veth-b", "10.0.0.2", "bb:bb", self.engine,
                               on_ingress=self.received["b"].append)
        self.bridge.attach(self.dev_a)
        self.bridge.attach(self.dev_b)

    def test_forwarding_by_ip(self):
        self.dev_a.send(mkpkt(b"hi", src="10.0.0.1", dst="10.0.0.2"))
        self.engine.run()
        assert [p.payload for p in self.received["b"]] == [b"hi"]
        assert self.received["a"] == []

    def test_delivery_charges_latency_and_tx_time(self):
        pkt = mkpkt(b"x" * 1000, dst="10.0.0.2")
        self.dev_a.send(pkt)
        self.engine.run()
        # tx time = (1066 bytes * 8) / 1 Gbps = ~8.5 us -> 8 us integer.
        assert self.engine.now == 100 + (pkt.size * 8 * 1_000_000) // 1_000_000_000

    def test_unknown_destination_dropped(self):
        self.dev_a.send(mkpkt(dst="10.9.9.9"))
        self.engine.run()
        assert self.bridge.dropped == 1

    def test_per_port_serialization(self):
        for _ in range(3):
            self.dev_a.send(mkpkt(b"y" * 10000, dst="10.0.0.2"))
        self.engine.run()
        tx = self.bridge.tx_time_us(mkpkt(b"y" * 10000).size)
        assert self.engine.now == 3 * tx + 100  # serialized, shared latency

    def test_firewall_drop_input(self):
        self.dev_b.firewall_drop_input = True
        self.dev_a.send(mkpkt(dst="10.0.0.2"))
        self.engine.run()
        assert self.received["b"] == []
        assert self.dev_b.dropped_by_firewall == 1

    def test_ingress_plug_buffers_then_releases(self):
        self.dev_b.ingress_plug.plug()
        self.dev_a.send(mkpkt(b"held", dst="10.0.0.2"))
        self.engine.run()
        assert self.received["b"] == []
        self.dev_b.ingress_plug.unplug()
        assert [p.payload for p in self.received["b"]] == [b"held"]

    def test_egress_plug_buffers_output(self):
        self.dev_a.egress_plug.plug()
        self.dev_a.send(mkpkt(b"epoch-output", dst="10.0.0.2"))
        self.engine.run()
        assert self.received["b"] == []
        self.dev_a.egress_plug.unplug()
        self.engine.run()
        assert [p.payload for p in self.received["b"]] == [b"epoch-output"]

    def test_cable_cut_silences_both_directions(self):
        self.dev_a.cable_cut = True
        self.dev_a.send(mkpkt(dst="10.0.0.2"))
        self.dev_b.send(mkpkt(src="10.0.0.2", dst="10.0.0.1"))
        self.engine.run()
        assert self.received["a"] == [] and self.received["b"] == []

    def test_gratuitous_arp_moves_address(self):
        received_c = []
        dev_c = NetDevice("veth-c", "10.0.0.9", "cc:cc", self.engine,
                          on_ingress=received_c.append)
        port_c = self.bridge.attach(dev_c)
        # Move 10.0.0.2 to dev_c's port (failover address takeover).
        self.bridge.gratuitous_arp("10.0.0.2", port_c)
        self.dev_a.send(mkpkt(b"redirected", dst="10.0.0.2"))
        self.engine.run()
        assert [p.payload for p in received_c] == [b"redirected"]
        assert self.received["b"] == []

    def test_detach_drops_traffic_to_port(self):
        self.dev_b.detach()
        self.dev_a.send(mkpkt(dst="10.0.0.2"))
        self.engine.run()
        assert self.received["b"] == []
        assert self.bridge.dropped == 1
