"""Tests for the virtual block device and its write hooks."""

import pytest

from repro.kernel.blockdev import BlockDevice
from repro.kernel.errors import FileSystemError


def test_write_read_roundtrip():
    dev = BlockDevice("d0")
    dev.write_block(3, b"blockdata")
    assert dev.read_block(3) == b"blockdata"
    assert dev.read_block(4) == b""


def test_out_of_range_rejected():
    dev = BlockDevice("d0", n_blocks=10)
    with pytest.raises(FileSystemError):
        dev.write_block(10, b"x")
    with pytest.raises(FileSystemError):
        dev.read_block(-1)


def test_oversized_write_rejected():
    dev = BlockDevice("d0")
    with pytest.raises(FileSystemError):
        dev.write_block(0, b"x" * 5000)


def test_write_hook_sees_every_write():
    dev = BlockDevice("d0")
    seen = []
    dev.add_write_hook(lambda idx, data: seen.append((idx, data)))
    dev.write_block(1, b"a")
    dev.write_block(2, b"b")
    assert seen == [(1, b"a"), (2, b"b")]
    assert dev.writes == 2


def test_raw_write_bypasses_hooks():
    dev = BlockDevice("d0")
    seen = []
    dev.add_write_hook(lambda idx, data: seen.append(idx))
    dev.write_block_raw(1, b"mirrored")
    assert seen == []
    assert dev.read_block(1) == b"mirrored"


def test_remove_write_hook():
    dev = BlockDevice("d0")
    seen = []
    hook = lambda idx, data: seen.append(idx)  # noqa: E731
    dev.add_write_hook(hook)
    dev.write_block(1, b"a")
    dev.remove_write_hook(hook)
    dev.write_block(2, b"b")
    assert seen == [1]


def test_snapshot_load_and_equality():
    a = BlockDevice("a")
    a.write_block(1, b"one")
    a.write_block(2, b"two")
    b = BlockDevice("b")
    b.load_snapshot(a.snapshot())
    assert a == b
    b.write_block(3, b"extra")
    assert a != b


def test_equality_ignores_empty_blocks():
    a = BlockDevice("a")
    b = BlockDevice("b")
    a.write_block(1, b"")
    assert a == b
