"""Tests for namespaces, cgroups, ftrace, parasite, procfs and Kernel."""

import pytest

from repro.kernel import CostModel, Kernel, KernelError
from repro.kernel.cgroup import Cgroup
from repro.kernel.ftrace import FtraceRegistry
from repro.kernel.mm import AddressSpace, Vma
from repro.kernel.namespaces import MountEntry, NamespaceSet, NetNamespace
from repro.kernel.parasite import ParasiteChannel
from repro.kernel.task import Process, TaskState
from repro.sim import Engine


@pytest.fixture
def kernel():
    return Kernel(Engine(), CostModel(), hostname="test-host")


def make_process(costs, n_threads=2, n_pages=100):
    mm = AddressSpace(costs)
    mm.mmap(Vma(start=0, n_pages=n_pages, kind="heap"))
    process = Process(comm="victim", address_space=mm)
    for _ in range(n_threads - 1):
        process.spawn_thread()
    return process


def run(engine, gen):
    return engine.run(until=engine.process(gen))


class TestNamespaces:
    def test_mutations_bump_version(self):
        ns = NamespaceSet("c1", NetNamespace(name="c1-net"))
        v0 = ns.version
        ns.add_mount(MountEntry(mountpoint="/data", source="fs0"))
        assert ns.version == v0 + 1
        ns.set_hostname("renamed")
        assert ns.version == v0 + 2
        ns.remove_mount("/data")
        assert ns.version == v0 + 3
        ns.remove_mount("/not-there")  # no-op: no bump
        assert ns.version == v0 + 3

    def test_describe_is_serializable_snapshot(self):
        ns = NamespaceSet("c1", NetNamespace(name="c1-net"))
        ns.add_mount(MountEntry(mountpoint="/data", source="fs0"))
        desc = ns.describe()
        assert desc["uts_hostname"] == "c1"
        assert desc["mounts"][0]["mountpoint"] == "/data"
        ns.set_hostname("changed")
        assert desc["uts_hostname"] == "c1"  # snapshot, not live view


class TestCgroup:
    def test_cpuacct_accumulates(self):
        cg = Cgroup(name="/sys/fs/cgroup/c1")
        cg.charge_cpu(100)
        cg.charge_cpu(50)
        assert cg.read_cpuacct() == 150

    def test_attribute_change_bumps_version_but_cpu_does_not(self):
        cg = Cgroup(name="c1")
        v0 = cg.version
        cg.charge_cpu(1000)
        assert cg.version == v0
        cg.set_attribute("cpu.shares", 512)
        assert cg.version == v0 + 1
        assert cg.describe()["attributes"]["cpu.shares"] == 512


class TestFtrace:
    def test_hooks_receive_calls(self):
        registry = FtraceRegistry()
        calls = []
        registry.register("do_mount", lambda fn, args: calls.append((fn, args)))
        registry.trace("do_mount", "obj", "/data")
        assert calls == [("do_mount", ("obj", "/data"))]
        assert registry.call_counts["do_mount"] == 1

    def test_unhooked_functions_still_counted(self):
        registry = FtraceRegistry()
        registry.trace("sethostname")
        assert registry.call_counts["sethostname"] == 1

    def test_unregister(self):
        registry = FtraceRegistry()
        calls = []
        hook = lambda fn, args: calls.append(fn)  # noqa: E731
        registry.register("dev_open", hook)
        registry.unregister("dev_open", hook)
        registry.trace("dev_open")
        assert calls == []
        assert "dev_open" not in registry.hooked_functions


class TestParasite:
    def test_injection_requires_frozen_process(self, kernel):
        process = make_process(kernel.costs)
        parasite = ParasiteChannel(kernel.engine, kernel.costs, process)

        def driver():
            with pytest.raises(KernelError, match="non-frozen"):
                yield from parasite.inject()
            yield kernel.charge(0)

        run(kernel.engine, driver())

    def test_collects_thread_states_with_cost(self, kernel):
        process = make_process(kernel.costs, n_threads=4)
        for task in process.tasks:
            task.state = TaskState.FROZEN
        parasite = ParasiteChannel(kernel.engine, kernel.costs, process)

        def driver():
            yield from parasite.inject()
            start = kernel.engine.now
            threads = yield from parasite.collect_thread_states()
            elapsed = kernel.engine.now - start
            return threads, elapsed

        threads, elapsed = run(kernel.engine, driver())
        assert len(threads) == 4
        assert elapsed == kernel.costs.thread_collection(4)

    def test_pipe_transport_costs_more_than_shm(self, kernel):
        def time_read(transport):
            process = make_process(kernel.costs)
            for task in process.tasks:
                task.state = TaskState.FROZEN
            for i in range(50):
                process.mm.write(i, b"x")
            parasite = ParasiteChannel(kernel.engine, kernel.costs, process, transport)

            def driver():
                yield from parasite.inject()
                start = kernel.engine.now
                pages = yield from parasite.read_pages(range(50))
                assert len(pages) == 50
                return kernel.engine.now - start

            return run(kernel.engine, driver())

        assert time_read("pipe") > time_read("shm")

    def test_operations_require_injection(self, kernel):
        process = make_process(kernel.costs)
        for task in process.tasks:
            task.state = TaskState.FROZEN
        parasite = ParasiteChannel(kernel.engine, kernel.costs, process)

        def driver():
            with pytest.raises(KernelError, match="not injected"):
                yield from parasite.collect_thread_states()
            yield kernel.charge(0)

        run(kernel.engine, driver())


class TestProcFs:
    def test_smaps_costs_more_than_netlink(self, kernel):
        process = make_process(kernel.costs)
        process.mm.mmap(Vma(start=1000, n_pages=4, kind="file", file_path="/lib/a.so"))

        def time_source(fn):
            def driver():
                start = kernel.engine.now
                vmas = yield from fn(process)
                return len(vmas), kernel.engine.now - start

            return run(kernel.engine, driver())

        n1, slow = time_source(kernel.procfs.smaps_vmas)
        n2, fast = time_source(kernel.procfs.netlink_vmas)
        assert n1 == n2 == 2
        assert slow > fast

    def test_pagemap_after_clear_refs(self, kernel):
        process = make_process(kernel.costs)

        def driver():
            yield from kernel.procfs.clear_refs(process)
            process.mm.write(3, b"dirty")
            dirty = yield from kernel.procfs.pagemap_dirty(process)
            return dirty

        assert run(kernel.engine, driver()) == (3,)

    def test_stat_mapped_files_charges_per_file(self, kernel):
        process = make_process(kernel.costs)
        for i in range(5):
            process.mm.mmap(Vma(start=1000 + i * 10, n_pages=2, kind="file",
                                file_path=f"/lib/{i}.so"))

        def driver():
            start = kernel.engine.now
            stats = yield from kernel.procfs.stat_mapped_files(process)
            return stats, kernel.engine.now - start

        stats, elapsed = run(kernel.engine, driver())
        assert len(stats) == 5
        assert elapsed == 5 * kernel.costs.collect_mmap_file_stat


class TestKernel:
    def test_block_device_and_fs_lifecycle(self, kernel):
        kernel.add_block_device("vda")
        fs = kernel.mkfs("vda", "rootfs")
        assert kernel.filesystems["rootfs"] is fs
        with pytest.raises(KernelError):
            kernel.add_block_device("vda")
        with pytest.raises(KernelError):
            kernel.mkfs("vda", "rootfs")

    def test_fs_write_read_via_kernel_charges_time(self, kernel):
        kernel.add_block_device("vda")
        fs = kernel.mkfs("vda", "rootfs")
        fs.create("/f")

        def driver():
            yield from kernel.fs_write(fs, "/f", 0, b"data")
            data = yield from kernel.fs_read(fs, "/f", 0, 4)
            return data

        assert run(kernel.engine, driver()) == b"data"
        assert kernel.engine.now > 0

    def test_process_adoption(self, kernel):
        process = make_process(kernel.costs)
        kernel.adopt_process(process)
        assert process in kernel.processes
        kernel.reap_process(process)
        assert process not in kernel.processes
