"""Additional TCP edge cases: abort, listener lifecycle, odd packets."""

import pytest

from repro.kernel.costmodel import CostModel
from repro.kernel.errors import SocketError
from repro.kernel.netdev import Bridge, NetDevice, Packet
from repro.kernel.tcp import TcpStack, TcpState, _server_iss
from repro.sim import Engine, ms


class Net:
    def __init__(self):
        self.engine = Engine()
        self.costs = CostModel()
        self.bridge = Bridge(self.engine, latency_us=50)
        self.client = self._host("client", "10.0.0.1")
        self.server = self._host("server", "10.0.0.2")

    def _host(self, name, ip):
        stack = TcpStack(self.engine, self.costs, ip, name=name)
        dev = NetDevice(f"{name}-eth", ip, name, self.engine)
        stack.attach_device(dev)
        self.bridge.attach(dev)
        return stack


def connect(net, port=80):
    listener = net.server.socket()
    listener.listen(port)
    accepted = listener.accept()
    client = net.client.socket()
    client.connect("10.0.0.2", port)
    net.engine.run(until=ms(5))
    return client, accepted.value, listener


def test_abort_deregisters_and_cancels_timers():
    net = Net()
    client, child, _listener = connect(net)
    client.send(b"inflight")
    client.abort()
    assert client.state is TcpState.CLOSED
    assert client.conn_key not in net.client.connections
    net.engine.run()  # no dangling retransmit timers drag the clock
    assert net.engine.now < ms(100)


def test_listener_close_stops_accepting():
    net = Net()
    _client, _child, listener = connect(net)
    listener.close()
    assert 80 not in net.server.listeners
    late = net.client.socket()
    result = late.connect("10.0.0.2", 80)
    result.defuse()
    net.engine.run(until=ms(10))
    assert late.state is TcpState.RESET  # refused with RST


def test_second_listen_after_close_allowed():
    net = Net()
    listener = net.server.socket()
    listener.listen(81)
    listener.close()
    relisten = net.server.socket()
    relisten.listen(81)  # must not raise
    assert net.server.listeners[81] is relisten


def test_syn_to_established_connection_ignored():
    net = Net()
    client, child, _listener = connect(net)
    rogue = Packet(src_ip="10.0.0.1", src_port=client.local_port,
                   dst_ip="10.0.0.2", dst_port=80, flags=frozenset({"SYN"}),
                   seq=1)
    before = child.rcv_nxt
    net.server.demux(rogue)
    net.engine.run(until=net.engine.now + ms(5))
    assert child.state is TcpState.ESTABLISHED
    assert child.rcv_nxt == before  # no state damage


def test_rst_never_answered_with_rst():
    net = Net()
    rst = Packet(src_ip="10.0.0.1", src_port=55555, dst_ip="10.0.0.2",
                 dst_port=44444, flags=frozenset({"RST"}))
    net.server.demux(rst)
    assert net.server.rsts_sent == 0


def test_server_iss_is_deterministic_per_tuple():
    a = _server_iss("10.0.0.2", 80, "10.0.0.1", 40000)
    b = _server_iss("10.0.0.2", 80, "10.0.0.1", 40000)
    c = _server_iss("10.0.0.2", 80, "10.0.0.1", 40001)
    assert a == b != c


def test_send_in_fin_wait_rejected():
    net = Net()
    client, _child, _listener = connect(net)
    client.close()
    assert client.state is TcpState.FIN_WAIT
    with pytest.raises(SocketError):
        client.send(b"too late")


def test_repair_state_is_deep_copied():
    """Mutating the live socket after get_repair_state must not corrupt
    the checkpointed copy (torn-state hazard)."""
    net = Net()
    client, child, _listener = connect(net)
    client.send(b"before")
    net.engine.run(until=net.engine.now + ms(5))
    child.enter_repair()
    state = child.get_repair_state()
    child.leave_repair()
    snapshot = bytes(state["recv_buffer"])
    child.recv_nowait(6)  # live socket consumes
    assert state["recv_buffer"] == snapshot
