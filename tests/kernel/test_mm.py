"""Tests for address spaces, VMAs and soft-dirty tracking."""

import pytest

from repro.kernel.costmodel import CostModel
from repro.kernel.errors import AddressError
from repro.kernel.mm import AddressSpace, Vma


@pytest.fixture
def mm():
    space = AddressSpace(CostModel(), name="test-mm")
    space.mmap(Vma(start=0, n_pages=100, kind="heap", name="[heap]"))
    return space


def test_write_then_read_roundtrip(mm):
    mm.write(5, b"token-5")
    assert mm.read(5) == b"token-5"


def test_untouched_page_reads_empty(mm):
    assert mm.read(7) == b""


def test_unmapped_access_rejected(mm):
    with pytest.raises(AddressError):
        mm.write(500, b"x")
    with pytest.raises(AddressError):
        mm.read(500)


def test_vma_overlap_rejected(mm):
    with pytest.raises(AddressError):
        mm.mmap(Vma(start=50, n_pages=10))


def test_munmap_drops_pages(mm):
    vma = mm.mmap(Vma(start=200, n_pages=10))
    mm.write(205, b"gone")
    mm.munmap(vma)
    assert 205 not in mm.pages
    with pytest.raises(AddressError):
        mm.read(205)


def test_munmap_unknown_vma_rejected(mm):
    with pytest.raises(AddressError):
        mm.munmap(Vma(start=900, n_pages=1))


def test_mapped_files_deduplicated():
    space = AddressSpace(CostModel())
    space.mmap(Vma(start=0, n_pages=10, kind="file", file_path="/lib/libc.so"))
    space.mmap(Vma(start=10, n_pages=5, kind="file", file_path="/lib/libc.so"))
    space.mmap(Vma(start=20, n_pages=5, kind="file", file_path="/lib/libm.so"))
    assert space.mapped_files == ["/lib/libc.so", "/lib/libm.so"]


def test_soft_dirty_reports_exact_write_set(mm):
    mm.start_tracking("soft_dirty")
    mm.write(1, b"a")
    mm.write(2, b"b")
    mm.write(1, b"a2")  # rewrite: still one dirty entry
    assert mm.dirty_pages() == (1, 2)


def test_clear_refs_resets_dirty_bits(mm):
    mm.start_tracking("soft_dirty")
    mm.write(3, b"x")
    mm.clear_refs()
    assert mm.dirty_pages() == ()
    mm.write(4, b"y")
    assert mm.dirty_pages() == (4,)


def test_tracking_apis_require_start(mm):
    with pytest.raises(AddressError):
        mm.dirty_pages()
    with pytest.raises(AddressError):
        mm.clear_refs()


def test_first_write_faults_once_per_period(mm):
    costs = mm.costs
    mm.start_tracking("soft_dirty")
    mm.write(1, b"a")
    mm.write(1, b"b")  # rewrite: no second fault
    mm.write(2, b"c")
    assert mm.total_faults == 2
    assert mm.pending_fault_ns == 2 * costs.soft_dirty_fault_ns
    mm.clear_refs()
    mm.write(1, b"d")  # faults again after clear
    assert mm.total_faults == 3


def test_drain_fault_time_keeps_submicrosecond_remainder(mm):
    costs = mm.costs
    mm.start_tracking("soft_dirty")
    n = 7
    for i in range(n):
        mm.write(i, b"x")
    total_ns = n * costs.soft_dirty_fault_ns
    assert mm.drain_fault_time() == total_ns // 1000
    assert mm.pending_fault_ns == total_ns % 1000  # remainder carried over


def test_wrprotect_mode_charges_vm_exit_cost(mm):
    costs = mm.costs
    mm.start_tracking("wrprotect")
    mm.write(1, b"a")
    assert mm.pending_fault_ns == costs.vm_exit_fault_ns
    assert costs.vm_exit_fault_ns > costs.soft_dirty_fault_ns


def test_snapshot_and_restore_roundtrip(mm):
    mm.write(1, b"one")
    mm.write(2, b"two")
    snap = mm.full_snapshot()
    mm.write(1, b"changed")
    mm.restore_pages(snap)
    assert mm.read(1) == b"one"
    assert mm.read(2) == b"two"


def test_restore_empty_token_evicts_page(mm):
    mm.write(9, b"data")
    mm.restore_pages({9: b""})
    assert mm.read(9) == b""
    assert 9 not in mm.pages


def test_snapshot_pages_includes_missing_as_empty(mm):
    mm.write(1, b"x")
    snap = mm.snapshot_pages([1, 2])
    assert snap == {1: b"x", 2: b""}


def test_resident_accounting(mm):
    assert mm.resident_count == 0
    mm.write(1, b"x")
    mm.write(2, b"y")
    assert mm.resident_count == 2
    assert mm.resident_bytes == 2 * 4096


def test_vma_describe_roundtrip():
    vma = Vma(start=10, n_pages=4, prot="r-x", kind="file", file_path="/bin/app", name="text")
    assert Vma.from_description(vma.describe()) == vma
