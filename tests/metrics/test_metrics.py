"""Tests for metrics collection and statistics helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import EpochRecord, RunMetrics, percentile
from repro.metrics.stats import mean


def make_epoch(i, stop=1000, dirty=10, state=40960, at=None):
    return EpochRecord(
        epoch=i, stop_us=stop, dirty_pages=dirty, state_bytes=state,
        at_us=at if at is not None else i * 30_000,
    )


class TestPercentile:
    def test_basic_percentiles(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 10) == 10
        assert percentile(values, 90) == 90
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 100

    def test_single_value(self):
        assert percentile([7], 10) == 7
        assert percentile([7], 90) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            mean([])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=50))
    def test_property_percentile_bounds_and_monotone(self, values):
        p10 = percentile(values, 10)
        p50 = percentile(values, 50)
        p90 = percentile(values, 90)
        assert min(values) <= p10 <= p50 <= p90 <= max(values)
        assert p10 in values and p50 in values and p90 in values


class TestRunMetrics:
    def test_steady_epochs_skip_initial_full(self):
        metrics = RunMetrics()
        metrics.record_epoch(make_epoch(0, stop=100_000))
        for i in range(1, 5):
            metrics.record_epoch(make_epoch(i, stop=1000))
        assert metrics.avg_stop_us() == 1000
        assert len(metrics.steady_epochs()) == 4

    def test_window_filters_epochs(self):
        metrics = RunMetrics()
        for i in range(10):
            metrics.record_epoch(make_epoch(i, stop=1000 + i, at=i * 10_000))
        metrics.window_start_us = 30_000
        metrics.window_end_us = 70_000
        steady = metrics.steady_epochs()
        assert [e.epoch for e in steady] == [3, 4, 5, 6]

    def test_window_with_no_epochs_falls_back_to_last(self):
        metrics = RunMetrics()
        metrics.record_epoch(make_epoch(0, at=5))
        metrics.record_epoch(make_epoch(1, at=10))
        metrics.window_start_us = 1_000_000
        assert [e.epoch for e in metrics.steady_epochs()] == [1]

    def test_cpu_accounting_and_utilization(self):
        metrics = RunMetrics()
        metrics.started_at_us = 0
        metrics.ended_at_us = 1_000_000
        metrics.charge_backup_cpu(200_000)
        assert metrics.backup_core_utilization() == pytest.approx(0.2)
        metrics.charge_primary_cpu(50_000)
        assert metrics.primary_agent_cpu_us == 50_000

    def test_stop_percentiles(self):
        metrics = RunMetrics()
        metrics.record_epoch(make_epoch(0))
        for i, stop in enumerate([1000, 2000, 3000, 4000, 5000], start=1):
            metrics.record_epoch(make_epoch(i, stop=stop))
        assert metrics.stop_percentile(50) == 3000
        assert metrics.stop_percentile(90) == 5000

    def test_cache_hit_rate(self):
        metrics = RunMetrics()
        assert metrics.cache_hit_rate() == 0.0
        metrics.record_epoch(make_epoch(0))
        hit = make_epoch(1)
        hit.infrequent_from_cache = True
        metrics.record_epoch(hit)
        assert metrics.cache_hit_rate() == pytest.approx(0.5)
