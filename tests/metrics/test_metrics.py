"""Tests for metrics collection and statistics helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import EpochRecord, RunMetrics, percentile
from repro.metrics.stats import mean


def make_epoch(i, stop=1000, dirty=10, state=40960, at=None):
    return EpochRecord(
        epoch=i, stop_us=stop, dirty_pages=dirty, state_bytes=state,
        at_us=at if at is not None else i * 30_000,
    )


class TestPercentile:
    def test_basic_percentiles(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 10) == 10
        assert percentile(values, 90) == 90
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 100

    def test_single_value(self):
        assert percentile([7], 10) == 7
        assert percentile([7], 90) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            mean([])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_golden_hand_computed_ranks(self):
        # Nearest-rank: rank = ceil(p/100 * n), 1-indexed into the sorted
        # sample.  Every expectation below is hand-computed.
        two = [10, 20]
        assert percentile(two, 50) == 10   # ceil(1.0) = rank 1, not round(1.5)
        assert percentile(two, 50.1) == 20  # ceil(1.002) = rank 2
        assert percentile(two, 25) == 10   # ceil(0.5) = rank 1
        assert percentile(two, 75) == 20   # ceil(1.5) = rank 2
        four = [1, 2, 3, 4]
        assert percentile(four, 25) == 1   # ceil(1.0) = rank 1
        assert percentile(four, 50) == 2   # ceil(2.0) = rank 2
        assert percentile(four, 74) == 3   # ceil(2.96) = rank 3
        assert percentile(four, 75) == 3   # ceil(3.0) = rank 3 exactly
        assert percentile(four, 76) == 4   # ceil(3.04) = rank 4
        five = [15, 20, 35, 40, 50]
        assert percentile(five, 5) == 15   # ceil(0.25) -> clamped to rank 1
        assert percentile(five, 30) == 20  # ceil(1.5) = rank 2
        assert percentile(five, 40) == 20  # ceil(2.0) = rank 2
        assert percentile(five, 95) == 50  # ceil(4.75) = rank 5

    def test_regression_double_rounding(self):
        # The historical int(round(p/100*n + 0.5)) double-rounded exact
        # ranks: p50 of 2 samples computed round(1.5) -> 2 (banker's
        # rounding on the *shifted* value) and returned the max.
        assert percentile([10, 20], 50) == 10
        # p25 of 6: exact rank 1.5 -> ceil 2; the old formula hit
        # round(2.0) = 2 too, but p50 of 6 (rank 3.0) hit round(3.5) -> 4.
        six = [1, 2, 3, 4, 5, 6]
        assert percentile(six, 25) == 2
        assert percentile(six, 50) == 3
        assert percentile(six, 100) == 6

    def test_p999_small_samples(self):
        # p999 on samples smaller than 1000 must return the max (rank
        # ceil(0.999 * n) == n for all n < 1000), never run past the end.
        assert percentile([5], 99.9) == 5
        assert percentile([10, 20], 99.9) == 20
        assert percentile(list(range(100)), 99.9) == 99
        assert percentile(list(range(999)), 99.9) == 998
        # At n = 1000 the p999 rank is exactly 999: second-largest.
        thousand = list(range(1, 1001))
        assert percentile(thousand, 99.9) == 999
        assert percentile(thousand, 100) == 1000
        # And n = 2000: ceil(1998.0) = rank 1998.
        assert percentile(list(range(1, 2001)), 99.9) == 1998

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=50))
    def test_property_percentile_bounds_and_monotone(self, values):
        p10 = percentile(values, 10)
        p50 = percentile(values, 50)
        p90 = percentile(values, 90)
        assert min(values) <= p10 <= p50 <= p90 <= max(values)
        assert p10 in values and p50 in values and p90 in values


class TestRunMetrics:
    def test_steady_epochs_skip_initial_full(self):
        metrics = RunMetrics()
        metrics.record_epoch(make_epoch(0, stop=100_000))
        for i in range(1, 5):
            metrics.record_epoch(make_epoch(i, stop=1000))
        assert metrics.avg_stop_us() == 1000
        assert len(metrics.steady_epochs()) == 4

    def test_window_filters_epochs(self):
        metrics = RunMetrics()
        for i in range(10):
            metrics.record_epoch(make_epoch(i, stop=1000 + i, at=i * 10_000))
        metrics.window_start_us = 30_000
        metrics.window_end_us = 70_000
        steady = metrics.steady_epochs()
        assert [e.epoch for e in steady] == [3, 4, 5, 6]

    def test_window_with_no_epochs_falls_back_to_last(self):
        metrics = RunMetrics()
        metrics.record_epoch(make_epoch(0, at=5))
        metrics.record_epoch(make_epoch(1, at=10))
        metrics.window_start_us = 1_000_000
        assert [e.epoch for e in metrics.steady_epochs()] == [1]

    def test_cpu_accounting_and_utilization(self):
        metrics = RunMetrics()
        metrics.started_at_us = 0
        metrics.ended_at_us = 1_000_000
        metrics.charge_backup_cpu(200_000)
        assert metrics.backup_core_utilization() == pytest.approx(0.2)
        metrics.charge_primary_cpu(50_000)
        assert metrics.primary_agent_cpu_us == 50_000

    def test_stop_percentiles(self):
        metrics = RunMetrics()
        metrics.record_epoch(make_epoch(0))
        for i, stop in enumerate([1000, 2000, 3000, 4000, 5000], start=1):
            metrics.record_epoch(make_epoch(i, stop=stop))
        assert metrics.stop_percentile(50) == 3000
        assert metrics.stop_percentile(90) == 5000

    def test_cache_hit_rate(self):
        metrics = RunMetrics()
        assert metrics.cache_hit_rate() == 0.0
        metrics.record_epoch(make_epoch(0))
        hit = make_epoch(1)
        hit.infrequent_from_cache = True
        metrics.record_epoch(hit)
        assert metrics.cache_hit_rate() == pytest.approx(0.5)
