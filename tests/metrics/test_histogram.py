"""LatencyHistogram bucketing/percentiles and the SLO table digest."""

import pytest

from repro.metrics.histogram import LatencyHistogram, _bucket, _bucket_upper
from repro.metrics.slo import SloRow, SloTable
from repro.metrics.stats import percentile


def test_small_values_are_exact():
    h = LatencyHistogram()
    for v in (0, 1, 7, 31):
        h.record(v)
    assert h.min_value == 0
    assert h.max_value == 31
    assert h.percentile(0) == 0
    assert h.percentile(100) == 31
    assert len(h) == 4


def test_bucket_upper_bounds_every_bucket():
    # Every value maps to a bucket whose upper bound is >= the value and
    # within ~1/32 of it (the histogram is pessimistic, never optimistic).
    for v in list(range(0, 200)) + [1000, 4096, 65537, 10**6, 10**8]:
        upper = _bucket_upper(_bucket(v))
        assert upper >= v
        assert upper <= v + max(1, v // 32)


def test_percentile_matches_list_percentile_within_quantization():
    samples = [i * 37 + 5 for i in range(500)]
    h = LatencyHistogram()
    for s in samples:
        h.record(s)
    for p in (50, 90, 99, 99.9):
        exact = percentile(samples, p)
        bucketed = h.percentile(p)
        assert exact <= bucketed <= exact + max(1, exact // 16)


def test_percentile_never_exceeds_max():
    # A mid-rank bucket bound can exceed the true max; the histogram must
    # clip so p99 <= p999 <= max always holds.
    h = LatencyHistogram()
    for v in [35839] * 99 + [43882]:
        h.record(v)
    assert h.percentile(99) <= h.percentile(99.9) <= h.max_value


def test_merge_and_mean():
    a, b = LatencyHistogram(), LatencyHistogram()
    for v in (10, 20, 30):
        a.record(v)
    for v in (1000, 2000):
        b.record(v)
    a.merge(b)
    assert len(a) == 5
    assert a.min_value == 10
    assert a.max_value == 2000
    assert a.mean() == pytest.approx((10 + 20 + 30 + 1000 + 2000) / 5)


def test_empty_histogram_raises():
    h = LatencyHistogram()
    with pytest.raises(ValueError):
        h.percentile(50)
    with pytest.raises(ValueError):
        h.mean()
    with pytest.raises(ValueError):
        h.record(-1)


def test_to_dict_is_canonical_and_digestable():
    a, b = LatencyHistogram(), LatencyHistogram()
    for v in (5, 500, 50):
        a.record(v)
    for v in (50, 5, 500):  # insertion order must not matter
        b.record(v)
    assert a.to_dict() == b.to_dict()


def _row(p99: int = 1000) -> SloRow:
    lat, stall = LatencyHistogram(), LatencyHistogram()
    for v in (100, 200, p99):
        lat.record(v)
    stall.record(50)
    return SloRow.from_histograms(
        "steady", lat, stall, requests=3, errors=0, peak_sessions=2,
        duration_us=1_000_000,
    )


def test_slo_table_digest_tracks_cells():
    same_a = SloTable([_row()])
    same_b = SloTable([_row()])
    different = SloTable([_row(p99=2000)])
    assert same_a.digest() == same_b.digest()
    assert same_a.digest() != different.digest()


def test_slo_table_renders_every_row():
    table = SloTable([_row()])
    rendered = table.table()
    assert "steady" in rendered
    assert "p999 ms" in rendered
