"""Tests for markdown/ASCII report rendering."""

from repro.metrics.report import ascii_bars, fig3_ascii, markdown_table


def test_markdown_table_shape():
    table = markdown_table(
        ["benchmark", "overhead"],
        [["redis", 33.71], ["ssdb", 31.83]],
    )
    lines = table.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("| benchmark")
    assert set(lines[1]) <= {"|", "-"}
    assert "33.71" in lines[2]
    # Valid markdown: consistent column counts.
    assert all(line.count("|") == lines[0].count("|") for line in lines)


def test_markdown_table_empty_rows():
    table = markdown_table(["a", "b"], [])
    assert table.splitlines()[0] == "| a | b |"


def test_ascii_bars_scale_to_peak():
    chart = ascii_bars([("small", 10.0), ("big", 100.0)], width=20)
    lines = chart.splitlines()
    assert lines[1].count("#") == 20
    assert 1 <= lines[0].count("#") <= 3
    assert "100.0%" in lines[1]


def test_ascii_bars_empty():
    assert ascii_bars([]) == "(no data)"


def test_fig3_ascii_renders_both_systems():
    rows = [
        {
            "benchmark": "redis",
            "mc_overhead_pct": 67.0, "mc_stopped_pct": 20.0,
            "mc_runtime_pct": 47.0, "mc_paper_pct": 67.32,
            "nilicon_overhead_pct": 40.0, "nilicon_stopped_pct": 35.0,
            "nilicon_runtime_pct": 5.0, "nilicon_paper_pct": 33.71,
        }
    ]
    chart = fig3_ascii(rows)
    assert "MC" in chart and "NILICON" in chart
    assert "#" in chart and "+" in chart
    assert "(paper 67.3" in chart
