"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_list_workloads(capsys):
    assert main(["list-workloads"]) == 0
    out = capsys.readouterr().out
    for name in ("redis", "ssdb", "node", "lighttpd", "djcms", "swaptions",
                 "streamcluster", "disk-rw", "net-echo"):
        assert name in out


def test_modes_list(capsys):
    assert main(["modes", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("stock", "nilicon", "hycor", "mc"):
        assert name in out
    assert "log-commit" in out and "checkpoint-commit" in out


def test_bench_server(capsys):
    assert main(["bench", "net", "--mode", "stock", "--duration-ms", "500"]) == 0
    out = capsys.readouterr().out
    assert "throughput" in out and "0 errors" in out


def test_bench_nilicon_shows_epoch_stats(capsys):
    assert main(["bench", "net", "--mode", "nilicon", "--duration-ms", "500"]) == 0
    out = capsys.readouterr().out
    assert "avg stop" in out and "stopped fraction" in out


def test_bench_compute(capsys):
    assert main(["bench", "swaptions", "--mode", "stock"]) == 0
    out = capsys.readouterr().out
    assert "completion" in out


def test_table_out_of_range(capsys):
    assert main(["table", "9"]) == 2


def test_failover_command(capsys):
    assert main(["failover", "net"]) == 0
    out = capsys.readouterr().out
    assert "recovered" in out


def test_validate_single_workload(capsys):
    assert main(["validate", "--runs", "1", "--workload", "net-echo"]) == 0
    out = capsys.readouterr().out
    assert "net-echo" in out and "100%" in out


def test_lint_clean_tree_exits_zero(capsys):
    assert main(["lint", "src"]) == 0
    assert "no findings" in capsys.readouterr().out


def test_lint_findings_exit_nonzero(tmp_path, capsys):
    bad = tmp_path / "kernel" / "bad.py"
    bad.parent.mkdir()
    bad.write_text("import time\ndef f():\n    return time.time()\n")
    assert main(["lint", str(tmp_path)]) == 1
    assert "DET001" in capsys.readouterr().out


def test_lint_unknown_rule_exits_two(capsys):
    assert main(["lint", "--select", "NOPE999", "src"]) == 2


def test_audit_command(capsys):
    assert main(["audit", "net", "--run-ms", "400"]) == 0
    out = capsys.readouterr().out
    assert "invariants held" in out and "epoch(s)" in out


def test_traffic_profiles_lists_all_four(capsys):
    assert main(["traffic", "profiles"]) == 0
    out = capsys.readouterr().out
    for name in ("steady", "bursty", "failover", "migration"):
        assert name in out
