"""The HyCoR-vs-NiLiCon tradeoff experiment and its CI gate.

The full comparison (10 workloads x 3 modes + recovery + traffic) runs
under ``make hycor``; here the tier-1 suite pins the two claims at
single-cell scale — log-commit release beats checkpoint-commit on a
latency-bound server, and recovery pays for it with a replayed log
tail — plus the pure gate logic of ``check_hycor_bench``.
"""

import copy
import json
from pathlib import Path

from repro.experiments.hycor import (
    check_hycor_bench,
    run_overhead_row,
    run_recovery_cell,
    write_hycor_bench_json,
)


def test_overhead_row_shows_log_commit_advantage():
    """net-echo is latency-bound: every closed-loop request waits for the
    release barrier, so moving it from the ~30 ms checkpoint commit to
    the ~3 ms log commit must recover a large share of stock throughput."""
    row = run_overhead_row("net-echo")
    assert row["kind"] == "server"
    assert row["hycor_overhead_pct"] < row["nilicon_overhead_pct"]
    assert row["reduction_pct"] > 10.0
    # Replication is never free: hycor still pays epoch stop time.
    assert row["hycor_overhead_pct"] > 0


def test_recovery_cells_split_on_replay():
    """Table II with the HyCoR twist: same restore/ARP path, but hycor
    additionally replays the shipped log tail before promoting."""
    hycor = run_recovery_cell("net", "hycor")
    nilicon = run_recovery_cell("net", "nilicon")
    assert hycor["ok"], hycor["violations"]
    assert nilicon["ok"], nilicon["violations"]
    assert hycor["replay_us"] > 0
    assert nilicon["replay_us"] == 0
    assert hycor["total_us"] >= nilicon["total_us"]
    assert hycor["restore_us"] > 0


def _base_report():
    return {
        "ok": True,
        "seed": 1,
        "workloads": {
            "net-echo": {
                "kind": "server",
                "stock": 1664.0,
                "nilicon_overhead_pct": 96.0,
                "hycor_overhead_pct": 66.0,
                "reduction_pct": 30.0,
            },
        },
        "recovery": {
            "redis/hycor": {
                "detection_us": 0,
                "restore_us": 238_000,
                "replay_us": 16_500,
                "total_us": 284_000,
            },
        },
        "traffic": {"requests": 106, "p99_us": 607_000, "ok": True},
    }


def test_check_hycor_bench_gate_logic():
    base = _base_report()
    assert check_hycor_bench(_base_report(), base) == []

    slow = _base_report()
    slow["workloads"]["net-echo"]["hycor_overhead_pct"] = 90.0
    assert any("overhead" in p for p in check_hycor_bench(slow, base))

    shrunk = _base_report()
    shrunk["workloads"]["net-echo"]["reduction_pct"] = 5.0
    assert any("reduction" in p for p in check_hycor_bench(shrunk, base))

    lagged = _base_report()
    lagged["recovery"]["redis/hycor"]["total_us"] = 500_000
    assert any("recovery" in p for p in check_hycor_bench(lagged, base))

    unreplayed = _base_report()
    unreplayed["recovery"]["redis/hycor"]["replay_us"] = 0
    assert any("replay" in p for p in check_hycor_bench(unreplayed, base))

    broken_traffic = _base_report()
    broken_traffic["traffic"]["ok"] = False
    assert any("traffic" in p for p in check_hycor_bench(broken_traffic, base))

    # Cells absent from the baseline do not gate (smoke vs full subsets).
    extra = _base_report()
    extra["workloads"]["novel"] = {
        "kind": "server", "stock": 1.0,
        "nilicon_overhead_pct": 1.0, "hycor_overhead_pct": 99.0,
        "reduction_pct": -98.0,
    }
    extra["recovery"]["novel/hycor"] = {
        "detection_us": 0, "restore_us": 1, "replay_us": 0, "total_us": 10**9,
    }
    assert check_hycor_bench(extra, base) == []

    # A failing current bench gates regardless of the cells.
    failing = _base_report()
    failing["ok"] = False
    assert check_hycor_bench(failing, base)

    # Drift inside the tolerance band passes.
    drifted = _base_report()
    drifted["workloads"]["net-echo"]["hycor_overhead_pct"] = 67.5
    drifted["recovery"]["redis/hycor"]["total_us"] = 300_000
    assert check_hycor_bench(drifted, base) == []


def test_bench_json_roundtrip(tmp_path):
    report = _base_report()
    path = tmp_path / "BENCH_hycor.json"
    write_hycor_bench_json(report, str(path))
    loaded = json.loads(path.read_text())
    assert loaded == report
    assert check_hycor_bench(loaded, copy.deepcopy(report)) == []


def test_checked_in_bench_claims_the_tradeoff():
    """The committed BENCH_hycor.json must itself pin the paper's claim:
    a positive overhead reduction on the latency-bound servers and a
    recovery-latency cost carried by the replayed log tail."""
    pinned_path = Path(__file__).resolve().parents[2] / "BENCH_hycor.json"
    pinned = json.loads(pinned_path.read_text(encoding="utf-8"))
    assert pinned["ok"]
    servers = [c for c in pinned["workloads"].values() if c["kind"] == "server"]
    assert any(c["reduction_pct"] > 10 for c in servers)
    assert all(c["reduction_pct"] >= 0 for c in servers)
    hycor_cells = {k: c for k, c in pinned["recovery"].items()
                   if k.endswith("/hycor")}
    assert hycor_cells
    assert all(c["replay_us"] > 0 for c in hycor_cells.values())
    for key, cell in hycor_cells.items():
        twin = pinned["recovery"][key.replace("/hycor", "/nilicon")]
        assert cell["total_us"] >= twin["total_us"]
        assert twin["replay_us"] == 0
    assert pinned["traffic"]["ok"]
