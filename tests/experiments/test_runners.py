"""Smoke tests for the experiment runners (fast configurations)."""

import pytest

from repro.experiments.common import (
    MODES,
    RunResult,
    build_deployment,
    overhead_from_throughput,
    overhead_from_time,
    run_compute_benchmark,
    run_server_benchmark,
)
from repro.experiments.suite import MC_PARAMS, PAPER_BENCHMARKS
from repro.net import World
from repro.sim import ms
from repro.workloads.catalog import make_workload


def test_overhead_helpers():
    stock = RunResult(workload="w", mode="stock", throughput=100.0, completion_us=1000)
    repl = RunResult(workload="w", mode="nilicon", throughput=75.0, completion_us=1300)
    assert overhead_from_throughput(stock, repl) == pytest.approx(0.25)
    assert overhead_from_time(stock, repl) == pytest.approx(0.30)


def test_build_deployment_rejects_unknown_mode():
    world = World(seed=1)
    spec = make_workload("net").spec()
    with pytest.raises(ValueError, match="unknown mode"):
        build_deployment(world, spec, "remus")


def test_modes_constant_covers_all_builders():
    world = World(seed=1)
    for mode in MODES:
        w = World(seed=1)
        deployment = build_deployment(w, make_workload("net").spec(), mode)
        assert deployment.container is not None


def test_run_server_benchmark_smoke():
    result = run_server_benchmark("net", "nilicon", duration_us=ms(600))
    assert result.throughput > 0
    assert result.stats.ok
    assert result.metrics.n_epochs > 5
    assert 0 < result.stopped_fraction < 1
    assert result.extra["active_cores"] >= 0


def test_run_compute_benchmark_smoke():
    result = run_compute_benchmark(
        "streamcluster", "nilicon", workload_kwargs={"total_units": 800}
    )
    assert result.completion_us > 0
    assert result.metrics.n_epochs >= 1


def test_compute_timeout_raises():
    with pytest.raises(RuntimeError, match="did not finish"):
        run_compute_benchmark(
            "streamcluster",
            "stock",
            workload_kwargs={"total_units": 100_000},
            timeout_us=ms(50),
        )


def test_mc_params_cover_all_paper_benchmarks():
    assert set(MC_PARAMS) == set(PAPER_BENCHMARKS)
    for params in MC_PARAMS.values():
        assert params["cpu_tax"] >= 0
        assert params["guest_kernel_dirty_per_epoch"] >= 0
