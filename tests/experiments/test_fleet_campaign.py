"""The fleet acceptance campaign and scaling benches (smoke variants)."""

from repro.experiments.fleet import (
    _survivable_victims,
    format_bench,
    format_campaign,
    run_fleet_bench,
    run_fleet_campaign,
)


def test_smoke_campaign_passes_and_replays_identically():
    report = run_fleet_campaign(seed=1, smoke=True)
    assert report["ok"], report["violations"]
    assert report["deterministic"]
    assert report["digest"] == report["replay_digest"]
    assert report["metrics"]["protected_members"] == 12
    assert report["metrics"]["dead_members"] == 0
    assert report["metrics"]["total_failovers"] >= 2
    # Phase shape: one sequential single-host loss, one concurrent double.
    assert [p["phase"] for p in report["phases"]] == [
        "sequential", "concurrent",
    ]
    assert len(report["phases"][1]["hosts"]) == 2
    assert "IDENTICAL" in format_campaign(report)


def test_campaign_digest_tracks_fleet_shape():
    """The digest is a pure function of the run: a different fleet shape
    must change it.  (Different *seeds* legitimately may not: the counter
    pipeline draws nothing from the world RNG, and the digest is
    timestamp-free by design.)"""
    from repro.fleet import FleetSpec

    a = run_fleet_campaign(seed=1, smoke=True)
    b = run_fleet_campaign(
        seed=1, smoke=True,
        fleet=FleetSpec(n_containers=6, n_hosts=6, slots_per_host=10),
    )
    assert a["ok"], a["violations"]
    assert b["ok"], b["violations"]
    assert a["digest"] != b["digest"]
    assert a["trace_events"] > b["trace_events"] > 1000


def test_smoke_bench_shapes_and_oracles():
    report = run_fleet_bench(seed=1, smoke=True)
    assert report["ok"]
    assert [c["containers_on_pair"] for c in report["containers_per_pair"]] \
        == [1, 2]
    assert [c["hosts"] for c in report["pool_size"]] == [4, 6]
    for cell in report["pool_size"]:
        assert cell["failovers"] >= 1
        assert cell["protected_at_end"] == cell["containers"]
    assert "req/s" in format_bench(report)


def test_survivable_victims_skips_spanned_pairs():
    """The concurrent phase must never pick a host pair that holds both
    replicas of one member."""
    class FakeHost:
        def __init__(self, name):
            self.name = name

    class FakeMember:
        def __init__(self, primary, backup):
            self.state = "protected"
            self.primary = primary
            self.backup = backup

    class FakePool:
        def __init__(self, names):
            self._hosts = [FakeHost(n) for n in names]

        def alive_hosts(self):
            return self._hosts

    class FakeController:
        def __init__(self):
            # svc0 spans (node0, node1); primaries live on node0/node2.
            self.members = {
                "svc0": FakeMember("node0", "node1"),
                "svc1": FakeMember("node2", "node1"),
            }
            self.pool = FakePool(["node0", "node1", "node2"])

    assert _survivable_victims(FakeController()) == ("node0", "node2")
