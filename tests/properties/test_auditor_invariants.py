"""Property: the runtime auditor is quiet on any legal write/clear history
and loud on any injected soft-dirty bookkeeping corruption.

The auditor's value rests on both directions.  False positives would force
people to turn it off; false negatives would let checkpoint bugs ship.  So
hypothesis drives arbitrary interleavings of page writes, ``clear_refs``
epochs and audits (always clean), then corrupts the kernel's dirty set at an
arbitrary point (always detected).
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.auditor import StateAuditor
from repro.kernel.costmodel import CostModel
from repro.kernel.mm import AddressSpace, Vma
from repro.kernel.task import Process

N_PAGES = 48

#: One simulated epoch: pages written during it, then a clear_refs boundary.
epoch_writes = st.lists(st.integers(0, N_PAGES - 1), max_size=10)


class _Shim:
    """Container shim: one process over *mm*, nothing else to audit."""

    def __init__(self, mm):
        self.processes = [Process(comm="prop", address_space=mm)]
        self.stack = type("S", (), {"connections": {}, "name": "prop-stack"})()

    def mounted_filesystems(self):
        return []


def build(audited_epochs):
    mm = AddressSpace(CostModel(), name="prop-mm")
    mm.mmap(Vma(start=0, n_pages=N_PAGES, kind="heap"))
    auditor = StateAuditor()
    auditor.attach_address_space(mm)
    mm.start_tracking("soft_dirty")
    shim = _Shim(mm)
    for writes in audited_epochs:
        for idx in writes:
            mm.write(idx, b"w")
    return mm, auditor, shim


@settings(max_examples=80, deadline=None)
@given(epochs=st.lists(epoch_writes, min_size=1, max_size=6))
def test_normal_epochs_audit_clean(epochs):
    mm = AddressSpace(CostModel(), name="prop-mm")
    mm.mmap(Vma(start=0, n_pages=N_PAGES, kind="heap"))
    auditor = StateAuditor()
    auditor.attach_address_space(mm)
    mm.start_tracking("soft_dirty")
    shim = _Shim(mm)
    for writes in epochs:
        for idx in writes:
            mm.write(idx, b"w")
        # Epoch boundary: audit the frozen state, then clear for the next.
        assert auditor.audit_epoch(shim) == []
        mm.clear_refs()
    assert auditor.epochs_audited == len(epochs)


@settings(max_examples=80, deadline=None)
@given(
    writes=st.lists(st.integers(0, N_PAGES - 1), min_size=1, max_size=12),
    victim_pos=st.integers(0, 11),
)
def test_dropped_dirty_page_always_detected(writes, victim_pos):
    mm, auditor, shim = build([writes])
    victim = writes[victim_pos % len(writes)]
    mm._tracking.dirty.discard(victim)  # inject: kernel loses the dirty bit
    auditor.raise_on_violation = False
    found = auditor.audit_epoch(shim)
    assert any(
        v.invariant == "soft_dirty" and victim in (v.expected or set())
        for v in found
    )


@settings(max_examples=80, deadline=None)
@given(
    writes=st.lists(st.integers(0, N_PAGES - 1), max_size=12),
    phantom=st.integers(0, N_PAGES - 1),
)
def test_phantom_dirty_page_always_detected(writes, phantom):
    mm, auditor, shim = build([writes])
    assume(phantom not in writes)
    mm._tracking.dirty.add(phantom)  # inject: dirty bit with no write
    auditor.raise_on_violation = False
    found = auditor.audit_epoch(shim)
    assert any(
        v.invariant == "soft_dirty" and phantom in (v.actual or set())
        for v in found
    )
