"""Property: thread state survives describe -> (serialize) -> restore."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.task import Task
from repro.workloads.protocol import decode_body, encode_body

registers = st.dictionaries(
    st.sampled_from(["rip", "rsp", "rax", "rbx", "rcx", "rdx", "rbp"]),
    st.integers(0, 2**64 - 1),
    min_size=1,
)

timers = st.lists(
    st.tuples(st.sampled_from(["ITIMER_REAL", "ITIMER_VIRTUAL"]),
              st.integers(0, 10**9), st.integers(0, 10**9)),
    max_size=3,
)


@settings(max_examples=80, deadline=None)
@given(
    regs=registers,
    mask=st.integers(0, 2**64 - 1),
    pending=st.lists(st.integers(1, 64), max_size=4),
    policy=st.sampled_from(["SCHED_OTHER", "SCHED_FIFO", "SCHED_RR"]),
    prio=st.integers(0, 99),
    tmrs=timers,
)
def test_thread_state_roundtrip(regs, mask, pending, policy, prio, tmrs):
    task = Task(name="victim")
    task.registers = dict(regs)
    task.signal_mask = mask
    task.pending_signals = tuple(pending)
    task.sched_policy = policy
    task.sched_priority = prio
    task.timers = tuple(tuple(t) for t in tmrs)

    # describe -> wire serialization -> restore into a fresh task.
    desc = decode_body(encode_body(task.describe()))
    restored = Task(name="fresh")
    restored.restore_from(desc)

    assert restored.registers == task.registers
    assert restored.signal_mask == task.signal_mask
    assert restored.pending_signals == task.pending_signals
    assert restored.sched_policy == task.sched_policy
    assert restored.sched_priority == task.sched_priority
    assert restored.timers == task.timers
