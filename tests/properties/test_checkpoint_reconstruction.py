"""Property: base image + ordered incrementals == full memory state.

This is NiLiCon's central state invariant: whatever sequence of page writes
happens between checkpoints, the backup's committed page store (radix tree
or linked list) merged over all received incrementals must equal the
primary's memory at the last checkpoint — so failover restores exactly the
committed state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.criu.pagestore import LinkedListPageStore, RadixTreePageStore
from repro.kernel.costmodel import CostModel
from repro.kernel.mm import AddressSpace, Vma

N_PAGES = 64

write_batch = st.lists(
    st.tuples(st.integers(0, N_PAGES - 1), st.binary(min_size=1, max_size=6)),
    max_size=12,
)


@settings(max_examples=60, deadline=None)
@given(epochs=st.lists(write_batch, min_size=1, max_size=8))
def test_incrementals_reconstruct_full_state(epochs):
    costs = CostModel()
    mm = AddressSpace(costs, name="prop")
    mm.mmap(Vma(start=0, n_pages=N_PAGES, kind="heap"))

    for store in (RadixTreePageStore(costs), LinkedListPageStore(costs)):
        mm2 = AddressSpace(costs, name="prop2")
        mm2.mmap(Vma(start=0, n_pages=N_PAGES, kind="heap"))

        # Full checkpoint (epoch 0): everything resident.
        mm2.start_tracking("soft_dirty")
        store.begin_checkpoint()
        for idx, token in mm2.full_snapshot().items():
            store.store_page(1, idx, token)

        for batch in epochs:
            for idx, token in batch:
                mm2.write(idx, token)
            # Incremental checkpoint: exactly the soft-dirty set.
            dirty = mm2.dirty_pages()
            snapshot = mm2.snapshot_pages(sorted(dirty))
            mm2.clear_refs()
            store.begin_checkpoint()
            for idx, token in snapshot.items():
                store.store_page(1, idx, token)

        committed = {k: v for k, v in store.pages_of(1).items() if v != b""}
        assert committed == mm2.full_snapshot()


@settings(max_examples=60, deadline=None)
@given(
    epochs=st.lists(write_batch, min_size=1, max_size=6),
    crash_after=st.integers(0, 5),
)
def test_restore_equals_state_at_committed_epoch(epochs, crash_after):
    """Writes after the last *committed* checkpoint never leak into the
    restored state (uncommitted epochs die with the primary)."""
    costs = CostModel()
    mm = AddressSpace(costs, name="prop")
    mm.mmap(Vma(start=0, n_pages=N_PAGES, kind="heap"))
    store = RadixTreePageStore(costs)

    mm.start_tracking("soft_dirty")
    store.begin_checkpoint()
    committed_view: dict[int, bytes] = {}

    for epoch_idx, batch in enumerate(epochs):
        for idx, token in batch:
            mm.write(idx, token)
        if epoch_idx < crash_after:
            dirty = mm.dirty_pages()
            snapshot = mm.snapshot_pages(sorted(dirty))
            mm.clear_refs()
            store.begin_checkpoint()
            for idx, token in snapshot.items():
                store.store_page(1, idx, token)
            committed_view = dict(mm.full_snapshot())
        # epochs >= crash_after: the primary dies before checkpointing them.

    restored = {k: v for k, v in store.pages_of(1).items() if v != b""}
    assert restored == committed_view
