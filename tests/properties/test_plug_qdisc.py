"""Properties of the plug qdisc's epoch-barrier semantics.

Whatever interleaving of enqueues, barriers and releases occurs, the plug
must (a) deliver packets in FIFO order, (b) never release a packet whose
epoch barrier has not been released, and (c) lose nothing except by
explicit drop_all.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.netdev import Packet, PlugQdisc

op = st.one_of(
    st.tuples(st.just("pkt"), st.integers(0, 0)),
    st.tuples(st.just("barrier"), st.integers(0, 0)),
    st.tuples(st.just("release"), st.integers(0, 0)),
)


def mkpkt(i: int) -> Packet:
    return Packet(src_ip="a", src_port=1, dst_ip="b", dst_port=2,
                  payload=str(i).encode())


@settings(max_examples=120, deadline=None)
@given(ops=st.lists(op, max_size=60))
def test_barrier_release_properties(ops):
    delivered: list[Packet] = []
    plug = PlugQdisc("p", delivered.append)
    plug.plug()

    sent: list[int] = []
    epochs: list[int] = []  # sent-count snapshot at each barrier
    released_epochs = 0
    counter = 0

    for kind, _ in ops:
        if kind == "pkt":
            plug.enqueue(mkpkt(counter))
            sent.append(counter)
            counter += 1
        elif kind == "barrier":
            plug.insert_barrier(len(epochs))
            epochs.append(len(sent))
        else:
            plug.release_epoch()
            if released_epochs < len(epochs):
                released_epochs += 1

    got = [int(p.payload) for p in delivered]
    # (a) FIFO order, no duplication.
    assert got == sorted(got) == list(range(len(got)))
    # (b) exactly the packets before the last released barrier came out.
    expected = epochs[released_epochs - 1] if released_epochs else 0
    assert len(got) == expected
    # (c) everything else is still queued.
    assert plug.queued == len(sent) - len(got)
    assert plug.buffered_total == len(sent)
    assert plug.released_total == len(got)


@settings(max_examples=60, deadline=None)
@given(
    epoch_sizes=st.lists(st.integers(0, 5), min_size=1, max_size=8),
    releases=st.integers(0, 10),
)
def test_release_per_epoch_exactly(epoch_sizes, releases):
    delivered: list[Packet] = []
    plug = PlugQdisc("p", delivered.append)
    plug.plug()
    counter = 0
    for epoch, size in enumerate(epoch_sizes):
        for _ in range(size):
            plug.enqueue(mkpkt(counter))
            counter += 1
        plug.insert_barrier(epoch)
    for _ in range(releases):
        plug.release_epoch()
    expected = sum(epoch_sizes[: min(releases, len(epoch_sizes))])
    assert len(delivered) == expected
