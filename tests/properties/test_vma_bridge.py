"""Properties of VMA overlap detection and bridge serialization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.costmodel import CostModel
from repro.kernel.errors import AddressError
from repro.kernel.mm import AddressSpace, Vma
from repro.kernel.netdev import Bridge, NetDevice, Packet
from repro.sim import Engine

vma_strategy = st.tuples(st.integers(0, 200), st.integers(1, 40))


@settings(max_examples=100, deadline=None)
@given(vmas=st.lists(vma_strategy, max_size=12))
def test_mapped_vmas_never_overlap(vmas):
    """Whatever mmap sequence is attempted, accepted VMAs are disjoint and
    rejected ones genuinely overlapped an accepted one."""
    space = AddressSpace(CostModel())
    accepted: list[Vma] = []
    for start, n_pages in vmas:
        candidate = Vma(start=start, n_pages=n_pages)
        try:
            space.mmap(candidate)
            accepted.append(candidate)
        except AddressError:
            assert any(candidate.overlaps(v) for v in accepted)
    for i, a in enumerate(accepted):
        for b in accepted[i + 1:]:
            assert not a.overlaps(b)
    # Every accepted page is findable; no page belongs to two VMAs.
    for vma in accepted:
        for idx in range(vma.start, vma.end):
            assert space.find_vma(idx) is vma


@settings(max_examples=40, deadline=None)
@given(sizes=st.lists(st.integers(1, 20_000), min_size=1, max_size=12))
def test_bridge_serializes_and_orders_per_port(sizes):
    """Packets to one port arrive in send order, spaced at least by their
    transmission times (no bandwidth violation)."""
    engine = Engine()
    bridge = Bridge(engine, bandwidth_bps=100_000_000, latency_us=50)
    arrivals: list[tuple[int, int]] = []  # (pkt payload size, time)
    src = NetDevice("src", "10.0.0.1", "s", engine)
    dst = NetDevice("dst", "10.0.0.2", "d", engine,
                    on_ingress=lambda p: arrivals.append((len(p.payload), engine.now)))
    bridge.attach(src)
    bridge.attach(dst)
    packets = [
        Packet(src_ip="10.0.0.1", src_port=1, dst_ip="10.0.0.2", dst_port=2,
               payload=b"x" * size)
        for size in sizes
    ]
    for pkt in packets:
        src.send(pkt)
    engine.run()
    assert [size for size, _t in arrivals] == sizes  # order preserved
    # Inter-arrival gap >= tx time of the later packet (serial link).
    for (_s1, t1), (pkt, (_s2, t2)) in zip(arrivals, zip(packets[1:], arrivals[1:])):
        assert t2 - t1 >= bridge.tx_time_us(pkt.size)
