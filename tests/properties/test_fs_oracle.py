"""Property test: the simulated VFS matches a byte-array oracle.

Random sequences of writes/reads/truncates/writebacks against the page
cache must always agree with a plain in-memory bytes model — including
after writebacks (disk path) and after replaying the fgetfc checkpoint
stream onto a second filesystem (the backup's fs-cache convergence).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.blockdev import BlockDevice
from repro.kernel.fs import FileSystem

op = st.one_of(
    st.tuples(st.just("write"), st.integers(0, 20_000), st.binary(min_size=1, max_size=600)),
    st.tuples(st.just("truncate"), st.integers(0, 20_000), st.just(b"")),
    st.tuples(st.just("writeback"), st.just(0), st.just(b"")),
)


def oracle_write(content: bytearray, offset: int, data: bytes) -> None:
    if len(content) < offset + len(data):
        content.extend(b"\0" * (offset + len(data) - len(content)))
    content[offset : offset + len(data)] = data


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(op, max_size=30))
def test_fs_matches_bytearray_oracle(ops):
    fs = FileSystem(BlockDevice("d"), name="prop")
    fs.create("/f")
    oracle = bytearray()
    for kind, offset, data in ops:
        if kind == "write":
            fs.write("/f", offset, data)
            oracle_write(oracle, offset, data)
        elif kind == "truncate":
            fs.truncate("/f", offset)
            if offset <= len(oracle):
                del oracle[offset:]
            else:
                oracle.extend(b"\0" * (offset - len(oracle)))
        else:
            fs.writeback()
        assert fs.file_content("/f") == bytes(oracle)


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(op, max_size=25))
def test_fgetfc_stream_converges_backup_fs(ops):
    """Replaying every fgetfc batch onto a second fs reproduces the file."""
    fs = FileSystem(BlockDevice("p"), name="primary")
    backup = FileSystem(BlockDevice("b"), name="backup")
    fs.create("/f")
    inodes, pages = fs.fgetfc()
    backup.apply_fc_checkpoint(inodes, pages)
    for kind, offset, data in ops:
        if kind == "write":
            fs.write("/f", offset, data)
        elif kind == "truncate":
            fs.truncate("/f", offset)
        else:
            fs.writeback()
        # Epoch boundary: collect-and-clear DNC, apply on the backup.
        inodes, pages = fs.fgetfc()
        backup.apply_fc_checkpoint(inodes, pages)
        assert backup.file_content("/f") == fs.file_content("/f")


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(op, max_size=20), split=st.integers(0, 19))
def test_fgetfc_is_exactly_once(ops, split):
    """Entries appear in exactly one fgetfc batch (no loss, no duplication):
    replaying with a *skipped* intermediate collection must still converge,
    because skipping a collection just merges its entries into the next."""
    fs = FileSystem(BlockDevice("p"), name="primary")
    backup = FileSystem(BlockDevice("b"), name="backup")
    fs.create("/f")
    batches = []
    for i, (kind, offset, data) in enumerate(ops):
        if kind == "write":
            fs.write("/f", offset, data)
        elif kind == "truncate":
            fs.truncate("/f", offset)
        else:
            fs.writeback()
        if i != split:  # skip one epoch's collection entirely
            batches.append(fs.fgetfc())
    batches.append(fs.fgetfc())
    for inodes, pages in batches:
        backup.apply_fc_checkpoint(inodes, pages)
    assert backup.file_content("/f") == fs.file_content("/f")
