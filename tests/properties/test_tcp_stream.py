"""Property: TCP delivers each byte stream exactly once, in order —
including across packet loss, retransmission and socket migration.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.costmodel import CostModel
from repro.kernel.netdev import Bridge, NetDevice
from repro.kernel.tcp import TcpStack
from repro.sim import Engine, ms, sec


def build_net():
    engine = Engine()
    costs = CostModel()
    bridge = Bridge(engine, latency_us=50)
    stacks = {}
    for name, ip in (("client", "10.0.0.1"), ("server", "10.0.0.2")):
        stack = TcpStack(engine, costs, ip, name=name)
        dev = NetDevice(f"{name}-eth", ip, name, engine)
        stack.attach_device(dev)
        bridge.attach(dev)
        stacks[name] = stack
    return engine, bridge, stacks


@settings(max_examples=30, deadline=None)
@given(
    chunks=st.lists(st.binary(min_size=1, max_size=4000), min_size=1, max_size=10),
    loss_windows=st.lists(
        st.tuples(st.integers(0, 80), st.integers(1, 40)), max_size=3
    ),
)
def test_stream_exactly_once_in_order_despite_loss(chunks, loss_windows):
    engine, _bridge, stacks = build_net()
    listener = stacks["server"].socket()
    listener.listen(80)
    accepted = listener.accept()
    client = stacks["client"].socket()
    connected = client.connect("10.0.0.2", 80)
    engine.run(until=ms(5))
    assert connected.processed and accepted.processed
    server_sock = accepted.value

    total = b"".join(chunks)
    received = bytearray()

    def sender():
        for chunk in chunks:
            client.send(chunk)
            yield engine.timeout(ms(2))

    def reader():
        while len(received) < len(total):
            data = yield server_sock.recv(1 << 16)
            assert data != b""
            received.extend(data)

    def chaos():
        # Cut the server NIC during pseudo-random windows: segments and
        # ACKs are lost; retransmission must recover everything.
        for start_ms, dur_ms in loss_windows:
            now = engine.now
            target = max(now, ms(start_ms))
            if target > now:
                yield engine.timeout(target - now)
            stacks["server"].device.cable_cut = True
            yield engine.timeout(ms(dur_ms))
            stacks["server"].device.cable_cut = False

    engine.process(sender())
    engine.process(reader())
    engine.process(chaos())
    engine.run(until=sec(30))
    assert bytes(received) == total


@settings(max_examples=20, deadline=None)
@given(
    pre_chunks=st.lists(st.binary(min_size=1, max_size=2000), min_size=1, max_size=5),
    post_chunks=st.lists(st.binary(min_size=1, max_size=2000), min_size=1, max_size=5),
)
def test_stream_survives_socket_migration(pre_chunks, post_chunks):
    """Bytes sent before a repair-mode migration and after it form one
    uninterrupted stream at the receiver."""
    engine, bridge, stacks = build_net()
    listener = stacks["server"].socket()
    listener.listen(80)
    accepted = listener.accept()
    client = stacks["client"].socket()
    client.connect("10.0.0.2", 80)
    engine.run(until=ms(5))
    server_sock = accepted.value

    for chunk in pre_chunks:
        client.send(chunk)
    engine.run(until=engine.now + ms(50))

    # Checkpoint the server socket, kill the server, restore elsewhere.
    server_sock.enter_repair()
    state = server_sock.get_repair_state()
    stacks["server"].device.cable_cut = True

    costs = CostModel()
    backup = TcpStack(engine, costs, "10.0.0.2", name="backup")
    dev = NetDevice("backup-eth", "10.0.0.2", "backup", engine)
    backup.attach_device(dev)
    port = bridge.attach(dev)
    bridge.gratuitous_arp("10.0.0.2", port)
    restored = backup.socket()
    restored.repair = True
    restored.set_repair_state(state, rto_patch=True)
    restored.leave_repair()
    restored.kick_retransmit()

    for chunk in post_chunks:
        client.send(chunk)

    total = b"".join(pre_chunks) + b"".join(post_chunks)
    # Pre-migration bytes sit in the restored read queue; the reader drains
    # them first, then the live stream continues.
    received = bytearray()

    def reader():
        while len(received) < len(total):
            data = yield restored.recv(1 << 16)
            assert data != b""
            received.extend(data)

    engine.process(reader())
    engine.run(until=sec(30))
    assert bytes(received) == total
