"""Workload abstractions and the generic restart-safe request server.

A workload knows how to (a) describe its container, (b) pre-populate state
(warmup), (c) attach its service loops to a container — including a
restored one after failover — and (d) drive itself with clients.

The request-processing path is the **restart-safe pattern**: a handler
waits (without consuming) until a complete frame is in the socket's read
queue, then — inside a single execution slice, atomically with respect to
the freezer — consumes the frame, applies all state effects, and queues the
response.  A checkpoint therefore always captures a request either fully
unprocessed (bytes still in the read queue; the restored service reprocesses
it) or fully processed (response in the write path, covered by output
commit).  Handlers keep no application state outside the container.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.container.spec import ContainerSpec
from repro.kernel.errors import KernelError
from repro.kernel.tcp import TcpSocket
from repro.sim.engine import Interrupt
from repro.workloads import protocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.container.runtime import Container
    from repro.net.world import World

__all__ = ["ClientStats", "ComputeWorkload", "ServerWorkload", "Workload"]


@dataclass
class ClientStats:
    """Client-side measurements (shared by all client generators)."""

    completed: int = 0
    errors: int = 0
    validation_failures: list[str] = field(default_factory=list)
    latencies_us: list[int] = field(default_factory=list)
    bytes_received: int = 0
    #: Operations (for batched KV: ops, not batches).
    operations: int = 0

    def throughput(self, elapsed_us: int) -> float:
        """Operations per second."""
        return self.operations / (elapsed_us / 1_000_000)

    @property
    def ok(self) -> bool:
        return self.errors == 0 and not self.validation_failures


class Workload(abc.ABC):
    """Base workload interface."""

    name: str = "workload"
    ip: str = "10.0.1.10"

    @abc.abstractmethod
    def spec(self) -> ContainerSpec:
        """The container to deploy."""

    def warmup(self, world: "World", container: "Container") -> None:
        """Pre-populate container state (resident pages, files, data sets).

        Runs before replication starts so the initial full checkpoint sees
        the steady-state resident set.
        """

    @abc.abstractmethod
    def attach(self, world: "World", container: "Container") -> None:
        """Start (or re-start, after failover) the service processes."""


class ServerWorkload(Workload):
    """A client-server workload measured by maximum throughput."""

    port: int = 8080

    @abc.abstractmethod
    def start_clients(self, world: "World", stats: ClientStats) -> None:
        """Spawn the saturating client population against :attr:`ip`."""

    # ------------------------------------------------------------------ #
    # Server plumbing shared by all concrete servers                       #
    # ------------------------------------------------------------------ #
    def attach(self, world: "World", container: "Container") -> None:
        stack = container.stack
        listener = stack.listeners.get(self.port)
        if listener is None:
            listener = stack.socket()
            listener.listen(self.port)
        world.engine.process(
            self._accept_loop(world, container, listener), name=f"{self.name}-accept"
        )
        # Failover: resume handlers for restored established connections.
        for sock in list(stack.connections.values()):
            self._spawn_handler(world, container, sock)

    def _accept_loop(self, world, container, listener):
        while not container.dead:
            try:
                child = yield listener.accept()
            except (Interrupt, KernelError):
                return
            self._spawn_handler(world, container, child)

    _handler_rr = 0

    def _spawn_handler(self, world, container, sock: TcpSocket) -> None:
        # Distribute connections round-robin over the container's processes
        # (multi-process servers like Lighttpd use all their workers).
        process = container.processes[self._handler_rr % len(container.processes)]
        self._handler_rr += 1
        world.engine.process(
            self._handler(world, container, process, sock),
            name=f"{self.name}-handler",
        )

    def _handler(self, world, container, process, sock: TcpSocket):
        """The restart-safe request loop (see module docstring)."""
        while not container.dead:
            needed = protocol.frame_ready(sock.peek(sock.available))
            if needed > 0:
                try:
                    yield sock.data_available(min_bytes=sock.available + needed)
                except (Interrupt, KernelError):
                    return
                if sock.state.value in ("reset", "closed"):
                    return
                if sock.available == 0 and sock.state.value == "peer_closed":
                    return
                continue

            # A complete frame is present: charge its CPU (in preemptible
            # ~1 ms slices, so the freezer never waits out a monolithic
            # multi-ms request), then atomically consume + apply + respond.
            header = sock.peek(protocol.HEADER_LEN + 32)
            body_len = int(header[:protocol.HEADER_LEN])
            cpu_us = self.request_cpu_us(body_len)
            outcome: dict[str, Any] = {}

            try:
                while cpu_us > 1500:
                    yield from container.run_slice(process, 1000)
                    cpu_us -= 1000
            except (Interrupt, KernelError):
                return

            def mutate():
                raw = sock.recv_nowait(protocol.HEADER_LEN + body_len)
                body = raw[protocol.HEADER_LEN:]
                if container.dead:
                    return
                response = self.handle_request(container, process, body, outcome)
                if response is not None and sock.state.value in (
                    "established",
                    "peer_closed",
                ):
                    sock.send(protocol.frame(response))

            try:
                yield from container.run_slice(process, cpu_us, mutate=mutate)
            except (Interrupt, KernelError):
                return

    # -- hooks concrete servers implement ----------------------------------
    @abc.abstractmethod
    def request_cpu_us(self, body_len: int) -> int:
        """CPU cost of processing one request of *body_len* bytes."""

    @abc.abstractmethod
    def handle_request(
        self, container: "Container", process, body: bytes, outcome: dict
    ) -> bytes | None:
        """Apply one request's effects; returns the response body.

        Runs inside the atomic mutate step: all container state mutations
        (page writes, filesystem writes) happen here.
        """


class ComputeWorkload(Workload):
    """A non-interactive workload measured by completion time.

    Progress is stored in container memory (one progress page per worker),
    so a restored container resumes from its checkpointed progress.
    """

    #: Filled in by subclasses.
    n_workers: int = 4
    total_units: int = 1000
    unit_cpu_us: int = 500

    def progress_page(self, container: "Container", worker: int) -> int:
        return container.heap_vma.start + worker

    def read_progress(self, container: "Container", worker: int) -> int:
        raw = container.processes[0].mm.read(self.progress_page(container, worker))
        return int(raw or b"0")

    def total_progress(self, container: "Container") -> int:
        return sum(self.read_progress(container, w) for w in range(self.n_workers))

    @property
    def units_per_worker(self) -> int:
        return self.total_units // self.n_workers

    def attach(self, world: "World", container: "Container") -> None:
        for worker in range(self.n_workers):
            world.engine.process(
                self._worker(world, container, worker), name=f"{self.name}-w{worker}"
            )

    def is_complete(self, container: "Container") -> bool:
        return all(
            self.read_progress(container, w) >= self.units_per_worker
            for w in range(self.n_workers)
        )

    def _worker(self, world, container, worker: int):
        process = container.processes[0]
        page = self.progress_page(container, worker)
        while not container.dead:
            done = self.read_progress(container, worker)
            if done >= self.units_per_worker:
                return

            def mutate(d=done):
                self.unit_effects(container, process, worker, d)
                process.mm.write(page, str(d + 1).encode())

            try:
                yield from container.run_slice(process, self.unit_cpu_us, mutate=mutate)
            except (Interrupt, KernelError):
                return

    def unit_effects(self, container, process, worker: int, unit: int) -> None:
        """State effects of one work unit (page dirtying); subclass hook."""
