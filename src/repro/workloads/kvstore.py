"""NoSQL key-value servers: Redis-like (memory) and SSDB-like (disk).

Paper §VI: "Redis was configured to stress memory by storing all data in
memory (persistence: None).  SSDB was configured to stress disk I/O by
using full persistence.  Each request to Redis/SSDB was a batch of 1K
requests consisting of 50% reads and 50% writes."

Here a *request frame* is one batch: ``('BATCH', [(op, key, value|None),
...])``.  Sets write the value into the key's dedicated page (Redis) and/or
into the store file through the page cache (SSDB, whose background flusher
generates the DRBD disk-write stream).  Values are real ASCII bytes, so a
failover's restored store content is checked byte-for-byte by the client.

The store layout is one page per key (``heap_base + KV_BASE + key_index``),
giving exact dirty-page accounting: one set dirties one page.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.container.spec import ContainerSpec, ProcessSpec
from repro.sim.engine import Interrupt
from repro.kernel.errors import KernelError
from repro.workloads import protocol
from repro.workloads.base import ClientStats, ServerWorkload
from repro.workloads.clients import PipelinedClient

if TYPE_CHECKING:  # pragma: no cover
    from repro.container.runtime import Container
    from repro.net.world import World

__all__ = ["KvRequestFactory", "KvServer"]

#: Offset of the first key page within the heap (low pages hold metadata).
KV_BASE = 64


class KvServer(ServerWorkload):
    """A batched KV server over container memory (and optionally disk)."""

    port = 6379

    def __init__(
        self,
        name: str = "redis",
        n_keys: int = 6000,
        value_len: int = 256,
        persistence: bool = False,
        cpu_per_op_us: int = 3,
        n_threads: int = 1,
        index_pages: int = 64,
        mapped_files: int = 30,
        client_window: int = 64,
    ) -> None:
        self.name = name
        self.n_keys = n_keys
        self.value_len = value_len
        self.persistence = persistence
        self.cpu_per_op_us = cpu_per_op_us
        self.n_threads = n_threads
        self.index_pages = index_pages
        self.mapped_files = mapped_files
        self.client_window = client_window
        self.store_path = f"/data/{name}.db"

    # ------------------------------------------------------------------ #
    # Deployment shape                                                     #
    # ------------------------------------------------------------------ #
    def spec(self) -> ContainerSpec:
        return ContainerSpec(
            name=self.name,
            ip=self.ip,
            processes=[
                ProcessSpec(
                    comm=f"{self.name}-server",
                    n_threads=self.n_threads,
                    heap_pages=KV_BASE + self.n_keys + self.index_pages + 64,
                    n_mapped_files=self.mapped_files,
                )
            ],
            mounts=[("/data", f"{self.name}-fs")] if self.persistence else [],
            cgroup_attributes={"cpu.shares": 1024},
        )

    def key_page(self, container: "Container", key: int) -> int:
        return container.heap_vma.start + KV_BASE + key

    def warmup(self, world: "World", container: "Container") -> None:
        """YCSB-style load phase: populate every key (and the store file)."""
        process = container.processes[0]
        fs = container.mounted_filesystems()[0] if self.persistence else None
        if fs is not None and not fs.exists(self.store_path):
            fs.create(self.store_path)
        for key in range(self.n_keys):
            value = self._initial_value(key)
            if self.persistence:
                fs.write(self.store_path, key * self.value_len, value)
                if key % 16 == 0:
                    process.mm.write(self._index_page(container, key), str(key).encode())
            else:
                process.mm.write(self.key_page(container, key), value)
        if fs is not None:
            fs.writeback()

    def _initial_value(self, key: int) -> bytes:
        return f"k{key:06d}=init".ljust(self.value_len, ".").encode()

    def _index_page(self, container: "Container", key: int) -> int:
        # LSM-memtable-style metadata: consecutive keys land on different
        # index pages, so the dirty-index footprint reflects update breadth.
        base = container.heap_vma.start + KV_BASE + self.n_keys
        return base + key % self.index_pages

    # ------------------------------------------------------------------ #
    # Service                                                              #
    # ------------------------------------------------------------------ #
    def attach(self, world: "World", container: "Container") -> None:
        super().attach(world, container)
        if self.persistence:
            world.engine.process(
                self._flusher(world, container), name=f"{self.name}-flusher"
            )

    def _flusher(self, world: "World", container: "Container"):
        """Background persistence: flush dirty page-cache pages to disk.

        This is what turns SSDB's sets into a continuous DRBD write stream.
        """
        kernel = container.kernel
        while not container.dead:
            yield world.engine.timeout(5_000)
            if container.dead or container.frozen:
                continue
            fs_list = container.mounted_filesystems()
            if fs_list:
                try:
                    yield from kernel.fs_writeback(fs_list[0], limit=64)
                except (Interrupt, KernelError):
                    return

    def request_cpu_us(self, body_len: int) -> int:
        # Cost scales with ops; ops scale with body length (a 50/50 batch
        # averages ~2/3 of a value length per op on the wire).
        approx_ops = max(1, body_len // max(1, self.value_len * 2 // 3))
        return approx_ops * self.cpu_per_op_us

    def handle_request(self, container, process, body: bytes, outcome: dict):
        kind, ops = protocol.decode_body(body)
        assert kind == "BATCH"
        fs = container.mounted_filesystems()[0] if self.persistence else None
        results = []
        for op, key, value in ops:
            if op == "set":
                data = value.encode()
                if self.persistence:
                    fs.write(self.store_path, key * self.value_len, data)
                    process.mm.write(self._index_page(container, key), str(key).encode())
                else:
                    process.mm.write(self.key_page(container, key), data)
                results.append("OK")
            else:  # get
                if self.persistence:
                    raw = fs.read(self.store_path, key * self.value_len, self.value_len)
                else:
                    raw = process.mm.read(self.key_page(container, key))
                results.append(raw.decode().rstrip("\x00"))
        return protocol.encode_body(("RESULTS", results))

    # ------------------------------------------------------------------ #
    # Client                                                               #
    # ------------------------------------------------------------------ #
    def start_clients(
        self,
        world: "World",
        stats: ClientStats,
        batch_size: int = 1000,
        window: int | None = None,
        run_until_us: int | None = None,
        n_requests: int | None = None,
    ) -> PipelinedClient:
        if window is None:
            window = self.client_window
        factory = KvRequestFactory(self, world, batch_size)
        client = PipelinedClient(
            world,
            self.ip,
            self.port,
            factory,
            stats,
            window=window,
            n_requests=n_requests,
            run_until_us=run_until_us,
        )
        client.start()
        return client


class KvRequestFactory:
    """Deterministic YCSB-like batch generator with a validating shadow map.

    The shadow is updated at request-*creation* time; because a connection's
    requests are processed in order and effects are exactly-once across
    failover (idempotent sets + output commit), every get's expected value
    is known when the batch is built.
    """

    def __init__(self, server: KvServer, world: "World", batch_size: int) -> None:
        self.server = server
        self.batch_size = batch_size
        self.rng = world.rng.stream(
            f"kv-client-{server.name}",  # nd: logged -- one stream per server
            owner="repro.workloads.kvstore",
        )
        self.shadow: dict[int, str] = {
            key: server._initial_value(key).decode() for key in range(server.n_keys)
        }
        # Sets sweep the key space cyclically (YCSB-style uniform update
        # coverage); gets draw uniformly at random.
        self._set_cursor = 0

    def __call__(self, i: int) -> tuple[bytes, Callable[[bytes], str | None], int]:
        ops = []
        expected_gets = []
        value_len = self.server.value_len
        for j in range(self.batch_size):
            if j % 2 == 0:
                key = self._set_cursor
                self._set_cursor = (self._set_cursor + 1) % self.server.n_keys
                value = f"k{key:06d}@{i:07d}.{j:04d}".ljust(value_len, ".")
                ops.append(("set", key, value))
                self.shadow[key] = value
            else:
                key = self.rng.randrange(self.server.n_keys)
                ops.append(("get", key, None))
                expected_gets.append(self.shadow[key])
        body = protocol.encode_body(("BATCH", ops))

        def check(response: bytes, expected=tuple(expected_gets)) -> str | None:
            kind, results = protocol.decode_body(response)
            if kind != "RESULTS":
                return f"bad response kind {kind!r}"
            gets = [r for r in results if r != "OK"]
            if len(gets) != len(expected):
                return f"expected {len(expected)} get results, saw {len(gets)}"
            for got, want in zip(gets, expected):
                if got != want:
                    return f"get mismatch: {got[:32]!r} != {want[:32]!r}"
            return None

        return body, check, self.batch_size
