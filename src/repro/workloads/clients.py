"""Client generators: saturating drivers and latency probes.

Two shapes, mirroring the paper's methodology (§VI, §VII-C):

* :class:`PipelinedClient` — one connection keeping a window of requests in
  flight (the hiredis-style batched KV driver).  Saturates a server through
  output-commit latency without inflating the container's socket count.
* :class:`ClosedLoopClients` — N connections, each with one request in
  flight (the SIEGE-style web driver); N is the concurrency knob of the
  scalability experiments.

Both validate every response via the workload-provided checker and record
latencies into :class:`~repro.workloads.base.ClientStats`.  Clients run on
the client host and survive primary failover through ordinary TCP
retransmission — there is no reconnect logic, which is the point: failover
must be client-transparent.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.kernel.errors import ConnectionReset
from repro.kernel.netdev import NetDevice
from repro.kernel.tcp import TcpStack
from repro.sim.units import sec
from repro.workloads import protocol
from repro.workloads.base import ClientStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.world import World

__all__ = ["ClosedLoopClients", "PipelinedClient", "make_client_stack"]

#: (request body, response validator, operation count) for request *i*.
RequestFactory = Callable[[int], tuple[bytes, Callable[[bytes], str | None], int]]

#: Slack past ``run_until_us`` before a blocked recv gives up.  Must exceed
#: the worst-case failover stall (detection + restore, ~3 s) so a deadline
#: never fires on a request that legitimately survives recovery.
RECV_GRACE_US = sec(5)

_client_ips = 0


def make_client_stack(world: "World", name: str = "client") -> TcpStack:
    """A TCP stack on the client host, attached to the client network."""
    global _client_ips
    _client_ips += 1
    ip = f"10.0.9.{_client_ips}"
    stack = TcpStack(world.engine, world.costs, ip, name=name)
    dev = NetDevice(f"{name}-eth", ip, f"0c:{_client_ips:02x}", world.engine)
    stack.attach_device(dev)
    world.bridge.attach(dev)
    return stack


class PipelinedClient:
    """Single connection, windowed pipeline of framed requests."""

    def __init__(
        self,
        world: "World",
        server_ip: str,
        port: int,
        make_request: RequestFactory,
        stats: ClientStats,
        window: int = 16,
        n_requests: int | None = None,
        run_until_us: int | None = None,
    ) -> None:
        self.world = world
        self.server_ip = server_ip
        self.port = port
        self.make_request = make_request
        self.stats = stats
        self.window = window
        self.n_requests = n_requests
        self.run_until_us = run_until_us
        self.stack = make_client_stack(world, name="kv-client")
        self._inflight: list[tuple[int, int, Callable, int]] = []  # (i, sent_at, check, ops)
        self._sent = 0
        self.done = False

    def start(self) -> None:
        self.world.engine.process(self._run(), name="pipelined-client")

    def _more(self) -> bool:
        if self.n_requests is not None and self._sent >= self.n_requests:
            return False
        if self.run_until_us is not None and self.world.now >= self.run_until_us:
            return False
        return True

    def _run(self):
        sock = self.stack.socket()
        try:
            yield sock.connect(self.server_ip, self.port)
        except ConnectionReset:
            self.stats.errors += 1
            self.done = True
            return
        buffered = b""
        while self._more() or self._inflight:
            # Fill the window.
            while self._more() and len(self._inflight) < self.window:
                body, check, ops = self.make_request(self._sent)
                sock.send(protocol.frame(body))
                self._inflight.append((self._sent, self.world.now, check, ops))
                self._sent += 1
            if not self._inflight:
                break
            # Await the next response frame (FIFO within a connection).
            try:
                chunk = yield sock.recv(1 << 16)
            except ConnectionReset:
                # Every request still in flight is abandoned, not just the
                # one we were waiting on.
                self.stats.errors += len(self._inflight)
                break
            if chunk == b"":
                # Server half-closed with k requests in flight: all k are
                # abandoned (a single shared error would under-count).
                self.stats.errors += len(self._inflight)
                break
            buffered += chunk
            while True:
                frame_body, buffered = protocol.peel_frame(buffered)
                if frame_body is None:
                    break
                i, sent_at, check, ops = self._inflight.pop(0)
                failure = check(frame_body)
                if failure is not None:
                    self.stats.validation_failures.append(f"req {i}: {failure}")
                    # An unvalidated response is not a latency sample: a
                    # corrupt fast reply would otherwise *improve* the
                    # reported percentiles.
                else:
                    self.stats.latencies_us.append(self.world.now - sent_at)
                self.stats.completed += 1
                self.stats.operations += ops
                self.stats.bytes_received += len(frame_body)
        self.done = True


class ClosedLoopClients:
    """N connections, one request in flight each (SIEGE-style)."""

    def __init__(
        self,
        world: "World",
        server_ip: str,
        port: int,
        make_request: RequestFactory,
        stats: ClientStats,
        n_clients: int = 8,
        think_us: int = 0,
        n_requests_per_client: int | None = None,
        run_until_us: int | None = None,
        recv_timeout_us: int | None = None,
    ) -> None:
        self.world = world
        self.server_ip = server_ip
        self.port = port
        self.make_request = make_request
        self.stats = stats
        self.n_clients = n_clients
        self.think_us = think_us
        self.n_requests_per_client = n_requests_per_client
        self.run_until_us = run_until_us
        self.recv_timeout_us = recv_timeout_us
        self.stack = make_client_stack(world, name="web-clients")
        self._request_counter = 0
        self._finished = 0

    @property
    def done(self) -> bool:
        return self._finished >= self.n_clients

    def start(self) -> None:
        for c in range(self.n_clients):
            self.world.engine.process(self._client(c), name=f"client-{c}")

    def _recv_deadline_us(self, sent_at: int) -> int | None:
        """Absolute deadline for the response to the request sent at
        *sent_at*, or None for no deadline.  An explicit ``recv_timeout_us``
        wins; otherwise a ``run_until_us`` run falls back to run end plus
        :data:`RECV_GRACE_US` — generous enough to ride out a failover, but
        finite, so an upstream that stalls forever can no longer wedge the
        campaign (historically a client blocked in recv only re-checked
        ``run_until_us`` before *sending*)."""
        if self.recv_timeout_us is not None:
            return sent_at + self.recv_timeout_us
        if self.run_until_us is not None:
            return self.run_until_us + RECV_GRACE_US
        return None

    def _client(self, index: int):
        # ``finally`` is the only exit path allowed to touch ``_finished``:
        # every return/break/exception funnels through it exactly once, so
        # ``done`` cannot stick false after a client dies.
        try:
            yield from self._client_loop(index)
        finally:
            self._finished += 1

    def _client_loop(self, index: int):
        engine = self.world.engine
        sock = self.stack.socket()
        try:
            yield sock.connect(self.server_ip, self.port)
        except ConnectionReset:
            self.stats.errors += 1
            return
        sent = 0
        buffered = b""
        while True:
            if self.n_requests_per_client is not None and sent >= self.n_requests_per_client:
                break
            if self.run_until_us is not None and self.world.now >= self.run_until_us:
                break
            self._request_counter += 1
            body, check, ops = self.make_request(self._request_counter)
            sock.send(protocol.frame(body))
            sent += 1
            start = self.world.now
            deadline = self._recv_deadline_us(start)
            frame_body = None
            failed = False
            while frame_body is None:
                recv_ev = sock.recv(1 << 16)
                try:
                    if deadline is None:
                        chunk = yield recv_ev
                    else:
                        fired = yield engine.any_of([
                            recv_ev,
                            engine.timeout(max(0, deadline - self.world.now)),
                        ])
                        if recv_ev not in fired:
                            # Deadline expired with the request outstanding:
                            # abandon it (the leaked recv waiter is inert —
                            # this client never reads again).
                            self.stats.errors += 1
                            failed = True
                            break
                        chunk = fired[recv_ev]
                except ConnectionReset:
                    self.stats.errors += 1
                    failed = True
                    break
                if chunk == b"":
                    self.stats.errors += 1
                    failed = True
                    break
                buffered += chunk
                frame_body, buffered = protocol.peel_frame(buffered)
            if failed:
                break
            failure = check(frame_body)
            if failure is not None:
                self.stats.validation_failures.append(f"client {index}: {failure}")
            self.stats.completed += 1
            self.stats.operations += ops
            self.stats.latencies_us.append(self.world.now - start)
            self.stats.bytes_received += len(frame_body)
            if self.think_us:
                yield self.world.engine.timeout(self.think_us)
