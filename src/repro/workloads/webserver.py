"""Web-server workloads: Lighttpd, Node and DJCMS equivalents (paper §VI).

All three are request/response servers whose responses are deterministic
functions of the request id — which is exactly what lets the validation
experiments compare output against a golden copy, as the paper does.  They
differ in the knobs that drive checkpoint load:

* **Lighttpd** — 4 worker processes, CPU-heavy PHP image watermarking
  (~3 ms/request), moderate dirty pages, moderate client count.
* **Node** — single process/thread, cheap requests, *128 clients to reach
  saturation* — the large socket count is why Node has the highest stop
  time in Table III (~13 ms of socket-state collection).
* **DJCMS** — three processes (nginx, Python, MySQL), very heavy
  requests against the admin dashboard, large per-request dirty footprint.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Callable

from repro.container.spec import ContainerSpec, ProcessSpec
from repro.workloads import protocol
from repro.workloads.base import ClientStats, ServerWorkload
from repro.workloads.clients import ClosedLoopClients

if TYPE_CHECKING:  # pragma: no cover
    from repro.container.runtime import Container
    from repro.net.world import World

__all__ = ["WebServer", "web_response"]


def web_response(name: str, request_id: int, length: int) -> bytes:
    """The golden-copy response body for request *request_id*."""
    seed = hashlib.sha256(f"{name}:{request_id}".encode()).hexdigest()
    unit = f"<p>{name} page {request_id} {seed}</p>"
    reps = length // len(unit) + 1
    return (unit * reps)[:length].encode()


class WebServer(ServerWorkload):
    """Generic multi-process web server."""

    port = 8080

    def __init__(
        self,
        name: str,
        n_processes: int = 1,
        threads_per_process: int = 1,
        n_clients: int = 16,
        cpu_per_request_us: int = 1000,
        dirty_pages_per_request: int = 20,
        response_len: int = 8192,
        heap_pages: int = 20_000,
        resident_pages: int = 12_000,
        mapped_files: int = 45,
    ) -> None:
        self.name = name
        self.n_processes = n_processes
        self.threads_per_process = threads_per_process
        self.n_clients = n_clients
        self.cpu_per_request_us = cpu_per_request_us
        self.dirty_pages_per_request = dirty_pages_per_request
        self.response_len = response_len
        self.heap_pages = heap_pages
        self.resident_pages = resident_pages
        self.mapped_files = mapped_files
        #: Per-process rotating write cursor (session/cache churn).
        self._cursors: dict[int, int] = {}
        self._cpu_jitter_counter = 0

    def spec(self) -> ContainerSpec:
        return ContainerSpec(
            name=self.name,
            ip=self.ip,
            processes=[
                ProcessSpec(
                    comm=f"{self.name}-w{i}",
                    n_threads=self.threads_per_process,
                    heap_pages=self.heap_pages,
                    n_mapped_files=self.mapped_files,
                )
                for i in range(self.n_processes)
            ],
            cgroup_attributes={"cpu.shares": 1024},
        )

    def warmup(self, world: "World", container: "Container") -> None:
        """Touch the steady-state resident set (interpreter heaps, caches)."""
        per_proc = self.resident_pages // self.n_processes
        for process in container.processes:
            heap = container.heap_vma_of(process)
            for i in range(min(per_proc, heap.n_pages)):
                process.mm.write(heap.start + i, b"warm")

    def request_cpu_us(self, body_len: int) -> int:
        # Real page renders / image transforms vary in cost; +/-30%
        # deterministic jitter also prevents the output-commit batch
        # release from locking every client into the same wave.
        self._cpu_jitter_counter += 1
        jitter = 0.7 + 0.6 * ((self._cpu_jitter_counter * 2654435761) % 997) / 997
        return int(self.cpu_per_request_us * jitter)

    def handle_request(self, container, process, body: bytes, outcome: dict):
        request_id = protocol.decode_body(body)[1]
        heap = container.heap_vma_of(process)
        cursor = self._cursors.get(process.pid, 0)
        span = max(1, min(self.resident_pages // self.n_processes, heap.n_pages) - 1)
        for i in range(self.dirty_pages_per_request):
            page = heap.start + (cursor + i) % span
            process.mm.write(page, f"req{request_id}".encode())
        self._cursors[process.pid] = (cursor + self.dirty_pages_per_request) % span
        return web_response(self.name, request_id, self.response_len)

    def start_clients(
        self,
        world: "World",
        stats: ClientStats,
        n_clients: int | None = None,
        run_until_us: int | None = None,
        n_requests_per_client: int | None = None,
    ) -> ClosedLoopClients:
        def make_request(i: int) -> tuple[bytes, Callable[[bytes], str | None], int]:
            body = protocol.encode_body(("GET", i))
            expected = web_response(self.name, i, self.response_len)

            def check(response: bytes) -> str | None:
                if response != expected:
                    return f"response for request {i} differs from golden copy"
                return None

            return body, check, 1

        clients = ClosedLoopClients(
            world,
            self.ip,
            self.port,
            make_request,
            stats,
            n_clients=n_clients if n_clients is not None else self.n_clients,
            run_until_us=run_until_us,
            n_requests_per_client=n_requests_per_client,
        )
        clients.start()
        return clients
