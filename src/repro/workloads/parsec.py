"""PARSEC-like compute workloads: streamcluster and swaptions (paper §VI).

Non-interactive CPU/memory benchmarks measured by completion time.  Each of
the ``n_threads`` workers burns fixed CPU per work unit and dirties pages in
its partition at a calibrated rate; progress counters live in container
memory so a restored container resumes exactly from its checkpointed
progress (the §VII-A validation compares the final output against a golden
run).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.container.spec import ContainerSpec, ProcessSpec
from repro.workloads.base import ComputeWorkload

if TYPE_CHECKING:  # pragma: no cover
    from repro.container.runtime import Container
    from repro.net.world import World

__all__ = ["ParsecWorkload"]

#: Start of the data region (the first pages hold progress counters).
DATA_BASE = 64


class ParsecWorkload(ComputeWorkload):
    """A partitioned data-parallel kernel."""

    def __init__(
        self,
        name: str,
        n_threads: int = 4,
        resident_pages: int = 48_000,
        dirty_pages_per_epoch: int = 300,
        unit_cpu_us: int = 300,
        total_units: int = 4000,
        mapped_files: int = 35,
        epoch_us: int = 30_000,
    ) -> None:
        self.name = name
        self.n_workers = n_threads
        self.resident_pages = resident_pages
        self.unit_cpu_us = unit_cpu_us
        self.total_units = total_units
        self.mapped_files = mapped_files
        # Calibration: pages dirtied per work unit so that the per-epoch
        # dirty total matches the target at full thread parallelism.
        units_per_epoch = max(1, n_threads * (epoch_us // unit_cpu_us))
        self.pages_per_unit = dirty_pages_per_epoch / units_per_epoch

    def spec(self) -> ContainerSpec:
        return ContainerSpec(
            name=self.name,
            ip=self.ip,
            processes=[
                ProcessSpec(
                    comm=self.name,
                    n_threads=self.n_workers,
                    heap_pages=DATA_BASE + self.resident_pages + self.n_workers,
                    n_mapped_files=self.mapped_files,
                )
            ],
            n_cores=self.n_workers,
            cgroup_attributes={"cpu.shares": 1024},
        )

    def warmup(self, world: "World", container: "Container") -> None:
        """Touch the input data set so the resident set is steady-state."""
        process = container.processes[0]
        base = container.heap_vma.start + DATA_BASE
        for i in range(self.resident_pages):
            process.mm.write(base + i, b"in")

    def _partition(self, container: "Container", worker: int) -> tuple[int, int]:
        per_worker = self.resident_pages // self.n_workers
        start = container.heap_vma.start + DATA_BASE + worker * per_worker
        return start, per_worker

    def unit_effects(self, container, process, worker: int, unit: int) -> None:
        start, span = self._partition(container, worker)
        # Fractional pages/unit: accumulate and write on whole-page boundaries.
        before = int(unit * self.pages_per_unit)
        after = int((unit + 1) * self.pages_per_unit)
        for k in range(before, after):
            process.mm.write(start + k % span, f"u{unit}w{worker}".encode())

    def result_signature(self, container: "Container") -> dict[int, bytes]:
        """Final output pages (compared against a golden stock run)."""
        out = {}
        process = container.processes[0]
        for worker in range(self.n_workers):
            start, span = self._partition(container, worker)
            for k in range(min(span, 8)):
                out[start + k] = process.mm.read(start + k)
        return out
