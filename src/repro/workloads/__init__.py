"""Benchmark workloads (paper §VI).

Synthetic equivalents of the paper's seven benchmarks, parameterized so
that the *checkpoint-relevant* footprint matches what the paper reports in
Tables III-V: dirty pages per epoch, resident set, socket counts, process
and thread counts, disk write rates, and per-request CPU costs.

* :mod:`~repro.workloads.kvstore` — Redis (memory-resident NoSQL) and SSDB
  (disk-persistent NoSQL), driven by a YCSB-like batched 50/50 client.
* :mod:`~repro.workloads.webserver` — Lighttpd (multi-process PHP
  watermarking), Node (single-process, many clients), DJCMS (CMS stack),
  driven by SIEGE-like concurrent clients.
* :mod:`~repro.workloads.parsec` — streamcluster and swaptions
  (non-interactive CPU/memory benchmarks).
* :mod:`~repro.workloads.microbench` — the two §VII-A validation
  microbenchmarks (disk read/write mix; network echo of random sizes) plus
  the Net 10-byte echo used for recovery-latency measurement (§VII-B).
* :mod:`~repro.workloads.catalog` — the named registry experiments use.

All services are written *restart-safe*: request bytes are consumed from
socket state and their effects applied atomically inside one execution
slice, so a checkpoint can never observe a half-processed request.  After
failover the same workload object re-attaches to the restored container
and continues from the restored kernel/memory state.
"""

from repro.workloads.base import ClientStats, ComputeWorkload, ServerWorkload, Workload
from repro.workloads.catalog import WORKLOADS, make_workload

__all__ = [
    "ClientStats",
    "ComputeWorkload",
    "ServerWorkload",
    "WORKLOADS",
    "Workload",
    "make_workload",
]
