"""Validation and recovery-latency microbenchmarks (paper §VII-A, §VII-B).

* :class:`DiskRwWorkload` — "performs a mix of writes and reads of random
  size to random locations in a file.  An error is flagged if the data
  returned by a read differs from the data written to that location
  earlier."  The write journal lives in container memory, so journal and
  file state are always checkpointed consistently; a mismatch after
  failover means NiLiCon lost or tore acknowledged state.
* :class:`EchoServer` — "a client sends a message of random size to the
  server, the server saves it on its stack and then sends it back"; with
  ``message_len=10`` this is also the *Net* benchmark used for the
  recovery-latency breakdown (Table II).
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Callable

from repro.container.spec import ContainerSpec, ProcessSpec
from repro.kernel.errors import KernelError
from repro.sim.engine import Interrupt
from repro.workloads.base import ClientStats, ServerWorkload, Workload
from repro.workloads.clients import ClosedLoopClients

if TYPE_CHECKING:  # pragma: no cover
    from repro.container.runtime import Container
    from repro.net.world import World

__all__ = ["DiskRwWorkload", "EchoServer", "region_content"]

JOURNAL_BASE = 8
REGION_BYTES = 4096


def region_content(region: int, version: int, length: int) -> bytes:
    seed = hashlib.sha256(f"{region}:{version}".encode()).hexdigest()
    return (seed * (length // len(seed) + 1))[:length].encode()


class DiskRwWorkload(Workload):
    """The disk/fs-cache/heap stress microbenchmark with self-validation."""

    name = "disk-rw"

    def __init__(self, n_regions: int = 64, op_cpu_us: int = 150, seed_stream: str = "disk-rw"):
        self.n_regions = n_regions
        self.op_cpu_us = op_cpu_us
        self.seed_stream = seed_stream
        self.path = "/data/disk-rw.dat"
        #: Errors observed by the in-container validator.
        self.errors: list[str] = []
        self.operations = 0

    def spec(self) -> ContainerSpec:
        return ContainerSpec(
            name=self.name,
            ip=self.ip,
            processes=[
                ProcessSpec(comm="disk-rw", n_threads=1,
                            heap_pages=JOURNAL_BASE + self.n_regions + 16,
                            n_mapped_files=12)
            ],
            mounts=[("/data", f"{self.name}-fs")],
        )

    def _journal_page(self, container: "Container", region: int) -> int:
        return container.heap_vma.start + JOURNAL_BASE + region

    def warmup(self, world: "World", container: "Container") -> None:
        fs = container.mounted_filesystems()[0]
        if not fs.exists(self.path):
            fs.create(self.path)

    def attach(self, world: "World", container: "Container") -> None:
        world.engine.process(self._loop(world, container), name="disk-rw-loop")

    def _loop(self, world: "World", container: "Container"):
        process = container.processes[0]
        fs = container.mounted_filesystems()[0]
        rng = world.rng.stream(
            self.seed_stream,  # nd: logged -- name pinned by the workload spec
            owner="repro.workloads.microbench",
        )
        flush_tick = 0
        while not container.dead:
            region = rng.randrange(self.n_regions)
            length = rng.randrange(1, REGION_BYTES + 1)
            do_write = rng.random() < 0.5

            def mutate(region=region, length=length, do_write=do_write):
                journal = self._journal_page(container, region)
                raw = process.mm.read(journal)
                version, known_len = (
                    [int(x) for x in raw.split(b":")] if raw else (0, 0)
                )
                if do_write:
                    data = region_content(region, version + 1, length)
                    fs.write(self.path, region * REGION_BYTES, data)
                    process.mm.write(journal, f"{version + 1}:{length}".encode())
                elif version > 0:
                    got = fs.read(self.path, region * REGION_BYTES, known_len)
                    want = region_content(region, version, known_len)
                    if got != want:
                        self.errors.append(
                            f"region {region} v{version}: read differs from write"
                        )
                self.operations += 1

            try:
                yield from container.run_slice(process, self.op_cpu_us, mutate=mutate)
            except (Interrupt, KernelError):
                return
            flush_tick += 1
            if flush_tick % 8 == 0:
                try:
                    yield from container.kernel.fs_writeback(fs, limit=32)
                except (Interrupt, KernelError):
                    return


class EchoServer(ServerWorkload):
    """Echo server stressing the network stack and an in-memory 'stack'."""

    port = 7000

    def __init__(
        self,
        name: str = "net-echo",
        min_len: int = 1,
        max_len: int = 65536,
        cpu_per_kb_us: int = 6,
        stack_pages: int = 64,
        n_clients: int = 2,
    ) -> None:
        self.name = name
        self.min_len = min_len
        self.max_len = max_len
        self.cpu_per_kb_us = cpu_per_kb_us
        self.stack_pages = stack_pages
        self.n_clients = n_clients

    def spec(self) -> ContainerSpec:
        return ContainerSpec(
            name=self.name,
            ip=self.ip,
            processes=[
                ProcessSpec(
                    comm=self.name,
                    n_threads=1,
                    heap_pages=256 + self.stack_pages,
                    n_mapped_files=15,
                )
            ],
        )

    def request_cpu_us(self, body_len: int) -> int:
        return 20 + (body_len * self.cpu_per_kb_us) // 1024

    def handle_request(self, container, process, body: bytes, outcome: dict):
        # "the server saves it on its stack": dirty pages proportional to size.
        heap = container.heap_vma_of(process)
        for i in range(min(self.stack_pages, 1 + len(body) // 4096)):
            process.mm.write(heap.start + 256 + i, body[:32])
        return body  # echo

    def start_clients(
        self,
        world: "World",
        stats: ClientStats,
        n_clients: int | None = None,
        run_until_us: int | None = None,
        n_requests_per_client: int | None = None,
        gap_us: int = 0,
    ) -> ClosedLoopClients:
        rng = world.rng.stream(
            f"{self.name}-client",  # nd: logged -- one stream per workload
            owner="repro.workloads.microbench",
        )

        def make_request(i: int) -> tuple[bytes, Callable[[bytes], str | None], int]:
            if self.min_len == self.max_len:
                length = self.min_len
            else:
                length = rng.randrange(self.min_len, self.max_len + 1)
            payload = region_content(i, 1, length)
            body = payload

            def check(response: bytes) -> str | None:
                if response != payload:
                    return f"echo mismatch for request {i}"
                return None

            return body, check, 1

        clients = ClosedLoopClients(
            world,
            self.ip,
            self.port,
            make_request,
            stats,
            n_clients=n_clients if n_clients is not None else self.n_clients,
            think_us=gap_us,
            run_until_us=run_until_us,
            n_requests_per_client=n_requests_per_client,
        )
        clients.start()
        return clients
