"""Wire protocol helpers for workload traffic.

All workload requests/responses are length-prefixed frames of real bytes —
they flow through the simulated TCP stack, get buffered by the plug qdisc,
survive checkpoints inside socket read/write queues, and are re-parsed
after failover.  Frame bodies are ASCII expressions decoded with
``ast.literal_eval`` (values are ASCII too, so wire sizes are faithful).
"""

from __future__ import annotations

import ast
from typing import Any

__all__ = ["decode_body", "encode_body", "frame", "peel_frame", "frame_ready"]

HEADER_LEN = 8  # ASCII decimal length, zero-padded


def frame(body: bytes) -> bytes:
    """Length-prefix *body*."""
    return f"{len(body):0{HEADER_LEN}d}".encode() + body


def frame_ready(buffer: bytes) -> int:
    """Bytes needed for the next complete frame (0 if one is ready).

    Returns the *additional* byte count required, so callers can pass it to
    ``data_available(min_bytes=...)`` without busy-looping on partials.
    """
    if len(buffer) < HEADER_LEN:
        return HEADER_LEN - len(buffer)
    body_len = int(buffer[:HEADER_LEN])
    total = HEADER_LEN + body_len
    return max(0, total - len(buffer))


def peel_frame(buffer: bytes) -> tuple[bytes | None, bytes]:
    """Split off one complete frame: ``(body | None, remainder)``."""
    if frame_ready(buffer) != 0:
        return None, buffer
    body_len = int(buffer[:HEADER_LEN])
    body = buffer[HEADER_LEN : HEADER_LEN + body_len]
    return body, buffer[HEADER_LEN + body_len :]


def encode_body(obj: Any) -> bytes:
    """Encode a python-literal message (tuples/lists/dicts/str/int/bytes)."""
    return repr(obj).encode()


def decode_body(body: bytes) -> Any:
    return ast.literal_eval(body.decode())
