"""The benchmark catalog: the paper's seven workloads, calibrated.

Each factory returns a fresh workload instance whose checkpoint-relevant
footprint targets the paper's measurements (Table III dirty pages & stop
times, Table IV state sizes, Table V active CPU).  The calibration
rationale for each parameter set is in the factory docstring; measured
agreement is tracked in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable

from repro.workloads.base import Workload
from repro.workloads.kvstore import KvServer
from repro.workloads.microbench import DiskRwWorkload, EchoServer
from repro.workloads.parsec import ParsecWorkload
from repro.workloads.webserver import WebServer

__all__ = ["WORKLOADS", "make_workload"]


def swaptions() -> ParsecWorkload:
    """swaptions: 4 threads, small footprint, tiny dirty rate.

    Targets: 46 dirty pages/epoch, ~190 KB state, active CPU ~3.96.
    """
    return ParsecWorkload(
        name="swaptions",
        n_threads=4,
        resident_pages=3_000,
        dirty_pages_per_epoch=46,
        unit_cpu_us=250,
        total_units=6_000,
        mapped_files=20,
    )


def streamcluster(
    n_threads: int = 4,
    dirty_pages_per_epoch: int | None = None,
    total_units: int | None = None,
) -> ParsecWorkload:
    """streamcluster: 4 threads over a ~49 K-page data set.

    Targets: 303 dirty pages/epoch @ 4 threads (Table III); the thread-
    scalability experiment passes its own thread count, with the paper's
    footprint growth of ~2 K pages/thread and dirty growth of ~12/thread
    (121 @ 1 thread → 495 @ 32).
    """
    if dirty_pages_per_epoch is None:
        dirty_pages_per_epoch = 303 if n_threads == 4 else 109 + 12 * n_threads
    if total_units is None:
        total_units = 5_000 * max(1, n_threads // 4)
    return ParsecWorkload(
        name="streamcluster",
        n_threads=n_threads,
        resident_pages=47_000 + 2_000 * n_threads,
        dirty_pages_per_epoch=dirty_pages_per_epoch,
        unit_cpu_us=300,
        total_units=total_units,
        mapped_files=35,
    )


def redis() -> KvServer:
    """Redis: memory-only store, single-threaded, batched 50/50 clients.

    Targets: ~6.3 K dirty pages/epoch, ~24 MB state/epoch, active ~0.98.
    6000 keys * 4 KiB pages gives the ~24 MB working set; at ~3 us/op one
    core sustains ~330 K ops/s, and half of those are sets.
    """
    return KvServer(
        name="redis",
        n_keys=8_000,
        value_len=128,
        persistence=False,
        cpu_per_op_us=2,
        n_threads=1,
        mapped_files=30,
    )


def ssdb() -> KvServer:
    """SSDB: full persistence; sets go to disk through the page cache.

    Targets: ~590 dirty memory pages/epoch (only index pages), ~2.9 MB
    state/epoch (fs-cache entries dominate), heavy DRBD stream.
    """
    return KvServer(
        name="ssdb",
        n_keys=8_000,
        value_len=128,
        persistence=True,
        cpu_per_op_us=45,
        n_threads=2,
        index_pages=600,
        mapped_files=30,
        # Heavy batches (~70 ms): a small pipeline window already saturates
        # both worker threads without queueing seconds of work.
        client_window=4,
    )


def node() -> WebServer:
    """Node: single process/thread; 128 clients needed for saturation.

    Targets: ~5.4 K dirty pages/epoch, ~13 ms socket collection (128
    sockets), the highest stop time of Table III.
    """
    return WebServer(
        name="node",
        n_processes=1,
        threads_per_process=1,
        n_clients=128,
        cpu_per_request_us=230,
        dirty_pages_per_request=41,
        response_len=8_192,
        heap_pages=40_000,
        resident_pages=28_000,
        mapped_files=60,
    )


def lighttpd(
    n_processes: int = 4,
    n_clients: int | None = None,
    cpu_per_request_us: int = 285_000,
    dirty_pages_per_request: int = 3_400,
) -> WebServer:
    """Lighttpd: PHP watermarking, 4 worker processes.

    Targets: ~1.6 K dirty pages/epoch, stop dominated by per-process
    collection (4 processes).  The scalability experiments vary processes
    (1-8) and clients (2-128).
    """
    if n_clients is None:
        # One client per worker process saturates the CPU-heavy watermark
        # requests without deep queueing (the paper's process sweep raises
        # clients "from 2 to 8" alongside 1->8 processes).
        n_clients = max(2, n_processes)
    # PHP watermarking is genuinely heavy: ~285 ms/request (Table VI) that
    # touches thousands of image pages — which is what makes ~14 req/s
    # saturate four cores yet dirty ~1.6 K pages per 30 ms epoch.
    return WebServer(
        name="lighttpd",
        n_processes=n_processes,
        threads_per_process=1,
        n_clients=n_clients,
        cpu_per_request_us=cpu_per_request_us,
        dirty_pages_per_request=dirty_pages_per_request,
        response_len=32_768,
        heap_pages=16_000,
        resident_pages=10_000,
        mapped_files=45,
    )


def djcms() -> WebServer:
    """DJCMS: nginx + Python + MySQL, heavy admin-dashboard requests.

    Targets: ~3.0 K dirty pages/epoch, ~9.5 MB median state, active ~1.41.
    """
    # Admin-dashboard rendering through nginx+Python+MySQL: ~89 ms per
    # request (Table VI), dirtying a large slice of interpreter and DB
    # buffer pages.
    return WebServer(
        name="djcms",
        n_processes=3,
        threads_per_process=1,
        n_clients=6,
        cpu_per_request_us=89_000,
        dirty_pages_per_request=2_600,
        response_len=16_384,
        heap_pages=30_000,
        resident_pages=22_000,
        mapped_files=70,
    )


def disk_rw() -> DiskRwWorkload:
    """SSVII-A validation microbenchmark 1 (disk / fs cache / heap)."""
    return DiskRwWorkload()


def net_echo() -> EchoServer:
    """SSVII-A validation microbenchmark 2 (network stack / app stack)."""
    return EchoServer(name="net-echo", min_len=1, max_len=65_536, n_clients=2)


def net_10b() -> EchoServer:
    """The 'Net' benchmark of SSVII-B: 10-byte echo, recovery latency."""
    return EchoServer(name="net", min_len=10, max_len=10, n_clients=4, stack_pages=1)


WORKLOADS: dict[str, Callable[[], Workload]] = {
    "swaptions": swaptions,
    "streamcluster": streamcluster,
    "redis": redis,
    "ssdb": ssdb,
    "node": node,
    "lighttpd": lighttpd,
    "djcms": djcms,
    "disk-rw": disk_rw,
    "net-echo": net_echo,
    "net": net_10b,
}

#: The seven benchmarks of Fig. 3 / Tables III-VI, in the paper's order.
PAPER_BENCHMARKS = (
    "swaptions",
    "streamcluster",
    "redis",
    "ssdb",
    "node",
    "lighttpd",
    "djcms",
)


def make_workload(name: str, **kw) -> Workload:
    """Instantiate a catalog workload by name."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; have {sorted(WORKLOADS)}") from None
    return factory(**kw) if kw else factory()
