"""Open-loop traffic generation: seeded Poisson / on-off session arrivals.

Closed-loop clients (:mod:`repro.workloads.clients`) wait for each reply
before sending again, so a slow server *slows the offered load down* and
hides its own latency — the coordinated-omission trap.  An open-loop
generator arrives sessions on a schedule that ignores completions: when
the fleet stalls (an epoch commit, a failover), sessions pile up and the
latency tail records the stall at full weight.  That is the load shape
"millions of users" actually present — users do not coordinate.

Arrivals ride :mod:`repro.sim.rng` named streams, so two same-seed runs
produce the identical arrival schedule (no wall-clock, no global
``random``).  Every session is one lightweight process: connect to the
proxy, a handful of request/reply round trips with think time, close.
Thousands run concurrently; sessions share TCP stacks in groups to keep
the device count bounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator

from repro.kernel.errors import ConnectionReset
from repro.kernel.netdev import NetDevice
from repro.kernel.tcp import TcpStack
from repro.metrics.histogram import LatencyHistogram
from repro.sim import ms, sec
from repro.traffic.proxy import REPLY_BYTES, REQUEST_BYTES

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.world import World

__all__ = ["OpenLoopStats", "OpenLoopTraffic", "TrafficProfile"]


@dataclass(frozen=True)
class TrafficProfile:
    """One workload shape for the open-loop generator."""

    name: str
    #: "poisson" (constant-rate) or "onoff" (bursts of Poisson arrivals
    #: separated by silences).
    arrival: str = "poisson"
    #: Session arrival rate while ON, sessions/second.
    rate_rps: float = 200.0
    #: ON/OFF phase lengths (onoff only).
    on_us: int = ms(400)
    off_us: int = ms(400)
    requests_per_session: int = 3
    think_us: int = ms(400)
    #: Arrival window length; sessions arriving late still finish inside
    #: the run's drain tail.
    duration_us: int = sec(2)

    def expected_sessions(self) -> int:
        if self.arrival == "onoff":
            cycle = self.on_us + self.off_us
            on_fraction = self.on_us / cycle if cycle else 0.0
        else:
            on_fraction = 1.0
        return int(self.rate_rps * self.duration_us / 1e6 * on_fraction)


@dataclass
class OpenLoopStats:
    """Generator-side accounting (the client side of the SLO table)."""

    sessions_started: int = 0
    sessions_finished: int = 0
    concurrent: int = 0
    peak_concurrent: int = 0
    sent: int = 0
    completed: int = 0
    errors: int = 0
    timeouts: int = 0
    validation_failures: int = 0
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    def in_flight(self) -> int:
        """Requests truncated by the end of the run (sent, no verdict)."""
        return self.sent - self.completed - self.errors - self.timeouts

    def to_dict(self) -> dict[str, Any]:
        return {
            "sessions_started": self.sessions_started,
            "sessions_finished": self.sessions_finished,
            "peak_concurrent": self.peak_concurrent,
            "sent": self.sent,
            "completed": self.completed,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "validation_failures": self.validation_failures,
            "latency": self.latency.to_dict(),
        }


class OpenLoopTraffic:
    """Spawns sessions against the proxy per a :class:`TrafficProfile`."""

    #: Sessions per shared client TCP stack (bounds bridge device count).
    SESSIONS_PER_STACK = 64
    #: Per-request give-up deadline.  Far above any legitimate stall
    #: (worst failover ≈ 2-3 s); exists so a lost reply cannot wedge a
    #: session process forever.
    REQUEST_DEADLINE_US = sec(8)

    def __init__(
        self,
        world: "World",
        proxy_ip: str,
        proxy_port: int,
        profile: TrafficProfile,
        *,
        rng_name: str | None = None,
    ) -> None:
        self.world = world
        self.engine = world.engine
        self.proxy_ip = proxy_ip
        self.proxy_port = proxy_port
        self.profile = profile
        self.stats = OpenLoopStats()
        self.rng = world.rng.stream(
            # nd: logged -- caller-chosen name; a registry stream either way
            rng_name or f"traffic.{profile.name}"
        )
        self._stacks: list[TcpStack] = []

    def start(self) -> None:
        self.engine.process(
            self._arrivals(), name=f"traffic-arrivals-{self.profile.name}"
        )

    # -- infrastructure -------------------------------------------------- #
    def _stack_for(self, session_index: int) -> TcpStack:
        index = session_index // self.SESSIONS_PER_STACK
        while len(self._stacks) <= index:
            i = len(self._stacks)
            # 10.0.8.0/24 is the traffic tier (proxy at .1, generators
            # from .16) — disjoint from members (10.0.2.x) and legacy
            # clients (10.0.9.x), so no IP ever collides.
            ip = f"10.0.8.{16 + i}"
            stack = TcpStack(self.engine, self.world.costs, ip,
                             name=f"traffic-gen{i}")
            device = NetDevice(f"traffic-gen{i}-eth0", ip, f"ab:{i:02x}",
                               self.engine)
            stack.attach_device(device)
            self.world.bridge.attach(device)
            self._stacks.append(stack)
        return self._stacks[index]

    # -- arrivals --------------------------------------------------------- #
    def _arrivals(self) -> Generator[Any, Any, None]:
        profile = self.profile
        engine = self.engine
        end = engine.now + profile.duration_us
        mean_gap_us = 1e6 / profile.rate_rps
        serial = 0
        while engine.now < end:
            if profile.arrival == "onoff":
                phase_end = min(end, engine.now + profile.on_us)
                while engine.now < phase_end:
                    yield engine.timeout(
                        max(1, int(self.rng.expovariate(1.0) * mean_gap_us))
                    )
                    if engine.now >= phase_end:
                        break
                    serial += 1
                    self._spawn(serial)
                if engine.now < end:
                    yield engine.timeout(profile.off_us)
            else:
                yield engine.timeout(
                    max(1, int(self.rng.expovariate(1.0) * mean_gap_us))
                )
                if engine.now >= end:
                    break
                serial += 1
                self._spawn(serial)

    def _spawn(self, serial: int) -> None:
        stack = self._stack_for(serial - 1)
        self.engine.process(
            self._session(serial, stack),
            name=f"traffic-session-{self.profile.name}-{serial}",
        )

    # -- sessions --------------------------------------------------------- #
    def _session(self, serial: int, stack: TcpStack):
        stats = self.stats
        stats.sessions_started += 1
        stats.concurrent += 1
        stats.peak_concurrent = max(stats.peak_concurrent, stats.concurrent)
        try:
            yield from self._session_body(serial, stack)
        finally:
            stats.concurrent -= 1
            stats.sessions_finished += 1

    def _session_body(self, serial: int, stack: TcpStack):
        engine = self.engine
        stats = self.stats
        profile = self.profile
        sock = stack.socket()
        try:
            yield sock.connect(self.proxy_ip, self.proxy_port)
        except ConnectionReset:  # ft: defensive -- recorded as a client-visible error; the SLO oracle judges it
            stats.errors += 1
            return
        for r in range(profile.requests_per_session):
            payload = f"{serial % 1_000_000:06d}{r % 100:02d}".encode()
            assert len(payload) == REQUEST_BYTES
            sent_at = engine.now
            stats.sent += 1
            sock.send(payload)
            deadline = sent_at + self.REQUEST_DEADLINE_US
            reply = b""
            while len(reply) < REPLY_BYTES:
                recv_ev = sock.recv(REPLY_BYTES - len(reply))
                try:
                    fired = yield engine.any_of([
                        recv_ev,
                        engine.timeout(max(1, deadline - engine.now)),
                    ])
                except ConnectionReset:  # ft: defensive -- recorded as a client-visible error; the SLO oracle judges it
                    stats.errors += 1
                    return
                if recv_ev not in fired:
                    stats.timeouts += 1
                    return  # abandon the session; the oracle counts this
                chunk = fired[recv_ev]
                if chunk == b"":
                    stats.errors += 1
                    return
                reply += chunk
            if reply[:4] != b"PONG":
                stats.validation_failures += 1
            else:
                stats.latency.record(engine.now - sent_at)
            stats.completed += 1
            if profile.think_us and r + 1 < profile.requests_per_session:
                yield engine.timeout(profile.think_us)
        sock.close()
