"""L7 traffic tier: reverse proxy, open-loop generator, SLO reporting.

:mod:`repro.traffic.proxy` fronts the fleet's counter services with a
keep-alive reverse proxy (health-check eviction, connection draining,
reconnect-and-retry).  :mod:`repro.traffic.openloop` drives it with
seeded Poisson / on-off session arrivals that do not slow down when the
fleet stalls — so the latency tail records every epoch stall and
failover at full client-visible weight.
"""

from repro.traffic.openloop import OpenLoopStats, OpenLoopTraffic, TrafficProfile
from repro.traffic.proxy import (
    PROXY_PORT,
    REPLY_BYTES,
    REQUEST_BYTES,
    ProxyCounters,
    TrafficProxy,
)

__all__ = [
    "OpenLoopStats",
    "OpenLoopTraffic",
    "ProxyCounters",
    "TrafficProfile",
    "TrafficProxy",
    "PROXY_PORT",
    "REPLY_BYTES",
    "REQUEST_BYTES",
]
