"""Simulated L7 reverse proxy / load balancer in front of the fleet.

One proxy actor owns a TCP stack on the world bridge and fronts every
fleet member's counter service (:mod:`repro.fleet.service`).  Clients open
keep-alive sessions to the proxy and send 8-byte requests; the proxy
routes each request to a healthy member over a pooled upstream connection
and relays the 12-byte reply.

The pieces the fault-tolerance story needs:

* **Routing** — per-request, deterministic: sessions stick to their
  member while it stays routable (keep-alive affinity keeps a session's
  count sequence on one member) and are re-pinned round-robin when their
  member is evicted, draining or dead.
* **Health checks** — a prober per member sends a probe request every
  ``health_interval_us``; ``probes_to_evict`` consecutive misses (no
  reply within ``health_timeout_us``) evict the upstream, the first
  subsequent reply readmits it.  Output-commit makes even healthy replies
  arrive in epoch bursts, so the timeout must sit well above an epoch.
* **Controller signals** — the proxy subscribes to
  ``FleetController.state_listeners``: ``migrating`` begins a drain,
  ``dead`` evicts immediately, ``protected`` readmits (the health prober
  would discover all three, but the controller knows first).
* **Draining** — :meth:`TrafficProxy.drain` stops routing *new* requests
  to a member and waits until its in-flight count reaches zero; the
  migration campaign wraps ``migrate_container`` in drain/undrain so no
  request is in flight across the cutover.
* **Retry** — an upstream connection that dies (an edge the restore
  repair path does not preserve) reconnects and resends every request
  still in flight, mirroring the reconnect-and-retry contract of
  ``FleetWorkload``: acknowledged writes stay monotonic, and no routed
  request is ever silently dropped.

Epoch-stall samples: whenever an upstream reply arrives, the time since
the connection last made progress (clipped to the oldest in-flight
request's lifetime) is one client-visible stall sample.  Replies released
in the same commit burst contribute ~0; the first reply after a commit
contributes roughly the epoch interval; a failover contributes the full
outage.  The distribution's tail IS the client-visible cost the paper's
output-commit design pays.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator

from repro.kernel.errors import ConnectionReset
from repro.kernel.netdev import NetDevice
from repro.kernel.tcp import TcpStack
from repro.metrics.histogram import LatencyHistogram
from repro.sim import Interrupt, ms
from repro.sim.trace import trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.fleet.controller import FleetController
    from repro.net.world import World

from repro.fleet.service import PORT as UPSTREAM_PORT

__all__ = ["ProxyCounters", "TrafficProxy", "PROXY_PORT", "REQUEST_BYTES",
           "REPLY_BYTES"]

PROXY_PORT = 8088
REQUEST_BYTES = 8
REPLY_BYTES = 12

#: Member states the router considers assignable (controller signal).
_ROUTABLE_STATES = frozenset((
    "protected", "reprotect_pending", "reprotecting", "degraded",
))


@dataclass
class ProxyCounters:
    """Proxy-side accounting: the zero-drop oracle reads these."""

    routed: int = 0
    relayed: int = 0
    retries: int = 0
    reconnects: int = 0
    #: Requests the proxy accepted but could never answer (MUST stay 0:
    #: every routed request is either relayed or still in flight at the
    #: end of the run).
    dropped: int = 0
    evictions: int = 0
    readmissions: int = 0
    drains: int = 0
    probe_misses: int = 0
    per_member_routed: dict[str, int] = field(default_factory=dict)


class _UpstreamConn:
    """One pooled connection to one member's counter service.

    Requests from any session are pipelined FIFO; the counter protocol
    answers in order, so replies match ``pending`` head-first.  On a
    connection death every pending request is resent on the replacement
    connection — the member's service is restart-safe and the count
    sequence stays monotonic across the retry.
    """

    def __init__(self, upstream: "_Upstream", index: int) -> None:
        self.upstream = upstream
        self.index = index
        proxy = upstream.proxy
        self.engine = proxy.engine
        self.sock = None
        self.connected = False
        #: FIFO of (payload, reply event, sent_at_us).
        self.pending: deque[tuple[bytes, Any, int]] = deque()
        self._wake = None
        self.last_reply_at: int | None = None
        proxy.engine.process(
            self._run(),
            name=f"proxy-upstream-{upstream.member}-{index}",
        )

    @property
    def inflight(self) -> int:
        return len(self.pending)

    def submit(self, payload: bytes):
        """Queue *payload*; returns the event that fires with the reply."""
        event = self.engine.event()
        self.pending.append((payload, event, self.engine.now))
        if self.connected:
            self.sock.send(payload)
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed(None)
        return event

    def _run(self) -> Generator[Any, Any, None]:
        proxy = self.upstream.proxy
        try:
            yield from self._connect()
            buffered = b""
            while not proxy.stopped:
                if not self.pending:
                    # Idle: park until the next submit.
                    self._wake = self.engine.event()
                    yield self._wake
                    self._wake = None
                    continue
                try:
                    chunk = yield self.sock.recv(1 << 16)
                except ConnectionReset:  # ft: defensive -- reset maps to connection-closed; the reconnect path below owns recovery
                    chunk = b""
                if chunk == b"":
                    # The connection died with requests in flight (an edge
                    # the repair path does not preserve, or the member is
                    # mid-recovery).  Reconnect and resend everything.
                    buffered = b""
                    yield from self._reconnect()
                    continue
                buffered += chunk
                while len(buffered) >= REPLY_BYTES and self.pending:
                    reply = buffered[:REPLY_BYTES]
                    buffered = buffered[REPLY_BYTES:]
                    self._complete(reply)
        except Interrupt:  # ft: teardown -- proxy stop interrupts the relay loop
            return

    def _complete(self, reply: bytes) -> None:
        now = self.engine.now
        _payload, event, sent_at = self.pending.popleft()
        # Counted here, not at the consumer, so routed == relayed +
        # in-flight holds exactly at any instant (run cut-offs included).
        self.upstream.proxy.counters.relayed += 1
        # Client-visible stall: time since this connection last made
        # progress, clipped to this request's lifetime.
        stall = now - max(
            self.last_reply_at if self.last_reply_at is not None else sent_at,
            sent_at,
        )
        self.last_reply_at = now
        self.upstream.stalls.record(stall)
        self.upstream.note_reply()
        if not event.triggered:
            event.succeed(reply)

    def _connect(self) -> Generator[Any, Any, None]:
        """(Re)establish the connection, then flush every request queued
        or in flight, oldest first (requests submitted while disconnected
        queue in ``pending`` and are sent here)."""
        proxy = self.upstream.proxy
        backoff = ms(50)
        while not proxy.stopped:  # ft: bounded -- retries until the proxy stops; backoff is capped and failover restores the upstream
            self.sock = proxy.stack.socket()
            try:
                yield self.sock.connect(self.upstream.ip, UPSTREAM_PORT)
            except ConnectionReset:  # ft: defensive -- connect refused while the member is down; retried with capped backoff
                yield self.engine.timeout(backoff)
                backoff = min(backoff * 2, ms(800))
                continue
            self.connected = True
            for payload, _event, _sent_at in self.pending:
                self.sock.send(payload)
            return

    def _reconnect(self) -> Generator[Any, Any, None]:
        proxy = self.upstream.proxy
        self.connected = False
        proxy.counters.reconnects += 1
        proxy.counters.retries += len(self.pending)
        yield from self._connect()


class _Upstream:
    """All proxy state for one fleet member."""

    def __init__(self, proxy: "TrafficProxy", member: str, ip: str,
                 n_conns: int) -> None:
        self.proxy = proxy
        self.member = member
        self.ip = ip
        self.healthy = True
        self.draining = False
        self.dead = False
        self.probe_misses = 0
        self.stalls = LatencyHistogram()
        self._rr = 0
        self.conns = [_UpstreamConn(self, i) for i in range(n_conns)]
        self._progress = None  # event: any reply arrived (prober watches)

    # -- routing state -------------------------------------------------- #
    @property
    def routable(self) -> bool:
        return self.healthy and not self.draining and not self.dead

    def inflight(self) -> int:
        return sum(conn.inflight for conn in self.conns)

    def pick_conn(self) -> _UpstreamConn:
        self._rr = (self._rr + 1) % len(self.conns)
        return self.conns[self._rr]

    def note_reply(self) -> None:
        if self._progress is not None and not self._progress.triggered:
            self._progress.succeed(None)
            self._progress = None

    # -- health --------------------------------------------------------- #
    def evict(self, reason: str) -> None:
        if not self.healthy:
            return
        self.healthy = False
        self.proxy.counters.evictions += 1
        trace(self.proxy.engine, "traffic", "evicted", member=self.member,
              reason=reason)

    def readmit(self, reason: str) -> None:
        if self.healthy:
            return
        self.healthy = True
        self.probe_misses = 0
        self.proxy.counters.readmissions += 1
        trace(self.proxy.engine, "traffic", "readmitted", member=self.member,
              reason=reason)


class TrafficProxy:
    """The L7 proxy actor: front listener + per-member upstream pools."""

    #: Infrastructure, never checkpointed with container state.
    __ckpt_ignore__ = True

    def __init__(
        self,
        world: "World",
        controller: "FleetController",
        *,
        ip: str = "10.0.8.1",
        port: int = PROXY_PORT,
        conns_per_member: int = 2,
        health_interval_us: int = ms(120),
        health_timeout_us: int = ms(900),
        probes_to_evict: int = 2,
        drain_poll_us: int = ms(5),
        drain_timeout_us: int = ms(1500),
    ) -> None:
        self.world = world
        self.engine = world.engine
        self.controller = controller
        self.ip = ip
        self.port = port
        self.health_interval_us = health_interval_us
        self.health_timeout_us = health_timeout_us
        self.probes_to_evict = probes_to_evict
        self.drain_poll_us = drain_poll_us
        self.drain_timeout_us = drain_timeout_us
        self.counters = ProxyCounters()
        self.stopped = False
        self._probe_serial = 0
        self._rr_assign = 0

        self.stack = TcpStack(world.engine, world.costs, ip, name="l7-proxy")
        device = NetDevice("l7-proxy-eth0", ip, "aa:01", world.engine)
        self.stack.attach_device(device)
        world.bridge.attach(device)

        self.upstreams: dict[str, _Upstream] = {}
        for name in sorted(controller.members):
            member = controller.members[name]
            self.upstreams[name] = _Upstream(
                self, name, member.spec.ip, conns_per_member
            )
        controller.state_listeners.append(self._on_member_state)

    # -- lifecycle ------------------------------------------------------ #
    def start(self) -> None:
        listener = self.stack.socket()
        listener.listen(self.port)
        self.engine.process(self._accept_loop(listener), name="proxy-accept")
        for name in sorted(self.upstreams):
            self.engine.process(
                self._probe_loop(self.upstreams[name]),
                name=f"proxy-probe-{name}",
            )

    def stop(self) -> None:
        self.stopped = True

    # -- controller signals --------------------------------------------- #
    def _on_member_state(self, member: str, state: str) -> None:
        upstream = self.upstreams.get(member)
        if upstream is None:
            return
        if state == "migrating":
            upstream.draining = True
            trace(self.engine, "traffic", "drain_begin", member=member,
                  reason="controller")
        elif state == "dead":
            upstream.dead = True
            upstream.evict("controller_dead")
        elif state in _ROUTABLE_STATES:
            if upstream.draining:
                upstream.draining = False
                trace(self.engine, "traffic", "drain_end", member=member,
                      reason="controller")
            upstream.dead = False

    # -- draining ------------------------------------------------------- #
    def drain(self, member: str) -> Generator[Any, Any, bool]:
        """Stop routing new requests to *member*, then wait for its
        in-flight count to reach zero (bounded by ``drain_timeout_us``).
        Returns True when the member drained dry."""
        upstream = self.upstreams[member]
        if not upstream.draining:
            upstream.draining = True
            trace(self.engine, "traffic", "drain_begin", member=member,
                  reason="explicit")
        self.counters.drains += 1
        deadline = self.engine.now + self.drain_timeout_us
        while upstream.inflight() and self.engine.now < deadline:
            yield self.engine.timeout(self.drain_poll_us)
        return upstream.inflight() == 0

    def undrain(self, member: str) -> None:
        upstream = self.upstreams[member]
        if upstream.draining:
            upstream.draining = False
            trace(self.engine, "traffic", "drain_end", member=member,
                  reason="explicit")

    # -- routing -------------------------------------------------------- #
    def _controller_routable(self, member: str) -> bool:
        state = self.controller.members[member].state
        return state in _ROUTABLE_STATES

    def _route(self, pinned: str | None) -> str:
        """The member for the next request: sticky while routable, else
        re-pinned round-robin over routable members (deterministic —
        upstream order is the sorted member list)."""
        if pinned is not None:
            upstream = self.upstreams[pinned]
            if upstream.routable and self._controller_routable(pinned):
                return pinned
        names = sorted(self.upstreams)
        candidates = [
            n for n in names
            if self.upstreams[n].routable and self._controller_routable(n)
        ] or [
            # Degraded fallback: prefer merely-unhealthy members over
            # draining/dead ones; never fail to route.
            n for n in names if not self.upstreams[n].dead
        ] or names
        self._rr_assign = (self._rr_assign + 1) % len(candidates)
        return candidates[self._rr_assign]

    # -- front side ----------------------------------------------------- #
    def _accept_loop(self, listener) -> Generator[Any, Any, None]:
        serial = 0
        while not self.stopped:
            try:
                conn = yield listener.accept()
            except Interrupt:  # ft: teardown -- proxy stop interrupts the accept loop
                return
            serial += 1
            self.engine.process(
                self._session(conn), name=f"proxy-session-{serial}"
            )

    def _session(self, sock) -> Generator[Any, Any, None]:
        """One keep-alive client session: relay framed requests upstream.

        Sessions have at most one request outstanding (the open-loop
        client is request/reply per session), so per-request re-routing
        can never reorder a session's replies."""
        pinned: str | None = None
        buffered = b""
        try:
            while not self.stopped:
                try:
                    chunk = yield sock.recv(1 << 16)
                except ConnectionReset:  # ft: defensive -- client reset tears down just this session
                    return
                if chunk == b"":
                    return  # client closed the session
                buffered += chunk
                while len(buffered) >= REQUEST_BYTES:
                    request = buffered[:REQUEST_BYTES]
                    buffered = buffered[REQUEST_BYTES:]
                    pinned = self._route(pinned)
                    upstream = self.upstreams[pinned]
                    self.counters.routed += 1
                    self.counters.per_member_routed[pinned] = (
                        self.counters.per_member_routed.get(pinned, 0) + 1
                    )
                    reply = yield upstream.pick_conn().submit(request)
                    sock.send(reply)
        except Interrupt:  # ft: teardown -- proxy stop interrupts the session loop
            return

    # -- health probing -------------------------------------------------- #
    def _probe_loop(self, upstream: _Upstream) -> Generator[Any, Any, None]:
        """Active health checks: a probe request through the regular
        upstream pool every interval; consecutive timeouts evict, the
        first reply readmits.  Probes are ordinary counter increments, so
        they exercise the full output-commit path — a member that cannot
        commit epochs is *unhealthy* even if its TCP stack still acks."""
        engine = self.engine
        try:
            while not self.stopped:  # ft: bounded -- exits when the proxy stops; every pass sleeps one probe interval
                yield engine.timeout(self.health_interval_us)
                if self.stopped or upstream.dead:
                    continue
                self._probe_serial += 1
                payload = f"HC{self._probe_serial:06d}".encode()[:REQUEST_BYTES]
                reply_ev = upstream.pick_conn().submit(payload)
                self.counters.routed += 1
                timeout_ev = engine.timeout(self.health_timeout_us)
                fired = yield engine.any_of([reply_ev, timeout_ev])
                if reply_ev in fired:
                    upstream.probe_misses = 0
                    upstream.readmit("probe_reply")
                    continue
                upstream.probe_misses += 1
                self.counters.probe_misses += 1
                trace(engine, "traffic", "probe_miss", member=upstream.member,
                      misses=upstream.probe_misses)
                if upstream.probe_misses >= self.probes_to_evict:
                    upstream.evict("probe_timeout")
                # Wait for the stale probe to land (or the member to make
                # any progress) before probing again, so misses measure
                # distinct outage intervals, not one queue of backlog —
                # but bounded by one interval, so a fully silent member
                # still accumulates misses and gets evicted.
                if not reply_ev.triggered:
                    upstream._progress = engine.event()
                    fired = yield engine.any_of([
                        reply_ev, upstream._progress,
                        engine.timeout(self.health_interval_us),
                    ])
        except Interrupt:  # ft: teardown -- proxy stop interrupts the probe loop
            return

    # -- metrics --------------------------------------------------------- #
    def stall_histogram(self) -> LatencyHistogram:
        """All members' epoch-stall samples merged."""
        merged = LatencyHistogram()
        for name in sorted(self.upstreams):
            merged.merge(self.upstreams[name].stalls)
        return merged

    def inflight(self) -> int:
        return sum(u.inflight() for u in self.upstreams.values())

    def to_dict(self) -> dict[str, Any]:
        counters = self.counters
        return {
            "routed": counters.routed,
            "relayed": counters.relayed,
            "retries": counters.retries,
            "reconnects": counters.reconnects,
            "dropped": counters.dropped,
            "evictions": counters.evictions,
            "readmissions": counters.readmissions,
            "drains": counters.drains,
            "probe_misses": counters.probe_misses,
            "per_member_routed": dict(
                sorted(counters.per_member_routed.items())
            ),
            "stalls": self.stall_histogram().to_dict(),
        }
