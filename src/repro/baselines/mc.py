"""MC: QEMU micro-checkpointing — the Remus-on-KVM baseline (paper §VI).

MC applies the identical Remus protocol at VM granularity.  The modeled
differences from NiLiCon, each tied to a paper observation:

* **Stop phase** — pausing a VM and reading its device state from the
  hypervisor is cheap and flat (~2 ms + ~1.2 µs/dirty page; Table III),
  because none of the container's in-kernel state has to be pried out of
  a running kernel through syscalls.
* **Runtime phase** — dirty tracking uses write protection: the first
  write to each page per epoch takes a VM exit + entry, an order of
  magnitude costlier than a soft-dirty fault.  "NiLiCon's runtime overhead
  component is lower than MC's for all the benchmarks" (§VII-C).  On top,
  a per-slice CPU tax models general virtualization overhead (I/O exits,
  interrupt virtualization), configurable per benchmark.
* **Dirty set** — the *guest kernel's* pages dirty too (socket buffers,
  page cache, slab); Table III shows MC's dirty counts above NiLiCon's
  for most benchmarks.  Modeled as a configurable extra page count per
  epoch, scaled by how busy the epoch was.
* **Disk** — per the paper's setup, MC runs with a local disk and no disk
  state replication (it only supports NFS, which would be unfairly slow).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.container.runtime import Container, ContainerRuntime
from repro.container.spec import ContainerSpec
from repro.metrics.collector import EpochRecord, RunMetrics
from repro.net.world import World
from repro.replication.netbuffer import NetworkBuffer
from repro.sim.engine import Interrupt, Process

__all__ = ["McDeployment"]

PAGE = 4096


class McDeployment:
    """A container inside a VM protected by micro-checkpointing."""

    def __init__(
        self,
        world: World,
        spec: ContainerSpec,
        epoch_execute_us: int = 30_000,
        cpu_tax: float = 0.02,
        guest_kernel_dirty_per_epoch: int = 150,
    ) -> None:
        self.world = world
        self.spec = spec
        self.epoch_execute_us = epoch_execute_us
        self.guest_kernel_dirty_per_epoch = guest_kernel_dirty_per_epoch
        self.metrics = RunMetrics()

        for _mountpoint, fs_name in spec.mounts:
            if fs_name not in world.primary.kernel.filesystems:
                world.primary.kernel.add_block_device(f"vm-{fs_name}")
                world.primary.kernel.mkfs(f"vm-{fs_name}", fs_name)
        self.runtime = ContainerRuntime(world.primary.kernel, world.bridge)
        self.container: Container = self.runtime.create(spec)
        self.container.cpu_tax = cpu_tax
        # VM-level dirty tracking: write-protection faults (VM exits).
        for process in self.container.processes:
            process.mm.start_tracking("wrprotect")

        self.netbuffer = NetworkBuffer(
            world.engine, world.costs, self.container, input_block="plug"
        )
        self.endpoint = world.primary.endpoint("pair")
        self.backup_endpoint = world.backup.endpoint("pair")
        self.epoch = 0
        self._stopped = False
        self._processes: list[Process] = []
        self._activity_prev_cpu = 0

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        self.metrics.started_at_us = self.world.engine.now
        self._processes.append(
            self.world.engine.process(self._epoch_loop(), name="mc-epoch-loop")
        )
        self._processes.append(
            self.world.engine.process(self._backup_loop(), name="mc-backup")
        )
        self._processes.append(
            self.world.engine.process(self._ack_loop(), name="mc-ack-loop")
        )

    def stop(self) -> None:
        self._stopped = True
        self.metrics.ended_at_us = self.world.engine.now

    @property
    def failed_over(self) -> bool:
        return False

    # ------------------------------------------------------------------ #
    def _guest_kernel_dirty(self) -> int:
        """Guest-kernel dirty pages this epoch, scaled by CPU activity."""
        cpu = self.container.cgroup.read_cpuacct()
        busy_us = cpu - self._activity_prev_cpu
        self._activity_prev_cpu = cpu
        busy_frac = min(1.0, busy_us / self.epoch_execute_us)
        # Even an idle guest kernel dirties some pages (timers, slab).
        return int(self.guest_kernel_dirty_per_epoch * max(0.15, busy_frac))

    def _epoch_loop(self) -> Generator[Any, Any, None]:
        costs = self.world.costs
        engine = self.world.engine
        try:
            while not self._stopped:
                yield engine.timeout(self.epoch_execute_us)
                if self._stopped:
                    return
                epoch = self.epoch
                stop_start = engine.now
                # Pause the VM: instantaneous for packets too (the VCPUs
                # stop; virtio queues hold arrivals) — model via the plug.
                yield from self.container.freeze(poll=True)
                self.container.veth.ingress_plug.plug()

                app_dirty = 0
                for process in self.container.processes:
                    app_dirty += len(process.mm.dirty_pages())
                    process.mm.clear_refs()
                dirty = app_dirty + self._guest_kernel_dirty()

                # Hypervisor-side copy of dirty pages + device state.
                yield engine.timeout(
                    costs.mc_pause_fixed + (dirty * costs.mc_copy_per_page_ns) // 1000
                )
                self.netbuffer.insert_epoch_barrier(epoch)
                self.container.veth.ingress_plug.unplug()
                yield from self.container.thaw()
                stop_us = engine.now - stop_start

                state_bytes = dirty * PAGE + 16_384  # pages + device state
                self.endpoint.send(
                    {"kind": "state", "epoch": epoch, "pages": dirty},
                    size_bytes=state_bytes,
                    chunks=max(1, dirty // 64),
                )
                self.metrics.record_epoch(
                    EpochRecord(
                        epoch=epoch,
                        at_us=engine.now,
                        stop_us=stop_us,
                        dirty_pages=dirty,
                        state_bytes=state_bytes,
                    )
                )
                self.epoch += 1
        except Interrupt:
            return

    def _backup_loop(self) -> Generator[Any, Any, None]:
        """The MC backup: buffer the state, acknowledge receipt."""
        costs = self.world.costs
        while not self._stopped:
            try:
                delivery = yield self.backup_endpoint.recv()
            except Interrupt:
                return
            message = delivery.message
            if message.get("kind") != "state":
                continue
            cost = delivery.chunks * costs.backup_read_chunk
            self.metrics.charge_backup_cpu(cost)
            yield self.world.engine.timeout(cost)
            self.backup_endpoint.send(
                {"kind": "ack", "epoch": message["epoch"]}, size_bytes=64
            )

    def _ack_loop(self) -> Generator[Any, Any, None]:
        while not self._stopped:
            try:
                delivery = yield self.endpoint.recv()
            except Interrupt:
                return
            message = delivery.message
            if message.get("kind") != "ack":
                continue
            epoch = message["epoch"]
            self.netbuffer.acked_epoch = max(self.netbuffer.acked_epoch, epoch)
            released = self.netbuffer.release_epoch(epoch)
            self.metrics.packets_released += released
