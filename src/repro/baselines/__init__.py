"""Comparison systems: stock (unreplicated) and MC (Remus-on-KVM).

* :mod:`~repro.baselines.stock` — the container with no replication at
  all; the denominator of every overhead number in the paper.
* :mod:`~repro.baselines.mc` — QEMU micro-checkpointing, the paper's
  VM-granularity Remus implementation.  MC pauses the whole VM (fast,
  hypervisor-side — no syscall storms to collect in-kernel state), tracks
  dirty pages by write-protection (expensive VM exits at runtime), ships
  guest-kernel pages as well as application pages, and uses the same
  Remus output-commit machinery.  Per the paper's setup, MC runs with a
  local disk and no disk replication (§VII-C).
"""

from repro.baselines.mc import McDeployment
from repro.baselines.stock import StockDeployment

__all__ = ["McDeployment", "StockDeployment"]
