"""COLO-style active replication (paper §VIII, Dong et al. 2013).

COLO runs a *full second replica* on the backup host: inputs to the
primary are forwarded to the backup, both execute, and their outputs are
compared.  Matching outputs are released immediately (far lower latency
than Remus-style buffering); a mismatch forces a state synchronization.
The costs the paper highlights, which this baseline demonstrates against
NiLiCon:

* **resource overhead over 100%** — the backup burns a full copy of the
  workload's CPU (contrast Table V's 0.07-0.40 backup cores);
* **non-determinism sensitivity** — every output divergence triggers an
  expensive synchronization; for largely non-deterministic workloads the
  overhead becomes prohibitive.

The implementation intercepts the primary container's veth: ingress
packets are delivered locally *and* forwarded over the pair channel into
the backup replica's TCP stack; egress packets are held in a per-flow
comparison queue until the backup produces an equivalent packet (same
flow, same payload).  Pure ACKs are released immediately, as in COLO.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.container.runtime import Container, ContainerRuntime
from repro.container.spec import ContainerSpec
from repro.kernel.netdev import Packet
from repro.metrics.collector import RunMetrics
from repro.net.world import World
from repro.sim.engine import Interrupt, Process

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = ["ColoDeployment"]

#: Flow key for output comparison.
FlowKey = tuple[str, int, int]


def _flow_key(pkt: Packet) -> FlowKey:
    return (pkt.dst_ip, pkt.dst_port, pkt.src_port)


def _comparable(pkt: Packet) -> tuple:
    """What must match between primary and backup outputs: flow, payload
    and stream-relevant flags.  Sequence numbers match too when execution
    is deterministic, but COLO compares content, not headers."""
    return (_flow_key(pkt), bytes(pkt.payload), "FIN" in pkt.flags)


class ColoDeployment:
    """Active replication of one container across the host pair."""

    def __init__(
        self,
        world: World,
        spec: ContainerSpec,
        attach_workload: Callable[[Container], None] | None = None,
        sync_timeout_us: int = 20_000,
    ) -> None:
        self.world = world
        self.spec = spec
        self.attach_workload = attach_workload
        self.sync_timeout_us = sync_timeout_us
        self.metrics = RunMetrics()
        #: Output divergences that forced a state synchronization.
        self.syncs = 0
        self.outputs_compared = 0
        self.outputs_released = 0

        for _mountpoint, fs_name in spec.mounts:
            for host, tag in ((world.primary, "p"), (world.backup, "b")):
                if fs_name not in host.kernel.filesystems:
                    host.kernel.add_block_device(f"colo-{tag}-{fs_name}")
                    host.kernel.mkfs(f"colo-{tag}-{fs_name}", fs_name)

        # Primary replica: normal container on the client bridge.
        self.primary_runtime = ContainerRuntime(world.primary.kernel, world.bridge)
        self.container = self.primary_runtime.create(spec)
        self.container.start_keepalive()

        # Backup replica: identical container, but its veth is OFF the
        # bridge — it sees only forwarded inputs, and its outputs go to the
        # comparator, not the network.
        backup_spec = ContainerSpec(
            name=f"{spec.name}-replica",
            ip=spec.ip,
            processes=list(spec.processes),
            mounts=list(spec.mounts),
            cgroup_attributes=dict(spec.cgroup_attributes),
            n_cores=spec.n_cores,
        )
        self.backup_runtime = ContainerRuntime(world.backup.kernel, world.bridge)
        self.replica = self.backup_runtime.create(backup_spec)
        self.replica.veth.detach()
        self.replica.veth.egress_tap = self._on_backup_output
        # Creating the replica re-learned the shared IP at its (now
        # detached) port; point the bridge back at the live primary.
        primary_port = self.container.veth._port
        world.bridge.gratuitous_arp(spec.ip, primary_port)
        # The replica never talks to real clients, so its unacknowledged
        # data must not trigger retransmission storms into the comparator.
        from dataclasses import replace as _dc_replace

        self.replica.stack.costs = _dc_replace(
            world.costs, tcp_rto_default=3_600_000_000, tcp_rto_min=3_600_000_000
        )

        # Output comparator state: per-flow queues of pending packets.
        self._pending_primary: dict[FlowKey, deque[tuple[tuple, Packet, int]]] = {}
        self._pending_backup: dict[FlowKey, deque[tuple]] = {}

        # Intercept the primary's ingress: deliver locally + forward.
        self._primary_demux = self.container.stack.demux
        self.container.veth.on_ingress = self._on_primary_input
        # Intercept the primary's egress: hold for comparison.
        self.container.veth.egress_tap = self._on_primary_output

        self._endpoint = world.primary.endpoint("pair")
        self._backup_endpoint = world.backup.endpoint("pair")
        self._stopped = False
        self._processes: list[Process] = []

    # ------------------------------------------------------------------ #
    # Lifecycle                                                            #
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        self.metrics.started_at_us = self.world.engine.now
        if self.attach_workload is not None:
            # The duplicate execution: the same service runs in the replica.
            self.attach_workload(self.replica)
        self._processes.append(
            self.world.engine.process(self._backup_input_loop(), name="colo-backup-input")
        )
        self._processes.append(
            self.world.engine.process(self._comparator_watchdog(), name="colo-watchdog")
        )

    def stop(self) -> None:
        self._stopped = True
        self.metrics.ended_at_us = self.world.engine.now

    @property
    def failed_over(self) -> bool:
        return False

    # ------------------------------------------------------------------ #
    # Input path                                                           #
    # ------------------------------------------------------------------ #
    def _on_primary_input(self, pkt: Packet) -> None:
        self._primary_demux(pkt)
        # Forward a copy to the backup replica (input replication).
        self._endpoint.send({"kind": "colo_input", "pkt": pkt}, size_bytes=pkt.size)

    def _backup_input_loop(self) -> Generator[Any, Any, None]:
        while not self._stopped:
            try:
                delivery = yield self._backup_endpoint.recv()
            except Interrupt:
                return
            message = delivery.message
            if message.get("kind") != "colo_input":
                continue
            # Charge the forwarding/injection CPU on the backup.
            self.metrics.charge_backup_cpu(self.world.costs.tcp_segment_processing)
            self.replica.stack.demux(message["pkt"])

    # ------------------------------------------------------------------ #
    # Output comparison                                                    #
    # ------------------------------------------------------------------ #
    def _release(self, pkt: Packet) -> None:
        veth = self.container.veth
        if veth.bridge is not None and veth._port is not None:
            self.outputs_released += 1
            veth.bridge.forward(pkt, from_port=veth._port)

    def _on_primary_output(self, pkt: Packet) -> None:
        if not pkt.payload and "FIN" not in pkt.flags and "SYN" not in pkt.flags:
            # Pure ACK: no externally visible content; release immediately.
            self._release(pkt)
            return
        if "SYN" in pkt.flags:
            self._release(pkt)  # handshake packets are content-free
            return
        key = _flow_key(pkt)
        token = _comparable(pkt)
        backup_queue = self._pending_backup.get(key)
        if backup_queue and backup_queue[0] == token:
            backup_queue.popleft()
            self.outputs_compared += 1
            self._release(pkt)
        else:
            self._pending_primary.setdefault(key, deque()).append(
                (token, pkt, self.world.engine.now)
            )

    def _on_backup_output(self, pkt: Packet) -> None:
        # Comparing costs backup CPU too.
        self.metrics.charge_backup_cpu(self.world.costs.tcp_segment_processing)
        if not pkt.payload and "FIN" not in pkt.flags:
            return  # backup's pure ACKs are discarded
        if "SYN" in pkt.flags:
            return
        key = _flow_key(pkt)
        token = _comparable(pkt)
        primary_queue = self._pending_primary.get(key)
        if primary_queue and primary_queue[0][0] == token:
            _token, held, _since = primary_queue.popleft()
            self.outputs_compared += 1
            self._release(held)
        else:
            self._pending_backup.setdefault(key, deque()).append(token)

    # ------------------------------------------------------------------ #
    # Divergence handling                                                  #
    # ------------------------------------------------------------------ #
    def _comparator_watchdog(self) -> Generator[Any, Any, None]:
        """Outputs stuck unmatched beyond the timeout mean the replicas
        diverged: synchronize state (the expensive COLO fallback)."""
        while not self._stopped:
            yield self.world.engine.timeout(self.sync_timeout_us // 2)
            if self._stopped:
                return
            now = self.world.engine.now
            stuck = any(
                queue and now - queue[0][2] > self.sync_timeout_us
                for queue in self._pending_primary.values()
            )
            if stuck:
                yield from self._synchronize()

    def _synchronize(self) -> Generator[Any, Any, None]:
        """Force the replica back into lockstep: copy the primary's state.

        Modeled as a full-state copy (pause + transfer + apply), charged at
        both ends; held primary outputs are released (they are now, by
        construction, consistent with the replica's state).
        """
        self.syncs += 1
        costs = self.world.costs
        yield from self.container.freeze(poll=True)
        pages = sum(p.mm.resident_count for p in self.container.processes)
        yield self.world.engine.timeout(costs.page_copy_cost(pages))
        # Apply on the backup: memory + socket state.
        for src, dst in zip(self.container.processes, self.replica.processes):
            dst.mm.restore_pages(src.mm.full_snapshot())
        self.metrics.charge_backup_cpu(costs.page_copy_cost(pages))
        yield self.world.engine.timeout(costs.page_copy_cost(pages))
        yield from self.container.thaw()
        # Flush everything held: the replicas are identical again.
        for queue in self._pending_primary.values():
            while queue:
                _token, pkt, _since = queue.popleft()
                self._release(pkt)
        self._pending_backup.clear()

    # ------------------------------------------------------------------ #
    # Views                                                                #
    # ------------------------------------------------------------------ #
    def backup_core_utilization(self) -> float:
        """Full-replica execution: the backup burns ~the workload's CPU."""
        elapsed = max(1, self.metrics.elapsed_us)
        return (self.replica.cgroup.read_cpuacct() + self.metrics.backup_cpu_us) / elapsed
