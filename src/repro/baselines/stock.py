"""Stock deployment: the container with no replication.

Provides the same surface as :class:`ReplicatedDeployment` so experiment
runners can swap modes; every replication-related operation is a no-op.
"""

from __future__ import annotations

from repro.container.runtime import Container, ContainerRuntime
from repro.container.spec import ContainerSpec
from repro.metrics.collector import RunMetrics
from repro.net.world import World

__all__ = ["StockDeployment"]


class StockDeployment:
    """An unreplicated container on the primary host."""

    def __init__(self, world: World, spec: ContainerSpec) -> None:
        self.world = world
        self.spec = spec
        self.metrics = RunMetrics()
        # Create any filesystems the spec mounts (local disk, no DRBD).
        for _mountpoint, fs_name in spec.mounts:
            if fs_name not in world.primary.kernel.filesystems:
                world.primary.kernel.add_block_device(f"local-{fs_name}")
                world.primary.kernel.mkfs(f"local-{fs_name}", fs_name)
        self.runtime = ContainerRuntime(world.primary.kernel, world.bridge)
        self.container: Container = self.runtime.create(spec)

    def start(self) -> None:
        self.metrics.started_at_us = self.world.engine.now

    def stop(self) -> None:
        self.metrics.ended_at_us = self.world.engine.now

    @property
    def failed_over(self) -> bool:
        return False
