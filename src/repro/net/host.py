"""A simulated host: one kernel plus its replication-channel endpoints."""

from __future__ import annotations

from repro.kernel.costmodel import CostModel
from repro.kernel.kernel import Kernel
from repro.net.link import Channel, Endpoint
from repro.sim.engine import Engine

__all__ = ["Host"]


class Host:
    """One physical machine in the testbed."""

    #: Physical machine — the fault domain itself, never checkpointed.
    __ckpt_ignore__ = True

    def __init__(self, engine: Engine, costs: CostModel, name: str) -> None:
        self.engine = engine
        self.name = name
        self.kernel = Kernel(engine, costs, hostname=name)
        #: Channels terminating at this host, by logical name.
        self.endpoints: dict[str, Endpoint] = {}
        self._channels: list[Channel] = []
        self.failed = False

    def attach_endpoint(self, logical_name: str, endpoint: Endpoint, channel: Channel) -> None:
        self.endpoints[logical_name] = endpoint
        if channel not in self._channels:
            self._channels.append(channel)

    def endpoint(self, logical_name: str) -> Endpoint:
        return self.endpoints[logical_name]

    def fail_stop(self) -> None:
        """Crash the host: all its channels go silent (fail-stop model).

        Containers hosted here are *not* notified — their state simply stops
        being externally observable, exactly like a seized machine.
        """
        self.failed = True
        self.kernel.failed = True
        for channel in self._channels:
            channel.cut()
