"""Inter-host fabric: hosts, replication channels, and the test-bench world.

The paper's testbed is two server hosts joined by a dedicated 10 GbE link
(replication traffic: checkpoints, disk mirroring, heartbeats) and a client
host reaching them over 1 GbE through a switch.  :class:`~repro.net.world.World`
builds exactly that topology; :class:`~repro.net.link.Channel` is the
reliable point-to-point message pipe used by the agents, with fail-stop
``cut()`` semantics for fault injection.
"""

from repro.net.host import Host
from repro.net.link import Channel, Endpoint
from repro.net.world import World

__all__ = ["Channel", "Endpoint", "Host", "World"]
