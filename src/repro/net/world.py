"""The experiment world: engine + topology + shared cost model + RNG.

Builds the paper's testbed (§VI): primary and backup hosts joined by a
dedicated 10 GbE channel, a client host, and a 1 GbE bridged client network
that container veths and the client NIC attach to.
"""

from __future__ import annotations

from repro.kernel.costmodel import CostModel
from repro.kernel.netdev import Bridge
from repro.net.host import Host
from repro.net.link import Channel
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

__all__ = ["World", "reset_id_counters"]


class World:
    """Container for everything one experiment run needs."""

    #: Experiment scaffolding (hosts, bridge, channel); outlives failures.
    __ckpt_ignore__ = True

    def __init__(
        self,
        seed: int = 1,
        costs: CostModel | None = None,
        client_bandwidth_bps: int = 1_000_000_000,
        client_latency_us: int = 150,
        pair_bandwidth_bps: int = 10_000_000_000,
        pair_latency_us: int = 50,
    ) -> None:
        self.engine = Engine()
        self.costs = costs if costs is not None else CostModel()
        self.rng = RngRegistry(seed)

        #: The client-facing switched network (1 GbE).
        self.bridge = Bridge(
            self.engine,
            name="client-net",
            bandwidth_bps=client_bandwidth_bps,
            latency_us=client_latency_us,
        )

        self.primary = Host(self.engine, self.costs, "primary")
        self.backup = Host(self.engine, self.costs, "backup")
        self.client = Host(self.engine, self.costs, "client")

        #: Dedicated replication link between the pair (10 GbE).
        self.pair_channel = Channel(
            self.engine,
            name="pair-10g",
            bandwidth_bps=pair_bandwidth_bps,
            latency_us=pair_latency_us,
        )
        self.primary.attach_endpoint("pair", self.pair_channel.a, self.pair_channel)
        self.backup.attach_endpoint("pair", self.pair_channel.b, self.pair_channel)

    def run(self, until=None):
        return self.engine.run(until=until)

    @property
    def now(self) -> int:
        return self.engine.now

    def add_host(self, name: str) -> Host:
        """Provision an additional server host (e.g. a replacement backup
        for re-protection after a failover)."""
        return Host(self.engine, self.costs, name)

    def connect_pair(self, a: Host, b: Host, logical_name: str = "pair") -> Channel:
        """Join two hosts with a dedicated replication link (10 GbE)."""
        channel = Channel(
            self.engine,
            name=f"{a.name}-{b.name}-10g",
            bandwidth_bps=10_000_000_000,
            latency_us=50,
        )
        a.attach_endpoint(logical_name, channel.a, channel)
        b.attach_endpoint(logical_name, channel.b, channel)
        return channel


def reset_id_counters() -> None:
    """Rewind the process-global identity counters to their boot values.

    Pids, tids, inode numbers, namespace ids, MACs, packet ids, client
    IPs and TCP initial sequence numbers come from module-level counter
    streams, so a second :class:`World` built in the same process hands
    out larger ids than the first.  That is harmless for correctness but
    fatal for replay comparison: serialized checkpoint images embed pids
    and inode numbers as decimal strings, so a counter crossing a digit
    boundary between two same-seed runs changes image byte counts — and
    with them the trace digest.  Call this before building a World whose
    digest will be compared against another run's (the fleet campaign
    does).  Never call it while another live World is still in use.
    """
    import itertools

    from repro.container import runtime as _runtime
    from repro.kernel import fs as _fs
    from repro.kernel import namespaces as _namespaces
    from repro.kernel import netdev as _netdev
    from repro.kernel import task as _task
    from repro.kernel import tcp as _tcp
    from repro.workloads import clients as _clients

    _task._tid_counter = itertools.count(1000)
    _task._pid_counter = itertools.count(100)
    _fs._ino_counter = itertools.count(2)
    _namespaces._ns_ids = itertools.count(0x1000)
    _netdev._packet_ids = itertools.count(1)
    _tcp._initial_seq = itertools.count(10_000, 7_777)
    _runtime._mac_counter = itertools.count(1)
    _clients._client_ips = 0
