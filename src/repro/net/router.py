"""Per-container demultiplexing of a shared replication channel.

A production pair of hosts protects *many* containers over one dedicated
link (multi-tenancy is the point of containers, paper §I).  Each agent
tags its messages with its container's name; an :class:`EndpointRouter`
owns the endpoint's receive side and forwards each delivery to the
subscriber for that tag, so any number of deployments share the channel
without seeing each other's traffic.

Exactly one router may own an endpoint's receive side (attaching twice
returns the same router); code that reads an endpoint directly (the MC and
COLO baselines) must not share that endpoint with routed deployments.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.net.link import Delivery, Endpoint
from repro.sim.engine import Engine, Interrupt
from repro.sim.resources import Queue

__all__ = ["EndpointRouter", "RoutedPort"]

_ATTR = "_repro_router"


class EndpointRouter:
    """Routes an endpoint's inbound deliveries by message container tag."""

    #: Replication-channel demux on the host side; rebuilt at failover.
    __ckpt_ignore__ = True

    def __init__(self, endpoint: Endpoint, engine: Engine) -> None:
        self.endpoint = endpoint
        self.engine = engine
        self._subscribers: dict[str, Queue] = {}
        #: Deliveries whose tag nobody subscribed to (diagnostics).
        self.dropped = 0
        self._stopped = False
        engine.process(self._loop(), name=f"router-{endpoint.name}")

    @classmethod
    def attach(cls, endpoint: Endpoint, engine: Engine) -> "EndpointRouter":
        """Return the endpoint's router, creating it on first use."""
        router = getattr(endpoint, _ATTR, None)
        if router is None:
            router = cls(endpoint, engine)
            setattr(endpoint, _ATTR, router)
        return router

    def subscribe(self, container: str) -> Queue:
        """The queue of deliveries tagged for *container*."""
        queue = self._subscribers.get(container)
        if queue is None:
            queue = Queue(self.engine, name=f"router-{container}")
            self._subscribers[container] = queue
        return queue

    def send(self, container: str, message: dict, size_bytes: int = 256, chunks: int = 1) -> None:
        """Tag and transmit *message* to the peer router."""
        message = dict(message)
        message["container"] = container
        self.endpoint.send(message, size_bytes=size_bytes, chunks=chunks)

    def port(self, container: str) -> "RoutedPort":
        """An endpoint-shaped handle carrying only *container*'s traffic."""
        return RoutedPort(self, container)

    def stop(self) -> None:
        self._stopped = True

    def _loop(self) -> Generator[Any, Any, None]:
        while not self._stopped:
            try:
                delivery: Delivery = yield self.endpoint.recv()
            except Interrupt:
                return
            tag = delivery.message.get("container")
            queue = self._subscribers.get(tag)
            if queue is None:
                self.dropped += 1
            else:
                queue.put(delivery)


class RoutedPort:
    """Duck-types :class:`~repro.net.link.Endpoint` for one container's
    slice of a shared channel: agents send and receive through it exactly
    as they would through a dedicated endpoint."""

    #: Replication-channel demux on the host side; rebuilt at failover.
    __ckpt_ignore__ = True

    def __init__(self, router: EndpointRouter, container: str) -> None:
        self._router = router
        self.container = container
        self._rx = router.subscribe(container)
        self.name = f"{router.endpoint.name}/{container}"

    def send(self, message: dict, size_bytes: int = 256, chunks: int = 1) -> None:
        self._router.send(self.container, message, size_bytes=size_bytes, chunks=chunks)

    def recv(self):
        return self._rx.get()
