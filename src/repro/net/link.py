"""Reliable point-to-point message channels between hosts.

Used for agent-to-agent traffic: checkpoint state transfer, DRBD mirroring,
heartbeats, acknowledgments.  Delivery is FIFO per direction with bandwidth
serialization and fixed latency.  ``cut()`` models fail-stop silence: pending
and future messages are dropped (a crashed host sends nothing).

Messages can be delivered in *chunks* to model streaming: the receiver sees
``(message, chunk_count)`` and the backup agent charges per-chunk read cost,
which is what makes Node's fine-grained socket state more expensive for the
backup CPU than Redis's bulk pages (paper Table V discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.sim.engine import Engine
from repro.sim.faults import link_fault
from repro.sim.resources import Queue
from repro.sim.units import SECOND

__all__ = ["Channel", "Endpoint", "Delivery"]


@dataclass
class Delivery:
    """What an endpoint's receive queue yields."""

    #: Replication-link wire data, not container state.
    __ckpt_ignore__ = True

    message: Any
    size_bytes: int
    #: Number of chunks the payload arrived in (receiver read() granularity).
    chunks: int
    sent_at: int


class Endpoint:
    """One end of a channel."""

    #: Dedicated replication-link plumbing between the hosts.
    __ckpt_ignore__ = True

    def __init__(self, channel: "Channel", index: int, name: str) -> None:
        self._channel = channel
        self._index = index
        self.name = name
        self.rx = Queue(channel.engine, name=f"{name}-rx")

    def send(self, message: Any, size_bytes: int = 256, chunks: int = 1) -> None:
        """Transmit *message* to the peer (non-blocking; FIFO; reliable
        unless the channel is cut)."""
        self._channel._transmit(self._index, message, size_bytes, chunks)

    def recv(self):
        """Event resolving to the next :class:`Delivery`."""
        return self.rx.get()

    @property
    def peer(self) -> "Endpoint":
        return self._channel.ends[1 - self._index]


class Channel:
    """A bidirectional reliable link (the dedicated 10 GbE pair link)."""

    #: Dedicated replication-link plumbing between the hosts.
    __ckpt_ignore__ = True

    def __init__(
        self,
        engine: Engine,
        name: str = "chan",
        bandwidth_bps: int = 10_000_000_000,
        latency_us: int = 50,
    ) -> None:
        self.engine = engine
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.latency_us = latency_us
        self.ends = (Endpoint(self, 0, f"{name}.a"), Endpoint(self, 1, f"{name}.b"))
        self._cut = False
        #: Per-direction serialization: time the link is next free.
        self._free_at = [0, 0]
        #: Metrics.
        self.bytes_sent = 0
        self.messages_sent = 0

    @property
    def a(self) -> Endpoint:
        return self.ends[0]

    @property
    def b(self) -> Endpoint:
        return self.ends[1]

    def cut(self) -> None:
        """Fail-stop: silence the channel in both directions."""
        self._cut = True

    def restore(self) -> None:
        self._cut = False

    @property
    def is_cut(self) -> bool:
        return self._cut

    def tx_time_us(self, size_bytes: int) -> int:
        return (size_bytes * 8 * SECOND) // self.bandwidth_bps

    def _transmit(self, from_index: int, message: Any, size_bytes: int, chunks: int) -> None:
        if self._cut:
            return
        now = self.engine.now
        start = max(now, self._free_at[from_index])
        done = start + self.tx_time_us(size_bytes)
        self._free_at[from_index] = done
        arrival = done + self.latency_us
        self.bytes_sent += size_bytes
        self.messages_sent += 1
        dest = self.ends[1 - from_index]
        delivery = Delivery(message=message, size_bytes=size_bytes, chunks=chunks, sent_at=now)

        # An armed fault plan may drop, duplicate, delay or hold this
        # delivery (zero-cost getattr when no plan is armed).
        if link_fault(self.engine, self, dest, delivery, arrival - now):
            return

        timer = self.engine.timeout(arrival - now)
        timer.callbacks.append(lambda _ev: None if self._cut else dest.rx.put(delivery))
