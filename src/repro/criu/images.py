"""Checkpoint images: everything a container restore needs.

One :class:`CheckpointImage` is produced per epoch.  Incremental images
carry only the pages dirtied since the previous checkpoint and only the
in-kernel components that changed; the backup keeps the union (see
:mod:`repro.criu.pagestore` and the backup agent) and materializes a full
image at failover.

Size accounting matters: the image's :meth:`CheckpointImage.size_bytes`
drives transfer time on the 10 GbE pair link and the Table IV state-size
distribution.  Dirty pages dominate ("85% to over 95%" per the paper), with
TCP read/write queues the next largest component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.kernel.costmodel import PAGE_SIZE

__all__ = ["CheckpointImage", "ProcessImage"]

#: Serialized overhead per thread descriptor (registers, masks, timers).
THREAD_DESC_BYTES = 1_024
#: Serialized overhead per fd-table entry.
FD_DESC_BYTES = 64
#: Serialized overhead per socket beyond its queue contents.
SOCKET_DESC_BYTES = 256
#: Serialized size of namespace/cgroup/mount descriptions.
NAMESPACE_DESC_BYTES = 4_096
#: Serialized VMA descriptor.
VMA_DESC_BYTES = 56
#: Inode-cache entry in the fs-cache checkpoint.
INODE_DESC_BYTES = 160


@dataclass
class ProcessImage:
    """Per-process slice of a checkpoint."""

    pid: int
    comm: str
    vmas: list[dict] = field(default_factory=list)
    #: Page contents captured this epoch: page index -> token.
    pages: dict[int, bytes] = field(default_factory=dict)
    threads: list[dict] = field(default_factory=list)
    fd_entries: list[dict] = field(default_factory=list)

    @property
    def page_count(self) -> int:
        return len(self.pages)

    def size_bytes(self) -> int:
        return (
            len(self.pages) * PAGE_SIZE
            + len(self.vmas) * VMA_DESC_BYTES
            + len(self.threads) * THREAD_DESC_BYTES
            + len(self.fd_entries) * FD_DESC_BYTES
        )


@dataclass
class CheckpointImage:
    """One epoch's checkpoint."""

    epoch: int
    container_name: str
    incremental: bool
    processes: list[ProcessImage] = field(default_factory=list)
    #: TCP socket states: listener descriptors and repair-mode dumps.
    sockets: list[dict] = field(default_factory=list)
    #: Infrequently-modified container state (None in an incremental image
    #: when unchanged and served from cache by reference).
    namespaces: dict | None = None
    cgroup: dict | None = None
    mapped_file_stats: list[dict] = field(default_factory=list)
    #: Whether the infrequent state above came from the NiLiCon cache
    #: (metrics only; restores treat both identically).
    infrequent_from_cache: bool = False
    #: File-system cache checkpoint (fgetfc output).
    fs_inode_entries: list[dict] = field(default_factory=list)
    fs_page_entries: list[tuple[str, int, bytes]] = field(default_factory=list)

    @property
    def dirty_page_count(self) -> int:
        return sum(p.page_count for p in self.processes)

    def socket_queue_bytes(self) -> int:
        total = 0
        for sock in self.sockets:
            state = sock.get("repair_state")
            if state:
                total += len(state["recv_buffer"])
                total += sum(len(payload) for _seq, payload in state["write_queue"])
        return total

    def size_bytes(self) -> int:
        """Bytes that must cross the pair link for this image."""
        total = sum(p.size_bytes() for p in self.processes)
        total += len(self.sockets) * SOCKET_DESC_BYTES + self.socket_queue_bytes()
        if self.namespaces is not None:
            total += NAMESPACE_DESC_BYTES
        if self.cgroup is not None:
            total += NAMESPACE_DESC_BYTES // 4
        total += len(self.mapped_file_stats) * FD_DESC_BYTES
        total += len(self.fs_inode_entries) * INODE_DESC_BYTES
        total += sum(
            len(content) if content is not None else 16
            for _p, _i, content in self.fs_page_entries
        )
        return total

    def chunk_count(self) -> int:
        """How many read()-sized chunks the backup receives this image in.

        Bulk page data streams in large chunks; socket queues and per-thread
        descriptors arrive as many small reads (Table V: fine-grained state
        raises backup CPU use).
        """
        bulk_chunks = max(1, self.dirty_page_count // 64)
        small_items = (
            len(self.sockets) * 4
            + sum(len(p.threads) for p in self.processes)
            + len(self.fs_page_entries)
        )
        return bulk_chunks + small_items

    def summary(self) -> dict[str, Any]:
        return {
            "epoch": self.epoch,
            "incremental": self.incremental,
            "dirty_pages": self.dirty_page_count,
            "size_bytes": self.size_bytes(),
            "sockets": len(self.sockets),
            "fs_pages": len(self.fs_page_entries),
        }
