"""State collectors: how checkpointing reads container state out of the kernel.

Each collector is a generator coroutine charging the simulated cost of the
kernel interface it models, and returning plain-data descriptions that go
into a :class:`~repro.criu.images.CheckpointImage`.

The costs are where stock CRIU and NiLiCon diverge (see
:class:`~repro.criu.config.CriuConfig`): smaps vs netlink for VMAs, pipe vs
shared memory for page contents, full re-collection vs ftrace-invalidated
caching for the infrequently-modified container state, NAS flush vs
``fgetfc`` for the filesystem cache.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.criu.config import CriuConfig
from repro.kernel.kernel import Kernel
from repro.kernel.parasite import ParasiteChannel
from repro.kernel.task import Process
from repro.kernel.tcp import TcpStack

if TYPE_CHECKING:  # pragma: no cover
    from repro.container.runtime import Container

__all__ = ["StateCollector"]


class StateCollector:
    """Collectors bound to one kernel and one configuration."""

    def __init__(self, kernel: Kernel, config: CriuConfig) -> None:
        self.kernel = kernel
        self.config = config
        self.costs = kernel.costs
        self.engine = kernel.engine

    def _charge(self, us: int):
        return self.engine.timeout(us)

    # ------------------------------------------------------------------ #
    # Memory                                                               #
    # ------------------------------------------------------------------ #
    def collect_memory(
        self, process: Process, parasite: ParasiteChannel, incremental: bool
    ) -> Generator[Any, Any, tuple[list[dict], dict[int, bytes]]]:
        """VMAs + page contents for one process.

        Incremental mode reads the soft-dirty set from pagemap and restarts
        tracking; full mode captures every resident page and starts
        tracking for subsequent incrementals.
        """
        procfs = self.kernel.procfs
        if self.config.vma_source == "smaps":
            vmas = yield from procfs.smaps_vmas(process)
        else:
            vmas = yield from procfs.netlink_vmas(process)

        if incremental and process.mm.tracking_enabled:
            dirty = yield from procfs.pagemap_dirty(process)
        else:
            dirty = set(process.mm.pages)
        pages = yield from parasite.read_pages(sorted(dirty))
        # Restart tracking for the next epoch.
        yield from procfs.clear_refs(process)
        return vmas, pages

    # ------------------------------------------------------------------ #
    # Per-process kernel state                                             #
    # ------------------------------------------------------------------ #
    def collect_fd_table(self, process: Process) -> Generator[Any, Any, list[dict]]:
        entries = process.fd_entries()
        yield self._charge(len(entries) * self.costs.collect_fd_entry)
        out = []
        for entry in entries:
            desc: dict[str, Any] = {"fd": entry.fd, "kind": entry.kind, "flags": entry.flags}
            if entry.kind == "file" and hasattr(entry.obj, "path"):
                desc["path"] = entry.obj.path
                desc["offset"] = getattr(entry.obj, "offset", 0)
            out.append(desc)
        return out

    # ------------------------------------------------------------------ #
    # Sockets (repair mode)                                                #
    # ------------------------------------------------------------------ #
    def collect_sockets(self, stack: TcpStack) -> Generator[Any, Any, list[dict]]:
        """Dump every listener and established connection.

        Cost is the paper's per-socket repair-mode storm (~94 us/socket
        plus ~1 ms fixed).
        """
        count = stack.socket_count
        yield self._charge(self.costs.socket_collection(count))
        out: list[dict] = []
        # Stack-wide state first: the ephemeral-port allocator position must
        # survive failover or new outbound connections collide with repaired
        # ones (same 4-tuple, different universe).
        out.append({"kind": "stack", "next_ephemeral": stack._next_ephemeral})
        for port, _listener in sorted(stack.listeners.items()):
            out.append({"kind": "listener", "port": port})
        for key in sorted(stack.connections):
            sock = stack.connections[key]
            sock.enter_repair()
            state = sock.get_repair_state()
            sock.leave_repair()
            out.append({"kind": "connection", "repair_state": state})
        return out

    # ------------------------------------------------------------------ #
    # Infrequently-modified container state (SSIII list, SSV-B)            #
    # ------------------------------------------------------------------ #
    def collect_infrequent(
        self, container: "Container"
    ) -> Generator[Any, Any, dict[str, Any]]:
        """Namespaces, cgroups, mounts, device files, memory-mapped files.

        This is the full (slow) collection: ~100 ms of namespace reads plus
        cgroups/mounts/devices plus one stat() per mapped file — about
        160 ms for streamcluster (§V-B).
        """
        costs = self.costs
        yield self._charge(costs.collect_namespaces)
        yield self._charge(costs.collect_cgroups)
        yield self._charge(costs.collect_mounts)
        yield self._charge(costs.collect_device_files)
        stats: list[dict] = []
        for process in container.processes:
            file_stats = yield from self.kernel.procfs.stat_mapped_files(process)
            stats.extend(file_stats)
        components = {
            "namespaces": container.namespaces.describe(),
            "cgroup": container.cgroup.describe(),
            "mapped_file_stats": stats,
        }
        # Test knob: deliberately drop a dump site ("cgroup.cpuacct_usage_us")
        # so the differential oracle can prove it detects the resulting state
        # divergence.  Never set outside coverage tests.
        for dotted in self.config.unsafe_drop_dump:
            component, _, key = dotted.partition(".")
            target = components.get(component)
            if isinstance(target, dict):
                target.pop(key, None)
        return components

    # ------------------------------------------------------------------ #
    # Filesystem cache (SSIII)                                             #
    # ------------------------------------------------------------------ #
    def collect_fs_cache(
        self, container: "Container"
    ) -> Generator[Any, Any, tuple[list[dict], list[tuple[str, int, bytes]]]]:
        """Checkpoint the fs cache via fgetfc, or flush to NAS (stock mode).

        In NAS mode nothing enters the image (storage is shared); the cost
        is the prohibitive flush the paper describes.
        """
        inode_entries: list[dict] = []
        page_entries: list[tuple[str, int, bytes]] = []
        for fs in container.mounted_filesystems():
            if self.config.fs_cache_mode == "fgetfc":
                inodes, pages = yield from self.kernel.fgetfc(fs)
                inode_entries.extend(inodes)
                page_entries.extend(pages)
            else:
                dirty = fs.dirty_page_count()
                flushed = fs.flush_all_to_device()
                assert flushed == dirty
                yield self._charge(
                    self.costs.nas_flush_fixed + flushed * self.costs.nas_flush_per_page
                )
        return inode_entries, page_entries
