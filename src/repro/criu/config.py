"""Configuration of the checkpoint path — the knobs behind Table I.

Each field selects between a stock-CRIU behaviour and the NiLiCon
optimization that replaced it.  :meth:`CriuConfig.stock` and
:meth:`CriuConfig.nilicon` give the two endpoints; the Table I experiment
walks between them one optimization at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Literal

__all__ = ["CriuConfig"]


@dataclass(frozen=True)
class CriuConfig:
    """Checkpoint-path option set (immutable; use :func:`dataclasses.replace`)."""

    #: VMA enumeration interface (§V-D deficiency 1): /proc/pid/smaps vs the
    #: task-diag netlink patch.
    vma_source: Literal["smaps", "netlink"] = "netlink"
    #: Dirty-page transport out of the parasite (§V-D deficiency 3).
    parasite_transport: Literal["pipe", "shm"] = "shm"
    #: Freeze wait: stock CRIU sleeps 100 ms; NiLiCon polls (§V-A).
    freeze_poll: bool = True
    #: File-system cache handling (§III): NiLiCon's fgetfc/DNC vs CRIU's
    #: flush-everything-to-NAS.
    fs_cache_mode: Literal["fgetfc", "nas_flush"] = "fgetfc"
    #: Cache infrequently-modified in-kernel state, invalidated by ftrace
    #: hooks (§V-B), vs recollect everything each epoch.
    cache_infrequent_state: bool = True
    #: Whether proxy processes intermediate the transfer (stock CRIU) or the
    #: primary agent streams directly to the backup agent (§V-A).
    use_proxy_processes: bool = False
    #: Apply the repaired-socket minimum-RTO kernel patch (§V-E).
    repair_rto_patch: bool = True
    #: Coverage-test knob: "component.key" entries removed from the
    #: infrequent-state dump (e.g. ``("cgroup.cpuacct_usage_us",)``) so the
    #: ckptcov differential oracle can prove it catches a deleted dump site.
    unsafe_drop_dump: tuple[str, ...] = ()

    @classmethod
    def stock(cls) -> "CriuConfig":
        """Stock CRIU 3.11 + unmodified kernel (the 'Basic implementation')."""
        return cls(
            vma_source="smaps",
            parasite_transport="pipe",
            freeze_poll=False,
            fs_cache_mode="nas_flush",
            cache_infrequent_state=False,
            use_proxy_processes=True,
            repair_rto_patch=False,
        )

    @classmethod
    def nilicon(cls) -> "CriuConfig":
        """All NiLiCon optimizations enabled (the defaults)."""
        return cls()

    def with_(self, **kw) -> "CriuConfig":
        """Convenience wrapper around :func:`dataclasses.replace`."""
        return replace(self, **kw)
