"""The checkpoint engine: drive collectors over a frozen container.

The caller (NiLiCon's primary agent, or a migration tool) freezes the
container first; :meth:`CheckpointEngine.checkpoint` then performs the
collection passes CRIU performs — parasite injection, thread state, memory,
fd tables, sockets, container-level state, filesystem cache — charging each
interface's cost, and returns the epoch's :class:`CheckpointImage`.

The infrequently-modified state is collected through a pluggable provider
so NiLiCon's agent can substitute its ftrace-invalidated cache (§V-B); when
no provider is given the full slow collection runs every time (stock).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.criu.collect import StateCollector
from repro.criu.config import CriuConfig
from repro.criu.images import CheckpointImage, ProcessImage
from repro.kernel.errors import KernelError
from repro.kernel.kernel import Kernel
from repro.kernel.parasite import ParasiteChannel

if TYPE_CHECKING:  # pragma: no cover
    from repro.container.runtime import Container

__all__ = ["CheckpointEngine"]

#: An infrequent-state provider: a generator returning the component dict
#: plus whether it was served from cache.
InfrequentProvider = Callable[["Container"], Generator[Any, Any, tuple[dict, bool]]]


class CheckpointEngine:
    """Checkpoints containers on one host."""

    def __init__(self, kernel: Kernel, config: CriuConfig | None = None) -> None:
        self.kernel = kernel
        self.config = config if config is not None else CriuConfig.nilicon()
        self.collector = StateCollector(kernel, self.config)
        self._epoch_counter = 0

    def checkpoint(
        self,
        container: "Container",
        incremental: bool = True,
        infrequent_provider: InfrequentProvider | None = None,
    ) -> Generator[Any, Any, CheckpointImage]:
        """Collect one checkpoint of *container* (must be frozen)."""
        if not container.frozen:
            raise KernelError(
                f"checkpoint of running container {container.name} "
                "(freeze it first; CRIU requires a consistent state)"
            )
        self._epoch_counter += 1
        image = CheckpointImage(
            epoch=self._epoch_counter,
            container_name=container.name,
            incremental=incremental,
        )

        # Per-container process-tree walk (/proc opens etc.), scaling with
        # process count and per-process VMA count (see cost model notes).
        costs = self.kernel.costs
        total_vmas = sum(len(p.mm.vmas) for p in container.processes)
        yield self.kernel.charge(
            costs.process_collection(len(container.processes))
            + total_vmas * costs.collect_process_per_vma
        )

        for process in container.processes:
            parasite = ParasiteChannel(
                self.kernel.engine,
                self.kernel.costs,
                process,
                transport=self.config.parasite_transport,
            )
            yield from parasite.inject()
            threads = yield from parasite.collect_thread_states()
            vmas, pages = yield from self.collector.collect_memory(
                process, parasite, incremental
            )
            fd_entries = yield from self.collector.collect_fd_table(process)
            yield from parasite.cure()
            image.processes.append(
                ProcessImage(
                    pid=process.pid,
                    comm=process.comm,
                    vmas=vmas,
                    pages=pages,
                    threads=threads,
                    fd_entries=fd_entries,
                )
            )

        image.sockets = yield from self.collector.collect_sockets(container.stack)

        if infrequent_provider is not None:
            components, from_cache = yield from infrequent_provider(container)
        else:
            components = yield from self.collector.collect_infrequent(container)
            from_cache = False
        image.namespaces = components["namespaces"]
        image.cgroup = components["cgroup"]
        image.mapped_file_stats = components["mapped_file_stats"]
        image.infrequent_from_cache = from_cache

        inodes, fs_pages = yield from self.collector.collect_fs_cache(container)
        image.fs_inode_entries = inodes
        image.fs_page_entries = fs_pages

        return image
