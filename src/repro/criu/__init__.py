"""CRIU: checkpoint/restore of containers (in userspace).

This package reimplements, over the simulated kernel, the CRIU subset that
NiLiCon builds on (paper §II-B), plus the NiLiCon modifications (§V-A/D):

* :mod:`~repro.criu.config` — which interface generation each operation
  uses (stock CRIU vs NiLiCon-optimized); the knobs of Table I.
* :mod:`~repro.criu.images` — the checkpoint image: every state component a
  container restore needs, with byte-accounting for transfer sizing.
* :mod:`~repro.criu.collect` — state collectors: memory via parasite +
  smaps/netlink + soft-dirty pagemap, threads, fd tables, sockets via
  repair mode, the infrequently-modified container state, and the
  filesystem cache via ``fgetfc`` or NAS flush.
* :mod:`~repro.criu.pagestore` — the backup-side store of committed pages:
  stock CRIU's linked list of checkpoint directories vs NiLiCon's
  four-level radix tree.
* :mod:`~repro.criu.checkpoint` — the checkpoint engine that drives the
  collectors over a frozen container and emits an image.
* :mod:`~repro.criu.restore` — the restore engine that rebuilds a container
  from committed state on the backup host.
"""

from repro.criu.checkpoint import CheckpointEngine
from repro.criu.config import CriuConfig
from repro.criu.images import CheckpointImage
from repro.criu.pagestore import LinkedListPageStore, RadixTreePageStore
from repro.criu.restore import RestoreEngine

__all__ = [
    "CheckpointEngine",
    "CheckpointImage",
    "CriuConfig",
    "LinkedListPageStore",
    "RadixTreePageStore",
    "RestoreEngine",
]
