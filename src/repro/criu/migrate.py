"""Live container migration — CRIU's original use case (paper §II-B).

NiLiCon repurposes CRIU's checkpoint/restore for high-frequency
replication; this module implements the tool's *native* job: moving a
running container between hosts with minimal downtime, using iterative
pre-copy exactly like VM live migration:

1. **Pre-copy rounds** — with the container running, snapshot the pages
   dirtied since the previous round (round 0 ships everything) and stream
   them to the destination.  Soft-dirty tracking provides the delta.
2. **Stop-and-copy** — when the dirty set stops shrinking (or a round
   budget is exhausted), freeze the container, take the final incremental
   checkpoint *including all in-kernel state* (sockets via repair mode,
   namespaces, fs cache), transfer it, restore on the destination, move
   the IP with a gratuitous ARP, and destroy the source.

Downtime is the freeze-to-restored interval; established TCP connections
survive through repair mode, just as in failover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator

from repro.criu.checkpoint import CheckpointEngine
from repro.criu.config import CriuConfig
from repro.criu.images import CheckpointImage
from repro.criu.restore import FullState, RestoreEngine
from repro.kernel.costmodel import PAGE_SIZE
from repro.net.link import Endpoint
from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover
    from repro.container.runtime import Container, ContainerRuntime

__all__ = ["LiveMigration", "MigrationStats"]


@dataclass
class MigrationStats:
    """What one migration cost."""

    rounds: list[int] = field(default_factory=list)  # pages shipped per round
    total_pages: int = 0
    total_bytes: int = 0
    #: Freeze -> restored-and-reattached, microseconds.
    downtime_us: int = 0
    #: First pre-copy byte -> destination serving, microseconds.
    total_us: int = 0
    converged: bool = False


class LiveMigration:
    """Migrates containers from one host/runtime to another."""

    def __init__(
        self,
        source_runtime: "ContainerRuntime",
        dest_runtime: "ContainerRuntime",
        source_endpoint: Endpoint,
        dest_endpoint: Endpoint,
        config: CriuConfig | None = None,
        max_precopy_rounds: int = 8,
        dirty_threshold_pages: int = 32,
        plug_egress_on_restore: bool = False,
    ) -> None:
        self.source_runtime = source_runtime
        self.dest_runtime = dest_runtime
        self.source_endpoint = source_endpoint
        self.dest_endpoint = dest_endpoint
        self.config = config if config is not None else CriuConfig.nilicon()
        self.max_precopy_rounds = max_precopy_rounds
        self.dirty_threshold_pages = dirty_threshold_pages
        #: Close the restored container's egress plug before it can run a
        #: single slice.  Set when migrating an output-committed (NiLiCon
        #: replicated) container: its output must stay fenced until the new
        #: pair's replication is re-established, with no unplugged window.
        self.plug_egress_on_restore = plug_egress_on_restore
        self.engine: Engine = source_runtime.kernel.engine
        self.checkpoint_engine = CheckpointEngine(source_runtime.kernel, self.config)
        self.restore_engine = RestoreEngine(dest_runtime.kernel, self.config)

    # ------------------------------------------------------------------ #
    def _transfer(self, payload: Any, n_pages: int, extra_bytes: int = 4096):
        """Ship *n_pages* (+metadata) over the migration link; returns an
        event that completes when the destination has received it."""
        size = n_pages * PAGE_SIZE + extra_bytes
        self.source_endpoint.send(
            {"kind": "migration", "payload": payload}, size_bytes=size
        )
        return self.dest_endpoint.recv()

    def _predump(self, container: "Container") -> Generator[Any, Any, dict[int, dict[int, bytes]]]:
        """Round 0: snapshot every resident page, without freezing."""
        procfs = self.source_runtime.kernel.procfs
        shipment: dict[int, dict[int, bytes]] = {}
        for process in container.processes:
            # Start (or restart) dirty tracking for the following rounds.
            yield from procfs.clear_refs(process)
            pages = process.mm.full_snapshot()
            # Pre-dump reads memory from outside (process_vm_readv-style);
            # charge proportional copy time.
            yield self.engine.timeout(
                self.source_runtime.kernel.costs.page_copy_cost(len(pages))
            )
            shipment[process.pid] = pages
        return shipment

    def _dirty_round(self, container: "Container") -> Generator[Any, Any, dict[int, dict[int, bytes]]]:
        """One pre-copy iteration: ship pages dirtied since the last round."""
        procfs = self.source_runtime.kernel.procfs
        shipment: dict[int, dict[int, bytes]] = {}
        for process in container.processes:
            dirty = yield from procfs.pagemap_dirty(process)
            snapshot = process.mm.snapshot_pages(sorted(dirty))
            yield from procfs.clear_refs(process)
            yield self.engine.timeout(
                self.source_runtime.kernel.costs.page_copy_cost(len(snapshot))
            )
            shipment[process.pid] = snapshot
        return shipment

    # ------------------------------------------------------------------ #
    def migrate(self, container: "Container") -> Generator[Any, Any, tuple["Container", MigrationStats]]:
        """Move *container* to the destination; returns (new container, stats)."""
        stats = MigrationStats()
        start = self.engine.now
        bridge = container.bridge

        # Accumulated page state at the destination, per source pid.
        dest_pages: dict[int, dict[int, bytes]] = {}

        def absorb(shipment: dict[int, dict[int, bytes]]) -> int:
            count = 0
            for pid, pages in shipment.items():
                dest_pages.setdefault(pid, {}).update(pages)
                count += len(pages)
            return count

        # Round 0: full pre-dump, then iterate on the dirty delta.
        shipment = yield from self._predump(container)
        shipped = absorb(shipment)
        stats.rounds.append(shipped)
        yield self._transfer(shipment, shipped)

        for _round in range(self.max_precopy_rounds):
            shipment = yield from self._dirty_round(container)
            shipped = absorb(shipment)
            stats.rounds.append(shipped)
            yield self._transfer(shipment, shipped)
            if shipped <= self.dirty_threshold_pages:
                stats.converged = True
                break

        # Stop-and-copy: block input first (SSIII — packets arriving after
        # the socket snapshot would be acknowledged by the source's kernel
        # and then lost with it), then freeze and take the final state.
        freeze_start = self.engine.now
        container.veth.ingress_plug.plug()
        yield self.engine.timeout(self.source_runtime.kernel.costs.plug_block)
        yield from container.freeze(poll=self.config.freeze_poll)
        image: CheckpointImage = yield from self.checkpoint_engine.checkpoint(
            container, incremental=True
        )
        final_pages = 0
        for pimage in image.processes:
            dest_pages.setdefault(pimage.pid, {}).update(pimage.pages)
            final_pages += pimage.page_count
        stats.rounds.append(final_pages)
        yield self._transfer(image, final_pages, extra_bytes=image.size_bytes())

        # Restore on the destination (veth detached; input cannot race the
        # socket restore, SSIII).
        state = FullState(
            spec=container.spec,
            processes=[
                {
                    "comm": p.comm,
                    "vmas": p.vmas,
                    "pages": dest_pages.get(p.pid, {}),
                    "threads": p.threads,
                    "fd_entries": p.fd_entries,
                }
                for p in image.processes
            ],
            sockets=image.sockets,
            namespaces=image.namespaces,
            cgroup=image.cgroup,
            fs_inode_entries=image.fs_inode_entries,
            fs_page_entries=image.fs_page_entries,
        )
        # The source must release its name/address before the destination
        # runtime can own them.
        self.source_runtime.containers.pop(container.name, None)
        container.veth.detach()
        new_container = yield from self.restore_engine.restore(self.dest_runtime, state)
        if self.plug_egress_on_restore:
            new_container.veth.egress_plug.plug()

        costs = self.dest_runtime.kernel.costs
        yield self.engine.timeout(costs.bridge_reconnect)
        port = bridge.attach(new_container.veth)
        yield self.engine.timeout(costs.gratuitous_arp)
        bridge.gratuitous_arp(container.spec.ip, port)
        new_container.start_keepalive()

        stats.downtime_us = self.engine.now - freeze_start
        stats.total_us = self.engine.now - start
        stats.total_pages = sum(stats.rounds)
        stats.total_bytes = stats.total_pages * PAGE_SIZE + image.size_bytes()

        # The source container is gone (its state now lives elsewhere).
        container.destroy()
        return new_container, stats
