"""Backup-side stores of committed checkpoint pages.

Stock CRIU keeps incremental checkpoints as a linked list of directories;
processing each received page requires walking the list to find and drop a
previous copy — cost grows with the number of checkpoints taken.  NiLiCon
replaces this with a four-level radix tree "mimicking the implementation of
the hardware page tables", making per-page processing O(1) and independent
of history (paper §V-A, the first CRIU optimization).

Both implementations below are *content-equivalent* (property-tested
against a plain dict oracle); they differ in the simulated processing cost
they report per stored page, which the backup agent charges as CPU time.
"""

from __future__ import annotations

from typing import Dict, Iterator, Protocol

from repro.kernel.costmodel import CostModel

__all__ = ["LinkedListPageStore", "PageStore", "RadixTreePageStore", "RADIX_BITS"]

#: Radix-tree fanout: 9 bits per level, 4 levels — the x86-64 page-table
#: shape the paper's optimization mimics.
RADIX_BITS = 9
RADIX_FANOUT = 1 << RADIX_BITS
RADIX_LEVELS = 4


class PageStore(Protocol):
    """What the backup agent requires of a page store.

    A checkpoint is *open* between :meth:`begin_checkpoint` and either
    :meth:`commit_checkpoint` or :meth:`abort_checkpoint`.  Abort undoes
    every page stored since the matching begin, restoring the store to the
    last committed checkpoint — the rollback a failover needs when it
    interrupts an in-flight commit.
    """

    #: Lifetime pages stored (perf-profiler harvest).
    pages_stored: int

    @property
    def checkpoint_open(self) -> bool: ...

    def begin_checkpoint(self) -> None: ...

    def commit_checkpoint(self) -> None: ...

    def abort_checkpoint(self) -> None: ...

    def store_page(self, pid: int, page_idx: int, content: bytes) -> int: ...

    def pages_of(self, pid: int) -> Dict[int, bytes]: ...

    def lookup(self, pid: int, page_idx: int) -> bytes | None: ...


class RadixTreePageStore:
    """NiLiCon's store: per-pid four-level radix tree, O(1) per page."""

    def __init__(self, costs: CostModel) -> None:
        self.costs = costs
        self._roots: dict[int, list] = {}
        self.checkpoints_taken = 0
        #: Lifetime pages stored (perf-profiler harvest; always on).
        self.pages_stored = 0
        #: Allocated interior nodes (diagnostics; shows the tree is real).
        self.nodes_allocated = 0
        #: Undo log of the open checkpoint: (pid, page_idx, prior content or
        #: None) per slot overwritten since begin_checkpoint.
        self._undo: list[tuple[int, int, bytes | None]] = []
        self._open = False

    @property
    def checkpoint_open(self) -> bool:
        return self._open

    def _new_node(self) -> list:
        self.nodes_allocated += 1
        return [None] * RADIX_FANOUT

    def begin_checkpoint(self) -> None:
        self.checkpoints_taken += 1
        self._open = True
        self._undo.clear()

    def commit_checkpoint(self) -> None:
        self._open = False
        self._undo.clear()

    def abort_checkpoint(self) -> None:
        """Roll the tree back to the last committed checkpoint."""
        if not self._open:
            return
        for pid, page_idx, prior in reversed(self._undo):
            i0, i1, i2, i3 = self._indices(page_idx)
            node = self._roots[pid]
            for idx in (i0, i1, i2):
                node = node[idx]
            node[i3] = prior
        self._undo.clear()
        self._open = False
        self.checkpoints_taken -= 1

    @staticmethod
    def _indices(page_idx: int) -> tuple[int, int, int, int]:
        return (
            (page_idx >> (3 * RADIX_BITS)) & (RADIX_FANOUT - 1),
            (page_idx >> (2 * RADIX_BITS)) & (RADIX_FANOUT - 1),
            (page_idx >> RADIX_BITS) & (RADIX_FANOUT - 1),
            page_idx & (RADIX_FANOUT - 1),
        )

    def store_page(self, pid: int, page_idx: int, content: bytes) -> int:  # hot: per-page -- every committed page funnels through here
        """Store one page; returns the processing cost in microseconds."""
        self.pages_stored += 1
        root = self._roots.get(pid)
        if root is None:
            root = self._roots[pid] = self._new_node()
        i0, i1, i2, i3 = self._indices(page_idx)
        node = root
        for idx in (i0, i1, i2):
            child = node[idx]
            if child is None:
                child = node[idx] = self._new_node()
            node = child
        if self._open:
            self._undo.append((pid, page_idx, node[i3]))
        node[i3] = content
        return self.costs.pagestore_radix_per_page

    def lookup(self, pid: int, page_idx: int) -> bytes | None:
        node = self._roots.get(pid)
        if node is None:
            return None
        i0, i1, i2, i3 = self._indices(page_idx)
        for idx in (i0, i1, i2):
            node = node[idx]
            if node is None:
                return None
        return node[i3]

    def _walk(self, node: list, prefix: int, level: int) -> Iterator[tuple[int, bytes]]:
        for idx, child in enumerate(node):
            if child is None:
                continue
            key = (prefix << RADIX_BITS) | idx
            if level == RADIX_LEVELS - 1:
                yield key, child
            else:
                yield from self._walk(child, key, level + 1)

    def pages_of(self, pid: int) -> Dict[int, bytes]:
        root = self._roots.get(pid)
        if root is None:
            return {}
        return dict(self._walk(root, 0, 0))


class LinkedListPageStore:
    """Stock CRIU's store: a linked list of checkpoint directories.

    Every received page triggers a scan through previous directories to
    find and remove an older copy, so per-page cost grows with checkpoint
    count — the pathology NiLiCon's radix tree removes.
    """

    def __init__(self, costs: CostModel) -> None:
        self.costs = costs
        #: Oldest-first list of {(pid, page_idx): content} directories.
        self._dirs: list[dict[tuple[int, int], bytes]] = []
        self.checkpoints_taken = 0
        #: Lifetime pages stored (perf-profiler harvest; always on).
        self.pages_stored = 0
        #: Undo log of the open checkpoint: stale copies popped from earlier
        #: directories, as (directory index, key, content).
        self._undo: list[tuple[int, tuple[int, int], bytes]] = []
        self._open = False

    @property
    def checkpoint_open(self) -> bool:
        return self._open

    def begin_checkpoint(self) -> None:
        self.checkpoints_taken += 1
        self._dirs.append({})
        self._open = True
        self._undo.clear()

    def commit_checkpoint(self) -> None:
        self._open = False
        self._undo.clear()

    def abort_checkpoint(self) -> None:
        """Drop the open directory and restore the stale copies it evicted."""
        if not self._open:
            return
        self._dirs.pop()
        for dir_idx, key, content in reversed(self._undo):
            self._dirs[dir_idx][key] = content
        self._undo.clear()
        self._open = False
        self.checkpoints_taken -= 1

    def store_page(self, pid: int, page_idx: int, content: bytes) -> int:  # hot: per-page -- stock-CRIU path; cost grows with checkpoint count
        self.pages_stored += 1
        if not self._dirs:
            self.begin_checkpoint()
        key = (pid, page_idx)
        # Walk all previous directories, dropping stale copies.
        searched = 0
        for dir_idx, directory in enumerate(self._dirs[:-1]):
            searched += 1
            stale = directory.pop(key, None)
            if stale is not None and self._open:
                self._undo.append((dir_idx, key, stale))
        self._dirs[-1][key] = content
        return (searched + 1) * self.costs.pagestore_list_per_page_per_ckpt

    def lookup(self, pid: int, page_idx: int) -> bytes | None:
        key = (pid, page_idx)
        for directory in reversed(self._dirs):
            if key in directory:
                return directory[key]
        return None

    def pages_of(self, pid: int) -> Dict[int, bytes]:
        merged: dict[int, bytes] = {}
        for directory in self._dirs:
            for (owner, page_idx), content in directory.items():
                if owner == pid:
                    merged[page_idx] = content
        return merged
