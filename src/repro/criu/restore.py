"""The restore engine: rebuild a container from committed checkpoint state.

Runs on the backup host at failover.  The input is the *materialized full
state* the backup agent assembles from its buffers (committed page store +
latest in-kernel component images) — the backup deliberately does not
maintain a ready-to-go container during normal operation (§III: applying
in-kernel state changes per epoch would cost hundreds of milliseconds of
system calls; NiLiCon buffers instead and pays the cost once, here).

Restore order matters and is preserved from the paper: the veth stays
detached from the bridge for the entire restore so that no TCP packet can
reach a half-restored namespace and trigger an RST (§III).  The caller (the
backup agent) reattaches and sends the gratuitous ARP afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator

from repro.container.spec import ContainerSpec
from repro.criu.config import CriuConfig
from repro.kernel.fs import OpenFile
from repro.kernel.kernel import Kernel
from repro.kernel.mm import AddressSpace, Vma
from repro.kernel.namespaces import MountEntry
from repro.kernel.task import FdEntry

if TYPE_CHECKING:  # pragma: no cover
    from repro.container.runtime import Container, ContainerRuntime

__all__ = ["FullState", "RestoreEngine"]


@dataclass
class FullState:
    """Materialized container state handed to the restore engine."""

    spec: ContainerSpec
    #: Per-process: comm, vmas (descriptors), pages {idx: content},
    #: threads (descriptors), fd_entries.
    processes: list[dict] = field(default_factory=list)
    sockets: list[dict] = field(default_factory=list)
    namespaces: dict | None = None
    cgroup: dict | None = None
    fs_inode_entries: list[dict] = field(default_factory=list)
    fs_page_entries: list[tuple[str, int, bytes]] = field(default_factory=list)

    @property
    def total_pages(self) -> int:
        return sum(len(p["pages"]) for p in self.processes)

    @property
    def total_threads(self) -> int:
        return sum(len(p["threads"]) for p in self.processes)


class RestoreEngine:
    """Restores containers on one (backup) host."""

    def __init__(self, kernel: Kernel, config: CriuConfig | None = None) -> None:
        self.kernel = kernel
        self.config = config if config is not None else CriuConfig.nilicon()

    def restore(
        self, runtime: "ContainerRuntime", state: FullState
    ) -> Generator[Any, Any, "Container"]:
        """Rebuild the container; returns it still detached from the bridge."""
        costs = self.kernel.costs

        # Fork the CRIU restore process, parse images.
        yield self.kernel.charge(costs.restore_fixed)

        # Recreate namespaces/cgroups/mounts, then detach the veth at once:
        # network input must stay blocked until every socket is back (SSIII).
        container = runtime.create(state.spec)
        container.veth.detach()
        yield self.kernel.charge(costs.restore_namespaces)
        if state.namespaces is not None:
            ns = container.namespaces
            ns.uts_hostname = state.namespaces["uts_hostname"]
            # Mounts added after container creation (spec mounts already
            # exist on the fresh namespace; reconcile by mountpoint).
            present = {m.mountpoint for m in ns.mounts}
            for mount_desc in state.namespaces.get("mounts", ()):
                if mount_desc["mountpoint"] not in present:
                    ns.mounts.append(MountEntry(**mount_desc))
            ns.version = state.namespaces["version"]
        if state.cgroup is not None:
            for key, value in state.cgroup.get("attributes", {}).items():
                container.cgroup.attributes[key] = value
            # cpuacct resumes from the dumped reading: the failure detector
            # only watches increases, so the counter must not jump backwards.
            container.cgroup.cpuacct_usage_us = state.cgroup.get(
                "cpuacct_usage_us", 0
            )
            container.cgroup.version = state.cgroup.get("version", 1)

        # Sockets come back right after the network namespace (SSIII: "the
        # network namespace must be restored before restoring the sockets"),
        # and *before* the bulk memory restore: their retransmission timers
        # then overlap the rest of the recovery work.
        n_socks = 0
        for sock_desc in state.sockets:
            if sock_desc["kind"] == "stack":
                # Stack-wide state: the ephemeral-port allocator must resume
                # past every port the dumped connections ever used, or a
                # post-failover connect() collides with a repaired socket.
                container.stack._next_ephemeral = sock_desc["next_ephemeral"]
        for sock_desc in state.sockets:
            if sock_desc["kind"] == "listener":
                listener = container.stack.socket()
                listener.listen(sock_desc["port"])
                n_socks += 1
        for sock_desc in state.sockets:
            if sock_desc["kind"] == "connection":
                sock = container.stack.socket()
                sock.repair = True
                sock.set_repair_state(
                    sock_desc["repair_state"], rto_patch=self.config.repair_rto_patch
                )
                sock.leave_repair()
                sock.kick_retransmit()
                n_socks += 1
        yield self.kernel.charge(n_socks * costs.restore_socket_per_socket)

        # Processes: rebuild address spaces and thread state.
        for process, pimage in zip(container.processes, state.processes):
            mm = AddressSpace(costs, name=f"{container.name}/{pimage['comm']}")
            for desc in pimage["vmas"]:
                mm.mmap(Vma.from_description(desc))
            non_empty = {
                idx: tok for idx, tok in pimage["pages"].items() if tok != b""
            }
            mm.restore_pages(non_empty)
            process.mm = mm
            yield self.kernel.charge(len(non_empty) * costs.restore_per_page)

            thread_descs = pimage["threads"]
            while len(process.tasks) < len(thread_descs):
                process.spawn_thread()
            del process.tasks[len(thread_descs) :]
            for task, desc in zip(process.tasks, thread_descs):
                task.restore_from(desc)
            yield self.kernel.charge(len(thread_descs) * costs.restore_per_thread)
            # Memory tracking restarts fresh on the backup.
            mm.start_tracking("soft_dirty")

        # Filesystem cache: replay via chown/pwrite-style calls.
        fs_list = container.mounted_filesystems()
        if fs_list and (state.fs_inode_entries or state.fs_page_entries):
            fs = fs_list[0]
            fs.apply_fc_checkpoint(state.fs_inode_entries, state.fs_page_entries)
            yield self.kernel.charge(
                len(state.fs_inode_entries) * costs.restore_inode_entry
                + len(state.fs_page_entries) * costs.restore_pagecache_per_page
            )

        # fd tables: plain files reopen at their dumped offsets (after the
        # fs-cache replay above, so files created mid-epoch exist).  Socket
        # fds were re-established by repair mode; std streams by the runtime.
        for process, pimage in zip(container.processes, state.processes):
            for fd_desc in pimage.get("fd_entries", ()):
                if fd_desc["kind"] != "file" or "path" not in fd_desc:
                    continue
                fs = next(
                    (f for f in fs_list if f.exists(fd_desc["path"])), None
                )
                if fs is None:
                    continue
                open_file = OpenFile(
                    inode=fs.lookup(fd_desc["path"]),
                    offset=fd_desc["offset"],
                    flags=fd_desc["flags"],
                )
                entry = FdEntry(
                    fd=fd_desc["fd"], kind="file", obj=open_file,
                    flags=fd_desc["flags"],
                )
                process.fds[entry.fd] = entry
                process._next_fd = max(process._next_fd, entry.fd + 1)

        # Finalization: cgroup attach, credentials, cache warmup.
        yield self.kernel.charge(costs.restore_finalize)

        return container
