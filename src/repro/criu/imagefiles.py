"""CRIU image files: the on-disk checkpoint format.

At failover, NiLiCon's backup agent "uses the committed state to create
image files in a format that CRIU expects" and forks a CRIU process to
restore from them (paper §IV).  This module implements that format for the
simulated substrate: a named set of image files, one per state category,
mirroring CRIU's real layout (``pstree.img``, per-pid ``core``/``mm``
images, a ``pagemap``+``pages`` pair, socket images, namespace images).

Serialization is byte-real: metadata images are encoded Python literals,
and the pages image is a binary blob addressed by the pagemap index — so
the restore path genuinely parses what the dump path wrote, and the
round-trip is property-tested.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.container.spec import ContainerSpec, ProcessSpec
from repro.criu.restore import FullState
from repro.workloads.protocol import decode_body, encode_body

__all__ = ["read_image_files", "write_image_files"]

MAGIC = b"NLCN"


def _meta_image(obj) -> bytes:
    return MAGIC + encode_body(obj)


def _parse_meta(blob: bytes):
    if not blob.startswith(MAGIC):
        raise ValueError("bad image magic")
    return decode_body(blob[len(MAGIC):])


def _pages_images(pages: dict[int, bytes]) -> tuple[bytes, bytes]:
    """(pagemap.img, pages.img): an index of (page_idx, offset, length)
    entries plus one concatenated payload blob."""
    index = []
    payload = bytearray()
    for page_idx in sorted(pages):
        content = pages[page_idx]
        index.append((page_idx, len(payload), len(content)))
        payload += content
    return _meta_image(index), MAGIC + bytes(payload)


def _parse_pages(pagemap_blob: bytes, pages_blob: bytes) -> dict[int, bytes]:
    index = _parse_meta(pagemap_blob)
    if not pages_blob.startswith(MAGIC):
        raise ValueError("bad pages image magic")
    payload = pages_blob[len(MAGIC):]
    return {
        page_idx: payload[offset : offset + length]
        for page_idx, offset, length in index
    }


def write_image_files(state: FullState) -> dict[str, bytes]:
    """Materialize *state* as a CRIU-style image directory (name -> bytes)."""
    files: dict[str, bytes] = {}
    files["inventory.img"] = _meta_image(
        {"version": 1, "container": state.spec.name, "n_processes": len(state.processes)}
    )
    files["spec.img"] = _meta_image(asdict(state.spec))
    files["pstree.img"] = _meta_image(
        [{"comm": p["comm"], "n_threads": len(p["threads"])} for p in state.processes]
    )
    for i, process in enumerate(state.processes):
        files[f"core-{i}.img"] = _meta_image(process["threads"])
        files[f"mm-{i}.img"] = _meta_image(process["vmas"])
        files[f"fdinfo-{i}.img"] = _meta_image(process["fd_entries"])
        pagemap, pages = _pages_images(process["pages"])
        files[f"pagemap-{i}.img"] = pagemap
        files[f"pages-{i}.img"] = pages
    files["sk-tcp.img"] = _meta_image(state.sockets)
    files["netns.img"] = _meta_image(state.namespaces)
    files["cgroup.img"] = _meta_image(state.cgroup)
    files["fs-cache.img"] = _meta_image(
        {"inodes": state.fs_inode_entries, "pages": state.fs_page_entries}
    )
    return files


def read_image_files(files: dict[str, bytes]) -> FullState:
    """Parse an image directory back into restorable state."""
    inventory = _parse_meta(files["inventory.img"])
    spec_dict = _parse_meta(files["spec.img"])
    spec = ContainerSpec(
        name=spec_dict["name"],
        ip=spec_dict["ip"],
        processes=[ProcessSpec(**p) for p in spec_dict["processes"]],
        mounts=[tuple(m) for m in spec_dict["mounts"]],
        cgroup_attributes=dict(spec_dict["cgroup_attributes"]),
        n_cores=spec_dict["n_cores"],
    )
    pstree = _parse_meta(files["pstree.img"])
    if len(pstree) != inventory["n_processes"]:
        raise ValueError("pstree/inventory mismatch")
    processes = []
    for i, entry in enumerate(pstree):
        processes.append(
            {
                "comm": entry["comm"],
                "threads": _parse_meta(files[f"core-{i}.img"]),
                "vmas": _parse_meta(files[f"mm-{i}.img"]),
                "fd_entries": _parse_meta(files[f"fdinfo-{i}.img"]),
                "pages": _parse_pages(files[f"pagemap-{i}.img"], files[f"pages-{i}.img"]),
            }
        )
    fs_cache = _parse_meta(files["fs-cache.img"])
    return FullState(
        spec=spec,
        processes=processes,
        sockets=_parse_meta(files["sk-tcp.img"]),
        namespaces=_parse_meta(files["netns.img"]),
        cgroup=_parse_meta(files["cgroup.img"]),
        fs_inode_entries=fs_cache["inodes"],
        fs_page_entries=[tuple(e) for e in fs_cache["pages"]],
    )
