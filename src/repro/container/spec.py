"""Container and process specifications.

A spec is the static description the runtime materializes: how many
processes/threads, how much mapped memory, which libraries (memory-mapped
files — these drive the per-checkpoint ``stat`` storm of §V), which mounts,
and the container's network identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ContainerSpec", "ProcessSpec"]


@dataclass
class ProcessSpec:
    """One process to start in the container."""

    comm: str
    #: Worker threads in addition to the main thread are (n_threads - 1).
    n_threads: int = 1
    #: Size of the heap VMA in pages.
    heap_pages: int = 4096
    #: Number of distinct memory-mapped files (dynamic libraries etc.).
    n_mapped_files: int = 40
    #: Pages per mapped-file VMA.
    pages_per_mapped_file: int = 8


@dataclass
class ContainerSpec:
    """A container deployment description."""

    name: str
    ip: str
    processes: list[ProcessSpec] = field(default_factory=list)
    #: Mounts: (mountpoint, filesystem name on the host kernel).
    mounts: list[tuple[str, str]] = field(default_factory=list)
    #: cgroup attributes (cpu.shares etc.); checkpointed as container state.
    cgroup_attributes: dict[str, int] = field(default_factory=dict)
    #: Dedicated cores (paper: one core per worker thread/process).
    n_cores: int = 4

    @property
    def total_threads(self) -> int:
        return sum(p.n_threads for p in self.processes)
