"""runC-like container runtime over the simulated kernel.

A container is a set of processes sharing namespaces (including a network
namespace with its own TCP stack and a veth attached to the host bridge), a
control group with ``cpuacct`` accounting, and mounted filesystems.  The
runtime provides the freezer (virtual-signal pause/resume) that CRIU-style
checkpointing depends on, and the execution gate through which workloads
advance — which is what makes "the container is stopped" a real property of
the simulation rather than an assumption.
"""

from repro.container.runtime import Container, ContainerRuntime
from repro.container.spec import ContainerSpec, ProcessSpec

__all__ = ["Container", "ContainerRuntime", "ContainerSpec", "ProcessSpec"]
