"""The container runtime: creation, the freezer, and the execution gate.

Freeze fidelity (paper §II-B, §V-A): the runtime sends virtual signals to
every task; tasks in user code stop quickly, tasks in system calls are
kicked out.  Stock CRIU then sleeps 100 ms before checking; NiLiCon polls.
Here, workload processes execute through :meth:`Container.run_slice`, so
freezing has teeth: once the gate closes no workload slice starts, and the
freezer genuinely waits for in-flight slices to drain — the emergent wait is
the paper's "average busy looping time less than 1 ms".

The container's TCP stack keeps running while frozen (it is *kernel* state),
which is exactly why NiLiCon must block network input during checkpointing
(§III) — and the stack records any input processed while frozen so tests can
assert the hazard exists without blocking and disappears with it.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generator

from repro.container.spec import ContainerSpec, ProcessSpec
from repro.kernel.cgroup import Cgroup
from repro.kernel.errors import KernelError
from repro.kernel.fs import FileSystem
from repro.kernel.kernel import Kernel
from repro.kernel.mm import AddressSpace, Vma
from repro.kernel.namespaces import MountEntry, NamespaceSet, NetNamespace
from repro.kernel.netdev import Bridge, NetDevice
from repro.kernel.task import Process, Task, TaskState
from repro.kernel.tcp import TcpStack
from repro.sim.engine import Engine, Event
from repro.sim.resources import Gate, Semaphore

__all__ = ["Container", "ContainerRuntime"]

_mac_counter = itertools.count(1)


class Container:
    """A running container instance."""

    def __init__(self, kernel: Kernel, spec: ContainerSpec, bridge: Bridge) -> None:
        self.kernel = kernel
        self.engine: Engine = kernel.engine
        self.spec = spec
        self.name = spec.name

        # -- network namespace -------------------------------------------
        mac = f"02:00:00:00:00:{next(_mac_counter):02x}"
        self.stack = TcpStack(self.engine, kernel.costs, spec.ip, name=f"{spec.name}-netns")
        self.veth = NetDevice(f"{spec.name}-veth", spec.ip, mac, self.engine)
        self.stack.attach_device(self.veth)
        self.bridge = bridge
        bridge.attach(self.veth)
        netns = NetNamespace(name=f"{spec.name}-net", devices=[self.veth], stack=self.stack)

        # -- namespaces / cgroup ------------------------------------------
        self.namespaces = NamespaceSet(spec.name, netns)
        for mountpoint, fs_name in spec.mounts:
            self.namespaces.add_mount(MountEntry(mountpoint=mountpoint, source=fs_name))
            kernel.ftrace.trace("do_mount", self, mountpoint)
        self.cgroup = Cgroup(name=f"/sys/fs/cgroup/{spec.name}")
        for key, value in spec.cgroup_attributes.items():
            self.cgroup.set_attribute(key, value)
            kernel.ftrace.trace("cgroup_write", self, key)

        # -- processes ---------------------------------------------------------
        self.processes: list[Process] = []
        for pspec in spec.processes:
            self.processes.append(self._materialize_process(pspec))

        # -- execution control ---------------------------------------------------
        self.run_gate = Gate(self.engine, name=f"{spec.name}-gate", open_=True)
        #: Per-process CPU parallelism: at most n_threads concurrent slices.
        self._cpu_sems: dict[int, Semaphore] = {
            p.pid: Semaphore(self.engine, p.n_threads, name=f"{p.comm}-cpu")
            for p in self.processes
        }
        self.frozen = False
        self.dead = False
        #: Fractional CPU tax on every slice.  Zero for native containers;
        #: the MC baseline sets it to model VM-exit/virtualization overhead
        #: on guest execution.
        self.cpu_tax = 0.0
        self._active_slices = 0
        self._quiesce_waiters: list[Event] = []
        self._keepalive_on = False
        #: Accrued stopped time, for overhead breakdown metrics.
        self.total_frozen_us = 0
        self._frozen_since: int | None = None

    # ------------------------------------------------------------------ #
    # Construction helpers                                                 #
    # ------------------------------------------------------------------ #
    def _materialize_process(self, pspec: ProcessSpec) -> Process:
        mm = AddressSpace(self.kernel.costs, name=f"{self.name}/{pspec.comm}")
        # Layout: text+libs low, heap in the middle, stack high.
        next_page = 0x100
        for i in range(pspec.n_mapped_files):
            path = f"/usr/lib/{pspec.comm}/lib{i:03d}.so"
            mm.mmap(
                Vma(
                    start=next_page,
                    n_pages=pspec.pages_per_mapped_file,
                    prot="r-x",
                    kind="file",
                    file_path=path,
                )
            )
            self.kernel.ftrace.trace("do_mmap_file", self, path)
            next_page += pspec.pages_per_mapped_file
        heap_start = max(next_page, 0x10000)
        mm.mmap(Vma(start=heap_start, n_pages=pspec.heap_pages, kind="heap", name="[heap]"))
        mm.mmap(Vma(start=0x7F0000, n_pages=256, kind="stack", name="[stack]"))
        process = Process(comm=pspec.comm, address_space=mm)
        for _ in range(pspec.n_threads - 1):
            process.spawn_thread()
        self.kernel.adopt_process(process)
        return process

    @property
    def heap_vma(self) -> Vma:
        """Heap of the first process (workload convenience)."""
        return next(v for v in self.processes[0].mm.vmas if v.kind == "heap")

    def heap_vma_of(self, process: Process) -> Vma:
        return next(v for v in process.mm.vmas if v.kind == "heap")

    @property
    def tasks(self) -> list[Task]:
        return [t for p in self.processes for t in p.tasks]

    @property
    def n_threads(self) -> int:
        return len(self.tasks)

    # ------------------------------------------------------------------ #
    # Execution gate (workload driver API)                                 #
    # ------------------------------------------------------------------ #
    def run_slice(
        self,
        process: Process,
        work_us: int,
        mutate: Callable[[], None] | None = None,
    ) -> Generator[Any, Any, int]:
        """Execute *work_us* microseconds of workload CPU on *process*.

        Blocks while the container is frozen.  Dirty-tracking fault time
        accrued by the process's page writes is charged on top of the work
        (this is the runtime overhead component of Fig. 3).  Returns total
        microseconds charged.

        *mutate*, if given, runs synchronously at the end of the slice,
        while the slice still counts as active — so the freezer can never
        observe the container quiesced between the work and its state
        mutation.  Workloads use this for the page/file/socket writes the
        slice's computation produces.
        """
        while self.frozen:
            yield self.run_gate.wait()
        if self.dead:
            raise KernelError(f"{self.name}: run_slice on a dead container")
        sem = self._cpu_sems.get(process.pid)
        if sem is not None:
            yield sem.acquire()
            # The gate may have closed while queued for a CPU.
            while self.frozen:
                yield self.run_gate.wait()
            if self.dead:
                sem.release()
                raise KernelError(f"{self.name}: run_slice on a dead container")
        self._active_slices += 1
        try:
            if self.cpu_tax:
                work_us = int(work_us * (1.0 + self.cpu_tax))
            fault_before = process.mm.drain_fault_time()
            if work_us + fault_before > 0:
                yield self.engine.timeout(work_us + fault_before)
            if mutate is not None and not self.dead:
                mutate()
            # Faults incurred by the mutation itself are charged in-slice.
            fault_after = process.mm.drain_fault_time()
            if fault_after > 0:
                yield self.engine.timeout(fault_after)
            total = work_us + fault_before + fault_after
            process.leader.advance(total)
            self.cgroup.charge_cpu(total)
        finally:
            self._active_slices -= 1
            if sem is not None:
                sem.release()
            if self._active_slices == 0:
                waiters, self._quiesce_waiters = self._quiesce_waiters, []
                for event in waiters:
                    event.succeed(None)
        return total

    # ------------------------------------------------------------------ #
    # Freezer (SSII-B freeze, SSV-A optimization)                          #
    # ------------------------------------------------------------------ #
    def freeze(self, poll: bool = True) -> Generator[Any, Any, int]:
        """Stop all container tasks; returns the microseconds it took.

        ``poll=False`` reproduces stock CRIU's fixed 100 ms sleep; ``True``
        is NiLiCon's continuous polling (<1 ms typical).
        """
        if self.frozen:
            raise KernelError(f"{self.name}: freeze while already frozen")
        costs = self.kernel.costs
        start = self.engine.now
        self.frozen = True
        self.run_gate.close()
        self.cgroup.freezer_state = "FREEZING"
        # Deliver virtual signals to every task.
        yield self.engine.timeout(costs.freeze_signal_per_task * self.n_threads)
        if not poll:
            yield self.engine.timeout(costs.freeze_sleep_unoptimized)
        # Wait for in-flight work (tasks in user code / syscalls) to settle.
        while self._active_slices > 0:
            if poll:
                yield self.engine.timeout(costs.freeze_poll_interval)
            else:
                event = Event(self.engine)
                self._quiesce_waiters.append(event)
                yield event
        for task in self.tasks:
            task.state = TaskState.FROZEN
        self.stack.frozen = True
        self.cgroup.freezer_state = "FROZEN"
        self._frozen_since = self.engine.now
        return self.engine.now - start

    def thaw(self) -> Generator[Any, Any, None]:
        if not self.frozen:
            raise KernelError(f"{self.name}: thaw while not frozen")
        costs = self.kernel.costs
        yield self.engine.timeout(costs.thaw_per_task * self.n_threads)
        for task in self.tasks:
            task.state = TaskState.RUNNING
        self.stack.frozen = False
        self.frozen = False
        self.cgroup.freezer_state = "THAWED"
        if self._frozen_since is not None:
            self.total_frozen_us += self.engine.now - self._frozen_since
            self._frozen_since = None
        self.run_gate.open()

    # ------------------------------------------------------------------ #
    # Keep-alive (SSIV: defeats false alarms when idle)                    #
    # ------------------------------------------------------------------ #
    def start_keepalive(self, interval_us: int = 30_000) -> None:
        """A process that wakes every 30 ms and executes ~1000 instructions,
        keeping ``cpuacct.usage`` increasing while the container lives."""
        if self._keepalive_on:
            return
        self._keepalive_on = True

        def keepalive() -> Generator[Any, Any, None]:
            # Absolute 30 ms schedule: a wake-up that lands during a
            # checkpoint stop is *deferred* by the freezer and executes at
            # thaw, but the next wake-up still comes from the original
            # schedule (itimer semantics).  Re-arming after each deferred
            # wake would stretch the effective period beyond the heartbeat
            # window and starve the detector into false failovers.
            next_tick = self.engine.now + interval_us
            while not self.dead:
                delay = next_tick - self.engine.now
                if delay > 0:
                    yield self.engine.timeout(delay)
                while self.frozen and not self.dead:
                    yield self.run_gate.wait()
                if self.dead:
                    return
                self.cgroup.charge_cpu(1)  # ~1000 instructions
                next_tick += interval_us

        self.engine.process(keepalive(), name=f"{self.name}-keepalive")

    # ------------------------------------------------------------------ #
    # Mutation wrappers that fire ftrace hooks (SSV-B change detection)    #
    # ------------------------------------------------------------------ #
    def add_mount(self, mountpoint: str, source: str) -> None:
        self.namespaces.add_mount(MountEntry(mountpoint=mountpoint, source=source))
        self.kernel.ftrace.trace("do_mount", self, mountpoint)

    def set_hostname(self, hostname: str) -> None:
        self.namespaces.set_hostname(hostname)
        self.kernel.ftrace.trace("sethostname", self, hostname)

    def set_cgroup_attribute(self, key: str, value: int) -> None:
        self.cgroup.set_attribute(key, value)
        self.kernel.ftrace.trace("cgroup_write", self, key)

    def mmap_file(self, process: Process, path: str, n_pages: int) -> Vma:
        start = max((v.end for v in process.mm.vmas), default=0x100) + 16
        vma = process.mm.mmap(Vma(start=start, n_pages=n_pages, kind="file", file_path=path))
        self.kernel.ftrace.trace("do_mmap_file", self, path)
        return vma

    # ------------------------------------------------------------------ #
    # Mounted filesystems                                                  #
    # ------------------------------------------------------------------ #
    def mounted_filesystems(self) -> list[FileSystem]:
        return [
            self.kernel.filesystems[entry.source]
            for entry in self.namespaces.mounts
            if entry.source in self.kernel.filesystems
        ]

    # ------------------------------------------------------------------ #
    # Teardown                                                             #
    # ------------------------------------------------------------------ #
    def kill(self) -> None:
        """Fail-stop the container: no further execution, no network.

        Blocked workload slices are released so they observe ``dead`` and
        terminate (via the :class:`~repro.kernel.errors.KernelError` raised
        by :meth:`run_slice`).
        """
        self.dead = True
        self.veth.cable_cut = True
        self.frozen = False
        self.run_gate.open()

    def destroy(self) -> None:
        self.dead = True
        self.frozen = False
        self.run_gate.open()
        for process in self.processes:
            process.exit()
            self.kernel.reap_process(process)
        self.veth.detach()


class ContainerRuntime:
    """Factory for containers on one host kernel (the runC analogue)."""

    def __init__(self, kernel: Kernel, bridge: Bridge) -> None:
        self.kernel = kernel
        self.bridge = bridge
        self.containers: dict[str, Container] = {}

    def create(self, spec: ContainerSpec) -> Container:
        if spec.name in self.containers:
            raise KernelError(f"container {spec.name} already exists")
        container = Container(self.kernel, spec, self.bridge)
        self.containers[spec.name] = container
        return container

    def destroy(self, name: str) -> None:
        container = self.containers.pop(name, None)
        if container is not None:
            container.destroy()
