"""Output commit and input blocking (paper §II-A, §III, §V-C).

Output path: the container veth's egress plug is closed for the whole life
of the deployment.  At each checkpoint the primary agent inserts an epoch
barrier; when the backup acknowledges epoch *k*, :meth:`release_epoch`
drains exactly the barriers (and the packets fenced before them) with
epochs up to *k* — addressed by epoch id and idempotent, so duplicated,
reordered or dropped acknowledgments can never drain a later epoch's
barrier.  The audit log records every drained barrier against its own
epoch so tests can verify the output-commit invariant mechanically.

Input path: during checkpointing (and during restore on the backup),
incoming packets must not mutate container state.  Two implementations:

* ``firewall`` — stock CRIU: install iptables rules (7 ms per epoch) that
  *drop* packets; dropped SYNs stall TCP connect by seconds (§V-C).
* ``plug`` — NiLiCon: close the ingress plug (43 µs); packets buffer and
  are delivered after the checkpoint completes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Literal

from repro.kernel.costmodel import CostModel
from repro.sim.access import record_access
from repro.sim.engine import Engine
from repro.sim.trace import trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.container.runtime import Container

__all__ = ["NetworkBuffer", "ReleaseRecord"]


@dataclass
class ReleaseRecord:
    """Audit entry: the barrier of *epoch* was drained at *time*, when the
    highest backup-acknowledged epoch was *acked_epoch*.

    ``epoch`` is the *barrier's own* epoch (read off the drained barrier),
    never the epoch the caller asked to release — so the audit catches a
    release that drains the wrong barrier, not just a caller that asks for
    the wrong epoch.
    """

    epoch: int
    time: int
    acked_epoch: int
    packets: int


class NetworkBuffer:
    """Per-container output buffering and input blocking."""

    def __init__(
        self,
        engine: Engine,
        costs: CostModel,
        container: "Container",
        input_block: Literal["plug", "firewall"] = "plug",
        release_oldest: bool = False,
        initial_epoch: int = 0,
        commit_ledger_kind: str = "epoch_commit",
    ) -> None:
        self.engine = engine
        self.costs = costs
        self.container = container
        self.input_block_mode = input_block
        #: Durability-ledger kind the release path asserts against:
        #: ``"epoch_commit"`` under NiLiCon (the backup's checkpoint commit
        #: authorizes release), ``"log_commit"`` under HyCoR (a durable
        #: nondeterminism-log flush does).  Barrier ids are then epoch
        #: numbers or flush sequence numbers respectively.
        self.commit_ledger_kind = commit_ledger_kind
        #: Legacy pop-oldest-barrier release semantics (the non-idempotent
        #: bug; kept behind ``NiliconConfig.unsafe_release_oldest_barrier``
        #: so regression tests can demonstrate the failure it causes).
        self.release_oldest_mode = release_oldest
        #: Highest epoch the backup has acknowledged (set by the primary
        #: agent's ack listener before calling release_epoch).
        self.acked_epoch = initial_epoch - 1
        #: Durability-ledger floor: an adopted container may still hold
        #: barriers of epochs its *dead* backup never committed; those
        #: drain only once the new pairing's first full checkpoint (epoch
        #: ``initial_epoch``), which supersedes them, is durable — so their
        #: ordering obligation is asserted against that epoch's commit.
        self._ledger_floor = initial_epoch
        #: Output-commit audit log.
        self.releases: list[ReleaseRecord] = []
        self._barriers_inserted = 0
        # Engage Remus buffering: the egress plug never fully opens.
        container.veth.egress_plug.plug()
        self.input_blocked = False

    # -- output ---------------------------------------------------------------
    def insert_epoch_barrier(self, epoch: int) -> None:
        record_access(self.engine, self, "egress_barrier", "w", key=epoch,
                      site="netbuffer.insert_barrier")
        self.container.veth.egress_plug.insert_barrier(epoch)
        self._barriers_inserted += 1

    def release_epoch(self, epoch: int) -> int:
        """Release buffered output through epoch *epoch*'s barrier.

        Drains every queued barrier whose epoch is <= *epoch* — by epoch
        id, idempotently: a duplicated or reordered acknowledgment for an
        already-released epoch drains nothing, and a skipped ack is healed
        by the next one (cumulative-ack semantics).  Each drained barrier
        is recorded against its *own* epoch.  Returns packets released.
        """
        plug = self.container.veth.egress_plug
        if self.release_oldest_mode:
            # Legacy bug semantics: pop the oldest barrier unconditionally.
            barrier_epoch, released = plug.release_oldest()
            if barrier_epoch is None:
                return 0
            self._record_release(barrier_epoch, released)
            return released
        total = 0
        for barrier_epoch, released in plug.release_through(epoch):
            self._record_release(barrier_epoch, released)
            total += released
        return total

    def _record_release(self, barrier_epoch: int, packets: int) -> None:
        # Output commit (paper §II-A): draining epoch e's barrier is only
        # legal once the backup's commit of epoch e happens-before it.  The
        # ordered read asserts exactly that against the durability ledger
        # the backup agent writes at commit publication.
        record_access(self.engine, self, "egress_barrier", "w", key=barrier_epoch,
                      site="netbuffer.release_barrier")
        record_access(self.engine, f"durable:{self.container.name}",
                      self.commit_ledger_kind,
                      "r+", key=max(barrier_epoch, self._ledger_floor),
                      site="netbuffer.release_barrier")
        self.releases.append(
            ReleaseRecord(
                epoch=barrier_epoch,
                time=self.engine.now,
                acked_epoch=self.acked_epoch,
                packets=packets,
            )
        )
        trace(self.engine, "epoch", "output_released", epoch=barrier_epoch,
              packets=packets)

    def release_lag(self) -> int:
        """Barriers still queued whose epoch is already acknowledged.

        Zero in a correct implementation: an ack for epoch *k* must drain
        every barrier up to *k*.  Positive lag means acknowledged output is
        stuck behind the plug (the pop-oldest bug's other symptom)."""
        plug = self.container.veth.egress_plug
        return sum(1 for e in plug.barrier_epochs() if e <= self.acked_epoch)

    def drop_unreleased_output(self) -> int:
        """Failover: unacknowledged output must die with the primary."""
        return len(self.container.veth.egress_plug.drop_all())

    # -- input ----------------------------------------------------------------
    def block_input(self) -> Generator[Any, Any, None]:
        if self.input_blocked:
            return
        if self.input_block_mode == "plug":
            yield self.engine.timeout(self.costs.plug_block)
            self.container.veth.ingress_plug.plug()
        else:
            yield self.engine.timeout(self.costs.firewall_block)
            self.container.veth.firewall_drop_input = True
        self.input_blocked = True  # nlint: disable=RACE001 -- toggled only by the phase-sequenced epoch loop; a packet landing on the toggle instant is protocol-correct in either order (release discipline is on egress)

    def unblock_input(self) -> Generator[Any, Any, None]:
        if not self.input_blocked:
            return
        if self.input_block_mode == "plug":
            yield self.engine.timeout(self.costs.plug_unblock)
            self.container.veth.ingress_plug.unplug()
        else:
            yield self.engine.timeout(self.costs.firewall_unblock)
            self.container.veth.firewall_drop_input = False
        self.input_blocked = False

    # -- invariant check (used by tests and the validation experiment) ---------
    def audit_output_commit(self) -> list[str]:
        """Return violations of the output-commit invariant (empty = OK).

        Compares each drained barrier's *own* epoch against the
        acknowledged epoch at release time, so a release that pops the
        wrong (later) barrier is caught even when the requesting ack was
        itself legitimate.
        """
        violations = []
        for record in self.releases:
            if record.epoch > record.acked_epoch:
                violations.append(
                    f"epoch {record.epoch} output released at t={record.time} "
                    f"but backup had only acked epoch {record.acked_epoch}"
                )
        return violations
