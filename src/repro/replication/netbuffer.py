"""Output commit and input blocking (paper §II-A, §III, §V-C).

Output path: the container veth's egress plug is closed for the whole life
of the deployment.  At each checkpoint the primary agent inserts an epoch
barrier; when the backup acknowledges epoch *k*, :meth:`release_epoch`
drains exactly the packets buffered before barrier *k*.  The audit log
records every release against the acknowledged epoch so tests can verify
the output-commit invariant mechanically.

Input path: during checkpointing (and during restore on the backup),
incoming packets must not mutate container state.  Two implementations:

* ``firewall`` — stock CRIU: install iptables rules (7 ms per epoch) that
  *drop* packets; dropped SYNs stall TCP connect by seconds (§V-C).
* ``plug`` — NiLiCon: close the ingress plug (43 µs); packets buffer and
  are delivered after the checkpoint completes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Literal

from repro.kernel.costmodel import CostModel
from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover
    from repro.container.runtime import Container

__all__ = ["NetworkBuffer", "ReleaseRecord"]


@dataclass
class ReleaseRecord:
    """Audit entry: output released for *epoch* at *time*, when the highest
    backup-acknowledged epoch was *acked_epoch*."""

    epoch: int
    time: int
    acked_epoch: int
    packets: int


class NetworkBuffer:
    """Per-container output buffering and input blocking."""

    def __init__(
        self,
        engine: Engine,
        costs: CostModel,
        container: "Container",
        input_block: Literal["plug", "firewall"] = "plug",
    ) -> None:
        self.engine = engine
        self.costs = costs
        self.container = container
        self.input_block_mode = input_block
        #: Highest epoch the backup has acknowledged (set by the primary
        #: agent's ack listener before calling release_epoch).
        self.acked_epoch = -1
        #: Output-commit audit log.
        self.releases: list[ReleaseRecord] = []
        self._barriers_inserted = 0
        # Engage Remus buffering: the egress plug never fully opens.
        container.veth.egress_plug.plug()
        self.input_blocked = False

    # -- output ---------------------------------------------------------------
    def insert_epoch_barrier(self, epoch: int) -> None:
        self.container.veth.egress_plug.insert_barrier(epoch)
        self._barriers_inserted += 1

    def release_epoch(self, epoch: int) -> int:
        """Release epoch *epoch*'s buffered output (after its state is
        acknowledged).  Returns packets released."""
        released = self.container.veth.egress_plug.release_epoch()
        self.releases.append(
            ReleaseRecord(
                epoch=epoch,
                time=self.engine.now,
                acked_epoch=self.acked_epoch,
                packets=released,
            )
        )
        return released

    def drop_unreleased_output(self) -> int:
        """Failover: unacknowledged output must die with the primary."""
        return len(self.container.veth.egress_plug.drop_all())

    # -- input ----------------------------------------------------------------
    def block_input(self) -> Generator[Any, Any, None]:
        if self.input_blocked:
            return
        if self.input_block_mode == "plug":
            yield self.engine.timeout(self.costs.plug_block)
            self.container.veth.ingress_plug.plug()
        else:
            yield self.engine.timeout(self.costs.firewall_block)
            self.container.veth.firewall_drop_input = True
        self.input_blocked = True

    def unblock_input(self) -> Generator[Any, Any, None]:
        if not self.input_blocked:
            return
        if self.input_block_mode == "plug":
            yield self.engine.timeout(self.costs.plug_unblock)
            self.container.veth.ingress_plug.unplug()
        else:
            yield self.engine.timeout(self.costs.firewall_unblock)
            self.container.veth.firewall_drop_input = False
        self.input_blocked = False

    # -- invariant check (used by tests and the validation experiment) ---------
    def audit_output_commit(self) -> list[str]:
        """Return violations of the output-commit invariant (empty = OK)."""
        violations = []
        for record in self.releases:
            if record.epoch > record.acked_epoch:
                violations.append(
                    f"epoch {record.epoch} output released at t={record.time} "
                    f"but backup had only acked epoch {record.acked_epoch}"
                )
        return violations
