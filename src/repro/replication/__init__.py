"""NiLiCon: the container replication core (the paper's contribution).

A replicated deployment consists of:

* a **primary agent** (:mod:`~repro.replication.primary`) driving the epoch
  loop of Fig. 1: execute 30 ms → freeze → block input → checkpoint →
  resume → transfer → on backup ACK, release buffered output;
* a **backup agent** (:mod:`~repro.replication.backup`) buffering received
  state (it deliberately does *not* maintain a ready-to-go container, §III),
  committing pages into a store (:mod:`repro.criu.pagestore`), and — when
  the failure detector fires — restoring and reattaching the container;
* **network buffering** (:mod:`~repro.replication.netbuffer`): the output
  commit machinery with epoch barriers and the two input-blocking
  implementations (firewall vs plug);
* **DRBD** (:mod:`~repro.replication.drbd`): asynchronous disk mirroring
  with epoch barriers and backup-side buffering;
* the **infrequent-state cache** (:mod:`~repro.replication.statecache`)
  invalidated by ftrace hooks (§V-B);
* the **heartbeat failure detector** (:mod:`~repro.replication.heartbeat`);
* and the **manager** (:mod:`~repro.replication.manager`) that wires a
  whole deployment together for experiments.

Every §V optimization is a :class:`~repro.replication.config.NiliconConfig`
knob, so Table I's cumulative walk and per-optimization ablations are plain
parameter sweeps.
"""

from repro.replication.backup import BackupAgent
from repro.replication.config import NiliconConfig
from repro.replication.drbd import BackupDrbd, PrimaryDrbd
from repro.replication.heartbeat import FailureDetector, HeartbeatSender
from repro.replication.manager import ReplicatedDeployment
from repro.replication.netbuffer import NetworkBuffer
from repro.replication.primary import PrimaryAgent
from repro.replication.statecache import InfrequentStateCache

__all__ = [
    "BackupAgent",
    "BackupDrbd",
    "FailureDetector",
    "HeartbeatSender",
    "InfrequentStateCache",
    "NetworkBuffer",
    "NiliconConfig",
    "PrimaryAgent",
    "PrimaryDrbd",
    "ReplicatedDeployment",
]
