"""The primary agent: NiLiCon's epoch loop (paper Fig. 1, §IV).

Per epoch:

1. **Execute** — the container runs for 30 ms; its output buffers behind
   the egress plug; DRBD mirrors disk writes asynchronously; DNC bits track
   filesystem-cache changes; soft-dirty bits track memory writes.
2. **Stop** — freeze the container (virtual signals; poll or stock 100 ms
   sleep), block network input (plug or firewall), send the DRBD barrier.
3. **Local state copy** — run the CRIU checkpoint over the frozen
   container.  With the staging buffer, dirty pages are memcpy'd locally
   and the container resumes before transfer; without it, the container
   stays stopped until the backup confirms receipt.
4. **Resume + Send state** — unblock input, thaw, stream the image over
   the 10 GbE pair link.
5. **Release output** — when the backup acknowledges the epoch, release
   exactly that epoch's buffered packets (output commit).

All checkpoint-path work is charged as simulated time *while the container
is frozen*, which is how stop times (Table III/IV) and, through them,
overheads (Fig. 3, Table I) emerge from the cost model.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Generator

from repro.criu.checkpoint import CheckpointEngine
from repro.criu.collect import StateCollector
from repro.metrics.collector import EpochRecord, RunMetrics
from repro.net.link import Endpoint
from repro.replication.config import NiliconConfig
from repro.replication.drbd import PrimaryDrbd
from repro.replication.netbuffer import NetworkBuffer
from repro.replication.statecache import InfrequentStateCache, PageDigestCache
from repro.sim.access import record_access
from repro.sim.engine import Engine, Event, Interrupt, Process
from repro.sim.faults import coverage_mark, fault_point
from repro.sim.trace import trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.auditor import StateAuditor
    from repro.container.runtime import Container

__all__ = ["PrimaryAgent"]

# REGRESSION GENERATOR for NiliconConfig.unsafe_unlogged_draw: unseeded
# (OS entropy) and invisible to both the RngRegistry and the NDLog, so a
# record-mode run and its replay draw different values — exactly the bug
# class the ndflow analyzer exists to catch.
_UNLOGGED_RNG = random.Random()  # nd: unsafe -- unlogged-draw knob generator


class PrimaryAgent:
    """Drives replication of one container from the primary host."""

    def __init__(
        self,
        container: "Container",
        endpoint: Endpoint,
        config: NiliconConfig,
        netbuffer: NetworkBuffer,
        drbd: list[PrimaryDrbd],
        metrics: RunMetrics,
        auditor: "StateAuditor | None" = None,
        initial_epoch: int = 0,
    ) -> None:
        self.container = container
        self.kernel = container.kernel
        self.engine: Engine = container.engine
        self.endpoint = endpoint
        self.config = config
        self.netbuffer = netbuffer
        self.drbd = drbd
        self.metrics = metrics
        self.auditor = auditor

        self.criu = CheckpointEngine(self.kernel, config.criu)
        self.state_cache: InfrequentStateCache | None = None
        if config.criu.cache_infrequent_state:
            collector = StateCollector(self.kernel, config.criu)
            self.state_cache = InfrequentStateCache(self.kernel, collector, container)
        #: Per-page transfer-integrity CRCs, cached across epochs (host-side
        #: only; see docs/perf.md for the unoptimized regression mode).
        self.digest_cache = PageDigestCache(
            unoptimized=config.perf_unoptimized_digest
        )

        #: Continues an adopted container's numbering (0 for a fresh pair).
        self.epoch = initial_epoch
        self._stopped = False
        self._quiescing = False
        self._receipt_events: dict[int, Event] = {}
        self._processes: list[Process] = []
        self._epoch_process: Process | None = None
        self._ack_process: Process | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle                                                            #
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        self.metrics.started_at_us = self.engine.now
        self._epoch_process = self.engine.process(
            self._epoch_loop(), name="primary-epoch-loop"
        )
        self._ack_process = self.engine.process(
            self._ack_loop(), name="primary-ack-loop"
        )
        self._processes += [self._epoch_process, self._ack_process]

    def stop(self) -> None:
        """Stop cleanly at the next epoch boundary (experiment teardown).

        The ack loop sits blocked on ``endpoint.recv()`` between acks; a
        flag alone would leak it forever, so it is interrupted explicitly.
        Pending receipt events are resolved so an epoch loop mid-cycle in
        the non-staging path can complete its cycle and observe the flag
        instead of waiting for an ack that will never be processed.
        """
        self._stopped = True
        self.metrics.ended_at_us = self.engine.now
        for process in self._processes:
            if process.is_alive and process is not self.engine.active_process:
                process.interrupt("stopped")
        self._resolve_receipts()

    def quiesce(self) -> Generator[Any, Any, None]:
        """Stop checkpointing at the next epoch boundary, gently.

        Unlike :meth:`stop`, nothing is interrupted mid-cycle: the epoch
        loop finishes its current cycle (the container ends *thawed*, input
        unblocked) and then exits; the ack loop stays alive so in-flight
        acknowledgments keep draining output barriers.  Used by the fleet
        controller before re-pairing (backup-host loss) and before a
        planned migration.  Receipt events are resolved while waiting, so a
        non-staging cycle whose backup died mid-transfer cannot wedge the
        loop (and with it the container) frozen forever.
        """
        self._quiescing = True
        while self._epoch_process is not None and self._epoch_process.is_alive:  # ft: bounded -- the epoch loop checks _quiescing every cycle and exits; receipts are resolved below so it cannot wedge
            if self._receipt_events:
                self._resolve_receipts()
            yield self.engine.timeout(1_000)

    def crash(self) -> None:
        """Fail-stop: the agent dies instantly with its host.

        Safe to call from inside one of the agent's own processes (a
        fault-injection hook killing the primary mid-phase): the active
        process is skipped here and dies by the hook's own ``Interrupt``.
        """
        self._stopped = True
        self.metrics.ended_at_us = self.engine.now
        for process in self._processes:
            if process.is_alive and process is not self.engine.active_process:
                process.interrupt("fail-stop")
        # GC receipt bookkeeping: after a crash/failover nothing will ever
        # acknowledge these epochs.
        self._receipt_events.clear()

    def _resolve_receipts(self) -> None:
        for epoch in list(self._receipt_events):
            record_access(self.engine, self, "receipt_events", "w", key=epoch,
                          site="primary.resolve_receipts")
            event = self._receipt_events.pop(epoch)
            if not event.triggered:
                event.succeed(None)

    # ------------------------------------------------------------------ #
    # Epoch machinery                                                      #
    # ------------------------------------------------------------------ #
    def _epoch_loop(self) -> Generator[Any, Any, None]:
        try:
            # Seed the backup with a full checkpoint before the first epoch.
            yield from self._checkpoint_cycle(incremental=False)
            while not (self._stopped or self._quiescing):  # ft: bounded -- exits on stop/quiesce/kernel-failure, all checked every cycle
                yield self.engine.timeout(self.config.epoch_execute_us)
                if self._stopped or self._quiescing or self.kernel.failed:
                    return
                yield from self._checkpoint_cycle(incremental=True)
        except Interrupt:
            # Fail-stop: the agent dies silently with its host.
            coverage_mark(self.engine, "handler", "primary.epoch_interrupt")
            return
        except Exception:  # ft: defensive -- re-raises unless the host already fail-stopped
            if self.kernel.failed:
                return  # dying with the host is expected under fail-stop
            raise

    def _checkpoint_cycle(self, incremental: bool) -> Generator[Any, Any, None]:
        costs = self.kernel.costs
        epoch = self.epoch
        if self.config.unsafe_unlogged_draw:
            # Unlogged entropy stretching the epoch by up to 20 ms —
            # comparable to the epoch length itself, so record and replay
            # runs (each drawing fresh OS entropy) almost surely order
            # events differently: the oracle must report a divergence.
            yield self.engine.timeout(
                1 + int(_UNLOGGED_RNG.random() * 20_000)  # nd: unsafe -- knob
            )
        stop_start = self.engine.now

        freeze_us = yield from self.container.freeze(poll=self.config.criu.freeze_poll)
        trace(self.engine, "epoch", "frozen", epoch=epoch)
        stall = fault_point(self.engine, "primary.post_freeze", epoch=epoch)
        if stall:
            yield self.engine.timeout(stall)
        yield from self.netbuffer.block_input()
        trace(self.engine, "epoch", "input_blocked", epoch=epoch)
        for drbd in self.drbd:
            drbd.send_barrier(epoch)
        trace(self.engine, "epoch", "disk_barrier", epoch=epoch)

        if self.auditor is not None:
            # Audit the quiesced container before collection reads it: the
            # checkpoint must never capture inconsistent bookkeeping.
            # Host-CPU only; advances no simulated time.
            self.auditor.audit_epoch(self.container)

        stall = fault_point(self.engine, "primary.mid_collect", epoch=epoch)
        if stall:
            yield self.engine.timeout(stall)
        collect_start = self.engine.now
        provider = self.state_cache.provider if self.state_cache is not None else None
        image = yield from self.criu.checkpoint(
            self.container, incremental=incremental, infrequent_provider=provider
        )
        collect_us = self.engine.now - collect_start
        trace(self.engine, "epoch", "collected", epoch=epoch,
              dirty=image.dirty_page_count)
        # Digest the shipped pages so the backup can verify the transfer.
        # Host CPU only — zero simulated time, no trace events — so golden
        # digests are unaffected (same contract as the auditor above).
        page_digests = self.digest_cache.digest_image(
            image, processes=self.container.processes
        )

        # Epoch barrier: output buffered so far belongs to this epoch.
        self._insert_output_barrier(epoch)
        stall = fault_point(self.engine, "primary.post_barrier", epoch=epoch)
        if stall:
            yield self.engine.timeout(stall)

        sync_transfer_us = 0
        if self.config.staging_buffer:
            # The parasite transfer (charged during collection) already
            # landed the dirty pages in the agent's staging buffer — with
            # shared memory, that IS the staging copy.  Only a fixed
            # bookkeeping cost remains before the container may resume.
            yield self.engine.timeout(costs.syscall_base * 8)
        else:
            # Stopped until the backup confirms receipt: per-page socket
            # writes (plus proxy copies in the stock path), then wire time.
            transfer_start = self.engine.now
            per_page = costs.net_write_per_page
            fixed = 0
            if self.config.criu.use_proxy_processes:
                per_page += costs.proxy_per_page
                fixed += costs.proxy_fixed
            yield self.engine.timeout(fixed + image.dirty_page_count * per_page)
            # Register the receipt event *before* transmitting: an ack that
            # arrives before the epoch loop yields must find the event, not
            # allocate a second one that nobody will ever trigger.
            receipt = self._receipt_event(epoch)
            stall = fault_point(self.engine, "primary.pre_send", epoch=epoch)
            if stall:
                yield self.engine.timeout(stall)
            self._send_state(epoch, image, page_digests)
            stall = fault_point(
                self.engine, "primary.between_send_and_receipt", epoch=epoch
            )
            if stall:
                yield self.engine.timeout(stall)
            yield receipt
            sync_transfer_us = self.engine.now - transfer_start

        yield from self.netbuffer.unblock_input()
        yield from self.container.thaw()
        trace(self.engine, "epoch", "resumed", epoch=epoch)
        stop_us = self.engine.now - stop_start

        if self.config.staging_buffer:
            if self.config.compress_transfer:
                # Compression happens after resume, off the critical path.
                yield self.engine.timeout(
                    image.dirty_page_count * costs.compress_per_page
                )
            stall = fault_point(self.engine, "primary.pre_send", epoch=epoch)
            if stall:
                yield self.engine.timeout(stall)
            self._send_state(epoch, image, page_digests)
            stall = fault_point(
                self.engine, "primary.between_send_and_receipt", epoch=epoch
            )
            if stall:
                yield self.engine.timeout(stall)

        self.metrics.record_epoch(
            EpochRecord(
                epoch=epoch,
                at_us=self.engine.now,
                stop_us=stop_us,
                dirty_pages=image.dirty_page_count,
                state_bytes=image.size_bytes(),
                freeze_us=freeze_us,
                collect_us=collect_us,
                sync_transfer_us=sync_transfer_us,
                infrequent_from_cache=image.infrequent_from_cache,
            )
        )
        self.metrics.charge_primary_cpu(stop_us)
        self.epoch += 1

    # ------------------------------------------------------------------ #
    # Strategy hooks (overridden by the HyCoR mode; see replication/modes) #
    # ------------------------------------------------------------------ #
    def _insert_output_barrier(self, epoch: int) -> None:
        """Fence this epoch's buffered output at checkpoint time.

        NiLiCon inserts the per-epoch egress barrier that the backup's
        post-commit ack releases.  HyCoR overrides this to a no-op: its
        egress fences are flush-sequence barriers inserted by the log
        shipper, and checkpoints carry no release authority.
        """
        self.netbuffer.insert_epoch_barrier(epoch)

    def _state_extra(self, epoch: int) -> dict:
        """Extra fields for the epoch's state message (HyCoR adds the log
        flush sequence the checkpoint supersedes)."""
        return {}

    def _handle_message(self, kind: str, message: dict) -> None:
        """Mode-specific control messages on the ack channel (HyCoR's
        ``log_ack``); unknown kinds are ignored."""

    def _send_state(
        self, epoch: int, image, page_digests: dict[str, int] | None = None
    ) -> None:
        size = image.size_bytes()
        compressed = self.config.compress_transfer
        if compressed:
            size = max(1024, int(size * self.config.compression_ratio))
        message = {
            "kind": "state",
            "epoch": epoch,
            "image": image,
            "compressed": compressed,
            # Per-page CRCs for backup-side verification; metadata only
            # (a few bytes per page on the real wire), not charged.
            "page_digests": page_digests,
        }
        message.update(self._state_extra(epoch))
        self.endpoint.send(
            message,
            size_bytes=size,
            chunks=image.chunk_count(),
        )
        trace(self.engine, "epoch", "state_sent", epoch=epoch, bytes=size)

    def _receipt_event(self, epoch: int) -> Event:
        event = self._receipt_events.get(epoch)
        if event is None:
            # Registered by the epoch loop, popped by the ack loop: the
            # registration must happen-before the state send (else an ack
            # racing the registration allocates an orphan event) — exactly
            # what the detector checks via these records.
            record_access(self.engine, self, "receipt_events", "w", key=epoch,
                          site="primary.register_receipt")
            event = Event(self.engine)
            self._receipt_events[epoch] = event
        return event

    # ------------------------------------------------------------------ #
    # Acknowledgments → output release                                     #
    # ------------------------------------------------------------------ #
    def _ack_loop(self) -> Generator[Any, Any, None]:
        engine = self.engine  # hoisted off the per-ack hot loop (PERF004)
        while not self._stopped:
            try:
                delivery = yield self.endpoint.recv()
            except Interrupt:
                # Fail-stop / teardown.
                coverage_mark(engine, "handler", "primary.ack_interrupt")
                return
            message = delivery.message
            kind = message.get("kind")
            if kind == "receipt":
                # The backup holds the epoch's state; a frozen non-staging
                # container may thaw.  No release authority — that needs
                # the post-commit ack.
                record_access(engine, self, "receipt_events", "w",
                              key=message["epoch"], site="primary.ack_loop.receipt")
                event = self._receipt_events.pop(message["epoch"], None)
                if event is not None and not event.triggered:
                    event.succeed(None)
                continue
            if kind != "ack":
                self._handle_message(kind, message)
                continue
            epoch = message["epoch"]
            trace(engine, "epoch", "acked", epoch=epoch)
            self._on_ack(epoch)

    def _on_ack(self, epoch: int) -> None:
        """React to the backup's post-commit acknowledgment of *epoch*.

        NiLiCon: advance the acked high-water mark and drain every egress
        barrier up to it (output commit).  HyCoR overrides this — a
        checkpoint commit truncates replay work but releases no output.
        """
        engine = self.engine
        netbuffer = self.netbuffer
        # One read of the high-water mark per ack; the local tracks the
        # (single, cumulative) advance below.
        acked = netbuffer.acked_epoch
        if epoch > acked:
            record_access(engine, netbuffer, "acked_epoch", "w",
                          site="primary.ack_loop")
            netbuffer.acked_epoch = acked = epoch
        # Cumulative release: drain every barrier up to the highest
        # acknowledged epoch.  Addressed by epoch id, so a duplicated,
        # reordered or dropped ack can never pop a later epoch's
        # barrier — a skipped ack is healed by the next one.
        released = netbuffer.release_epoch(acked)
        self.metrics.packets_released += released
        self._wake_receipts(acked)

    def _wake_receipts(self, through: int) -> None:
        engine = self.engine
        for pending in sorted(self._receipt_events):  # nlint: disable=PERF003 -- receipts must wake in epoch order; the pending set is tiny
            if pending > through:
                break
            record_access(engine, self, "receipt_events", "w", key=pending,
                          site="primary.ack_loop.release_receipt")
            event = self._receipt_events.pop(pending)
            if not event.triggered:
                event.succeed(None)
