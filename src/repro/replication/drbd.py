"""DRBD-style replicated disks with Remus epoch barriers (paper §II-A, §IV).

The primary's block device gets a write hook: every committed block write is
asynchronously mirrored over the pair channel.  At each checkpoint the
primary agent sends a *barrier* marking the end of the epoch's writes.  The
backup buffers mirrored writes in memory, grouped by epoch; an epoch's
writes are applied to the backup disk only when the backup agent commits
that epoch (state + disk both received) — and discarded if the primary dies
first, exactly like RemusXen's DRBD patch.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Generator

from repro.kernel.blockdev import BlockDevice
from repro.kernel.costmodel import CostModel
from repro.net.link import Endpoint
from repro.sim.access import record_access
from repro.sim.engine import Engine, Event

__all__ = ["BackupDrbd", "PrimaryDrbd"]

#: Wire overhead per mirrored block write (header + block payload handled
#: via actual data length).
DISK_MSG_HEADER = 32


class PrimaryDrbd:
    """Primary-side DRBD: intercept writes, mirror them, emit barriers."""

    def __init__(self, device: BlockDevice, endpoint: Endpoint, disk_index: int = 0) -> None:
        self.device = device
        self.endpoint = endpoint
        self.disk_index = disk_index
        self.current_epoch = 0
        self.writes_this_epoch = 0
        device.add_write_hook(self._on_write)

    def _on_write(self, block_idx: int, data: bytes) -> None:
        self.writes_this_epoch += 1
        self.endpoint.send(
            {"kind": "disk_write", "disk": self.disk_index,
             "epoch": self.current_epoch, "block": block_idx, "data": data},
            size_bytes=DISK_MSG_HEADER + len(data),
        )

    def send_barrier(self, epoch: int) -> None:
        """Mark the end of *epoch*'s disk writes and roll to the next."""
        self.endpoint.send(
            {"kind": "disk_barrier", "disk": self.disk_index,
             "epoch": epoch, "writes": self.writes_this_epoch},
            size_bytes=DISK_MSG_HEADER,
        )
        self.current_epoch = epoch + 1
        self.writes_this_epoch = 0

    def detach(self) -> None:
        self.device.remove_write_hook(self._on_write)


class BackupDrbd:
    """Backup-side DRBD: buffer mirrored writes, apply on epoch commit."""

    def __init__(self, engine: Engine, costs: CostModel, device: BlockDevice) -> None:
        self.engine = engine
        self.costs = costs
        self.device = device
        #: epoch -> ordered list of (block_idx, data).
        self._pending: dict[int, list[tuple[int, bytes]]] = defaultdict(list)
        #: epoch -> declared write count from the barrier message.
        self._barrier_counts: dict[int, int] = {}
        #: epoch -> event triggered when all of the epoch's writes are here.
        self._complete_events: dict[int, Event] = {}
        self.committed_epochs: list[int] = []

    # -- receive path (called by the backup agent's dispatcher) -----------------
    def on_disk_write(self, epoch: int, block_idx: int, data: bytes) -> None:
        record_access(self.engine, self, "disk_pending", "w", key=epoch,
                      site="drbd.on_disk_write")
        self._pending[epoch].append((block_idx, data))
        self._maybe_complete(epoch)

    def on_barrier(self, epoch: int, writes: int) -> None:
        record_access(self.engine, self, "disk_pending", "w", key=epoch,
                      site="drbd.on_barrier")
        self._barrier_counts[epoch] = writes
        self._maybe_complete(epoch)

    def _maybe_complete(self, epoch: int) -> None:
        expected = self._barrier_counts.get(epoch)
        if expected is None or len(self._pending.get(epoch, ())) < expected:
            return
        event = self._complete_events.get(epoch)
        if event is not None and not event.triggered:
            event.succeed(None)

    def epoch_complete(self, epoch: int) -> Event:
        """Event triggering once every write of *epoch* (per its barrier)
        has been received.  Triggers immediately if already complete."""
        event = self._complete_events.get(epoch)
        if event is None:
            event = Event(self.engine)
            self._complete_events[epoch] = event
            expected = self._barrier_counts.get(epoch)
            if expected is not None and len(self._pending.get(epoch, ())) >= expected:
                event.succeed(None)
        return event

    def is_epoch_complete(self, epoch: int) -> bool:
        expected = self._barrier_counts.get(epoch)
        return expected is not None and len(self._pending.get(epoch, ())) >= expected

    # -- commit / discard ----------------------------------------------------------
    def pending_write_count(self, epoch: int) -> int:
        """Buffered (uncommitted) writes held for *epoch*."""
        record_access(self.engine, self, "disk_pending", "r", key=epoch,
                      site="drbd.pending_count")
        return len(self._pending.get(epoch, ()))

    def apply_epoch(self, epoch: int) -> int:
        """Synchronously apply *epoch*'s buffered writes to the backup disk.

        No simulated time passes here: the caller charges the commit cost
        beforehand so this can run inside an atomic (no-yield) publication
        section — a recovery that interrupts the commit then sees either no
        write of the epoch applied or all of them.
        """
        record_access(self.engine, self, "disk_pending", "w", key=epoch,
                      site="drbd.apply_epoch")
        writes = self._pending.pop(epoch, [])
        self._barrier_counts.pop(epoch, None)
        self._complete_events.pop(epoch, None)
        for block_idx, data in writes:
            # Raw write: must not re-trigger mirroring hooks on the backup.
            self.device.write_block_raw(block_idx, data)
        self.committed_epochs.append(epoch)
        return len(writes)

    def commit_epoch(self, epoch: int) -> Generator[Any, Any, int]:
        """Charge then apply *epoch*'s writes (compat wrapper used by older
        call sites and tests; the backup agent charges and applies
        separately so the apply can be atomic)."""
        n = self.pending_write_count(epoch)
        yield self.engine.timeout(n * self.costs.backup_disk_commit_per_block)
        applied = self.apply_epoch(epoch)
        return applied

    def discard_uncommitted(self) -> int:
        """Failover: drop every buffered-but-uncommitted epoch."""
        record_access(self.engine, self, "disk_pending", "w",
                      site="drbd.discard_uncommitted")
        dropped = sum(len(v) for v in self._pending.values())
        self._pending.clear()
        self._barrier_counts.clear()
        self._complete_events.clear()
        return dropped
