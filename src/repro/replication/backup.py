"""The backup agent: buffer, commit, acknowledge — and recover (paper §IV).

During normal operation the backup agent:

* receives checkpoint state over the pair channel, charging per-chunk read
  cost (finer-grained arrivals cost more backup CPU — Table V's Node vs
  Redis discussion);
* waits until the matching DRBD barrier's disk writes are all present,
  sends the acknowledgment (which lets the primary release that epoch's
  buffered network output), then *commits*: pages into the committed page
  store (radix tree or linked list), in-kernel component descriptions into
  buffers, DRBD writes onto the backup disk.

The backup deliberately maintains **no ready-to-go container** (§III) —
applying hundreds of in-kernel state changes per epoch would cost too many
system calls.  All of it is applied only at failover, in
:meth:`BackupAgent._recover`, which implements §IV's recovery sequence:
discard uncommitted state, build CRIU images from committed state, restore
with the namespace detached from the bridge, reattach, gratuitous ARP.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.container.spec import ContainerSpec
from repro.criu.images import CheckpointImage
from repro.criu.pagestore import LinkedListPageStore, PageStore, RadixTreePageStore
from repro.criu.restore import FullState, RestoreEngine
from repro.kernel.netdev import Bridge
from repro.metrics.collector import RecoveryBreakdown, RunMetrics
from repro.net.link import Endpoint
from repro.replication.config import NiliconConfig
from repro.replication.drbd import BackupDrbd
from repro.replication.heartbeat import FailureDetector
from repro.sim.engine import Engine, Event, Interrupt, Process
from repro.sim.resources import Queue
from repro.sim.trace import trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.auditor import StateAuditor
    from repro.container.runtime import Container, ContainerRuntime

__all__ = ["BackupAgent"]


class BackupAgent:
    """Receives replication state for one container on the backup host."""

    def __init__(
        self,
        engine: Engine,
        runtime: "ContainerRuntime",
        endpoint: Endpoint,
        config: NiliconConfig,
        spec: ContainerSpec,
        bridge: Bridge,
        drbd: list[BackupDrbd],
        metrics: RunMetrics,
        on_failover: Callable[["Container"], None] | None = None,
        auditor: "StateAuditor | None" = None,
    ) -> None:
        self.engine = engine
        self.runtime = runtime
        self.kernel = runtime.kernel
        self.endpoint = endpoint
        self.config = config
        self.spec = spec
        self.bridge = bridge
        self.drbd = drbd
        self.metrics = metrics
        self.on_failover = on_failover
        self.auditor = auditor

        costs = self.kernel.costs
        self.page_store: PageStore = (
            RadixTreePageStore(costs) if config.page_store == "radix" else LinkedListPageStore(costs)
        )
        self.restore_engine = RestoreEngine(self.kernel, config.criu)
        self.detector = FailureDetector(
            engine,
            on_failure=self._on_failure_detected,
            interval_us=config.heartbeat_interval_us,
            miss_threshold=config.heartbeat_miss_threshold,
        )

        #: Latest committed in-kernel component state.
        self._process_components: list[dict] = []
        self._sockets: list[dict] = []
        self._namespaces: dict | None = None
        self._cgroup: dict | None = None
        #: Accumulated fs-cache checkpoint: keyed for overwrite semantics.
        self._fs_inodes: dict[str, dict] = {}
        self._fs_pages: dict[tuple[str, int], bytes] = {}

        self.committed_epoch = -1
        self.received_epoch = -1
        self.failed_over = False
        self.restored_container: "Container | None" = None

        self._state_queue = Queue(engine, name="backup-state")
        self._stopped = False
        self._processes: list[Process] = []

    # ------------------------------------------------------------------ #
    # Lifecycle                                                            #
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        self._processes.append(
            self.engine.process(self._dispatch_loop(), name="backup-dispatch")
        )
        self._processes.append(
            self.engine.process(self._commit_loop(), name="backup-commit")
        )
        # The failure detector is armed only after the first commit (see
        # _commit_state): before the backup holds a complete checkpoint it
        # has nothing to recover from, and the long initial full checkpoint
        # (during which the frozen container sends no heartbeats) must not
        # be misread as a failure.

    def stop(self) -> None:
        self._stopped = True
        self.detector.stop()

    def _charge(self, us: int) -> Event:
        """Charge backup CPU time (accounted for Table V)."""
        self.metrics.charge_backup_cpu(us)
        return self.engine.timeout(us)

    # ------------------------------------------------------------------ #
    # Receive path                                                         #
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self) -> Generator[Any, Any, None]:
        """Route channel messages; never blocks on commit work so that
        heartbeats keep flowing to the detector during large commits."""
        while not self._stopped:
            try:
                delivery = yield self.endpoint.recv()
            except Interrupt:
                return
            message = delivery.message
            kind = message.get("kind")
            if kind == "heartbeat":
                self.detector.on_heartbeat()
            elif kind == "disk_write":
                self.drbd[message["disk"]].on_disk_write(
                    message["epoch"], message["block"], message["data"]
                )
            elif kind == "disk_barrier":
                self.drbd[message["disk"]].on_barrier(message["epoch"], message["writes"])
            elif kind == "state":
                self._state_queue.put((message["epoch"], message["image"], delivery))

    def _commit_loop(self) -> Generator[Any, Any, None]:
        """Process state images strictly in epoch order."""
        while not self._stopped:
            try:
                epoch, image, delivery = yield self._state_queue.get()
            except Interrupt:
                return
            if self.failed_over:
                return
            # Reading the streamed state costs CPU per chunk (Table V).
            yield self._charge(delivery.chunks * self.kernel.costs.backup_read_chunk)
            if delivery.message.get("compressed"):
                yield self._charge(
                    image.dirty_page_count * self.kernel.costs.decompress_per_page
                )
            # Wait until this epoch's disk writes are fully here too.
            for drbd in self.drbd:
                yield drbd.epoch_complete(epoch)
            if self.failed_over:
                return
            self.received_epoch = epoch
            trace(self.engine, "backup", "state_received", epoch=epoch)
            # ACK: the primary may now release this epoch's output.
            self.endpoint.send({"kind": "ack", "epoch": epoch}, size_bytes=64)
            trace(self.engine, "backup", "ack_sent", epoch=epoch)
            yield from self._commit_state(epoch, image)
            trace(self.engine, "backup", "committed", epoch=epoch)

    def _commit_state(self, epoch: int, image: CheckpointImage) -> Generator[Any, Any, None]:
        self.page_store.begin_checkpoint()
        store_cost = 0
        for pimage in image.processes:
            for page_idx, content in pimage.pages.items():
                store_cost += self.page_store.store_page(pimage.pid, page_idx, content)
        if store_cost:
            yield self._charge(store_cost)

        self._process_components = [
            {
                "pid": p.pid,
                "comm": p.comm,
                "vmas": p.vmas,
                "threads": p.threads,
                "fd_entries": p.fd_entries,
            }
            for p in image.processes
        ]
        self._sockets = image.sockets
        if image.namespaces is not None:
            self._namespaces = image.namespaces
        if image.cgroup is not None:
            self._cgroup = image.cgroup
        for meta in image.fs_inode_entries:
            self._fs_inodes[meta["path"]] = meta
        for path, page_idx, content in image.fs_page_entries:
            self._fs_pages[(path, page_idx)] = content

        for drbd in self.drbd:
            n = yield from drbd.commit_epoch(epoch)
            if n:
                self.metrics.charge_backup_cpu(
                    n * self.kernel.costs.backup_disk_commit_per_block
                )
        first_commit = self.committed_epoch < 0
        self.committed_epoch = epoch
        if first_commit and self.config.detector_enabled:
            self._processes.append(self.detector.start())

    # ------------------------------------------------------------------ #
    # Failure → recovery                                                   #
    # ------------------------------------------------------------------ #
    def _on_failure_detected(self) -> None:
        if not self.failed_over:
            self._processes.append(
                self.engine.process(self._recover(), name="backup-recover")
            )

    def _recover(self) -> Generator[Any, Any, None]:
        self.failed_over = True
        recovery_start = self.engine.now
        costs = self.kernel.costs
        trace(self.engine, "recovery", "detected", committed=self.committed_epoch)

        # Discard everything not committed (uncommitted epochs never became
        # externally visible: their output was still buffered on the primary).
        for drbd in self.drbd:
            drbd.discard_uncommitted()

        # Materialize CRIU-format image files from the committed state
        # (SSIV: "create image files in a format that CRIU expects"), then
        # restore from them — the restore path parses what the dump path
        # wrote, byte for byte.
        from repro.criu.imagefiles import read_image_files, write_image_files

        restore_start = self.engine.now
        image_files = write_image_files(self._assemble_full_state())
        image_bytes = sum(len(blob) for blob in image_files.values())
        yield self._charge(costs.page_copy_cost(image_bytes // 4096))
        state = read_image_files(image_files)
        trace(self.engine, "recovery", "images_written", bytes=image_bytes)
        container = yield from self.restore_engine.restore(self.runtime, state)
        restore_us = self.engine.now - restore_start
        trace(self.engine, "recovery", "restored", pages=state.total_pages)
        if self.auditor is not None:
            # The rebuilt kernel state must satisfy every invariant before
            # the container goes live behind the old IP.
            self.auditor.audit_restore(container)

        # Reconnect the namespace to the bridge, then advertise the new MAC.
        yield self._charge(costs.bridge_reconnect)
        port = self.bridge.attach(container.veth)
        arp_start = self.engine.now
        yield self._charge(costs.gratuitous_arp)
        self.bridge.gratuitous_arp(self.spec.ip, port)
        arp_us = self.engine.now - arp_start
        trace(self.engine, "recovery", "arp_announced", ip=self.spec.ip)

        container.start_keepalive()
        self.restored_container = container
        self.metrics.recovery = RecoveryBreakdown(
            restore_us=restore_us,
            arp_us=arp_us,
            reconnect_us=costs.bridge_reconnect,
            total_recovery_us=self.engine.now - recovery_start,
        )
        if self.on_failover is not None:
            self.on_failover(container)

    def _assemble_full_state(self) -> FullState:
        processes = []
        for component in self._process_components:
            processes.append(
                {
                    "comm": component["comm"],
                    "vmas": component["vmas"],
                    "pages": self.page_store.pages_of(component["pid"]),
                    "threads": component["threads"],
                    "fd_entries": component["fd_entries"],
                }
            )
        return FullState(
            spec=self.spec,
            processes=processes,
            sockets=self._sockets,
            namespaces=self._namespaces,
            cgroup=self._cgroup,
            fs_inode_entries=list(self._fs_inodes.values()),
            fs_page_entries=[
                (path, idx, content) for (path, idx), content in self._fs_pages.items()
            ],
        )
