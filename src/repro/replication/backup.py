"""The backup agent: buffer, commit, acknowledge — and recover (paper §IV).

During normal operation the backup agent:

* receives checkpoint state over the pair channel, charging per-chunk read
  cost (finer-grained arrivals cost more backup CPU — Table V's Node vs
  Redis discussion);
* waits until the matching DRBD barrier's disk writes are all present,
  then *commits*: pages into the committed page store (radix tree or
  linked list), in-kernel component descriptions into buffers, DRBD writes
  onto the backup disk — and only then sends the acknowledgment that lets
  the primary release that epoch's buffered network output.  Acking before
  the commit would break output commit: a failover overlapping the commit
  would restore from a partially-applied epoch whose output had already
  escaped (the ``unsafe_ack_before_commit`` regression knob re-creates
  exactly that race for the fault campaign).

The backup deliberately maintains **no ready-to-go container** (§III) —
applying hundreds of in-kernel state changes per epoch would cost too many
system calls.  All of it is applied only at failover, in
:meth:`BackupAgent._recover`, which implements §IV's recovery sequence:
discard uncommitted state, build CRIU images from committed state, restore
with the namespace detached from the bridge, reattach, gratuitous ARP.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.container.spec import ContainerSpec
from repro.criu.images import CheckpointImage
from repro.criu.pagestore import LinkedListPageStore, PageStore, RadixTreePageStore
from repro.criu.restore import FullState, RestoreEngine
from repro.kernel.netdev import Bridge
from repro.metrics.collector import RecoveryBreakdown, RunMetrics
from repro.net.link import Endpoint
from repro.replication.config import NiliconConfig
from repro.replication.drbd import BackupDrbd
from repro.replication.heartbeat import FailureDetector
from repro.replication.statecache import verify_page_digests
from repro.sim.access import record_access
from repro.sim.engine import Engine, Event, Interrupt, Process
from repro.sim.faults import coverage_mark, fault_point
from repro.sim.resources import Queue
from repro.sim.trace import trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.auditor import StateAuditor
    from repro.container.runtime import Container, ContainerRuntime

__all__ = ["BackupAgent"]


class BackupAgent:
    """Receives replication state for one container on the backup host."""

    def __init__(
        self,
        engine: Engine,
        runtime: "ContainerRuntime",
        endpoint: Endpoint,
        config: NiliconConfig,
        spec: ContainerSpec,
        bridge: Bridge,
        drbd: list[BackupDrbd],
        metrics: RunMetrics,
        on_failover: Callable[["Container"], None] | None = None,
        auditor: "StateAuditor | None" = None,
        initial_epoch: int = 0,
    ) -> None:
        self.engine = engine
        self.runtime = runtime
        self.kernel = runtime.kernel
        self.endpoint = endpoint
        self.config = config
        self.spec = spec
        self.bridge = bridge
        self.drbd = drbd
        self.metrics = metrics
        self.on_failover = on_failover
        self.auditor = auditor

        costs = self.kernel.costs
        self.page_store: PageStore = (
            RadixTreePageStore(costs) if config.page_store == "radix" else LinkedListPageStore(costs)
        )
        self.restore_engine = RestoreEngine(self.kernel, config.criu)
        self.detector = FailureDetector(
            engine,
            on_failure=self._on_failure_detected,
            interval_us=config.heartbeat_interval_us,
            miss_threshold=config.heartbeat_miss_threshold,
        )

        #: Latest committed in-kernel component state.
        self._process_components: list[dict] = []
        self._sockets: list[dict] = []
        self._namespaces: dict | None = None
        self._cgroup: dict | None = None
        #: Accumulated fs-cache checkpoint: keyed for overwrite semantics.
        self._fs_inodes: dict[str, dict] = {}
        self._fs_pages: dict[tuple[str, int], bytes] = {}
        #: epoch -> mirrored disk writes received (all disks), maintained
        #: at dispatch so commit never rescans the drbd buffers.  Popped on
        #: commit; cleared with the buffers on recovery discard.
        self._epoch_disk_writes: dict[int, int] = {}

        #: First epoch this agent expects (continues an adopted container's
        #: numbering after a re-pair; 0 for a fresh deployment).  The
        #: in-order commit loop parks any epoch beyond ``committed + 1``,
        #: so a re-paired backup must start its watermark just below the
        #: primary's next epoch or the first transfer would park forever.
        self.initial_epoch = initial_epoch
        self.committed_epoch = initial_epoch - 1
        self.received_epoch = initial_epoch - 1
        self.failed_over = False
        self.restored_container: "Container | None" = None
        #: The epoch recovery restored from, captured when recovery starts —
        #: before any un-quiesced commit could bump ``committed_epoch``.
        self.recovered_from_epoch: int | None = None
        #: Recoveries actually launched (a second, spurious detection during
        #: an in-flight recovery must not start another).
        self.recoveries_started = 0
        self._recovering = False
        #: Epochs that arrived ahead of order (delayed/duplicated state
        #: under link faults), parked until their predecessors commit.
        self._out_of_order: dict[int, tuple[CheckpointImage, Any]] = {}
        #: Page-digest verification outcomes (host-side integrity check of
        #: each received transfer against the primary's per-page CRCs).
        self.digests_verified = 0
        self.digest_mismatches = 0

        self._state_queue = Queue(engine, name="backup-state")
        self._stopped = False
        self._processes: list[Process] = []
        self._dispatch_process: Process | None = None
        self._commit_process: Process | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle                                                            #
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        self._dispatch_process = self.engine.process(
            self._dispatch_loop(), name="backup-dispatch"
        )
        self._commit_process = self.engine.process(
            self._commit_loop(), name="backup-commit"
        )
        self._processes += [self._dispatch_process, self._commit_process]
        # The failure detector is armed only after the first commit (see
        # _commit_state): before the backup holds a complete checkpoint it
        # has nothing to recover from, and the long initial full checkpoint
        # (during which the frozen container sends no heartbeats) must not
        # be misread as a failure.

    def stop(self) -> None:
        self._stopped = True
        self.detector.stop()
        for process in (self._dispatch_process, self._commit_process):
            if (
                process is not None
                and process.is_alive
                and process is not self.engine.active_process
            ):
                process.interrupt("stopped")

    def _charge(self, us: int) -> Event:
        """Charge backup CPU time (accounted for Table V)."""
        self.metrics.charge_backup_cpu(us)
        return self.engine.timeout(us)

    # ------------------------------------------------------------------ #
    # Receive path                                                         #
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self) -> Generator[Any, Any, None]:
        """Route channel messages; never blocks on commit work so that
        heartbeats keep flowing to the detector during large commits."""
        while not self._stopped:
            try:
                delivery = yield self.endpoint.recv()
            except Interrupt:
                # Recovery/teardown quiesced the dispatcher.
                coverage_mark(self.engine, "handler", "backup.dispatch_interrupt")
                return
            message = delivery.message
            kind = message.get("kind")
            if kind == "heartbeat":
                self.detector.on_heartbeat()
            elif kind == "disk_write":
                epoch = message["epoch"]
                record_access(self.engine, self, "epoch_disk_writes", "w",
                              key=epoch, site="backup.disk_write_count")
                self._epoch_disk_writes[epoch] = (  # nlint: disable=RACE001 -- tracked via record_access as "epoch_disk_writes"
                    self._epoch_disk_writes.get(epoch, 0) + 1
                )
                self.drbd[message["disk"]].on_disk_write(
                    epoch, message["block"], message["data"]
                )
            elif kind == "disk_barrier":
                self.drbd[message["disk"]].on_barrier(message["epoch"], message["writes"])
            elif kind == "state":
                self._state_queue.put((message["epoch"], message["image"], delivery))
            else:
                self._dispatch_extra(message)

    def _dispatch_extra(self, message: dict) -> None:
        """Strategy hook for mode-specific channel messages (HyCoR's
        ``ndlog`` flushes); unknown kinds are ignored.  Must not block —
        the dispatcher keeps heartbeats flowing."""

    def _commit_loop(self) -> Generator[Any, Any, None]:
        """Process state images strictly in epoch order.

        Link faults can deliver state out of order (delayed epoch *k*
        overtaken by *k+1*) or more than once.  A stale epoch (already
        committed) is re-acknowledged and dropped — the state is durable,
        and the re-ack heals a lost original ack.  A future epoch is parked
        in ``_out_of_order`` until its predecessors commit.
        """
        engine = self.engine  # hoisted off the per-delivery hot loop (PERF004)
        try:
            while not self._stopped:
                epoch, image, delivery = yield self._state_queue.get()
                if self.failed_over:
                    return
                # Reading the streamed state costs CPU per chunk (Table V).
                yield self._charge(delivery.chunks * self.kernel.costs.backup_read_chunk)
                if delivery.message.get("compressed"):
                    yield self._charge(
                        image.dirty_page_count * self.kernel.costs.decompress_per_page
                    )
                record_access(engine, self, "committed_epoch", "r",
                              site="backup.commit_loop")
                # One attribute read per delivery; _receive_and_commit
                # returns the (possibly advanced) committed epoch so the
                # unpark loop never re-resolves the chain.
                committed = self.committed_epoch
                if epoch <= committed:
                    self._send_ack(epoch)
                    continue
                if epoch > committed + 1:
                    record_access(engine, self, "epoch_stash", "w", key=epoch,
                                  site="backup.park_out_of_order")
                    self._out_of_order[epoch] = (image, delivery)
                    continue
                committed = yield from self._receive_and_commit(epoch, image, delivery)
                while committed + 1 in self._out_of_order:
                    next_epoch = committed + 1
                    record_access(engine, self, "epoch_stash", "w",
                                  key=next_epoch, site="backup.unpark")
                    image, delivery = self._out_of_order.pop(next_epoch)  # nlint: disable=RACE001 -- tracked via record_access as "epoch_stash"
                    committed = yield from self._receive_and_commit(next_epoch, image, delivery)
        except Interrupt:
            # Teardown, or recovery quiescing an in-flight commit.
            coverage_mark(self.engine, "handler", "backup.commit_interrupt")
            return

    def _receive_and_commit(
        self, epoch: int, image: CheckpointImage, delivery: Any
    ) -> Generator[Any, Any, int]:
        """Commit one epoch; returns the committed epoch after this attempt
        (unchanged when the commit was abandoned by a failover)."""
        # Wait until this epoch's disk writes are fully here too.
        for drbd in self.drbd:
            yield drbd.epoch_complete(epoch)
        if self.failed_over:
            return self.committed_epoch
        self.received_epoch = max(self.received_epoch, epoch)
        trace(self.engine, "backup", "state_received", epoch=epoch)
        # Receipt confirmation is what un-freezes a non-staging primary; it
        # carries no release authority (that is the ack, sent post-commit),
        # so the container's stop time stays bounded by the transfer, not
        # by the backup's commit work.
        self.endpoint.send({"kind": "receipt", "epoch": epoch}, size_bytes=64)
        if self.config.unsafe_ack_before_commit:
            # REGRESSION KNOB: the ack-before-commit race.  The primary may
            # release epoch output that the backup has not made durable yet.
            self._send_ack(epoch)
        stall = fault_point(self.engine, "backup.post_ack_pre_commit", epoch=epoch)
        if stall:
            yield self.engine.timeout(stall)
        # Verify the transfer against the primary's per-page CRCs before
        # committing.  Host CPU only — zero simulated time, no trace events
        # — matching the digesting contract on the primary side.
        digests = delivery.message.get("page_digests")
        if digests is not None:
            self.digests_verified += 1
            self.digest_mismatches += verify_page_digests(image, digests)
        yield from self._commit_state(epoch, image)
        trace(self.engine, "backup", "committed", epoch=epoch)
        self._after_commit(epoch, delivery.message)
        if not self.config.unsafe_ack_before_commit:
            # ACK only once the epoch is durable: the primary may now
            # release this epoch's buffered output.
            self._send_ack(epoch)
        return self.committed_epoch

    def _send_ack(self, epoch: int) -> None:
        self.endpoint.send({"kind": "ack", "epoch": epoch}, size_bytes=64)
        trace(self.engine, "backup", "ack_sent", epoch=epoch)

    def _after_commit(self, epoch: int, message: dict) -> None:
        """Strategy hook: a checkpoint epoch just became durable.  HyCoR
        truncates the stored nondeterminism log below the flush sequence
        the checkpoint's ``log_seq`` field declares superseded."""

    def _replay_after_restore(self, container: "Container") -> Generator[Any, Any, int]:
        """Strategy hook: run between restore and bridge re-attach.

        HyCoR replays the shipped nondeterminism-log tail through the
        restored container before it goes live; NiLiCon's recovery point
        *is* the last committed checkpoint.  Returns replay time in µs.
        """
        return 0
        yield  # pragma: no cover -- generator form so overrides may yield

    def _commit_state(self, epoch: int, image: CheckpointImage) -> Generator[Any, Any, None]:
        """Commit *epoch* into the page store, component buffers and disk.

        Structured as yielding *charge* phases (where a failover may
        interrupt mid-commit — the page store's open checkpoint is then
        rolled back by :meth:`_recover`) followed by a no-yield
        *publication* section, so observers never see a half-published
        epoch: ``committed_epoch`` moves only when every store is updated.
        """
        record_access(self.engine, self.page_store, "open_checkpoint", "w",
                      site="backup.commit_begin")
        self.page_store.begin_checkpoint()
        pages = [
            (pimage.pid, page_idx, content)
            for pimage in image.processes
            for page_idx, content in pimage.pages.items()
        ]
        half = len(pages) // 2
        store_cost = 0
        for pid, page_idx, content in pages[:half]:
            store_cost += self.page_store.store_page(pid, page_idx, content)
        if store_cost:
            yield self._charge(store_cost)
        stall = fault_point(self.engine, "backup.mid_commit", epoch=epoch)
        if stall:
            yield self.engine.timeout(stall)
        store_cost = 0
        for pid, page_idx, content in pages[half:]:
            store_cost += self.page_store.store_page(pid, page_idx, content)
        if store_cost:
            yield self._charge(store_cost)

        # Every barrier-declared write has arrived (the commit loop waited
        # on epoch_complete), so the dispatch-time counter equals what a
        # rescan of every drbd buffer would find.
        record_access(self.engine, self, "epoch_disk_writes", "w",
                      key=epoch, site="backup.disk_write_commit")
        disk_writes = self._epoch_disk_writes.pop(epoch, 0)
        if disk_writes:
            yield self._charge(
                disk_writes * self.kernel.costs.backup_disk_commit_per_block
            )

        # ---- atomic publication (no yields below this line) ----
        self._process_components = [
            {
                "pid": p.pid,
                "comm": p.comm,
                "vmas": p.vmas,
                "threads": p.threads,
                "fd_entries": p.fd_entries,
            }
            for p in image.processes
        ]
        self._sockets = image.sockets
        if image.namespaces is not None:
            self._namespaces = image.namespaces
        if image.cgroup is not None:
            self._cgroup = image.cgroup
        for meta in image.fs_inode_entries:
            self._fs_inodes[meta["path"]] = meta
        for path, page_idx, content in image.fs_page_entries:
            self._fs_pages[(path, page_idx)] = content
        for drbd in self.drbd:
            drbd.apply_epoch(epoch)
        record_access(self.engine, self.page_store, "open_checkpoint", "w",
                      site="backup.commit_publish")
        self.page_store.commit_checkpoint()
        first_commit = self.committed_epoch < self.initial_epoch
        record_access(self.engine, self, "committed_epoch", "w",
                      site="backup.commit_publish")
        # Durability-ledger write: epoch *epoch* is now fully committed.
        # The primary's barrier release for this epoch must happen-after
        # this point (its ordered read checks against exactly this record).
        record_access(self.engine, f"durable:{self.spec.name}", "epoch_commit",
                      "w", key=epoch, site="backup.commit_publish")
        self.committed_epoch = epoch
        if first_commit and self.config.detector_enabled:
            self._processes.append(self.detector.start())

    # ------------------------------------------------------------------ #
    # Failure → recovery                                                   #
    # ------------------------------------------------------------------ #
    def _on_failure_detected(self) -> None:
        if self.failed_over or self._recovering:
            # Already recovering (or recovered): a spurious re-detection —
            # e.g. a detector re-armed mid-recovery — must not launch a
            # second restore of the same container.
            return
        self._recovering = True
        self.recoveries_started += 1
        self._processes.append(
            self.engine.process(self._recover(), name="backup-recover")
        )

    def _recover(self) -> Generator[Any, Any, None]:
        self.failed_over = True
        # Capture the recovery point *now*: this is the last fully
        # committed epoch, and the quiesce below guarantees no in-flight
        # commit can bump it while the restore is being assembled.
        record_access(self.engine, self, "committed_epoch", "r",
                      site="backup.recover")
        self.recovered_from_epoch = self.committed_epoch
        recovery_start = self.engine.now
        costs = self.kernel.costs
        trace(self.engine, "recovery", "detected", committed=self.committed_epoch)

        if not self.config.unsafe_ack_before_commit:
            # Quiesce: abort any in-flight commit and roll the page store
            # back to the last fully committed checkpoint, so the restore
            # below never assembles state from a half-applied epoch.
            for process in (self._commit_process, self._dispatch_process):
                if (
                    process is not None
                    and process.is_alive
                    and process is not self.engine.active_process
                ):
                    process.interrupt("recovering")
            record_access(self.engine, self.page_store, "open_checkpoint", "w",
                          site="backup.recover.abort")
            self.page_store.abort_checkpoint()
            record_access(self.engine, self, "epoch_stash", "w",
                          site="backup.recover.clear_stash")
            self._out_of_order.clear()

        # Discard everything not committed (uncommitted epochs never became
        # externally visible: their output was still buffered on the primary).
        for drbd in self.drbd:
            drbd.discard_uncommitted()
        # Committed epochs were popped at commit; whatever remains counts
        # the uncommitted buffers just discarded.
        record_access(self.engine, self, "epoch_disk_writes", "w",
                      site="backup.disk_write_discard")
        self._epoch_disk_writes.clear()

        stall = fault_point(
            self.engine, "backup.mid_recover", epoch=self.committed_epoch
        )
        if stall:
            yield self.engine.timeout(stall)

        # Materialize CRIU-format image files from the committed state
        # (SSIV: "create image files in a format that CRIU expects"), then
        # restore from them — the restore path parses what the dump path
        # wrote, byte for byte.
        from repro.criu.imagefiles import read_image_files, write_image_files

        restore_start = self.engine.now
        image_files = write_image_files(self._assemble_full_state())
        image_bytes = sum(len(blob) for blob in image_files.values())
        yield self._charge(costs.page_copy_cost(image_bytes // 4096))
        state = read_image_files(image_files)
        trace(self.engine, "recovery", "images_written", bytes=image_bytes)
        container = yield from self.restore_engine.restore(self.runtime, state)
        restore_us = self.engine.now - restore_start
        trace(self.engine, "recovery", "restored", pages=state.total_pages)
        if self.auditor is not None:
            # The rebuilt kernel state must satisfy every invariant before
            # the container goes live behind the old IP.
            self.auditor.audit_restore(container)

        replay_us = yield from self._replay_after_restore(container)

        # Reconnect the namespace to the bridge, then advertise the new MAC.
        yield self._charge(costs.bridge_reconnect)
        port = self.bridge.attach(container.veth)
        arp_start = self.engine.now
        yield self._charge(costs.gratuitous_arp)
        self.bridge.gratuitous_arp(self.spec.ip, port)
        arp_us = self.engine.now - arp_start
        trace(self.engine, "recovery", "arp_announced", ip=self.spec.ip)

        container.start_keepalive()
        self.restored_container = container
        self.metrics.recovery = RecoveryBreakdown(
            restore_us=restore_us,
            arp_us=arp_us,
            reconnect_us=costs.bridge_reconnect,
            replay_us=replay_us,
            total_recovery_us=self.engine.now - recovery_start,
        )
        if self.on_failover is not None:
            self.on_failover(container)

    def _assemble_full_state(self) -> FullState:
        processes = []
        for component in self._process_components:
            processes.append(
                {
                    "comm": component["comm"],
                    "vmas": component["vmas"],
                    "pages": self.page_store.pages_of(component["pid"]),
                    "threads": component["threads"],
                    "fd_entries": component["fd_entries"],
                }
            )
        return FullState(
            spec=self.spec,
            processes=processes,
            sockets=self._sockets,
            namespaces=self._namespaces,
            cgroup=self._cgroup,
            fs_inode_entries=list(self._fs_inodes.values()),
            fs_page_entries=[
                (path, idx, content) for (path, idx), content in self._fs_pages.items()
            ],
        )
