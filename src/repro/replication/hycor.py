"""HyCoR-mode replication: log shipping, log-commit release, backup replay.

NiLiCon releases a packet only after the *checkpoint epoch* that produced
it is durable on the backup — worst case a whole epoch (~30 ms) of added
latency.  HyCoR (Zhou & Tamir) decouples output release from checkpoint
frequency: the primary continuously ships a per-container nondeterminism
log, and a packet is released as soon as the *log flush* that covers it is
durable.  On failover the backup restores the last committed checkpoint,
then **replays** the shipped log tail through the restored container to
re-reach the state whose output already escaped, before going live.

Three pieces, all driven by :mod:`repro.replication.modes`:

* :class:`LogShipper` — installs an :class:`~repro.kernel.mm.AddressSpace`
  ``capture_hook`` per process, so every page write lands in a per-process
  stream (``mm<i>``) of an :class:`~repro.sim.ndlog.NDLog`; a flush loop
  closes the open window every ``hycor_log_flush_us``, inserts a
  flush-sequence egress barrier, and ships the window (entries + per-stream
  digest) to the backup.  Checkpoints close *epoch segments* in the same
  log, bounding the replay tail.
* :class:`HycorPrimaryAgent` — checkpoints exactly like NiLiCon but inserts
  no epoch barriers and treats checkpoint acks as replay-truncation info
  only; output release happens on ``log_ack``.
* :class:`HycorBackupAgent` — makes flushes durable strictly in sequence
  (verifying each window digest before acking), truncates the stored log
  when a checkpoint commits past it, and replays the tail at failover —
  detecting log gaps and replay divergence via the registered
  ``hycor.*`` fault points.

Scope (v1, documented in ``docs/hycor.md``): the log captures *memory*
writes by value, so replay is per-stream deterministic and idempotent;
filesystem writes remain epoch-commit-gated through DRBD, and cross-process
same-page races are outside the replay guarantee (the race detector covers
those).  Restored TCP connections necessarily lag the released output
stream, so recovery aborts them post-replay and lets clients reconnect —
their next segment hits a demux miss and draws an RST.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Any, Generator

from repro.replication.backup import BackupAgent
from repro.replication.primary import PrimaryAgent
from repro.sim.access import record_access
from repro.sim.engine import Interrupt
from repro.sim.faults import coverage_mark, fault_point
from repro.sim.ndlog import NDLog
from repro.sim.trace import trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.container.runtime import Container

__all__ = [
    "HycorBackupAgent",
    "HycorPrimaryAgent",
    "LogShipper",
    "flush_digest",
    "hycor_flush_seq",
]


def hycor_flush_seq(container: "Container") -> int:
    """Last flush sequence ever shipped for *container* (0 = none).

    Persisted on the container object by the shipper so an adopted
    container's new pairing (backup-host loss re-pair, migration cutover)
    continues the flush numbering — its stale egress barriers carry old
    sequence numbers and must stay strictly below every new fence.
    """
    return getattr(container, "_hycor_flush_seq", 0)


def flush_digest(entries: list) -> str:
    """Per-stream CRC digest of one flush window's entries.

    Mirrors :meth:`repro.sim.ndlog.NDLog.window_digest` exactly (global
    per-stream sequence numbers folded per stream, streams combined in
    sorted order) so the backup can verify a shipped window without
    rebuilding an NDLog — ``tests/replication/test_hycor.py`` pins the two
    implementations together.
    """
    crcs: dict[str, int] = {}
    for stream, seq, method, value in entries:
        crcs[stream] = zlib.crc32(
            f"{seq}|{method}|{value!r}".encode("utf-8"), crcs.get(stream, 0)
        )
    combined = 0
    for name in sorted(crcs):
        combined = zlib.crc32(f"{name}|{crcs[name]:08x}".encode("utf-8"), combined)
    return format(combined, "08x")


class _WriteCapture:
    """Per-process mm observer feeding one log stream by value."""

    #: Host-side recording machinery: invisible to the nondeterminism-flow
    #: analyzer and never part of checkpointed state.
    __nd_exempt__ = True
    __ckpt_ignore__ = True

    def __init__(self, log: NDLog, stream: str) -> None:
        self.log = log
        self.stream = stream

    def page_written(self, page_idx: int, token: bytes) -> None:  # hot: per-page -- every protected write funnels through here in hycor mode
        self.log.record(self.stream, "write", (page_idx, token))


class LogShipper:
    """Primary-side half of HyCoR: capture writes, flush windows, ship them.

    One instance per :class:`HycorPrimaryAgent`.  ``attach()`` installs the
    capture hooks (at agent start, so pre-deployment warmup writes — which
    the initial full checkpoint covers anyway — don't bloat the log);
    ``flush_loop()`` runs as an agent process and dies with it.
    """

    __nd_exempt__ = True
    __ckpt_ignore__ = True

    #: Estimated wire bytes per shipped entry (sequence number, method tag
    #: and the page token reference; the real system ships syscall-result
    #: records of comparable size).
    ENTRY_WIRE_BYTES = 48
    #: Fixed framing bytes per flush message.
    FLUSH_WIRE_BYTES = 64

    def __init__(self, engine, container: "Container", endpoint, netbuffer,
                 flush_us: int) -> None:
        self.engine = engine
        self.container = container
        self.endpoint = endpoint
        self.netbuffer = netbuffer
        self.flush_us = flush_us
        self.log = NDLog(mode="record")
        #: Global monotonic flush sequence; continues an adopted
        #: container's numbering (see :func:`hycor_flush_seq`).
        self.seq = hycor_flush_seq(container)
        #: Per-stream draw counts as of the last closed flush.
        self._flushed_counts: dict[str, int] = {}
        self.flushes_sent = 0
        self.entries_shipped = 0
        self._attached = False

    # -- capture ----------------------------------------------------------
    def attach(self) -> None:
        """Install the per-process write-capture hooks."""
        self._attached = True
        for pidx, process in enumerate(self.container.processes):
            process.mm.capture_hook = _WriteCapture(self.log, f"mm{pidx}")

    def detach(self) -> None:
        if not self._attached:
            return
        self._attached = False
        for process in self.container.processes:
            process.mm.capture_hook = None

    def on_epoch(self, epoch: int) -> None:
        """Close epoch *epoch*'s segment at checkpoint freeze: everything
        recorded so far is inside the checkpoint, so this marks where a
        replay from it may start."""
        self.log.begin_segment(epoch)

    # -- flushing ---------------------------------------------------------
    def flush_loop(self) -> Generator[Any, Any, None]:
        try:
            while not self.container.dead:  # ft: bounded -- exits on container death each period; stop/crash interrupt it
                yield self.engine.timeout(self.flush_us)
                if self.container.dead:
                    return
                self._flush()
        except Interrupt:
            # Fail-stop or teardown: the shipper dies with its agent.
            coverage_mark(self.engine, "handler", "hycor.flush_interrupt")
            return

    def _flush(self) -> None:
        """Close the open window and ship it.

        Empty windows ship too (framing bytes only): the flush fence still
        advances, so output generated without memory writes — pure packet
        traffic — is released on the same cadence.
        """
        log = self.log
        counts = log.draw_counts()
        prev = self._flushed_counts
        entries = [
            [stream, seq, method, value]
            for stream, seq, method, value in log.window_entries(prev, counts)
        ]
        crc = log.window_digest(prev, counts)
        self.seq += 1
        seq = self.seq
        # Persist for adoption: a successor pairing must fence above this.
        self.container._hycor_flush_seq = seq
        self._flushed_counts = counts
        # Fence first: every packet buffered so far depends only on writes
        # at or before this window, so the flush's durability may release it.
        self.netbuffer.insert_epoch_barrier(seq)
        fault_point(self.engine, "hycor.mid_log_ship", seq=seq)
        self.endpoint.send(
            {
                "kind": "ndlog",
                "seq": seq,
                "entries": entries,
                "counts": counts,
                "crc": crc,
            },
            size_bytes=self.FLUSH_WIRE_BYTES + self.ENTRY_WIRE_BYTES * len(entries),
        )
        self.flushes_sent += 1
        self.entries_shipped += len(entries)
        trace(self.engine, "hycor", "log_flushed", seq=seq, entries=len(entries))


class HycorPrimaryAgent(PrimaryAgent):
    """NiLiCon's epoch loop with log shipping and log-commit release."""

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.shipper = LogShipper(
            engine=self.engine,
            container=self.container,
            endpoint=self.endpoint,
            netbuffer=self.netbuffer,
            flush_us=self.config.hycor_log_flush_us,
        )
        #: Highest checkpoint epoch the backup has committed.  Replay-
        #: truncation bookkeeping only: under HyCoR a checkpoint ack
        #: carries *no* release authority.
        self.checkpoint_acked = self.epoch - 1
        #: Flush sequence closed at the current cycle's freeze; shipped in
        #: the state message so the backup replays exactly past it.
        self._frozen_log_seq = self.shipper.seq

    def start(self) -> None:
        super().start()
        self.shipper.attach()
        self._processes.append(
            self.engine.process(self.shipper.flush_loop(), name="hycor-log-shipper")
        )

    def stop(self) -> None:
        super().stop()
        self.shipper.detach()

    def crash(self) -> None:
        super().crash()
        self.shipper.detach()

    # -- strategy hooks ---------------------------------------------------
    def _insert_output_barrier(self, epoch: int) -> None:
        # No per-epoch egress fence: release authority lives with the log
        # flushes.  The freeze instead closes the epoch's log segment and
        # pins the flush sequence this checkpoint supersedes — every entry
        # at or below it is captured by the frozen image.
        self._frozen_log_seq = self.shipper.seq
        self.shipper.on_epoch(epoch)

    def _state_extra(self, epoch: int) -> dict:
        return {"log_seq": self._frozen_log_seq}

    def _on_ack(self, epoch: int) -> None:
        # Checkpoint durable: the backup truncated its stored log tail.
        # Wake any receipt waiters, but release nothing.
        if epoch > self.checkpoint_acked:
            self.checkpoint_acked = epoch
        self._wake_receipts(epoch)

    def _handle_message(self, kind: str, message: dict) -> None:
        if kind != "log_ack":
            return
        seq = message["seq"]
        engine = self.engine
        netbuffer = self.netbuffer
        trace(engine, "hycor", "log_acked", seq=seq)
        acked = netbuffer.acked_epoch
        if seq > acked:
            record_access(engine, netbuffer, "acked_epoch", "w",
                          site="hycor.log_ack")
            netbuffer.acked_epoch = acked = seq
        # Cumulative, fence-id-addressed release — same discipline as
        # NiLiCon's epoch acks, just keyed by flush sequence.
        released = netbuffer.release_epoch(acked)
        self.metrics.packets_released += released


class HycorBackupAgent(BackupAgent):
    """Backup agent that stores the shipped log and replays it at failover."""

    def __init__(self, initial_log_seq: int = 0, **kwargs) -> None:
        super().__init__(**kwargs)
        #: Durable flush store: seq -> flush message, strictly consecutive
        #: above the committed checkpoint's superseded prefix.
        self._log_store: dict[int, dict] = {}
        #: Highest flush made durable (consecutive from ``initial_log_seq``).
        self.durable_seq = initial_log_seq
        #: Flushes that arrived beyond a sequence hole, parked un-acked.
        self._future_flushes: dict[int, dict] = {}
        #: Flush sequence the last committed checkpoint supersedes (replay
        #: base); None until the first commit.
        self._committed_log_seq: int | None = None
        #: Last flush actually applied during replay (the durability
        #: horizon the oracles compare released output against).
        self.replay_horizon_seq: int | None = None
        self.log_flushes_received = 0
        self.log_crc_mismatches = 0
        self.replayed_flushes = 0
        self.replayed_entries = 0
        self.replay_divergences = 0
        self.log_gap_detected = False

    # -- receive path -----------------------------------------------------
    def _dispatch_extra(self, message: dict) -> None:
        if message.get("kind") != "ndlog":
            return
        # Host-side append of a tiny record: no simulated time charged, so
        # heartbeats keep flowing through the dispatcher during bursts.
        self._on_ndlog(message)

    def _on_ndlog(self, message: dict) -> None:
        seq = message["seq"]
        self.log_flushes_received += 1
        if seq <= self.durable_seq:
            # Duplicate of a durable flush: re-ack (heals a lost log_ack).
            self._send_log_ack(seq)
            return
        if seq > self.durable_seq + 1:
            # Sequence hole (dropped/delayed flush): park, never ack past
            # the gap — released output may only depend on a consecutive
            # durable prefix.
            record_access(self.engine, self, "log_store", "w", key=seq,
                          site="hycor.park_future_flush")
            self._future_flushes[seq] = message
            return
        if not self._accept_flush(seq, message):
            return
        while self.durable_seq + 1 in self._future_flushes:
            next_seq = self.durable_seq + 1
            record_access(self.engine, self, "log_store", "w", key=next_seq,
                          site="hycor.unpark_flush")
            if not self._accept_flush(next_seq, self._future_flushes.pop(next_seq)):
                break

    def _accept_flush(self, seq: int, message: dict) -> bool:
        if flush_digest(message["entries"]) != message["crc"]:
            # A window that fails verification is never made durable or
            # acknowledged, so no released output can come to depend on it.
            self.log_crc_mismatches += 1
            trace(self.engine, "hycor", "log_flush_refused", seq=seq)
            return False
        record_access(self.engine, self, "log_store", "w", key=seq,
                      site="hycor.log_append")
        self._log_store[seq] = message
        self.durable_seq = seq
        # Durability-ledger write: the primary's flush-barrier release for
        # this sequence must happen-after this point.
        record_access(self.engine, f"durable:{self.spec.name}", "log_commit",
                      "w", key=seq, site="hycor.log_append")
        self._send_log_ack(seq)
        return True

    def _send_log_ack(self, seq: int) -> None:
        self.endpoint.send({"kind": "log_ack", "seq": seq}, size_bytes=64)
        trace(self.engine, "hycor", "log_ack_sent", seq=seq)

    def _after_commit(self, epoch: int, message: dict) -> None:
        base = message.get("log_seq")
        if base is None:
            return
        self._committed_log_seq = base
        # The checkpoint captured every entry at or below its base flush:
        # the stored prefix is dead weight, and any sequence hole at or
        # below the base is healed — the checkpoint supersedes it.
        for seq in [s for s in self._log_store if s <= base]:
            del self._log_store[seq]
        for seq in [s for s in self._future_flushes if s <= base]:
            del self._future_flushes[seq]
        if base > self.durable_seq:
            # Write the ledger records the superseded sequences never got,
            # so their (checkpoint-authorized) barrier drains stay ordered.
            for seq in range(self.durable_seq + 1, base + 1):
                record_access(self.engine, f"durable:{self.spec.name}",
                              "log_commit", "w", key=seq,
                              site="hycor.commit_supersede")
            self.durable_seq = base
            while self.durable_seq + 1 in self._future_flushes:
                next_seq = self.durable_seq + 1
                record_access(self.engine, self, "log_store", "w",
                              key=next_seq, site="hycor.unpark_flush")
                if not self._accept_flush(
                    next_seq, self._future_flushes.pop(next_seq)
                ):
                    break

    # -- failover replay --------------------------------------------------
    def _replay_after_restore(
        self, container: "Container"
    ) -> Generator[Any, Any, int]:
        engine = self.engine
        replay_start = engine.now
        if self._future_flushes:
            # A hole in the shipped log survived to failover (the flush
            # died with the primary or the link).  Nothing past the gap was
            # ever acknowledged — so nothing released depends on it — but
            # it cannot be replayed either: discard it.
            self.log_gap_detected = True
            trace(engine, "recovery", "log_gap", durable=self.durable_seq,
                  parked=len(self._future_flushes))
            record_access(engine, self, "log_store", "w",
                          site="hycor.discard_gap_tail")
            self._future_flushes.clear()
            stall = fault_point(engine, "hycor.log_gap", seq=self.durable_seq)
            if stall:
                yield engine.timeout(stall)
        base = self._committed_log_seq
        if base is None:
            return 0
        self.replay_horizon_seq = base
        costs = self.kernel.costs
        for seq in range(base + 1, self.durable_seq + 1):
            message = self._log_store.get(seq)
            if message is None:
                break  # below the store floor (already superseded)
            if flush_digest(message["entries"]) != message["crc"]:
                # Stored window fails re-verification: replay diverged from
                # what was shipped.  Promote from the last flush that
                # verifies rather than apply state we cannot trust.
                self.replay_divergences += 1
                trace(engine, "recovery", "replay_divergence", seq=seq)
                stall = fault_point(engine, "hycor.replay_divergence", seq=seq)
                if stall:
                    yield engine.timeout(stall)
                break
            for stream, _seq, method, value in message["entries"]:
                if method != "write" or not stream.startswith("mm"):
                    continue
                page_idx, token = value
                container.processes[int(stream[2:])].mm.write(page_idx, token)
                self.replayed_entries += 1
            self.replayed_flushes += 1
            self.replay_horizon_seq = seq
            if message["entries"]:
                # Re-applying logged writes is real restore-path time —
                # HyCoR's recovery-latency cost for its lower overhead.
                yield self._charge(costs.page_copy_cost(len(message["entries"])))
        # The restored sockets' streams lag the released output (replies
        # escaped on log commit, past the checkpoint's socket state), so a
        # resumed conversation would deadlock on bytes neither side will
        # send again.  Abort the connections — once the bridge re-attaches,
        # a client's next segment hits a demux miss, draws an RST and
        # reconnects against the replayed state.  Listeners stay registered
        # so those reconnects succeed.
        aborted = 0
        for sock in list(container.stack.connections.values()):
            sock.abort()
            aborted += 1
        trace(engine, "recovery", "log_replayed",
              flushes=self.replayed_flushes, entries=self.replayed_entries,
              connections_reset=aborted)
        return engine.now - replay_start
