"""Caching of infrequently-modified in-kernel container state (paper §V-B).

"The most effective optimization in NiLiCon": control groups, namespaces,
mount points, device files and memory-mapped files rarely change, yet stock
collection costs ~160 ms per checkpoint.  NiLiCon caches their values and
invalidates the cache from a kernel module that ftrace-hooks the mutation
paths; the cached copy is included in each checkpoint instead.

The hook functions here mirror the paper's design: each receives the traced
call, checks whether the mutating thread belongs to the protected container
(our hooks receive the container directly as the first trace argument), and
signals the agent by invalidating.  As in the paper's prototype, only the
common mutation paths are hooked — which is "sufficient for all of our
benchmarks".

The same never-recompute-what-didn't-change principle drives
:class:`PageDigestCache`: the primary ships a CRC per page with every
state transfer so the backup can verify transfer integrity, and — like the
infrequent-state cache — only re-derives what the epoch actually touched.
Soft-dirty tracking already tells us which pages changed; a clean page's
digest from the generation that last shipped it is still valid.  Digesting
is *host-side analysis work* (like the auditor): it charges zero simulated
time and emits no trace events, so golden trace digests are unaffected.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Any, Generator, Iterable

from repro.criu.collect import StateCollector
from repro.kernel.costmodel import PAGE_SIZE
from repro.kernel.kernel import Kernel

if TYPE_CHECKING:  # pragma: no cover
    from repro.container.runtime import Container
    from repro.criu.images import CheckpointImage

__all__ = [
    "InfrequentStateCache",
    "HOOKED_FUNCTIONS",
    "PageDigestCache",
    "verify_page_digests",
]

#: Kernel functions whose calls may change infrequently-modified state.
HOOKED_FUNCTIONS = (
    "do_mount",
    "sethostname",
    "cgroup_write",
    "do_mmap_file",
    "dev_open",
)


class InfrequentStateCache:
    """Per-container cache of the slow-to-collect state components."""

    def __init__(self, kernel: Kernel, collector: StateCollector, container: "Container") -> None:
        self.kernel = kernel
        self.collector = collector
        self.container = container
        self._cached: dict[str, Any] | None = None
        #: Metrics: how often the cache served / missed.
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        for fn in HOOKED_FUNCTIONS:
            kernel.ftrace.register(fn, self._hook)
        self._detached = False

    def _hook(self, _fn_name: str, args: tuple) -> None:
        """The ftrace hook body: invalidate if the call touched our container."""
        if args and args[0] is self.container:
            self._cached = None
            self.invalidations += 1

    def provider(
        self, container: "Container"
    ) -> Generator[Any, Any, tuple[dict[str, Any], bool]]:
        """Infrequent-state provider for the checkpoint engine.

        Serves the cached copy when valid (cheap read), otherwise performs
        the full collection and refills the cache.
        """
        assert container is self.container
        if self._cached is not None:
            self.hits += 1
            yield self.kernel.charge(self.kernel.costs.collect_cached_state)
            return self._cached, True
        self.misses += 1
        components = yield from self.collector.collect_infrequent(container)
        self._cached = components
        return components, False

    @property
    def valid(self) -> bool:
        return self._cached is not None

    def detach(self) -> None:
        """Unregister hooks (deployment teardown)."""
        if self._detached:
            return
        for fn in HOOKED_FUNCTIONS:
            self.kernel.ftrace.unregister(fn, self._hook)
        self._detached = True


class PageDigestCache:
    """Per-page content CRCs, cached across epochs by soft-dirty generation.

    Every checkpoint transfer carries a ``page_digests`` map so the backup
    can verify each received page (:func:`verify_page_digests`).  The
    checkpoint image already contains exactly the dirty set, so only those
    pages are hashed; a clean page was byte-identical to the generation
    that last shipped it, and its cached CRC is still the truth.

    ``unoptimized=True`` (the ``perf_unoptimized_digest`` regression knob)
    disables the cache and re-hashes the container's entire resident set
    every epoch — the re-hash-everything hot loop that ``repro perf``
    must flag (PERF002) and the profiler must confirm hot.

    Host-side only: no simulated time is charged and no trace events are
    emitted, so installing the digest path changes no golden digest.
    """

    def __init__(self, unoptimized: bool = False) -> None:
        self.unoptimized = unoptimized
        #: (pid, page index) -> CRC32 of the page token.
        self._crc: dict[tuple[int, int], int] = {}
        #: Checkpoint generations digested so far.
        self.generation = 0
        #: Perf-profiler harvest counters (always on).
        self.pages_digested = 0
        self.bytes_hashed = 0
        self.cache_hits = 0

    def digest_image(
        self, image: "CheckpointImage", processes: Iterable[Any] = ()
    ) -> dict[str, int]:  # hot: per-page -- runs over the dirty set every epoch
        """Digest one epoch's checkpoint; returns ``"pid:idx" -> crc``.

        *processes* is the container's live process list; the optimized
        path only uses it to count the clean pages it did NOT re-hash,
        the unoptimized path walks it to re-hash everything resident.
        """
        self.generation += 1
        crc_cache = self._crc
        resident = 0
        if self.unoptimized:
            # Re-hash-everything mode: every resident page of every
            # process, clean or not, every epoch.
            for process in processes:
                pid = process.pid
                pages = process.mm.pages
                resident += len(pages)
                for idx in sorted(pages):  # nlint: disable=PERF003 -- digests walk pages in address order by contract
                    crc_cache[(pid, idx)] = zlib.crc32(pages[idx])  # nlint: disable=PERF002 -- the 'unoptimized' regression knob IS the re-hash-everything baseline the profiler must still observe
                    self.pages_digested += 1
                    self.bytes_hashed += PAGE_SIZE
        else:
            for process in processes:
                resident += len(process.mm.pages)
        digests: dict[str, int] = {}
        in_image = 0
        for pimage in image.processes:
            pid = pimage.pid
            pages = pimage.pages
            in_image += len(pages)
            for idx in sorted(pages):  # nlint: disable=PERF003 -- digests walk pages in address order by contract
                key = (pid, idx)
                if not self.unoptimized:
                    crc_cache[key] = zlib.crc32(pages[idx])  # nlint: disable=PERF002 -- dirty pages only; clean pages reuse the cached generation
                    self.pages_digested += 1
                    self.bytes_hashed += PAGE_SIZE
                digests[f"{pid}:{idx}"] = crc_cache[key]
        if not self.unoptimized:
            # Clean resident pages whose cached digest was reused unhashed.
            self.cache_hits += max(0, resident - in_image)
        return digests


def verify_page_digests(image: "CheckpointImage", digests: dict[str, int]) -> int:
    """Backup-side check: re-hash received pages against the primary's CRCs.

    Returns the number of mismatched pages (0 on an intact transfer).
    Host-side only, like the digesting itself.
    """
    mismatches = 0
    for pimage in image.processes:
        pid = pimage.pid
        for idx, content in pimage.pages.items():
            expected = digests.get(f"{pid}:{idx}")
            if expected is not None and zlib.crc32(content) != expected:  # nlint: disable=PERF002 -- integrity check must hash exactly the received bytes
                mismatches += 1
    return mismatches
