"""Caching of infrequently-modified in-kernel container state (paper §V-B).

"The most effective optimization in NiLiCon": control groups, namespaces,
mount points, device files and memory-mapped files rarely change, yet stock
collection costs ~160 ms per checkpoint.  NiLiCon caches their values and
invalidates the cache from a kernel module that ftrace-hooks the mutation
paths; the cached copy is included in each checkpoint instead.

The hook functions here mirror the paper's design: each receives the traced
call, checks whether the mutating thread belongs to the protected container
(our hooks receive the container directly as the first trace argument), and
signals the agent by invalidating.  As in the paper's prototype, only the
common mutation paths are hooked — which is "sufficient for all of our
benchmarks".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.criu.collect import StateCollector
from repro.kernel.kernel import Kernel

if TYPE_CHECKING:  # pragma: no cover
    from repro.container.runtime import Container

__all__ = ["InfrequentStateCache", "HOOKED_FUNCTIONS"]

#: Kernel functions whose calls may change infrequently-modified state.
HOOKED_FUNCTIONS = (
    "do_mount",
    "sethostname",
    "cgroup_write",
    "do_mmap_file",
    "dev_open",
)


class InfrequentStateCache:
    """Per-container cache of the slow-to-collect state components."""

    def __init__(self, kernel: Kernel, collector: StateCollector, container: "Container") -> None:
        self.kernel = kernel
        self.collector = collector
        self.container = container
        self._cached: dict[str, Any] | None = None
        #: Metrics: how often the cache served / missed.
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        for fn in HOOKED_FUNCTIONS:
            kernel.ftrace.register(fn, self._hook)
        self._detached = False

    def _hook(self, _fn_name: str, args: tuple) -> None:
        """The ftrace hook body: invalidate if the call touched our container."""
        if args and args[0] is self.container:
            self._cached = None
            self.invalidations += 1

    def provider(
        self, container: "Container"
    ) -> Generator[Any, Any, tuple[dict[str, Any], bool]]:
        """Infrequent-state provider for the checkpoint engine.

        Serves the cached copy when valid (cheap read), otherwise performs
        the full collection and refills the cache.
        """
        assert container is self.container
        if self._cached is not None:
            self.hits += 1
            yield self.kernel.charge(self.kernel.costs.collect_cached_state)
            return self._cached, True
        self.misses += 1
        components = yield from self.collector.collect_infrequent(container)
        self._cached = components
        return components, False

    @property
    def valid(self) -> bool:
        return self._cached is not None

    def detach(self) -> None:
        """Unregister hooks (deployment teardown)."""
        if self._detached:
            return
        for fn in HOOKED_FUNCTIONS:
            self.kernel.ftrace.unregister(fn, self._hook)
        self._detached = True
