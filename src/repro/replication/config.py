"""Deployment configuration: every NiLiCon optimization as a knob.

:meth:`NiliconConfig.table1_level` reconstructs the cumulative optimization
walk of Table I; :meth:`NiliconConfig.nilicon` is the fully-optimized
system; :meth:`NiliconConfig.basic` is the unoptimized port of CRIU+Remus
that the paper reports at 1940% overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Literal

from repro.criu.config import CriuConfig
from repro.sim.units import ms

__all__ = ["NiliconConfig", "TABLE1_LEVELS"]

#: Names of the cumulative Table I rows, in order.
TABLE1_LEVELS = (
    "basic",
    "+criu-optimizations",
    "+cache-infrequent-state",
    "+plug-input-blocking",
    "+netlink-vmas",
    "+staging-buffer",
    "+shm-page-transfer",
)


@dataclass(frozen=True)
class NiliconConfig:
    """All deployment-level knobs of a NiLiCon instance."""

    #: Execution-phase length (paper: 30 ms).
    epoch_execute_us: int = ms(30)
    #: Failure detector: heartbeat period and miss threshold (paper: 30 ms,
    #: 3 consecutive misses => ~90 ms mean detection latency).
    heartbeat_interval_us: int = ms(30)
    heartbeat_miss_threshold: int = 3
    #: Arm the failure detector.  Disabled for overhead-only measurements of
    #: unoptimized configurations whose stop times exceed the detection
    #: window (the paper's 90 ms detector is only compatible with the
    #: optimized system's tens-of-ms stops).
    detector_enabled: bool = True
    #: Checkpoint-path options (see :class:`~repro.criu.config.CriuConfig`).
    criu: CriuConfig = field(default_factory=CriuConfig.nilicon)
    #: Input blocking during checkpoint/restore: plug qdisc (43 us) vs
    #: firewall rules (7 ms + dropped-SYN stalls) — SSV-C.
    input_block: Literal["plug", "firewall"] = "plug"
    #: Memory staging buffer: resume the container after a local copy and
    #: transfer in the background (SSV-D deficiency 2) vs keep it stopped
    #: until the backup has received the pages.
    staging_buffer: bool = True
    #: Backup committed-page store: radix tree vs linked directory list
    #: (SSV-A, the most important CRIU optimization).
    page_store: Literal["radix", "list"] = "radix"
    #: Take a full (non-incremental) checkpoint every N epochs; 0 = only the
    #: first checkpoint is full.  NiLiCon uses soft-dirty incrementals
    #: throughout.
    full_checkpoint_every: int = 0
    #: Compress the state stream before transfer (Remus's checkpoint
    #: compression: dirty pages change little between epochs, so delta+RLE
    #: compresses well).  Trades primary/backup CPU per page for pair-link
    #: bytes.  Off in the paper's NiLiCon; provided for the ablation study.
    compress_transfer: bool = False
    compression_ratio: float = 0.30
    #: Run the runtime state auditor (:mod:`repro.analysis.auditor`) at
    #: every epoch boundary and after every restore.  Costs real (host) CPU
    #: but zero simulated time; off by default, on in property tests.
    audit: bool = False
    #: REGRESSION KNOB — revert the ack-before-commit fix: the backup acks
    #: an epoch on receipt (before :meth:`BackupAgent._commit_state` runs)
    #: and recovery neither quiesces an in-flight commit nor rolls back the
    #: page store's open checkpoint.  A failover overlapping a commit then
    #: restores from a partially-applied page store while the acked epoch's
    #: output has already escaped.  Exists only so the fault campaign can
    #: demonstrate the race; never enable outside tests.
    unsafe_ack_before_commit: bool = False
    #: REGRESSION KNOB — disable the page-digest generation cache
    #: (:class:`~repro.replication.statecache.PageDigestCache`): the
    #: primary re-hashes the container's entire resident set every epoch
    #: instead of hashing only the dirty pages and reusing clean pages'
    #: cached CRCs.  Exists so ``repro perf`` can prove the analyzer flags
    #: the re-hash-everything loop (PERF002) and the profiler confirms it
    #: hot, and so BENCH_engine.json can record the cache's before/after;
    #: never enable outside tests and benches.
    perf_unoptimized_digest: bool = False
    #: REGRESSION KNOB — one RNG consumer bypassing the NDLog: the primary
    #: perturbs its checkpoint timing with a draw from an unseeded,
    #: unlogged module-level generator (``replication/primary.py``).  The
    #: ndflow analyzer must flag the site statically (NDF001/NDF003,
    #: frozen in ``ndflow-baseline.json``) and the record→replay oracle
    #: must independently report a replay divergence — the same
    #: two-witness pattern the races/perf knobs use.  Never enable outside
    #: tests.
    unsafe_unlogged_draw: bool = False
    #: REGRESSION KNOB — revert the barrier-release fix: an ack pops the
    #: *oldest* egress barrier regardless of which epoch was acknowledged,
    #: so a duplicated or reordered ack releases a later epoch's output
    #: early (or strands acknowledged output behind the plug).  Exists only
    #: so the fault campaign can demonstrate the race; never enable outside
    #: tests.
    unsafe_release_oldest_barrier: bool = False
    #: Replication strategy backend (:mod:`repro.replication.modes`):
    #: ``"nilicon"`` releases output on checkpoint commit (the paper's
    #: output-commit-per-epoch), ``"hycor"`` ships a per-container
    #: nondeterminism log continuously and releases output on log commit,
    #: replaying the shipped tail on the backup at failover.
    mode: str = "nilicon"
    #: HyCoR log-flush period: the primary closes and ships the open
    #: nondeterminism-log window every this many microseconds, so released
    #: output waits roughly one flush interval plus the log-commit round
    #: trip instead of up to a whole epoch.
    hycor_log_flush_us: int = ms(3)

    @classmethod
    def nilicon(cls) -> "NiliconConfig":
        return cls()

    @classmethod
    def hycor(cls) -> "NiliconConfig":
        """Fully-optimized checkpointing with HyCoR-style log shipping."""
        return cls(mode="hycor")

    @classmethod
    def basic(cls) -> "NiliconConfig":
        """Unoptimized CRIU + Remus port: Table I row 1."""
        return cls(
            criu=CriuConfig.stock(),
            input_block="firewall",
            staging_buffer=False,
            page_store="list",
        )

    @classmethod
    def table1_level(cls, level: int) -> "NiliconConfig":
        """Cumulative optimization level ``0..6`` (Table I rows, in order).

        0. basic implementation
        1. + optimize CRIU (radix page store, freeze polling, no proxies)
        2. + cache infrequently-modified in-kernel state
        3. + plug-based input blocking
        4. + VMAs via netlink
        5. + memory staging buffer
        6. + dirty pages via shared memory (full NiLiCon)
        """
        if not 0 <= level < len(TABLE1_LEVELS):
            raise ValueError(f"table1 level must be 0..{len(TABLE1_LEVELS) - 1}")
        config = cls.basic()
        if level >= 1:
            config = replace(
                config,
                page_store="radix",
                criu=config.criu.with_(freeze_poll=True, use_proxy_processes=False),
            )
        if level >= 2:
            config = replace(
                config,
                criu=config.criu.with_(cache_infrequent_state=True, fs_cache_mode="fgetfc"),
            )
        if level >= 3:
            config = replace(config, input_block="plug")
        if level >= 4:
            config = replace(config, criu=config.criu.with_(vma_source="netlink"))
        if level >= 5:
            config = replace(config, staging_buffer=True)
        if level >= 6:
            config = replace(config, criu=config.criu.with_(parasite_transport="shm"))
        return config

    def with_(self, **kw) -> "NiliconConfig":
        return replace(self, **kw)
