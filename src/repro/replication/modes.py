"""Pluggable replication strategy backends (the ``ReplicationMode`` registry).

:class:`~repro.replication.manager.ReplicatedDeployment` is mode-agnostic:
it asks the registered :class:`ReplicationMode` named by
``NiliconConfig.mode`` how to parameterize the network buffer and which
agent classes to construct.  Everything above the deployment — the fleet
controller, the experiment harnesses, the fault campaign — selects a
strategy purely by name, so re-protection after a failover, repair after a
backup loss and migration all re-establish whatever mode the config names.

Registered backends:

* ``stock``   — no replication; the plain-container baseline.  Built via
  :class:`repro.baselines.stock.StockDeployment` (it runs no pair
  protocol, so :func:`repro.experiments.common.build_deployment` dispatches
  it before ever consulting this registry's factories).
* ``nilicon`` — the paper's output-commit-per-epoch protocol (default).
* ``hycor``   — continuous nondeterminism-log shipping with log-commit
  release and backup-side replay (:mod:`repro.replication.hycor`).
* ``mc``      — the Remus/MC-style whole-VM baseline
  (:class:`repro.baselines.mc.McDeployment`; also not a pair-protocol
  deployment).

New modes register with :func:`register_mode`; ``repro modes list``
renders this registry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.replication.backup import BackupAgent
from repro.replication.hycor import HycorBackupAgent, HycorPrimaryAgent, hycor_flush_seq
from repro.replication.primary import PrimaryAgent

if TYPE_CHECKING:  # pragma: no cover
    from repro.container.runtime import Container
    from repro.replication.config import NiliconConfig

__all__ = [
    "MODE_REGISTRY",
    "ReplicationMode",
    "get_mode",
    "mode_names",
    "register_mode",
]


class ReplicationMode:
    """One replication strategy: how a deployment buffers, fences and ships.

    Subclasses override the three factory hooks; a mode with
    ``pair_protocol = False`` is a baseline built by its own deployment
    class and must never reach :class:`ReplicatedDeployment`.
    """

    #: Registry key (``NiliconConfig.mode`` / ``FleetSpec.mode`` value).
    name: str = ""
    #: One-line summary for ``repro modes list``.
    description: str = ""
    #: Whether deployments of this mode run the primary/backup pair
    #: protocol (False for the stock and MC baselines).
    pair_protocol: bool = True
    #: When external output escapes: ``immediate`` (no buffering),
    #: ``checkpoint-commit`` (NiLiCon) or ``log-commit`` (HyCoR).
    release_rule: str = "checkpoint-commit"

    def netbuffer_kwargs(
        self, config: "NiliconConfig", container: "Container", initial_epoch: int
    ) -> dict:
        """Constructor kwargs for the deployment's ``NetworkBuffer``."""
        return {
            "input_block": config.input_block,
            "release_oldest": config.unsafe_release_oldest_barrier,
            "initial_epoch": initial_epoch,
        }

    def make_primary_agent(self, **kwargs) -> PrimaryAgent:
        return PrimaryAgent(**kwargs)

    def make_backup_agent(self, primary_container: "Container | None" = None,
                          **kwargs) -> BackupAgent:
        """Build the backup agent; *primary_container* lets a mode read
        adoption state off the protected container (HyCoR's flush horizon)."""
        return BackupAgent(**kwargs)


MODE_REGISTRY: dict[str, ReplicationMode] = {}


def register_mode(mode: ReplicationMode) -> ReplicationMode:
    MODE_REGISTRY[mode.name] = mode
    return mode


def get_mode(name: str) -> ReplicationMode:
    try:
        return MODE_REGISTRY[name]
    except KeyError:  # ft: defensive -- config validation; unknown mode names fail fast at deployment build
        raise ValueError(
            f"unknown mode {name!r}; registered strategies: {mode_names()}"
        ) from None


def mode_names() -> list[str]:
    return list(MODE_REGISTRY)


class StockMode(ReplicationMode):
    name = "stock"
    description = "No replication: plain container, output escapes immediately."
    pair_protocol = False
    release_rule = "immediate"


class NiliconMode(ReplicationMode):
    name = "nilicon"
    description = (
        "Output commit per checkpoint epoch: egress fenced at every "
        "checkpoint, released on the backup's post-commit ack (the paper's "
        "protocol)."
    )


class HycorMode(ReplicationMode):
    name = "hycor"
    description = (
        "Continuous nondeterminism-log shipping: egress fenced per log "
        "flush, released on log commit; failover replays the shipped tail "
        "through the restored checkpoint before promoting."
    )
    release_rule = "log-commit"

    def netbuffer_kwargs(
        self, config: "NiliconConfig", container: "Container", initial_epoch: int
    ) -> dict:
        # Barriers are flush-sequence fences: the ledger floor and acked
        # watermark continue the adopted container's flush numbering (a
        # fresh container starts at flush 1), asserting against the
        # backup's log-commit ledger instead of its epoch commits.
        start_seq = hycor_flush_seq(container)
        return {
            "input_block": config.input_block,
            "release_oldest": config.unsafe_release_oldest_barrier,
            "initial_epoch": start_seq + 1,
            "commit_ledger_kind": "log_commit",
        }

    def make_primary_agent(self, **kwargs) -> PrimaryAgent:
        return HycorPrimaryAgent(**kwargs)

    def make_backup_agent(self, primary_container: "Container | None" = None,
                          **kwargs) -> BackupAgent:
        start_seq = 0 if primary_container is None else hycor_flush_seq(primary_container)
        return HycorBackupAgent(initial_log_seq=start_seq, **kwargs)


class McMode(ReplicationMode):
    name = "mc"
    description = (
        "Remus/MC-style whole-VM epoch replication baseline (write-protect "
        "dirty tracking; own deployment class)."
    )
    pair_protocol = False


register_mode(StockMode())
register_mode(NiliconMode())
register_mode(HycorMode())
register_mode(McMode())
