"""Deployment orchestration: wire a full NiLiCon pair together.

:class:`ReplicatedDeployment` assembles what §IV's architecture figure
shows: the protected container and keep-alive on the primary, primary and
backup agents, network buffering, DRBD pairs for every mounted filesystem,
the heartbeat sender and failure detector — and provides the fault
injection used by the paper's validation (§VII-A): fail-stop emulated by
silencing all the primary's network interfaces.

Beyond the paper, :meth:`ReplicatedDeployment.reprotect` re-establishes
protection after a failover: the restored container (now the de-facto
primary on the old backup host) is adopted into a fresh deployment against
a replacement backup host, so the service survives *chains* of failures —
the "nine lives" the system is named for.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.analysis.auditor import StateAuditor
from repro.container.runtime import Container, ContainerRuntime
from repro.container.spec import ContainerSpec
from repro.metrics.collector import RunMetrics
from repro.net.host import Host
from repro.net.link import Channel
from repro.net.world import World
from repro.replication.config import NiliconConfig
from repro.replication.drbd import BackupDrbd, PrimaryDrbd
from repro.replication.heartbeat import HeartbeatSender
from repro.replication.modes import get_mode
from repro.replication.netbuffer import NetworkBuffer
from repro.sim.faults import coverage_mark

__all__ = ["ReplicatedDeployment", "scoped_fs_name"]


def scoped_fs_name(spec_name: str, fs_name: str) -> str:
    """Host-kernel filesystem key for *fs_name* mounted by *spec_name*.

    Storage is namespaced per container: two containers on the same host
    pair mounting the same fs name must get *distinct* disks (they used to
    silently share one, because devices were keyed by ``fs_name`` alone).
    Idempotent, so re-scoping an already-scoped spec (adoption after a
    failover or migration) is a no-op.
    """
    prefix = f"{spec_name}:"
    return fs_name if fs_name.startswith(prefix) else f"{prefix}{fs_name}"


class ReplicatedDeployment:
    """One replicated container across a primary/backup host pair."""

    def __init__(
        self,
        world: World,
        spec: ContainerSpec,
        config: NiliconConfig | None = None,
        on_failover: Callable[[Container], None] | None = None,
        primary_host: Host | None = None,
        backup_host: Host | None = None,
        channel: Channel | None = None,
        container: Container | None = None,
        initial_epoch: int = 0,
    ) -> None:
        """Deploy *spec* replicated from *primary_host* to *backup_host*.

        Defaults to the world's standard pair and creates the container;
        pass *container* (plus hosts/channel) to adopt an already-running
        container instead — the re-protection path after a failover.

        *initial_epoch* continues an adopted container's epoch numbering
        (re-pairing after a backup-host loss, or after a migration): the
        primary's first checkpoint is epoch *initial_epoch* and the backup
        expects exactly it.  The stale egress barriers the adopted
        container may still hold (epochs its dead backup never acked) then
        drain on the first new ack — only once the new full checkpoint,
        which supersedes them, is durable.
        """
        self.world = world
        # Namespace every mount's backing filesystem by container, so the
        # same fs name in two specs maps to two distinct disks.
        scoped_mounts = [
            (mountpoint, scoped_fs_name(spec.name, fs_name))
            for mountpoint, fs_name in spec.mounts
        ]
        if scoped_mounts != spec.mounts:
            spec = replace(spec, mounts=scoped_mounts)
        self.spec = spec
        self.initial_epoch = initial_epoch
        self.config = config if config is not None else NiliconConfig.nilicon()
        #: The replication strategy backend this pairing runs.  Resolved
        #: from the config by name, so reprotect/repair/migrate (which pass
        #: the config along) re-establish the same mode automatically.
        self.mode = get_mode(self.config.mode)
        if not self.mode.pair_protocol:
            raise ValueError(
                f"replication mode {self.config.mode!r} does not run the "
                "pair protocol; build it via "
                "repro.experiments.common.build_deployment"
            )
        self.on_failover = on_failover
        self.metrics = RunMetrics()
        self.primary_host = primary_host if primary_host is not None else world.primary
        self.backup_host = backup_host if backup_host is not None else world.backup

        engine = world.engine
        costs = world.costs
        if channel is None:
            channel = world.pair_channel
        self.channel = channel
        # Route the shared pair link per container, so any number of
        # replicated containers coexist on one host pair (multi-tenancy).
        from repro.net.router import EndpointRouter

        # A pooled channel may have been provisioned in either direction
        # (host A's end is ``.a`` for one member's pair and ``.b`` for
        # another's); orient by which end terminates at which host, so two
        # members replicating in opposite directions contend on opposite
        # link directions, as they physically would.
        primary_end, backup_end = channel.a, channel.b
        if any(
            ep is channel.b for ep in self.primary_host.endpoints.values()
        ) or any(ep is channel.a for ep in self.backup_host.endpoints.values()):
            primary_end, backup_end = channel.b, channel.a
        primary_endpoint = EndpointRouter.attach(primary_end, engine).port(spec.name)
        backup_endpoint = EndpointRouter.attach(backup_end, engine).port(spec.name)

        # -- storage: identical disks on both hosts, DRBD pair per mount ----
        self.primary_drbd: list[PrimaryDrbd] = []
        self.backup_drbd: list[BackupDrbd] = []
        for disk_index, (_mountpoint, fs_name) in enumerate(spec.mounts):
            dev_name = f"drbd-{fs_name}"
            if fs_name not in self.primary_host.kernel.filesystems:
                primary_dev = self.primary_host.kernel.add_block_device(dev_name)
                self.primary_host.kernel.mkfs(dev_name, fs_name)
            else:
                primary_dev = self.primary_host.kernel.filesystems[fs_name].device
            if fs_name not in self.backup_host.kernel.filesystems:
                backup_dev = self.backup_host.kernel.add_block_device(dev_name)
                self.backup_host.kernel.mkfs(dev_name, fs_name)
            else:
                backup_dev = self.backup_host.kernel.filesystems[fs_name].device
            # Initial full resync: DRBD brings a fresh backup disk to the
            # primary's current content before incremental mirroring starts.
            backup_dev.load_snapshot(primary_dev.snapshot())
            self.primary_drbd.append(PrimaryDrbd(primary_dev, primary_endpoint, disk_index))
            self.backup_drbd.append(BackupDrbd(engine, costs, backup_dev))

        # -- primary side -----------------------------------------------------
        self.primary_runtime = ContainerRuntime(self.primary_host.kernel, world.bridge)
        if container is None:
            self.container = self.primary_runtime.create(spec)
        else:
            # Adoption: the container already runs on the primary host.
            assert container.kernel is self.primary_host.kernel, (
                "adopted container must live on the primary host"
            )
            self.container = container
            self.primary_runtime.containers[spec.name] = container
        self.container.start_keepalive(self.config.heartbeat_interval_us)
        #: Runtime invariant checks at epoch/restore boundaries (opt-in).
        self.auditor: StateAuditor | None = None
        if self.config.audit:
            self.auditor = StateAuditor()
            self.auditor.attach_container(self.container)
        self.netbuffer = NetworkBuffer(
            engine,
            costs,
            self.container,
            **self.mode.netbuffer_kwargs(self.config, self.container, initial_epoch),
        )
        self.primary_agent = self.mode.make_primary_agent(
            container=self.container,
            endpoint=primary_endpoint,
            config=self.config,
            netbuffer=self.netbuffer,
            drbd=self.primary_drbd,
            metrics=self.metrics,
            auditor=self.auditor,
            initial_epoch=initial_epoch,
        )
        self.heartbeat = HeartbeatSender(
            engine,
            primary_endpoint,
            read_cpuacct=self.container.cgroup.read_cpuacct,
            interval_us=self.config.heartbeat_interval_us,
        )

        # -- backup side --------------------------------------------------------
        self.backup_runtime = ContainerRuntime(self.backup_host.kernel, world.bridge)
        self.backup_agent = self.mode.make_backup_agent(
            primary_container=self.container,
            engine=engine,
            runtime=self.backup_runtime,
            endpoint=backup_endpoint,
            config=self.config,
            spec=spec,
            bridge=world.bridge,
            drbd=self.backup_drbd,
            metrics=self.metrics,
            on_failover=on_failover,
            auditor=self.auditor,
            initial_epoch=initial_epoch,
        )

        self._started = False
        self._failed_stop = False

    # ------------------------------------------------------------------ #
    # Lifecycle                                                            #
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Begin replication: agents, heartbeats, detector."""
        if self._started:
            return
        self._started = True
        self.backup_agent.start()
        self.primary_agent.start()
        self.heartbeat.start()

    def stop(self) -> None:
        """Cleanly stop replication (experiment teardown, no failover)."""
        self.heartbeat.stop()
        self.primary_agent.stop()
        self.backup_agent.stop()
        self.metrics.ended_at_us = self.world.engine.now

    # ------------------------------------------------------------------ #
    # Fault injection (SSVII-A)                                            #
    # ------------------------------------------------------------------ #
    def inject_fail_stop(self) -> None:
        """Emulate a fail-stop primary failure.

        As in the paper, failure is emulated by blocking all traffic on the
        primary's interfaces: the pair channel goes silent (heartbeats stop
        reaching the detector) and the container's veth is cut.  The
        primary's processes also stop executing (crash semantics).
        Idempotent: a second injection (e.g. a fault action racing a
        scripted one) is a no-op — a host can only die once.
        """
        if self._failed_stop:
            return
        self._failed_stop = True
        coverage_mark(self.world.engine, "inject", "replication.fail_stop")
        self.primary_host.fail_stop()
        self.channel.cut()
        self.container.kill()
        self.heartbeat.stop()
        self.primary_agent.crash()
        self.metrics.ended_at_us = self.world.engine.now

    # ------------------------------------------------------------------ #
    # Re-protection (beyond the paper: survive the *next* failure too)     #
    # ------------------------------------------------------------------ #
    def reprotect(
        self,
        new_backup_host: Host,
        config: NiliconConfig | None = None,
        on_failover: Callable[[Container], None] | None = None,
        channel: Channel | None = None,
    ) -> "ReplicatedDeployment":
        """After a failover, protect the restored container again.

        The restored container on the old backup host becomes the primary
        of a fresh deployment whose backup is *new_backup_host*; call
        ``start()`` on the returned deployment to resume replication.
        Pass *channel* to reuse a provisioned (possibly shared) pair link —
        the fleet's host pool does — instead of connecting a fresh one.
        """
        if not self.failed_over or self.restored_container is None:
            raise RuntimeError("reprotect() requires a completed failover")
        if channel is None:
            channel = self.world.connect_pair(self.backup_host, new_backup_host)
        return ReplicatedDeployment(
            self.world,
            self.spec,
            config=config if config is not None else self.config,
            on_failover=on_failover if on_failover is not None else self.on_failover,
            primary_host=self.backup_host,
            backup_host=new_backup_host,
            channel=channel,
            container=self.restored_container,
        )

    # ------------------------------------------------------------------ #
    # Views                                                                #
    # ------------------------------------------------------------------ #
    @property
    def restored_container(self) -> Container | None:
        return self.backup_agent.restored_container

    @property
    def failed_over(self) -> bool:
        return self.backup_agent.failed_over

    def audit_output_commit(self) -> list[str]:
        return self.netbuffer.audit_output_commit()
