"""The fail-stop failure detector (paper §IV).

The primary agent sends a heartbeat to the backup every 30 ms *as long as
the container's CPU usage is increasing* (read from the cgroup's
``cpuacct.usage``).  A keep-alive process inside the container guarantees
usage keeps increasing while the container is healthy, so a silent
heartbeat stream means the container/host is dead, not idle.  The backup
declares failure after three consecutive missed intervals — a mean
detection latency of ~90 ms.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.net.link import Endpoint
from repro.sim.access import record_access
from repro.sim.engine import Engine, Process

__all__ = ["FailureDetector", "HeartbeatSender"]


class HeartbeatSender:
    """Primary-side heartbeat loop."""

    def __init__(
        self,
        engine: Engine,
        endpoint: Endpoint,
        read_cpuacct: Callable[[], int],
        interval_us: int = 30_000,
    ) -> None:
        self.engine = engine
        self.endpoint = endpoint
        self.read_cpuacct = read_cpuacct
        self.interval_us = interval_us
        self.sent = 0
        self.skipped_idle = 0
        self._stopped = False
        self._process: Process | None = None

    def start(self) -> Process:
        self._process = self.engine.process(self._run(), name="heartbeat-sender")
        return self._process

    def stop(self) -> None:
        self._stopped = True

    def _run(self) -> Generator[Any, Any, None]:
        last_usage = self.read_cpuacct()
        while not self._stopped:  # ft: bounded -- stop() flips _stopped; each pass sleeps one heartbeat interval
            yield self.engine.timeout(self.interval_us)
            if self._stopped:
                return
            usage = self.read_cpuacct()
            if usage > last_usage:
                self.endpoint.send({"kind": "heartbeat", "usage": usage}, size_bytes=64)
                self.sent += 1
            else:
                # Container made no progress: withhold the heartbeat.  The
                # keep-alive process makes this happen only when something
                # is genuinely wrong.
                self.skipped_idle += 1
            last_usage = usage


class FailureDetector:
    """Backup-side miss counter.

    The backup agent feeds heartbeat arrivals in via :meth:`on_heartbeat`;
    the detector's own loop checks, every interval, whether any heartbeat
    arrived.  After ``miss_threshold`` consecutive empty intervals it fires
    ``on_failure`` once.
    """

    def __init__(
        self,
        engine: Engine,
        on_failure: Callable[[], None],
        interval_us: int = 30_000,
        miss_threshold: int = 3,
    ) -> None:
        self.engine = engine
        self.on_failure = on_failure
        self.interval_us = interval_us
        self.miss_threshold = miss_threshold
        self._last_beat_at: int | None = None
        self._misses = 0
        self.fired = False
        self.fired_at: int | None = None
        self._stopped = False

    @property
    def armed(self) -> bool:
        """True once at least one heartbeat has been seen — only then do
        empty windows count as misses (see :meth:`_run`)."""
        return self._last_beat_at is not None

    @property
    def misses(self) -> int:
        """Consecutive empty windows counted so far (diagnostics/tests)."""
        return self._misses

    def on_heartbeat(self) -> None:
        record_access(self.engine, self, "heartbeat_window", "w",
                      site="detector.on_heartbeat")
        self._last_beat_at = self.engine.now
        self._misses = 0

    def start(self) -> Process:
        return self.engine.process(self._run(), name="failure-detector")

    def stop(self) -> None:
        self._stopped = True

    def _run(self) -> Generator[Any, Any, None]:
        window_start = self.engine.now
        while not (self._stopped or self.fired):  # ft: bounded -- exits when stopped or the detector fires; each pass sleeps one interval
            yield self.engine.timeout(self.interval_us)
            if self._stopped:
                return
            if self._last_beat_at is None:
                # Not yet armed: the detector starts counting misses only
                # once the primary has produced its first heartbeat —
                # otherwise the long initial full checkpoint (during which
                # the frozen container makes no cpuacct progress) would be
                # misread as a failure.
                window_start = self.engine.now
                continue
            record_access(self.engine, self, "heartbeat_window", "r",
                          site="detector.window_check")
            beat_in_window = self._last_beat_at >= window_start
            window_start = self.engine.now
            if beat_in_window:
                self._misses = 0
                continue
            self._misses += 1
            if self._misses >= self.miss_threshold:
                self.fired = True
                self.fired_at = self.engine.now
                self.on_failure()
                return
