"""NiLiCon reproduction: fault-tolerant containers on a simulated substrate.

Reproduction of Zhou & Tamir, "Fault-Tolerant Containers Using NiLiCon"
(IPDPS 2020).  See README.md for the tour, DESIGN.md for the architecture
and substitution rationale, EXPERIMENTS.md for paper-vs-measured results.

Top-level convenience re-exports cover the pieces a typical user script
needs; subpackages hold the full API:

* :mod:`repro.sim` — deterministic discrete-event engine.
* :mod:`repro.kernel` — the simulated Linux substrate.
* :mod:`repro.container` — the runC-like container runtime.
* :mod:`repro.criu` — checkpoint/restore and live migration.
* :mod:`repro.replication` — NiLiCon itself.
* :mod:`repro.baselines` — stock and MC (Remus-on-KVM) comparisons.
* :mod:`repro.workloads` — the paper's benchmarks and clients.
* :mod:`repro.experiments` — one module per paper table/figure.
"""

from repro.container import Container, ContainerRuntime, ContainerSpec, ProcessSpec
from repro.net import World
from repro.replication import NiliconConfig, ReplicatedDeployment

__version__ = "1.0.0"

__all__ = [
    "Container",
    "ContainerRuntime",
    "ContainerSpec",
    "NiliconConfig",
    "ProcessSpec",
    "ReplicatedDeployment",
    "World",
    "__version__",
]
