"""Deterministic fault plans: what to break, where, and exactly when.

A :class:`FaultPlan` is armed on the engine (``plan.arm(engine)``) and
consulted from two kinds of hook:

* **protocol points** — :func:`repro.sim.faults.fault_point` sites threaded
  through the primary/backup agents.  A matching :class:`PointFault` can
  stall the hooked process (returning a simulated-µs delay), run an action
  (e.g. fail-stop the primary host), or kill the hooked process in place by
  raising :class:`~repro.sim.engine.Interrupt`.
* **link transmissions** — :meth:`Channel._transmit
  <repro.net.link.Channel._transmit>` consults the plan per message.  A
  matching :class:`LinkFault` drops, duplicates or delays the delivery; a
  duplicate/delay can also be *held* and released when a named protocol
  point next fires, which pins link races to exact protocol phases instead
  of fragile wall-clock offsets.

Everything is deterministic: rules select their targets by message kind,
epoch and match ordinal — never by random draws or real time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.faultinject.points import FAULT_POINTS, LINK_MESSAGE_KINDS
from repro.sim.engine import Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Channel, Delivery, Endpoint
    from repro.sim.engine import Engine

__all__ = ["FaultPlan", "LinkFault", "PointFault"]


@dataclass
class PointFault:
    """One protocol-point rule; fires exactly once.

    *point* must be a registered injection point.  *epoch* filters on the
    hook's ``epoch`` detail (None = any).  *at_hit* selects the n-th
    matching occurrence (1-based).  When the rule fires it runs *action*
    (if any), contributes *stall_us* of simulated delay, and — if *kill*
    is set — fail-stops the hooked process via ``Interrupt``.
    """

    point: str
    epoch: int | None = None
    at_hit: int = 1
    stall_us: int = 0
    kill: bool = False
    action: Callable[["Engine"], None] | None = None
    hits: int = 0
    fired: bool = False

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; "
                f"registered: {sorted(FAULT_POINTS)}"
            )

    def matches(self, name: str, detail: dict[str, Any]) -> bool:
        if name != self.point:
            return False
        if self.epoch is not None and detail.get("epoch") != self.epoch:
            return False
        return True


@dataclass
class LinkFault:
    """One channel-message rule.

    *kind* selects messages by their ``kind`` field; *epoch* additionally
    filters on the message's ``epoch`` (None = any).  Of the matching
    transmissions, the rule acts on ordinals ``at_match .. at_match +
    count - 1`` (1-based; ``count=None`` = unbounded).

    Modes: ``drop`` swallows the delivery; ``delay`` postpones it by
    *delay_us* (reordering happens naturally when a later message overtakes
    it); ``duplicate`` delivers normally *and* schedules a copy *delay_us*
    later.  If *release_at_point* names a protocol point, the delayed
    message / duplicate copy is instead *held* and delivered the next time
    that point fires — a phase-pinned race.
    """

    kind: str
    mode: str  # "drop" | "duplicate" | "delay"
    epoch: int | None = None
    at_match: int = 1
    count: int | None = 1
    delay_us: int = 0
    release_at_point: str | None = None
    seen: int = 0
    acted: int = 0

    def __post_init__(self) -> None:
        if self.kind not in LINK_MESSAGE_KINDS:
            raise ValueError(
                f"unknown message kind {self.kind!r}; have {LINK_MESSAGE_KINDS}"
            )
        if self.mode not in ("drop", "duplicate", "delay"):
            raise ValueError(f"unknown link-fault mode {self.mode!r}")
        if self.release_at_point is not None and self.release_at_point not in FAULT_POINTS:
            raise ValueError(f"unknown release point {self.release_at_point!r}")

    def matches(self, message: Any) -> bool:
        if not isinstance(message, dict) or message.get("kind") != self.kind:
            return False
        if self.epoch is not None and message.get("epoch") != self.epoch:
            return False
        return True

    def active(self) -> bool:
        """Whether the current (just-counted) match ordinal should act."""
        if self.seen < self.at_match:
            return False
        return self.count is None or self.seen < self.at_match + self.count


@dataclass
class _Held:
    """A delivery parked until a protocol point fires."""

    channel: "Channel"
    dest: "Endpoint"
    delivery: "Delivery"
    release_point: str


class FaultPlan:
    """A set of point and link fault rules, armed on one engine."""

    def __init__(
        self,
        points: list[PointFault] | None = None,
        links: list[LinkFault] | None = None,
    ) -> None:
        self.points: list[PointFault] = list(points or ())
        self.links: list[LinkFault] = list(links or ())
        self._held: list[_Held] = []
        self._engine: "Engine | None" = None
        #: Human-readable record of everything the plan did (for reports
        #: and test assertions).
        self.log: list[str] = []

    # -- construction -----------------------------------------------------
    def add_point(self, rule: PointFault) -> "FaultPlan":
        self.points.append(rule)
        return self

    def add_link(self, rule: LinkFault) -> "FaultPlan":
        self.links.append(rule)
        return self

    # -- lifecycle --------------------------------------------------------
    def arm(self, engine: "Engine") -> "FaultPlan":
        self._engine = engine
        engine.fault_plan = self
        return self

    def disarm(self) -> None:
        if self._engine is not None and getattr(self._engine, "fault_plan", None) is self:
            self._engine.fault_plan = None
        self._engine = None

    @property
    def held_count(self) -> int:
        return len(self._held)

    # -- hook: protocol points --------------------------------------------
    def on_point(self, name: str, detail: dict[str, Any]) -> int:
        """Called from ``fault_point``; returns the stall in simulated µs.

        Raises ``Interrupt`` (after running actions and flushing held
        deliveries) when a matching rule asks to kill the hooked process.
        """
        engine = self._engine
        stall = 0
        kill = False
        for rule in self.points:
            if rule.fired or not rule.matches(name, detail):
                continue
            rule.hits += 1
            if rule.hits != rule.at_hit:
                continue
            rule.fired = True
            rec = getattr(engine, "_ftcov", None) if engine else None
            if rec is not None:
                rec.record("fired", name)
            self.log.append(
                f"t={engine.now if engine else '?'} point {name} {detail} -> "
                f"stall={rule.stall_us} kill={rule.kill} "
                f"action={'yes' if rule.action else 'no'}"
            )
            if rule.action is not None:
                rule.action(engine)
            stall += rule.stall_us
            kill = kill or rule.kill
        # Deliver any messages held for this point (phase-pinned races).
        for held in [h for h in self._held if h.release_point == name]:
            self._held.remove(held)
            if not held.channel.is_cut:
                self.log.append(
                    f"t={engine.now if engine else '?'} released held "
                    f"{_describe(held.delivery.message)} at {name}"
                )
                held.dest.rx.put(held.delivery)
        if kill:
            raise Interrupt(f"fault-injection kill at {name}")
        return stall

    # -- hook: link transmissions -----------------------------------------
    def on_transmit(
        self,
        channel: "Channel",
        dest: "Endpoint",
        delivery: "Delivery",
        delay_us: int,
    ) -> bool:
        """Called from ``Channel._transmit``.  Returns True when the plan
        took over delivery scheduling for this message."""
        for rule in self.links:
            if not rule.matches(delivery.message):
                continue
            rule.seen += 1
            if not rule.active():
                continue
            rule.acted += 1
            engine = channel.engine
            desc = _describe(delivery.message)
            if rule.mode == "drop":
                self.log.append(f"t={engine.now} dropped {desc}")
                return True
            if rule.mode == "delay":
                if rule.release_at_point is not None:
                    self.log.append(f"t={engine.now} held {desc} "
                                    f"until {rule.release_at_point}")
                    self._held.append(_Held(channel, dest, delivery, rule.release_at_point))
                else:
                    self.log.append(f"t={engine.now} delayed {desc} "
                                    f"by {rule.delay_us}us")
                    self._schedule(channel, dest, delivery, delay_us + rule.delay_us)
                return True
            # duplicate: original goes out on time, plus one copy.
            self._schedule(channel, dest, delivery, delay_us)
            if rule.release_at_point is not None:
                self.log.append(f"t={engine.now} duplicated {desc}; copy held "
                                f"until {rule.release_at_point}")
                self._held.append(_Held(channel, dest, delivery, rule.release_at_point))
            else:
                self.log.append(f"t={engine.now} duplicated {desc}; copy "
                                f"+{rule.delay_us}us")
                self._schedule(channel, dest, delivery, delay_us + rule.delay_us)
            return True
        return False

    @staticmethod
    def _schedule(
        channel: "Channel", dest: "Endpoint", delivery: "Delivery", delay_us: int
    ) -> None:
        if delay_us <= 0:
            if not channel.is_cut:
                dest.rx.put(delivery)
            return
        timer = channel.engine.timeout(delay_us)
        timer.callbacks.append(
            lambda _ev: None if channel.is_cut else dest.rx.put(delivery)
        )


def _describe(message: Any) -> str:
    if isinstance(message, dict):
        kind = message.get("kind", "?")
        epoch = message.get("epoch")
        return f"{kind}" + (f"(epoch={epoch})" if epoch is not None else "")
    return repr(message)
