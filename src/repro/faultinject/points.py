"""The injection-point registry and the hook-coverage checker.

Every named :func:`~repro.sim.faults.fault_point` site in the protocol is
declared here, with the protocol phase it interrupts.  The registry is the
single source of truth: scenario construction validates point names against
it, and :func:`verify_hook_coverage` walks the source tree's ASTs to prove
that every declared point is actually reachable from a hook site (and that
no hook site uses an undeclared name) — the check wired into
``repro faultcampaign --check-points`` and the campaign smoke run.
"""

from __future__ import annotations

import ast
from pathlib import Path

__all__ = [
    "FAULT_POINTS",
    "FLEET_FAULT_POINTS",
    "LINK_MESSAGE_KINDS",
    "hooked_points",
    "verify_hook_coverage",
]

#: name -> description of the protocol window the point sits in.
FAULT_POINTS: dict[str, str] = {
    "primary.post_freeze": (
        "Container frozen, input not yet blocked; epoch barrier of the "
        "previous epoch is the newest in the egress queue."
    ),
    "primary.mid_collect": (
        "Input blocked and DRBD barrier sent; the CRIU collection window "
        "is open and the checkpoint image is being assembled."
    ),
    "primary.post_barrier": (
        "Epoch barrier inserted into the egress plug; this epoch's output "
        "is now fenced but its state has not been sent."
    ),
    "primary.pre_send": (
        "Checkpoint image complete, about to be streamed to the backup."
    ),
    "primary.between_send_and_receipt": (
        "State is on the wire; the backup has not yet acknowledged it."
    ),
    "backup.post_ack_pre_commit": (
        "Epoch state and disk writes fully received, commit not yet "
        "applied.  (Historically the ack had already been sent here — the "
        "ack-before-commit race this point was built to expose.)"
    ),
    "backup.mid_commit": (
        "Commit in flight: roughly half the epoch's pages are in the page "
        "store under an open checkpoint."
    ),
    "backup.mid_recover": (
        "Failover recovery in flight: uncommitted state discarded, CRIU "
        "images not yet materialized/restored."
    ),
    "hycor.mid_log_ship": (
        "HyCoR: a log flush's egress fence is inserted but the flush is "
        "not yet on the wire — a crash here strands fenced output behind "
        "a barrier the backup will never acknowledge."
    ),
    "hycor.log_gap": (
        "HyCoR failover: the shipped log has a sequence hole (a flush died "
        "with the primary or the link); the parked tail past the gap is "
        "about to be discarded — nothing in it was ever acknowledged."
    ),
    "hycor.replay_divergence": (
        "HyCoR failover: a stored flush failed digest re-verification "
        "during replay; promotion proceeds from the last flush that "
        "verifies."
    ),
}

#: Fleet-controller injection points (the control plane above the pair
#: protocol).  Kept in their own registry so the pair-level campaign's
#: "every point exercised" check can exclude them — pair scenarios cannot
#: reach controller decisions — while plan validation and the AST hook
#: coverage check (which merge both) still cover them.
FLEET_FAULT_POINTS: dict[str, str] = {
    "fleet.pre_reprotect": (
        "A failover completed and the controller is about to pick a "
        "replacement backup for the orphaned member."
    ),
    "fleet.mid_reprotect": (
        "Replacement backup chosen and its slot allocated; the new "
        "deployment has not been constructed/started yet.  A kill here is "
        "a controller crash mid-reprotect — the persisted member intent "
        "must let a restarted controller converge without double-allocating."
    ),
    "fleet.pool_exhausted": (
        "No alive host has a free slot for a replacement backup; the "
        "member is about to enter the degraded (running-unprotected) state."
    ),
    "fleet.pre_migrate": (
        "Planned rebalancing is about to quiesce replication and move a "
        "member's primary container to another host."
    ),
    "fleet.post_reserve": (
        "Migration destination slot reserved (primary-next) but cutover "
        "has not begun; replication still runs on the old pairing.  A "
        "destination failure here must abort the migration cleanly and "
        "release the reservation."
    ),
}

FAULT_POINTS.update(FLEET_FAULT_POINTS)

#: Message kinds a :class:`~repro.faultinject.plan.LinkFault` may target
#: (the ``kind`` field of every pair-channel message).
LINK_MESSAGE_KINDS = (
    "state", "ack", "heartbeat", "disk_write", "disk_barrier",
    # HyCoR-mode pair-channel traffic (repro.replication.hycor).
    "ndlog", "log_ack",
)


def hooked_points(root: str | Path) -> set[str]:
    """Names passed as string literals to ``fault_point(...)`` under *root*.

    AST-based, so commented-out or string-mentioned names don't count —
    only real call sites do.
    """
    found: set[str] = set()
    for path in sorted(Path(root).rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except SyntaxError:  # ft: defensive -- tooling scan; an unparseable file holds no hook sites
            continue
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
            if name != "fault_point" or len(node.args) < 2:
                continue
            point = node.args[1]
            if isinstance(point, ast.Constant) and isinstance(point.value, str):
                found.add(point.value)
    return found


def verify_hook_coverage(root: str | Path) -> list[str]:
    """Cross-check the registry against real hook sites under *root*.

    Returns a list of problems (empty = every declared point is reachable
    and every hook site is declared).
    """
    hooked = hooked_points(root)
    problems = []
    for name in sorted(set(FAULT_POINTS) - hooked):
        problems.append(f"declared fault point {name!r} has no fault_point() hook site")
    for name in sorted(hooked - set(FAULT_POINTS)):
        problems.append(f"hook site uses undeclared fault point {name!r}")
    return problems
