"""Correctness oracles evaluated after every fault-injection run.

Three invariant families (paper §II-A, §IV, §VII-A):

* **output commit** — no epoch's buffered output is released before the
  backup acknowledged that epoch, and every acknowledged barrier is
  eventually released (no release lag);
* **committed-epoch durability** — after a failover, everything that was
  externally released is covered by the epoch recovery restored from, the
  page store holds no partially-applied checkpoint, and recovery ran
  exactly once;
* **client-session consistency** — clients see no connection errors, no
  validation failures (response mismatches / lost acknowledged writes),
  and make progress.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.replication.manager import ReplicatedDeployment
    from repro.workloads.base import ClientStats

__all__ = [
    "check_client_sessions",
    "check_durability",
    "check_failover_expectation",
    "check_output_commit",
    "evaluate_oracles",
]


def check_output_commit(deployment: "ReplicatedDeployment") -> list[str]:
    """Release log audit + release-lag check (acked => released)."""
    violations = list(deployment.audit_output_commit())
    lag = deployment.netbuffer.release_lag()
    if lag:
        violations.append(
            f"{lag} acknowledged epoch barrier(s) still queued at run end "
            "(release lag: acked output never escaped)"
        )
    return violations


def check_durability(deployment: "ReplicatedDeployment") -> list[str]:
    """After failover: released output must be covered by the restored epoch."""
    if not deployment.failed_over:
        return []
    violations = []
    backup = deployment.backup_agent
    if deployment.restored_container is None:
        violations.append("recovery did not produce a restored container")
        return violations
    recovered = backup.recovered_from_epoch
    released = [r.epoch for r in deployment.netbuffer.releases]
    if deployment.mode.release_rule == "log-commit":
        # HyCoR: barriers are flush sequences, and the recovery point is
        # the checkpoint *plus* the replayed log tail — released output
        # must be covered by the last flush replay actually applied.
        horizon = backup.replay_horizon_seq
        if horizon is not None and released and max(released) > horizon:
            violations.append(
                f"flush {max(released)} output was released to clients but "
                f"failover replayed through flush {horizon} "
                "(lost committed output)"
            )
    elif recovered is not None and released and max(released) > recovered:
        violations.append(
            f"epoch {max(released)} output was released to clients but "
            f"failover restored epoch {recovered} (lost committed output)"
        )
    if backup.page_store.checkpoint_open:
        violations.append(
            "page store left with an open (partially applied) checkpoint "
            "after recovery"
        )
    if backup.recoveries_started != 1:
        violations.append(
            f"{backup.recoveries_started} recovery attempts started "
            "(expected exactly one)"
        )
    return violations


def check_failover_expectation(
    deployment: "ReplicatedDeployment", expect_failover: bool
) -> list[str]:
    if expect_failover and not deployment.failed_over:
        return ["expected failover never happened"]
    if not expect_failover and deployment.failed_over:
        return ["spurious failover (no fatal fault was injected)"]
    return []


def check_client_sessions(
    stats: "ClientStats", allow_reconnects: bool = False
) -> list[str]:
    """*allow_reconnects* relaxes only the connection-error count — HyCoR's
    documented recovery rule aborts surviving connections after replay (the
    restored socket streams lag the log-commit-released output), so clients
    see one reset each and reconnect.  Validation failures (lost or wrong
    acknowledged writes) and progress always gate."""
    violations = []
    if stats.errors and not allow_reconnects:
        violations.append(f"{stats.errors} client connection errors")
    violations.extend(stats.validation_failures[:5])
    if stats.completed == 0:
        violations.append("clients completed no requests")
    return violations


def evaluate_oracles(
    deployment: "ReplicatedDeployment",
    stats: "ClientStats",
    expect_failover: bool,
    expect_liveness: bool = True,
) -> list[str]:
    """All oracles for one run; empty list = the run upheld every invariant."""
    violations = check_output_commit(deployment)
    violations += check_failover_expectation(deployment, expect_failover)
    violations += check_durability(deployment)
    if expect_liveness:
        mode = getattr(deployment, "mode", None)
        allow_reconnects = (
            deployment.failed_over
            and mode is not None
            and mode.release_rule == "log-commit"
        )
        violations += check_client_sessions(stats, allow_reconnects)
    return violations
