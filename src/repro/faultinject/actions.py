"""Reusable fault actions for :class:`~repro.faultinject.plan.PointFault`.

An action is a callable of one argument (the engine) run synchronously
when its rule fires, *before* any kill interrupt is raised — so crash
bookkeeping (channel cut, container kill, agent crash) completes before
the hooked process dies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.replication.manager import ReplicatedDeployment
    from repro.sim.engine import Engine

__all__ = ["corrupt_stored_flush", "crash_primary", "spurious_redetect"]


def crash_primary(
    deployment: "ReplicatedDeployment", after_us: int = 0
) -> Callable[["Engine"], None]:
    """Fail-stop the primary, immediately or *after_us* later.

    The delayed form lets in-flight messages (e.g. an ack the backup has
    already sent) reach the primary before it dies — the window the
    ack-before-commit race needs.
    """

    def action(engine: "Engine") -> None:
        if after_us <= 0:
            deployment.inject_fail_stop()
            return

        def later():
            yield engine.timeout(after_us)
            deployment.inject_fail_stop()

        engine.process(later(), name="fault-delayed-crash")

    return action


def corrupt_stored_flush(
    deployment: "ReplicatedDeployment",
) -> Callable[["Engine"], None]:
    """Flip a bit in the highest-sequence stored HyCoR log flush.

    Models durable-log corruption discovered at failover (outside the
    fail-stop model): replay must *detect* the mismatch against the shipped
    window digest and promote from the last flush that verifies, rather
    than apply state it cannot trust.  Fired at ``backup.mid_recover`` —
    after the store stopped changing, before replay reads it.
    """

    def action(_engine: "Engine") -> None:
        store = deployment.backup_agent._log_store
        for seq in sorted(store, reverse=True):
            if store[seq]["entries"]:
                entry = store[seq]["entries"][-1]
                entry[2] = "corrupted-" + entry[2]
                return
        # All stored flushes empty (no memory writes shipped): poison the
        # digest of the newest instead so verification still trips.
        if store:
            store[max(store)]["crc"] = "ffffffff"

    return action


def spurious_redetect(
    deployment: "ReplicatedDeployment",
) -> Callable[["Engine"], None]:
    """Fire the failure detector's callback again (e.g. mid-recovery).

    A correct backup must treat this as a no-op: recovery is already in
    flight and must run exactly once.
    """

    def action(_engine: "Engine") -> None:
        deployment.backup_agent._on_failure_detected()

    return action
