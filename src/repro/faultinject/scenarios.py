"""The phase-fault scenario catalog: one cell per protocol window.

Where the §VII-A campaign injects fail-stop at *random* times, each
scenario here pins a fault to one named protocol phase (or one link-level
message race), so the narrow windows where the protocol could be wrong are
hit on *every* run.  The catalog covers every registered injection point
plus drop / duplicate / reorder / delay races on acks, state transfers and
heartbeats.

Scenarios fire at :data:`TARGET_EPOCH`, late enough that clients are
connected and steady-state traffic is flowing through the egress buffer
(the races need in-flight output to corrupt).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable

from repro.faultinject.actions import (
    corrupt_stored_flush,
    crash_primary,
    spurious_redetect,
)
from repro.faultinject.plan import FaultPlan, LinkFault, PointFault
from repro.sim.units import ms

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.world import World
    from repro.replication.manager import ReplicatedDeployment

__all__ = ["SCENARIOS", "Scenario", "TARGET_EPOCH", "scenario_names"]

#: Epoch the scenarios target (~`TARGET_EPOCH` * 31 ms into the run, with
#: clients attached and traffic flowing).
TARGET_EPOCH = 12

#: Stall long enough that failure detection (~90-120 ms after the primary
#: dies) completes while the stalled backup step is still in flight.
_STALL_US = ms(400)

#: Delay before the primary dies in the backup-side scenarios: long enough
#: for an already-sent ack (~50 µs wire latency) to reach the primary and
#: release output, short enough that no further epoch completes.
_ACK_WINDOW_US = 200


@dataclass(frozen=True)
class Scenario:
    """One campaign cell: a fault plan plus the expected outcome."""

    name: str
    description: str
    arm: Callable[["World", "ReplicatedDeployment"], FaultPlan]
    #: Whether the fault must end in a detected failover.
    expect_failover: bool = False
    #: Whether clients must stay error-free and make progress.  False only
    #: for faults outside the fail-stop model (e.g. a silently lost state
    #: transfer), where the oracle checks safety but not progress.
    expect_liveness: bool = True
    #: Injection points this scenario exercises (campaign coverage report).
    points: tuple[str, ...] = field(default=())
    #: Replication mode the cell deploys (``repro.replication.modes``); the
    #: ``hycor.*`` windows only exist under the hycor backend.
    mode: str = "nilicon"


def _crash_at(point: str) -> Callable[["World", "ReplicatedDeployment"], FaultPlan]:
    def arm(world: "World", deployment: "ReplicatedDeployment") -> FaultPlan:
        plan = FaultPlan(points=[
            PointFault(point, epoch=TARGET_EPOCH, kill=True,
                       action=crash_primary(deployment)),
        ])
        return plan.arm(world.engine)

    return arm


def _stall_backup_then_crash(
    point: str,
) -> Callable[["World", "ReplicatedDeployment"], FaultPlan]:
    def arm(world: "World", deployment: "ReplicatedDeployment") -> FaultPlan:
        plan = FaultPlan(points=[
            PointFault(point, epoch=TARGET_EPOCH, stall_us=_STALL_US,
                       action=crash_primary(deployment, after_us=_ACK_WINDOW_US)),
        ])
        return plan.arm(world.engine)

    return arm


def _redetect_mid_recover(world: "World", deployment: "ReplicatedDeployment") -> FaultPlan:
    plan = FaultPlan(points=[
        PointFault("primary.post_freeze", epoch=TARGET_EPOCH, kill=True,
                   action=crash_primary(deployment)),
        PointFault("backup.mid_recover",
                   action=spurious_redetect(deployment)),
    ])
    return plan.arm(world.engine)


def _link(*rules: LinkFault) -> Callable[["World", "ReplicatedDeployment"], FaultPlan]:
    def arm(world: "World", _deployment: "ReplicatedDeployment") -> FaultPlan:
        # Fresh copies per run: rules carry mutable match counters, and one
        # scenario is armed once per campaign cell.
        fresh = [replace(rule, seen=0, acted=0) for rule in rules]
        return FaultPlan(links=fresh).arm(world.engine)

    return arm


def _dup_ack_then_crash(world: "World", deployment: "ReplicatedDeployment") -> FaultPlan:
    # Duplicate the ack of epoch TARGET-1; hold the copy and deliver it
    # right after barrier TARGET is inserted — the exact window where a
    # pop-oldest release drains epoch TARGET's output with only TARGET-1
    # acknowledged.  Then kill the primary before epoch TARGET's state is
    # sent, so the premature release is externally visible (failover can
    # only restore TARGET-1).
    plan = FaultPlan(
        points=[
            PointFault("primary.pre_send", epoch=TARGET_EPOCH, kill=True,
                       action=crash_primary(deployment)),
        ],
        links=[
            LinkFault(kind="ack", epoch=TARGET_EPOCH - 1, mode="duplicate",
                      release_at_point="primary.post_barrier"),
        ],
    )
    return plan.arm(world.engine)


SCENARIOS: dict[str, Scenario] = {}


def _register(scenario: Scenario) -> None:
    SCENARIOS[scenario.name] = scenario


# -- primary crashes pinned to each protocol phase --------------------------
for _point, _desc in (
    ("primary.post_freeze", "container frozen, input still open"),
    ("primary.mid_collect", "checkpoint collection in flight"),
    ("primary.post_barrier", "epoch barrier inserted, state unsent"),
    ("primary.pre_send", "image complete, transfer not started"),
    ("primary.between_send_and_receipt", "state on the wire, unacked"),
):
    _register(Scenario(
        name=f"crash@{_point}",
        description=f"Fail-stop the primary at epoch {TARGET_EPOCH}: {_desc}.",
        arm=_crash_at(_point),
        expect_failover=True,
        points=(_point,),
    ))

# -- backup-side races ------------------------------------------------------
_register(Scenario(
    name="crash@backup.post_ack_pre_commit",
    description=(
        "Stall the backup between full receipt and commit while the "
        "primary dies; recovery overlaps the uncommitted epoch.  Exposes "
        "the ack-before-commit race when acks precede commits."
    ),
    arm=_stall_backup_then_crash("backup.post_ack_pre_commit"),
    expect_failover=True,
    points=("backup.post_ack_pre_commit",),
))
_register(Scenario(
    name="crash@backup.mid_commit",
    description=(
        "Stall the backup halfway through storing an epoch's pages while "
        "the primary dies; recovery must roll the open checkpoint back "
        "and restore the last fully committed epoch."
    ),
    arm=_stall_backup_then_crash("backup.mid_commit"),
    expect_failover=True,
    points=("backup.mid_commit",),
))
_register(Scenario(
    name="redetect@backup.mid_recover",
    description=(
        "Fire the failure detector again while recovery is in flight; "
        "recovery must run exactly once."
    ),
    arm=_redetect_mid_recover,
    expect_failover=True,
    points=("primary.post_freeze", "backup.mid_recover"),
))

# -- link-level message races ----------------------------------------------
_register(Scenario(
    name="link.drop_ack",
    description=(
        f"Silently drop the ack of epoch {TARGET_EPOCH}; the next ack must "
        "release both epochs' output (cumulative-ack semantics)."
    ),
    arm=_link(LinkFault(kind="ack", epoch=TARGET_EPOCH, mode="drop")),
))
_register(Scenario(
    name="link.dup_ack",
    description=(
        f"Duplicate the ack of epoch {TARGET_EPOCH - 1}, delivering the "
        f"copy right after barrier {TARGET_EPOCH} is inserted, then crash "
        "the primary before that epoch's state is sent.  Exposes the "
        "pop-oldest-barrier release bug."
    ),
    arm=_dup_ack_then_crash,
    expect_failover=True,
    points=("primary.post_barrier", "primary.pre_send"),
))
_register(Scenario(
    name="link.reorder_ack",
    description=(
        f"Delay the ack of epoch {TARGET_EPOCH} past the next epoch's ack; "
        "the stale ack must release nothing twice."
    ),
    arm=_link(LinkFault(kind="ack", epoch=TARGET_EPOCH, mode="delay",
                        delay_us=ms(40))),
))
_register(Scenario(
    name="link.delay_ack",
    description="Add 10 ms to every ack; output release lags but stays correct.",
    arm=_link(LinkFault(kind="ack", mode="delay", delay_us=ms(10), count=None)),
))
_register(Scenario(
    name="link.drop_state",
    description=(
        f"Silently lose epoch {TARGET_EPOCH}'s state transfer (outside the "
        "fail-stop model: the real transport is reliable).  Commits stall, "
        "but nothing unacknowledged may escape — safety without liveness."
    ),
    arm=_link(LinkFault(kind="state", epoch=TARGET_EPOCH, mode="drop")),
    expect_liveness=False,
))
_register(Scenario(
    name="link.dup_state",
    description=(
        f"Deliver epoch {TARGET_EPOCH}'s state twice; the duplicate must "
        "be re-acked idempotently, not recommitted."
    ),
    arm=_link(LinkFault(kind="state", epoch=TARGET_EPOCH, mode="duplicate",
                        delay_us=ms(5))),
))
_register(Scenario(
    name="link.delay_state",
    description=(
        f"Delay epoch {TARGET_EPOCH}'s state past the next epoch's; the "
        "backup must stash the early arrival and commit strictly in order."
    ),
    arm=_link(LinkFault(kind="state", epoch=TARGET_EPOCH, mode="delay",
                        delay_us=ms(40))),
))
_register(Scenario(
    name="link.drop_heartbeat",
    description=(
        "Drop two consecutive heartbeats (below the 3-miss threshold); "
        "the detector must not fire."
    ),
    arm=_link(LinkFault(kind="heartbeat", mode="drop", at_match=5, count=2)),
))
_register(Scenario(
    name="link.delay_heartbeat",
    description=(
        "Add 10 ms to every heartbeat (sender and detector phase-offset); "
        "the detector must not fire."
    ),
    arm=_link(LinkFault(kind="heartbeat", mode="delay", delay_us=ms(10),
                        count=None)),
))


# -- HyCoR-mode scenarios ---------------------------------------------------
# Flush fences tick every NiliconConfig.hycor_log_flush_us (3 ms), so flush
# ordinals ~= run time / 3 ms; these land between the clients' start
# (~120 ms) and the nilicon scenarios' TARGET_EPOCH crash (~epoch 12).
_FLUSH_TARGET = 120
#: The dropped flush for the log-gap cell; the primary is killed two
#: flushes later, inside the same epoch, so no checkpoint commit can
#: supersede (heal) the hole before failover.
_GAP_FLUSH = 118
#: First log_ack swallowed in the divergence cell: the release horizon
#: freezes here, so corrupting the *newest* stored flush (which replay then
#: refuses) can never lose output that was already released.
_ACK_FREEZE_MATCH = 110


def _crash_at_flush(at_hit: int) -> Callable[["World", "ReplicatedDeployment"], FaultPlan]:
    def arm(world: "World", deployment: "ReplicatedDeployment") -> FaultPlan:
        plan = FaultPlan(points=[
            PointFault("hycor.mid_log_ship", at_hit=at_hit, kill=True,
                       action=crash_primary(deployment)),
        ])
        return plan.arm(world.engine)

    return arm


def _gap_then_crash(world: "World", deployment: "ReplicatedDeployment") -> FaultPlan:
    plan = FaultPlan(
        points=[
            PointFault("hycor.mid_log_ship", at_hit=_GAP_FLUSH + 2, kill=True,
                       action=crash_primary(deployment)),
            PointFault("hycor.log_gap"),
        ],
        links=[LinkFault(kind="ndlog", mode="drop", at_match=_GAP_FLUSH)],
    )
    return plan.arm(world.engine)


def _corrupt_then_crash(world: "World", deployment: "ReplicatedDeployment") -> FaultPlan:
    plan = FaultPlan(
        points=[
            PointFault("primary.post_freeze", epoch=TARGET_EPOCH, kill=True,
                       action=crash_primary(deployment)),
            PointFault("backup.mid_recover",
                       action=corrupt_stored_flush(deployment)),
            PointFault("hycor.replay_divergence"),
        ],
        links=[LinkFault(kind="log_ack", mode="drop",
                         at_match=_ACK_FREEZE_MATCH, count=None)],
    )
    return plan.arm(world.engine)


_register(Scenario(
    name="crash@hycor.mid_log_ship",
    description=(
        f"HyCoR: fail-stop the primary at flush {_FLUSH_TARGET}, fence "
        "inserted but the flush not yet on the wire; the stranded window "
        "was never acknowledged, so failover replays only the durable "
        "prefix and loses nothing released."
    ),
    arm=_crash_at_flush(_FLUSH_TARGET),
    expect_failover=True,
    points=("hycor.mid_log_ship",),
    mode="hycor",
))
_register(Scenario(
    name="hycor.log-gap",
    description=(
        f"HyCoR: silently drop flush {_GAP_FLUSH}, kill the primary two "
        "flushes later.  The backup parked the post-gap tail un-acked; "
        "failover must detect the hole, discard the tail and promote from "
        "the consecutive durable prefix."
    ),
    arm=_gap_then_crash,
    expect_failover=True,
    points=("hycor.mid_log_ship", "hycor.log_gap"),
    mode="hycor",
))
_register(Scenario(
    name="hycor.replay-divergence",
    description=(
        "HyCoR: corrupt the newest stored flush at recovery start (durable "
        "log corruption, outside the fail-stop model) with log_acks "
        f"swallowed from match {_ACK_FREEZE_MATCH} so its output never "
        "escaped.  Replay must detect the digest mismatch and promote from "
        "the last flush that verifies."
    ),
    arm=_corrupt_then_crash,
    expect_failover=True,
    points=("primary.post_freeze", "backup.mid_recover",
            "hycor.replay_divergence"),
    mode="hycor",
))


def scenario_names() -> list[str]:
    return list(SCENARIOS)


#: Regression knob for the ftcov gate (``repro ftcov record --knob
#: drop-scenario``): the catalog run silently skips this scenario, which
#: is the *only* one arming ``backup.mid_commit`` — so the coverage
#: crossref must report that point as never fired, and the FTC002 lint
#: finding below stays frozen in ``ftcov-baseline.json``.  Two witnesses,
#: one seeded gap, same discipline as ``unsafe_unlogged_draw``.
UNSAFE_DROP_SCENARIO = "crash@backup.mid_commit"  # ft: unsafe -- ftcov drop-scenario knob; see docs/ftcov.md
