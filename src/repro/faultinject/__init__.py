"""Deterministic, phase-aware fault injection (the robustness layer).

The §VII-A validation campaign injects fail-stop faults at *random* times;
it cannot reliably hit the microsecond-wide protocol windows where a
replication implementation is actually wrong.  This package pins faults to
*named protocol phases* instead:

* :mod:`~repro.faultinject.points` — the injection-point registry and the
  AST-based check that every declared point has a live hook site;
* :mod:`~repro.faultinject.plan` — :class:`FaultPlan` /
  :class:`PointFault` / :class:`LinkFault`, the deterministic rule engine
  consulted from :func:`repro.sim.faults.fault_point` hooks and from
  :meth:`Channel._transmit <repro.net.link.Channel._transmit>`;
* :mod:`~repro.faultinject.actions` — reusable fire-time actions
  (fail-stop the primary, spurious re-detection);
* :mod:`~repro.faultinject.oracles` — the output-commit, durability and
  client-session invariants checked after every run;
* :mod:`~repro.faultinject.scenarios` — the campaign catalog: one cell per
  protocol window plus link-level message races.

The campaign runner lives in :mod:`repro.experiments.faultcampaign`
(``repro faultcampaign`` on the command line).
"""

from repro.faultinject.actions import crash_primary, spurious_redetect
from repro.faultinject.oracles import evaluate_oracles
from repro.faultinject.plan import FaultPlan, LinkFault, PointFault
from repro.faultinject.points import (
    FAULT_POINTS,
    FLEET_FAULT_POINTS,
    LINK_MESSAGE_KINDS,
    hooked_points,
    verify_hook_coverage,
)
from repro.faultinject.scenarios import SCENARIOS, Scenario, TARGET_EPOCH

__all__ = [
    "FAULT_POINTS",
    "FLEET_FAULT_POINTS",
    "FaultPlan",
    "LINK_MESSAGE_KINDS",
    "LinkFault",
    "PointFault",
    "SCENARIOS",
    "Scenario",
    "TARGET_EPOCH",
    "crash_primary",
    "evaluate_oracles",
    "hooked_points",
    "spurious_redetect",
    "verify_hook_coverage",
]
