"""Hot-path performance analyzer (``repro perf``).

The simulator's usefulness scales with how many seeds x workloads x fault
schedules a CI budget can afford, so the per-event dispatch loop, the
per-page checkpoint paths and the fleet's slot bookkeeping are performance
surfaces in their own right.  This module statically answers "is this code
allowed to be slow?" the same way :mod:`repro.analysis.coverage` answers
"is the checkpoint complete?".

Three layers:

* **Layer 1 — hot classification.**  A name-based call-graph pass over the
  hot subsystems (:data:`PERF_SCOPE_FILES`) classifies every function as
  **per-event** (runs for every dispatched simulation event), **per-page**
  (runs for every page written/digested/stored) or **per-epoch** (runs once
  per checkpoint epoch), by reachability from :data:`DEFAULT_ROOTS`.
  Hotness is recorded next to the code itself with the annotation
  vocabulary below; :func:`perf_selfcheck` proves every root resolves and
  every annotation agrees with the computed class.
* **Layer 2 — PERF rules.**  The PERF001..PERF006 rules below run *only*
  inside hot functions, riding the standard nlint machinery:
  :class:`~repro.analysis.linter.Finding` objects, per-line
  ``# nlint: disable=PERF002 -- why`` suppressions, ``--select/--ignore``
  filtering and the shared baseline gate (``perf-baseline.json``).
* **Layer 3 — profiler cross-reference.**  :mod:`repro.analysis.perfbench`
  runs a deterministic profiled workload (:mod:`repro.sim.profiler`) and
  cross-references the counters against the Layer-2 findings: a finding
  whose subsystem actually ran hot is **confirmed-hot**; one whose counters
  stayed cold is downgraded — a static rule may not cry wolf about code the
  profiler shows is cold.

Annotation vocabulary (on the ``def`` header, like ``# ckpt:``)::

    def store_page(...):  # hot: per-page -- every committed page lands here
    def _load_scan(...):  # hot: exempt -- bench/test reference, never hot

    class SimProfiler:
        __perf_exempt__ = True   # the measuring instrument is not measured

Rule catalog (see ``docs/perf.md``):

========  =======  ======================================================
PERF001   warning  fresh list/dict/set/tuple built every iteration of a
                   per-event or per-page loop
PERF002   warning  whole-buffer (re-)hashing inside a hot loop where a
                   cached or incremental digest would do
PERF003   warning  ``sorted()``/``.sort()`` per event (or inside any hot
                   loop) — sort once, maintain order incrementally
PERF004   warning  the same multi-part attribute chain resolved 3+ times
                   in one hot loop body — hoist it to a local
PERF005   warning  fresh ``lambda`` / ``itertools.count`` constructed per
                   event or inside a hot loop
PERF006   warning  aggregate recomputed by a full scan of a collection on
                   every hot call — maintain it incrementally
========  =======  ======================================================

Like the CKPT1xx pass, the call graph is *name-based* (a call to ``x.f()``
reaches every in-scope function named ``f``), trading per-receiver
precision for zero false "cold" verdicts; the Layer-3 profiler is the
semantic backstop that separates truly-hot findings from the
over-approximation.
"""

from __future__ import annotations

import ast
import re
from collections import deque
from dataclasses import dataclass, field as dc_field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from repro.analysis.linter import (
    Finding,
    LintContext,
    Rule,
    _own_nodes,
    all_rules,
    register,
)

__all__ = [
    "DEFAULT_ROOTS",
    "HOTNESS_RANK",
    "HotFunction",
    "PERF_RULE_IDS",
    "PERF_SCOPE_FILES",
    "PerfReport",
    "analyze_perf",
    "build_hot_map",
    "load_perf_sources",
    "perf_selfcheck",
]


# --------------------------------------------------------------------------- #
# Rule registration.  Like the CKPT rules these need whole-program context    #
# (the hot map), so the generic per-file walker never fires them; the perf    #
# driver calls their check() methods directly on each hot function.           #
# --------------------------------------------------------------------------- #


class _PerfRule(Rule):
    """Hot-path rule: registered for id/severity bookkeeping; the perf
    driver invokes :meth:`check` on each hot function directly."""

    severity = "warning"
    interests: tuple[type, ...] = (ast.Module,)

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        return iter(())

    def check(
        self, fn: ast.AST, ctx: LintContext, hotness: str
    ) -> Iterator[Finding]:
        return iter(())

    def _hot_finding(
        self, ctx: LintContext, node: ast.AST, hotness: str, message: str
    ) -> Finding:
        return self.finding(ctx, node, f"[{hotness}] {message}")


#: Hotness classes, strongest first (rank 0 beats rank 2 on a shared path).
HOTNESS_RANK = {"per-event": 0, "per-page": 1, "per-epoch": 2}
_RANK_NAME = {rank: name for name, rank in HOTNESS_RANK.items()}

#: Hotness classes in which an *entire function body* counts as a loop body
#: (the function itself is the loop: it runs per event / per page).
_PER_CALL_HOT = ("per-event", "per-page")

_ALLOC_BUILTINS = frozenset({"list", "dict", "set", "tuple"})
_HASH_CALLS = ("zlib.crc32", "zlib.adler32", "hashlib.")
_HASH_BARE = frozenset(
    {"crc32", "adler32", "md5", "sha1", "sha224", "sha256", "sha384",
     "sha512", "blake2b", "blake2s"}
)
_AGGREGATORS = frozenset({"sum", "len", "min", "max", "any", "all"})


def _loops(fn: ast.AST) -> list[ast.For | ast.While]:
    """Loop statements belonging to *fn* (nested defs/lambdas excluded)."""
    return [n for n in _own_nodes(fn) if isinstance(n, (ast.For, ast.While))]


def _loop_body_nodes(loop: ast.For | ast.While) -> Iterator[ast.AST]:
    """Nodes evaluated once per iteration: everything inside the loop body
    (including nested loops *and their iters* — those re-evaluate per outer
    iteration) but not the loop's own iter/test, which runs once."""
    for stmt in list(loop.body) + list(loop.orelse):
        yield stmt
        yield from ast.walk(stmt)


def _attr_chain(node: ast.AST) -> str | None:
    """``a.b.c`` as a dotted string, or None for non-trivial bases."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_hash_call(call: ast.Call, ctx: LintContext) -> bool:
    name = ctx.call_name(call)
    if name is not None and (
        name.startswith(_HASH_CALLS) or name in _HASH_BARE
    ):
        return True
    return (
        isinstance(call.func, ast.Attribute) and call.func.attr in _HASH_BARE
    )


@register
class AllocationChurn(_PerfRule):
    rule_id = "PERF001"
    summary = ("fresh list/dict/set/tuple allocated every iteration of a "
               "per-event or per-page loop — hoist or reuse the container")

    def check(self, fn, ctx, hotness):
        if hotness not in _PER_CALL_HOT:
            return
        seen: set[int] = set()
        for loop in _loops(fn):
            for node in _loop_body_nodes(loop):
                if id(node) in seen:
                    continue
                kind = None
                if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
                    kind = type(node).__name__
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _ALLOC_BUILTINS
                    and node.func.id not in ctx.imports
                ):
                    kind = f"{node.func.id}()"
                if kind is not None:
                    seen.add(id(node))
                    yield self._hot_finding(
                        ctx, node, hotness,
                        f"{kind} allocated on every iteration of a hot "
                        f"loop — allocate once outside and reuse",
                    )


@register
class WholeBufferRehash(_PerfRule):
    rule_id = "PERF002"
    summary = ("whole-buffer hashing inside a hot loop — cache digests by "
               "generation or hash incrementally (dirty data only)")

    def check(self, fn, ctx, hotness):
        seen: set[int] = set()
        for loop in _loops(fn):
            for node in _loop_body_nodes(loop):
                if id(node) in seen or not isinstance(node, ast.Call):
                    continue
                if _is_hash_call(node, ctx):
                    seen.add(id(node))
                    yield self._hot_finding(
                        ctx, node, hotness,
                        "hashes a whole buffer inside a hot loop — hash "
                        "only what changed and cache the rest by "
                        "generation",
                    )


@register
class SortPerEvent(_PerfRule):
    rule_id = "PERF003"
    summary = ("sorted()/.sort() on a hot path — sort once and maintain "
               "order incrementally, or iterate an already-ordered index")

    def _sort_kind(self, node: ast.AST, ctx: LintContext) -> str | None:
        if not isinstance(node, ast.Call):
            return None
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "sorted"
            and "sorted" not in ctx.imports
        ):
            return "sorted()"
        if isinstance(node.func, ast.Attribute) and node.func.attr == "sort":
            return ".sort()"
        return None

    def check(self, fn, ctx, hotness):
        seen: set[int] = set()
        for loop in _loops(fn):
            for node in _loop_body_nodes(loop):
                kind = self._sort_kind(node, ctx)
                if kind is not None and id(node) not in seen:
                    seen.add(id(node))
                    yield self._hot_finding(
                        ctx, node, hotness,
                        f"{kind} inside a hot loop re-sorts per iteration "
                        f"— maintain the order incrementally",
                    )
        if hotness in _PER_CALL_HOT:
            for node in _own_nodes(fn):
                kind = self._sort_kind(node, ctx)
                if kind is not None and id(node) not in seen:
                    seen.add(id(node))
                    yield self._hot_finding(
                        ctx, node, hotness,
                        f"{kind} runs on every {hotness} call — sort once "
                        f"and keep the result ordered",
                    )


@register
class RepeatedAttributeLookup(_PerfRule):
    rule_id = "PERF004"
    summary = ("same attribute chain resolved 3+ times in one hot loop "
               "body — bind it to a local before the loop")

    def check(self, fn, ctx, hotness):
        for loop in _loops(fn):
            counts: dict[str, list[ast.AST]] = {}
            for node in _loop_body_nodes(loop):
                if not isinstance(node, ast.Attribute):
                    continue
                if not isinstance(node.ctx, ast.Load):
                    continue
                chain = _attr_chain(node)
                if chain is None or "." not in chain:
                    continue
                counts.setdefault(chain, []).append(node)
            for chain, sites in sorted(counts.items()):
                # Keep only maximal chains: `a.b` occurrences that are part
                # of an `a.b.c` load would double-count the same lookup.
                maximal = [
                    s for s in sites
                    if not any(
                        other is not s
                        and isinstance(other, ast.Attribute)
                        and other.value is s
                        for others in counts.values()
                        for other in others
                    )
                ]
                if len(maximal) >= 3:
                    yield self._hot_finding(
                        ctx, maximal[0], hotness,
                        f"'{chain}' resolved {len(maximal)} times per "
                        f"iteration of a hot loop — hoist to a local",
                    )


@register
class PerCallConstruction(_PerfRule):
    rule_id = "PERF005"
    summary = ("lambda / itertools.count constructed per event or inside "
               "a hot loop — build once and reuse")

    def _kind(self, node: ast.AST, ctx: LintContext) -> str | None:
        if isinstance(node, ast.Lambda):
            return "lambda"
        if isinstance(node, ast.Call):
            name = ctx.call_name(node)
            if name in ("itertools.count", "itertools.cycle"):
                return name
        return None

    def check(self, fn, ctx, hotness):
        seen: set[int] = set()
        for loop in _loops(fn):
            for node in _loop_body_nodes(loop):
                kind = self._kind(node, ctx)
                if kind is not None and id(node) not in seen:
                    seen.add(id(node))
                    yield self._hot_finding(
                        ctx, node, hotness,
                        f"fresh {kind} built every iteration of a hot loop "
                        f"— construct it once outside",
                    )
        if hotness in _PER_CALL_HOT:
            for node in _own_nodes(fn):
                kind = self._kind(node, ctx)
                if kind is not None and id(node) not in seen:
                    seen.add(id(node))
                    yield self._hot_finding(
                        ctx, node, hotness,
                        f"fresh {kind} built on every {hotness} call — "
                        f"construct it once and reuse",
                    )


_SCAN_OK_STMTS = (ast.If, ast.AugAssign, ast.Continue, ast.Pass)


def _is_accumulator_scan(loop: ast.For) -> bool:
    """True when the loop only filters and accumulates — the shape of an
    aggregate recomputed by full scan (count/sum over a collection)."""

    def ok(stmts: Sequence[ast.stmt]) -> bool:
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                if not ok(stmt.body) or not ok(stmt.orelse):
                    return False
            elif not isinstance(stmt, _SCAN_OK_STMTS):
                return False
        return True

    return ok(loop.body) and not loop.orelse


@register
class FullScanAggregate(_PerfRule):
    rule_id = "PERF006"
    summary = ("aggregate recomputed by scanning a whole collection on "
               "every hot call — maintain an incremental index instead")

    def check(self, fn, ctx, hotness):
        for node in _own_nodes(fn):
            # sum(... for x in self.coll.values()) and friends.
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _AGGREGATORS
                and node.func.id not in ctx.imports
                and node.args
                and isinstance(node.args[0], (ast.GeneratorExp, ast.ListComp))
            ):
                comp = node.args[0]
                source = comp.generators[0].iter
                if isinstance(source, ast.Call):
                    source = source.func
                chain = _attr_chain(source)
                if chain is not None and "." in chain:
                    yield self._hot_finding(
                        ctx, node, hotness,
                        f"{node.func.id}() scans all of '{chain}' on every "
                        f"hot call — maintain the aggregate incrementally",
                    )
        for loop in _loops(fn):
            if not isinstance(loop, ast.For) or not _is_accumulator_scan(loop):
                continue
            source = loop.iter
            if isinstance(source, ast.Call) and isinstance(
                source.func, ast.Attribute
            ) and source.func.attr in ("items", "values", "keys"):
                source = source.func.value
            chain = _attr_chain(source)
            if chain is not None and "." in chain:
                yield self._hot_finding(
                    ctx, loop, hotness,
                    f"full scan of '{chain}' to recompute an aggregate on "
                    f"every hot call — maintain an incremental index",
                )


PERF_RULE_IDS = ("PERF001", "PERF002", "PERF003", "PERF004", "PERF005",
                 "PERF006")


# --------------------------------------------------------------------------- #
# Layer 1 — hot classification                                                #
# --------------------------------------------------------------------------- #

#: The hot subsystems: the DES core, the page paths, and slot bookkeeping.
PERF_SCOPE_FILES = (
    "sim/engine.py",
    "sim/trace.py",
    "sim/profiler.py",
    "kernel/mm.py",
    "criu/collect.py",
    "criu/pagestore.py",
    "replication/statecache.py",
    "replication/primary.py",
    "replication/backup.py",
    "fleet/pool.py",
    "fleet/placement.py",
)

#: Classification roots: ``(qualname, hotness)``.  Everything reachable
#: from a root (by name-based call closure within the scope files)
#: inherits the strongest hotness of any root reaching it.
DEFAULT_ROOTS = (
    # per-event: the dispatch loop itself and everything it touches.
    ("Engine.run", "per-event"),
    ("Engine.step", "per-event"),
    ("Engine._dispatch", "per-event"),
    ("Engine._schedule", "per-event"),
    ("Process._resume", "per-event"),
    ("trace", "per-event"),
    # per-event: slot bookkeeping (rebalancer + controller query per tick).
    ("HostPool.load", "per-event"),
    ("HostPool.allocate", "per-event"),
    ("HostPool.release", "per-event"),
    # per-page: every workload write, parasite copy, digest and store.
    ("AddressSpace.write", "per-page"),
    ("AddressSpace.snapshot_pages", "per-page"),
    ("PageDigestCache.digest_image", "per-page"),
    ("RadixTreePageStore.store_page", "per-page"),
    ("LinkedListPageStore.store_page", "per-page"),
    ("verify_page_digests", "per-page"),
    # per-epoch: the checkpoint cycle and its collection/commit phases.
    ("AddressSpace.dirty_pages", "per-epoch"),
    ("StateCollector.collect_memory", "per-epoch"),
    ("PrimaryAgent._checkpoint_cycle", "per-epoch"),
    ("BackupAgent._commit_state", "per-epoch"),
    ("pick_host", "per-epoch"),
)

_HOT_ANNOT_RE = re.compile(r"#\s*hot:\s*([A-Za-z-]+)(?:\s*--\s*(.*))?")
_KNOWN_HOTNESS = frozenset({"per-event", "per-page", "per-epoch", "exempt"})


@dataclass
class HotFunction:
    """One function in the perf scope, with its classification."""

    qualname: str
    path: str
    line: int
    node: ast.AST
    #: Method names this function calls (the name-based out-edges).
    calls: frozenset[str] = frozenset()
    #: Computed hotness (None = not reachable from any root).
    hotness: str | None = None
    #: Hotness declared by a ``# hot:`` header annotation, if any.
    declared: str | None = None
    #: The annotation's ``-- why`` justification, if any.
    why: str | None = None
    exempt: bool = False

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


def _pkg_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def load_perf_sources(
    overrides: Mapping[str, str] | None = None,
) -> dict[str, str]:
    """Scope sources as ``display path -> text``; *overrides* lets tests
    swap in synthetic sources by path suffix (like ckptcov)."""
    root = _pkg_root()
    out: dict[str, str] = {}
    for rel in PERF_SCOPE_FILES:
        text = None
        if overrides:
            for key, value in overrides.items():
                norm = key.replace("\\", "/")
                if norm == rel or norm.endswith("/" + rel):
                    text = value
                    break
        if text is None:
            text = (root / rel).read_text()
        out[f"src/repro/{rel}"] = text
    if overrides:
        for key, value in overrides.items():
            norm = key.replace("\\", "/")
            if not any(norm == rel or norm.endswith("/" + rel)
                       for rel in PERF_SCOPE_FILES):
                out[norm] = value
    return out


def _called_names(fn: ast.AST) -> frozenset[str]:
    out: set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Name):
            out.add(node.func.id)
        elif isinstance(node.func, ast.Attribute):
            out.add(node.func.attr)
    return frozenset(out)


def _header_annotation(
    fn: ast.AST, lines: list[str]
) -> tuple[str | None, str | None]:
    """The ``# hot:`` annotation on the def header (def line through the
    line before the first body statement), if any."""
    first_body = fn.body[0].lineno if getattr(fn, "body", None) else fn.lineno
    for lineno in range(fn.lineno, first_body + 1):
        if lineno > len(lines):
            break
        match = _HOT_ANNOT_RE.search(lines[lineno - 1])
        if match:
            why = match.group(2)
            return match.group(1), why.strip() if why else None
    return None, None


def build_hot_map(
    sources: Mapping[str, str],
    roots: Sequence[tuple[str, str]] = DEFAULT_ROOTS,
) -> dict[str, HotFunction]:
    """Layer 1: discover every function in *sources* and classify it by
    reachability from *roots* (plus ``# hot:`` header annotations)."""
    functions: dict[str, HotFunction] = {}
    by_name: dict[str, list[str]] = {}

    for path in sorted(sources):
        text = sources[path]
        try:
            tree = ast.parse(text, filename=path)
        except SyntaxError:
            continue  # plain lint already reports E999
        lines = text.splitlines()

        def add(node: ast.AST, qualname: str, exempt_class: bool) -> None:
            declared, why = _header_annotation(node, lines)
            exempt = exempt_class or declared == "exempt"
            fn = HotFunction(
                qualname=qualname, path=path, line=node.lineno, node=node,
                calls=_called_names(node),
                declared=declared if declared != "exempt" else None,
                why=why, exempt=exempt,
            )
            functions[qualname] = fn
            by_name.setdefault(fn.name, []).append(qualname)

        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add(node, node.name, exempt_class=False)
            elif isinstance(node, ast.ClassDef):
                exempt_class = any(
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == "__perf_exempt__"
                    for stmt in node.body
                )
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        add(stmt, f"{node.name}.{stmt.name}", exempt_class)

    # Rank propagation: worklist of (qualname, rank); callees inherit the
    # caller's rank, strongest (lowest) wins; exempt functions neither
    # receive nor forward hotness.
    rank: dict[str, int] = {}
    work: deque[tuple[str, int]] = deque()

    def seed(qualname: str, hotness: str) -> None:
        fn = functions.get(qualname)
        if fn is None or fn.exempt:
            return
        r = HOTNESS_RANK.get(hotness)
        if r is None:
            return  # unknown vocabulary — perf_selfcheck reports it
        if rank.get(qualname, 99) > r:
            rank[qualname] = r
            work.append((qualname, r))

    for qualname, hotness in roots:
        seed(qualname, hotness)
    for qualname, fn in functions.items():
        if fn.declared is not None:
            seed(qualname, fn.declared)

    while work:
        caller, r = work.popleft()
        if rank.get(caller, 99) < r:
            continue  # superseded by a stronger path
        for name in functions[caller].calls:
            for callee in by_name.get(name, ()):
                fn = functions[callee]
                if fn.exempt or rank.get(callee, 99) <= r:
                    continue
                rank[callee] = r
                work.append((callee, r))

    for qualname, r in rank.items():
        functions[qualname].hotness = _RANK_NAME[r]
    return functions


def perf_selfcheck(
    sources: Mapping[str, str] | None = None,
    roots: Sequence[tuple[str, str]] = DEFAULT_ROOTS,
) -> tuple[list[str], dict[str, str]]:
    """Prove the classification is sound.  Returns ``(problems,
    dispositions)``; *problems* is empty when every scope source parses,
    every root resolves to a discovered function, every ``# hot:``
    annotation uses the known vocabulary and sits on a def header, and no
    annotation understates the computed hotness."""
    if sources is None:
        sources = load_perf_sources()
    problems: list[str] = []

    header_spans: dict[str, set[int]] = {}
    for path in sorted(sources):
        text = sources[path]
        try:
            tree = ast.parse(text, filename=path)
        except SyntaxError as exc:
            problems.append(f"{path}:{exc.lineno}: does not parse: {exc.msg}")
            continue
        spans = header_spans.setdefault(path, set())
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                first_body = node.body[0].lineno if node.body else node.lineno
                spans.update(range(node.lineno, first_body + 1))
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _HOT_ANNOT_RE.search(line)
            if match is None:
                continue
            if match.group(1) not in _KNOWN_HOTNESS:
                problems.append(
                    f"{path}:{lineno}: unknown hotness '{match.group(1)}' "
                    f"(use per-event, per-page, per-epoch or exempt)"
                )
            if lineno not in spans:
                problems.append(
                    f"{path}:{lineno}: '# hot:' annotation is not on a "
                    f"function def header — it classifies nothing"
                )

    hot_map = build_hot_map(sources, roots)
    for qualname, hotness in roots:
        if qualname not in hot_map:
            problems.append(
                f"root {qualname} ({hotness}) resolves to no function in "
                f"the perf scope — the classifier cannot reach it"
            )
    for qualname, fn in sorted(hot_map.items()):
        if fn.declared is None or fn.hotness is None:
            continue
        if HOTNESS_RANK[fn.hotness] < HOTNESS_RANK[fn.declared]:
            problems.append(
                f"{fn.path}:{fn.line}: {qualname} is annotated "
                f"'# hot: {fn.declared}' but the classifier computed "
                f"{fn.hotness} — the annotation understates reality"
            )

    dispositions: dict[str, str] = {}
    for qualname, fn in sorted(hot_map.items()):
        if fn.exempt:
            dispositions[qualname] = "exempt"
        elif fn.hotness is not None:
            suffix = " (annotated)" if fn.declared else ""
            dispositions[qualname] = f"{fn.hotness}{suffix}"
    return problems, dispositions


# --------------------------------------------------------------------------- #
# Layer 2 — driver                                                            #
# --------------------------------------------------------------------------- #


@dataclass
class PerfReport:
    """Everything one static perf pass produced."""

    findings: list[Finding] = dc_field(default_factory=list)
    hot_map: dict[str, HotFunction] = dc_field(default_factory=dict)

    @property
    def hot_functions(self) -> list[HotFunction]:
        return sorted(
            (f for f in self.hot_map.values() if f.hotness is not None),
            key=lambda f: (f.path, f.line),
        )


def analyze_perf(
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    overrides: Mapping[str, str] | None = None,
    roots: Sequence[tuple[str, str]] = DEFAULT_ROOTS,
) -> PerfReport:
    """Run Layers 1+2: classify, then lint only the hot functions."""
    rules = [
        rule for rule in all_rules(select=select, ignore=ignore)
        if isinstance(rule, _PerfRule)
    ]
    sources = load_perf_sources(overrides)
    hot_map = build_hot_map(sources, roots)

    per_path: dict[str, list[HotFunction]] = {}
    for fn in hot_map.values():
        if fn.hotness is not None:
            per_path.setdefault(fn.path, []).append(fn)

    findings: list[Finding] = []
    for path in sorted(per_path):
        text = sources[path]
        tree = ast.parse(text, filename=path)
        ctx = LintContext(path, text, tree)
        for fn in sorted(per_path[path], key=lambda f: f.line):
            for rule in rules:
                for finding in rule.check(fn.node, ctx, fn.hotness):
                    if not ctx.suppressed(finding.rule_id, finding.line):
                        findings.append(finding)
    return PerfReport(
        findings=sorted(findings, key=Finding.sort_key), hot_map=hot_map
    )
