"""Nondeterminism-provenance analyzer (``repro ndflow``), static layers.

HyCoR-mode replication (see ROADMAP) logs nondeterministic inputs on the
primary and replays them on the backup — sound only if the log captures
*every* nondeterministic input.  This module is the static half of that
proof, the fifth analyzer in the nlint/races/ckptcov/perf family; the
runtime half is the :class:`~repro.sim.ndlog.NDLog` recorder and the
record→replay oracle in :mod:`repro.analysis.ndreplay`.

Three layers:

* **Layer 1 — source inventory.**  An AST pass over all of ``repro.*``
  enumerates every *nondeterminism source*: ``RngRegistry.stream()`` /
  ``spawn()`` call sites (with their stream-name literals),
  engine tie-break policies (any class with a ``key(self, ctx_serial)``
  method), module-level ``itertools.count`` id streams, raw
  ``random.Random`` / ``random.*`` entropy calls, and the timing knobs of
  ``NiliconConfig`` / ``TrafficProfile``.  Each source is classified —
  seed-derived, NDLog-recorded, registered counter, config-pinned, exempt
  or declared-unsafe — either automatically or by an ``nd:`` comment
  annotation (the vocabulary is :data:`ND_CLASSES`; the annotation
  grammar matches the ``hot:`` / ``ckpt:`` families, a trailing comment
  of the source line with an optional ``-- why``).  A class carrying
  ``__nd_exempt__ = True`` exempts everything it defines (the measuring
  instruments in ``sim/ndlog.py`` use this).
* **Layer 1½ — selfcheck.**  :func:`ndflow_selfcheck` rejects unknown
  vocabulary, annotations attached to no source, *unaccounted* sources
  (no automatic class and no annotation), dynamic stream names that defeat
  the static inventory and carry no annotation, and — the drift guard for
  the PR 5 bug class — any module-level ``itertools.count`` in ``repro.*``
  that is not rewound by ``reset_id_counters()`` (``net/world.py``).
* **Layer 2 — NDF rules.**  NDF001–NDF005 below ride the standard nlint
  machinery (:class:`~repro.analysis.linter.Finding`, per-line
  suppressions, ``--select``/``--ignore``, the shared baseline gate with
  ``ndflow-baseline.json``).  A source annotated with an accepted class is
  *accounted* and not flagged; one annotated ``unsafe`` stays flagged —
  that is how the ``unsafe_unlogged_draw`` regression knob keeps a frozen
  baseline entry without failing the selfcheck.

Rule catalog (see ``docs/ndflow.md``):

========  =======  ======================================================
NDF001    warning  bare ``random.Random`` / ``random.*`` entropy outside
                   ``sim/rng.py`` with no declared provenance
NDF002    warning  dynamic (f-string / computed) stream name with no
                   annotation — the static inventory cannot see it
NDF003    warning  RNG draw in a replication/fleet control path whose
                   generator is not a named registry stream
NDF004    warning  module-level ``itertools.count`` not registered in
                   ``reset_id_counters()``
NDF005    warning  one stream-name literal used from several modules with
                   no ``STREAM_OWNERS`` entry — the draw sequences couple
                   silently (log-site/source mismatch)
========  =======  ======================================================
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field as dc_field
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from repro.analysis.linter import (
    Finding,
    LintContext,
    Rule,
    all_rules,
    register,
)

__all__ = [
    "ND_CLASSES",
    "NDFLOW_RULE_IDS",
    "NdInventory",
    "NdSource",
    "NdflowReport",
    "analyze_ndflow",
    "build_nd_inventory",
    "load_ndflow_sources",
    "ndflow_selfcheck",
]

#: The annotation vocabulary — every nondeterminism source must end up in
#: exactly one of these classes (automatically or by annotation):
#:
#: ``seed``     derived deterministically from the experiment seed outside
#:              the registry (e.g. a crc-seeded placement generator);
#: ``logged``   routed through a named RngRegistry stream, hence recorded
#:              by the NDLog;
#: ``counter``  a module-level id counter rewound by reset_id_counters();
#: ``config``   a timing knob pinned by configuration, not drawn at all;
#: ``exempt``   analysis/bench instrument, never part of a replayed run;
#: ``unsafe``   declared replay hazard — stays flagged by the NDF rules
#:              (regression knobs live here, frozen in the baseline).
ND_CLASSES = frozenset(
    {"seed", "logged", "counter", "config", "exempt", "unsafe"}
)

#: Classes that silence the NDF rules ("accounted-for").  ``unsafe`` is
#: deliberately absent: a declared hazard is accounted in the selfcheck
#: but keeps its lint finding.
_ACCOUNTED = ND_CLASSES - {"unsafe"}

_ND_ANNOT_RE = re.compile(r"#\s*nd:\s*([a-z-]+)(?:\s*--\s*([^#]*))?")

#: Draw methods of :class:`random.Random` (and the NDLog stream wrappers).
_DRAW_METHODS = frozenset(
    {"random", "randrange", "randint", "choice", "choices", "sample",
     "shuffle", "uniform", "expovariate", "gauss", "normalvariate",
     "getrandbits", "randbytes"}
)

#: Control-path directories for NDF003: a stray draw here perturbs
#: replication/fleet decisions that a backup-side replay must reproduce.
_CONTROL_DIRS = ("replication/", "fleet/")

#: Config classes whose ``*_us`` / ``*_rps`` / heartbeat fields are timing
#: knobs — nondeterminism pinned by configuration rather than drawn.
_TIMING_CLASSES = ("NiliconConfig", "TrafficProfile")


@dataclass
class NdSource:
    """One nondeterminism source found by the Layer-1 inventory."""

    #: ``stream`` | ``spawn`` | ``tiebreak`` | ``counter`` |
    #: ``global-random`` | ``draw`` | ``timing-knob``
    kind: str
    path: str
    line: int
    col: int
    node: ast.AST
    #: Stream name / counter variable / receiver chain / field name.
    name: str
    #: True when a stream name is not a string literal (f-string, computed).
    dynamic: bool = False
    #: Class declared by an ``nd:`` annotation on the source line.
    annotated: str | None = None
    why: str | None = None
    #: Class the inventory derived automatically (None = needs annotation).
    auto: str | None = None
    #: Counters only: rewound by reset_id_counters()?
    registered: bool | None = None

    @property
    def nd_class(self) -> str | None:
        return self.annotated if self.annotated is not None else self.auto

    @property
    def accounted(self) -> bool:
        return self.nd_class in _ACCOUNTED

    @property
    def label(self) -> str:
        return f"{self.kind}:{self.name}"


@dataclass
class NdInventory:
    """Everything the Layer-1 pass discovered, plus cross-file context."""

    sources: list[NdSource] = dc_field(default_factory=list)
    by_path: dict[str, list[NdSource]] = dc_field(default_factory=dict)
    #: Parsed from ``STREAM_OWNERS`` in ``sim/rng.py``.
    stream_owners: dict[str, str] = dc_field(default_factory=dict)
    #: ``(module path suffix, variable)`` rewound by reset_id_counters().
    registered_counters: set[tuple[str, str]] = dc_field(default_factory=set)
    #: Literal stream name -> paths of the call sites using it.
    literal_streams: dict[str, set[str]] = dc_field(default_factory=dict)
    #: Parse failures and structural problems found while building.
    problems: list[str] = dc_field(default_factory=list)

    def add(self, source: NdSource) -> None:
        self.sources.append(source)
        self.by_path.setdefault(source.path, []).append(source)


def _pkg_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def load_ndflow_sources(
    overrides: Mapping[str, str] | None = None,
) -> dict[str, str]:
    """All ``repro.*`` sources as ``display path -> text`` (the whole
    package — provenance has no "cold" files); *overrides* swaps in
    synthetic sources by path suffix, exactly like the perf loader."""
    root = _pkg_root()
    rels = sorted(
        str(p.relative_to(root)).replace("\\", "/")
        for p in root.rglob("*.py")
        if "__pycache__" not in p.parts
    )
    out: dict[str, str] = {}
    for rel in rels:
        text = None
        if overrides:
            for key, value in overrides.items():
                norm = key.replace("\\", "/")
                if norm == rel or norm.endswith("/" + rel):
                    text = value
                    break
        if text is None:
            text = (root / rel).read_text()
        out[f"src/repro/{rel}"] = text
    if overrides:
        for key, value in overrides.items():
            norm = key.replace("\\", "/")
            if not any(norm == rel or norm.endswith("/" + rel)
                       for rel in rels):
                out[norm] = value
    return out


# --------------------------------------------------------------------------- #
# Layer 1 — inventory                                                         #
# --------------------------------------------------------------------------- #


def _attr_chain(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _render_stream_name(arg: ast.AST) -> tuple[str, bool]:
    """``(display name, dynamic?)`` for a stream-name argument."""
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value, False
    if isinstance(arg, ast.JoinedStr):
        parts: list[str] = []
        for piece in arg.values:
            if isinstance(piece, ast.Constant):
                parts.append(str(piece.value))
            else:
                try:
                    parts.append("{" + ast.unparse(piece.value) + "}")
                except Exception:
                    parts.append("{...}")
        return "".join(parts), True
    try:
        return ast.unparse(arg), True
    except Exception:
        return "<dynamic>", True


def _exempt_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """Line spans of classes marked ``__nd_exempt__ = True``."""
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "__nd_exempt__"
            ):
                spans.append((node.lineno, node.end_lineno or node.lineno))
                break
    return spans


def _in_spans(line: int, spans: list[tuple[int, int]]) -> bool:
    return any(lo <= line <= hi for lo, hi in spans)


def _annotation_on(
    lines: list[str], node: ast.AST
) -> tuple[str | None, str | None]:
    """The ``nd:`` annotation on any line of *node*'s span (so multi-line
    call sites can carry the comment on the argument line)."""
    start = getattr(node, "lineno", 0)
    stop = getattr(node, "end_lineno", None) or start
    for lineno in range(start, stop + 1):
        if not 1 <= lineno <= len(lines):
            continue
        match = _ND_ANNOT_RE.search(lines[lineno - 1])
        if match:
            why = match.group(2)
            return match.group(1), why.strip() if why else None
    return None, None


def _parse_stream_owners(tree: ast.Module) -> dict[str, str]:
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "STREAM_OWNERS"
        ):
            value = node.value
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == "STREAM_OWNERS"
            and node.value is not None
        ):
            value = node.value
        else:
            continue
        if isinstance(value, ast.Dict):
            out: dict[str, str] = {}
            for key, val in zip(value.keys, value.values):
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(val, ast.Constant)
                    and isinstance(val.value, str)
                ):
                    out[key.value] = val.value
            return out
    return {}


def _parse_registered_counters(tree: ast.Module) -> set[tuple[str, str]]:
    """``(module path suffix, variable)`` pairs rewound by
    ``reset_id_counters()`` — aliases resolved from its import statements
    (``from repro.kernel import fs as _fs`` -> ``kernel/fs.py``)."""
    fn = next(
        (
            node for node in tree.body
            if isinstance(node, ast.FunctionDef)
            and node.name == "reset_id_counters"
        ),
        None,
    )
    if fn is None:
        return set()
    aliases: dict[str, str] = {}
    for node in [*tree.body, *ast.walk(fn)]:
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                dotted = f"{node.module}.{alias.name}"
                if dotted.startswith("repro."):
                    suffix = dotted[len("repro."):].replace(".", "/") + ".py"
                    aliases[alias.asname or alias.name] = suffix
    out: set[tuple[str, str]] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id in aliases
            ):
                out.add((aliases[target.value.id], target.attr))
    return out


def _is_count_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name) and func.id == "count":
        return True
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "count"
        and isinstance(func.value, ast.Name)
        and func.value.id == "itertools"
    )


def _stream_derived_names(tree: ast.Module) -> set[str]:
    """Names (locals and ``self.X`` attrs) bound anywhere in the file from
    an expression containing a ``.stream(...)`` call — receivers the
    NDF003 rule accepts as registry-routed."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = getattr(node, "value", None)
        if value is None:
            continue
        derived = any(
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in ("stream", "spawn")
            for sub in ast.walk(value)
        )
        if not derived:
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                out.add(target.id)
            else:
                chain = _attr_chain(target)
                if chain is not None:
                    out.add(chain)
    return out


def _random_aliases(tree: ast.Module) -> set[str]:
    """Local names bound to members of the ``random`` module by import."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                out.add(alias.asname or alias.name)
    return out


def build_nd_inventory(sources: Mapping[str, str]) -> NdInventory:
    """Layer 1: enumerate and classify every nondeterminism source."""
    inv = NdInventory()

    for path in sorted(sources):
        if path.endswith("sim/rng.py"):
            try:
                inv.stream_owners = _parse_stream_owners(
                    ast.parse(sources[path]))
            except SyntaxError:
                pass
        if path.endswith("net/world.py"):
            try:
                inv.registered_counters = _parse_registered_counters(
                    ast.parse(sources[path]))
            except SyntaxError:
                pass

    for path in sorted(sources):
        text = sources[path]
        try:
            tree = ast.parse(text, filename=path)
        except SyntaxError as exc:
            inv.problems.append(
                f"{path}:{exc.lineno}: does not parse: {exc.msg}")
            continue
        lines = text.splitlines()
        spans = _exempt_spans(tree)
        stream_bound = _stream_derived_names(tree)
        random_imports = _random_aliases(tree)
        is_rng_module = path.endswith("sim/rng.py")
        in_control = any(d in path for d in _CONTROL_DIRS)

        def add(kind: str, node: ast.AST, name: str, *, dynamic: bool = False,
                auto: str | None = None,
                registered: bool | None = None) -> NdSource:
            annotated, why = _annotation_on(lines, node)
            src = NdSource(
                kind=kind, path=path, line=node.lineno,
                col=getattr(node, "col_offset", 0), node=node, name=name,
                dynamic=dynamic, annotated=annotated, why=why, auto=auto,
                registered=registered,
            )
            inv.add(src)
            return src

        # Module-level id counters.
        for node in tree.body:
            targets: list[ast.AST] = []
            value = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value = [node.target], node.value
            if value is None or not _is_count_call(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                registered = any(
                    path.endswith(mod) and var == target.id
                    for mod, var in inv.registered_counters
                )
                add(
                    "counter", node, target.id,
                    auto="counter" if registered else None,
                    registered=registered,
                )

        for node in ast.walk(tree):
            if _in_spans(getattr(node, "lineno", 0), spans):
                continue

            # Tie-break policies: any class with key(self, ctx_serial).
            if isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if (
                        isinstance(stmt, ast.FunctionDef)
                        and stmt.name == "key"
                        and [a.arg for a in stmt.args.args]
                        == ["self", "ctx_serial"]
                    ):
                        add("tiebreak", node, node.name, auto="seed")
                        break

            # Timing knobs of the config dataclasses.
            if (
                isinstance(node, ast.ClassDef)
                and node.name in _TIMING_CLASSES
            ):
                for stmt in node.body:
                    if (
                        isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Name)
                        and (
                            stmt.target.id.endswith(("_us", "_ms", "_rps"))
                            or "heartbeat" in stmt.target.id
                        )
                    ):
                        add(
                            "timing-knob", stmt,
                            f"{node.name}.{stmt.target.id}", auto="config",
                        )

            if not isinstance(node, ast.Call):
                continue
            func = node.func

            # RngRegistry.stream()/spawn() call sites.
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("stream", "spawn")
                and len(node.args) == 1
            ):
                name, dynamic = _render_stream_name(node.args[0])
                add(
                    func.attr, node, name, dynamic=dynamic,
                    auto=None if dynamic else "logged",
                )
                if not dynamic and func.attr == "stream":
                    inv.literal_streams.setdefault(name, set()).add(path)

            # Raw entropy: random.Random(...) / random.<fn>(...) or names
            # imported from the random module.
            chain = _attr_chain(func)
            bare = func.id if isinstance(func, ast.Name) else None
            if not is_rng_module and (
                (chain is not None and chain.split(".", 1)[0] == "random"
                 and "." in chain)
                or (bare is not None and bare in random_imports)
            ):
                add("global-random", node, chain or bare)

            # Draws off non-stream generators in control paths.
            elif (
                in_control
                and isinstance(func, ast.Attribute)
                and func.attr in _DRAW_METHODS
            ):
                receiver = func.value
                rchain = _attr_chain(receiver)
                derived = rchain in stream_bound or any(
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in ("stream", "spawn")
                    for sub in ast.walk(receiver)
                )
                if not derived and rchain != "random":
                    add(
                        "draw", node,
                        f"{rchain or '<expr>'}.{func.attr}",
                    )

    return inv


# --------------------------------------------------------------------------- #
# Layer 1½ — selfcheck                                                        #
# --------------------------------------------------------------------------- #


def ndflow_selfcheck(
    sources: Mapping[str, str] | None = None,
) -> tuple[list[str], dict[str, str]]:
    """Prove the inventory is complete and the vocabulary is sound.

    Returns ``(problems, dispositions)``: *problems* is empty when every
    source parses, every ``nd:`` annotation uses known vocabulary and sits
    on an inventoried source line, every source has a class (automatic or
    annotated), no dynamic stream name is unannotated, and every
    module-level ``itertools.count`` is rewound by ``reset_id_counters()``
    (or explicitly exempt).  *dispositions* maps each source to its class
    — the auditable inventory the CLI prints.
    """
    if sources is None:
        sources = load_ndflow_sources()
    inv = build_nd_inventory(sources)
    problems = list(inv.problems)

    inventoried: dict[str, set[int]] = {}
    for src in inv.sources:
        stop = getattr(src.node, "end_lineno", None) or src.line
        inventoried.setdefault(src.path, set()).update(
            range(src.line, stop + 1))

    for path in sorted(sources):
        for lineno, line in enumerate(sources[path].splitlines(), start=1):
            match = _ND_ANNOT_RE.search(line)
            if match is None:
                continue
            if match.group(1) not in ND_CLASSES:
                problems.append(
                    f"{path}:{lineno}: unknown nd class '{match.group(1)}' "
                    f"(use {', '.join(sorted(ND_CLASSES))})"
                )
            if lineno not in inventoried.get(path, ()):
                problems.append(
                    f"{path}:{lineno}: 'nd:' annotation is not on an "
                    f"inventoried nondeterminism source — it classifies "
                    f"nothing"
                )

    for src in inv.sources:
        if src.nd_class is None:
            detail = " (dynamic stream name)" if src.dynamic else ""
            problems.append(
                f"{src.path}:{src.line}: unaccounted nondeterminism source "
                f"{src.label}{detail} — classify it with an 'nd:' "
                f"annotation or route it through the registry"
            )
        if (
            src.kind == "counter"
            and src.registered is False
            and src.annotated != "exempt"
        ):
            problems.append(
                f"{src.path}:{src.line}: module-level itertools.count "
                f"'{src.name}' is not rewound by reset_id_counters() — "
                f"unreset id streams leak into checkpoint digests across "
                f"same-process runs"
            )

    dispositions: dict[str, str] = {}
    for src in sorted(inv.sources, key=lambda s: (s.path, s.line)):
        cls = src.nd_class or "UNACCOUNTED"
        if src.annotated is not None:
            cls += " (annotated)"
        dispositions[f"{src.path}:{src.line}  {src.label}"] = cls
    return problems, dispositions


# --------------------------------------------------------------------------- #
# Layer 2 — rules                                                             #
# --------------------------------------------------------------------------- #


class _NdfRule(Rule):
    """Whole-program provenance rule: registered for id/severity
    bookkeeping; the ndflow driver invokes :meth:`check` per file with the
    full inventory (same pattern as the PERF rules)."""

    severity = "warning"
    interests: tuple[type, ...] = (ast.Module,)

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        return iter(())

    def check(
        self, ctx: LintContext, sources: Sequence[NdSource],
        inventory: NdInventory,
    ) -> Iterator[Finding]:
        return iter(())


@register
class BareEntropy(_NdfRule):
    rule_id = "NDF001"
    summary = ("bare random.Random / random.* entropy outside sim/rng.py "
               "with no declared provenance; a backup-side replay cannot "
               "reproduce its draws — use a named RngRegistry stream")

    def check(self, ctx, sources, inventory):
        for src in sources:
            if src.kind != "global-random" or src.accounted:
                continue
            yield self.finding(
                ctx, src.node,
                f"{src.name}() draws entropy outside the registry; the "
                f"NDLog never sees it, so deterministic replay breaks — "
                f"route through world.rng.stream(<name>) or declare "
                f"provenance with an 'nd:' annotation",
            )


@register
class DynamicStreamName(_NdfRule):
    rule_id = "NDF002"
    summary = ("dynamic (f-string/computed) stream name defeats the static "
               "nondeterminism inventory; annotate the call site or use a "
               "literal name")

    def check(self, ctx, sources, inventory):
        for src in sources:
            if src.kind not in ("stream", "spawn") or not src.dynamic:
                continue
            if src.annotated is not None and src.annotated in _ACCOUNTED:
                continue
            yield self.finding(
                ctx, src.node,
                f"stream name {src.name!r} is computed at runtime — the "
                f"static inventory cannot enumerate it; add an 'nd:' "
                f"annotation naming its class (or use a literal)",
            )


@register
class UnroutedControlPathDraw(_NdfRule):
    rule_id = "NDF003"
    summary = ("RNG draw in a replication/fleet control path not routed "
               "through a named registry stream; the replay log misses it")

    def check(self, ctx, sources, inventory):
        for src in sources:
            if src.kind != "draw" or src.accounted:
                continue
            yield self.finding(
                ctx, src.node,
                f"{src.name}() draws from a generator the NDLog does not "
                f"wrap, inside a replication/fleet control path — replay "
                f"on the backup would diverge; draw from a named "
                f"world.rng stream instead",
            )


@register
class UnregisteredCounter(_NdfRule):
    rule_id = "NDF004"
    summary = ("module-level itertools.count not registered in "
               "reset_id_counters(); ids drift across same-process runs "
               "and leak into checkpoint digests")

    def check(self, ctx, sources, inventory):
        for src in sources:
            if src.kind != "counter" or src.registered or src.accounted:
                continue
            yield self.finding(
                ctx, src.node,
                f"id counter '{src.name}' is never rewound by "
                f"reset_id_counters(); a second same-seed run hands out "
                f"different ids and digests diverge — register it in "
                f"net/world.py",
            )


@register
class SharedStreamName(_NdfRule):
    rule_id = "NDF005"
    summary = ("one stream-name literal used from several modules without "
               "a STREAM_OWNERS entry; the call sites silently couple "
               "their draw sequences")

    def check(self, ctx, sources, inventory):
        for src in sources:
            if src.kind != "stream" or src.dynamic:
                continue
            users = inventory.literal_streams.get(src.name, set())
            if len(users) < 2 or src.name in inventory.stream_owners:
                continue
            others = sorted(p for p in users if p != src.path)
            yield self.finding(
                ctx, src.node,
                f"stream {src.name!r} is also drawn from "
                f"{', '.join(others)}; unrelated consumers of one stream "
                f"perturb each other's sequences — declare an owner in "
                f"sim/rng.py STREAM_OWNERS or pick a distinct name",
            )


NDFLOW_RULE_IDS = ("NDF001", "NDF002", "NDF003", "NDF004", "NDF005")


# --------------------------------------------------------------------------- #
# Layer 2 — driver                                                            #
# --------------------------------------------------------------------------- #


@dataclass
class NdflowReport:
    """Everything one static ndflow pass produced."""

    findings: list[Finding] = dc_field(default_factory=list)
    inventory: NdInventory = dc_field(default_factory=NdInventory)


def analyze_ndflow(
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    overrides: Mapping[str, str] | None = None,
) -> NdflowReport:
    """Run Layers 1+2: inventory, then the NDF rules over every file."""
    rules = [
        rule for rule in all_rules(select=select, ignore=ignore)
        if isinstance(rule, _NdfRule)
    ]
    sources = load_ndflow_sources(overrides)
    inventory = build_nd_inventory(sources)

    findings: list[Finding] = []
    for path in sorted(inventory.by_path):
        text = sources.get(path)
        if text is None:
            continue
        try:
            tree = ast.parse(text, filename=path)
        except SyntaxError:
            continue  # already recorded in inventory.problems
        ctx = LintContext(path, text, tree)
        per_file = inventory.by_path[path]
        for rule in rules:
            for finding in rule.check(ctx, per_file, inventory):
                if not ctx.suppressed(finding.rule_id, finding.line):
                    findings.append(finding)
    return NdflowReport(
        findings=sorted(findings, key=Finding.sort_key), inventory=inventory
    )
