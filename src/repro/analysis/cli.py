"""Standalone ``repro-lint`` entry point.

Thin wrapper so the linter can run without the full experiment CLI (e.g.
from pre-commit hooks or editors): ``repro-lint [paths...]`` behaves exactly
like ``python -m repro lint [paths...]``.
"""

from __future__ import annotations

import sys
from typing import Sequence

__all__ = ["main"]


def main(argv: Sequence[str] | None = None) -> int:
    from repro.cli import main as repro_main

    args = list(argv) if argv is not None else sys.argv[1:]
    return repro_main(["lint", *args])


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
