"""Finding baselines: freeze known findings so only *new* ones gate CI.

A baseline is a checked-in JSON file of finding *fingerprints*.  Running a
linter (``repro lint`` or ``repro ckptcov``) against a baseline partitions
its findings three ways:

* **new** — findings whose fingerprint is absent from (or exceeds its
  allowance in) the baseline.  These fail CI: somebody introduced a gap.
* **baselined** — known findings, reported but non-fatal.  The debt being
  burned down.
* **stale** — baseline entries no findings matched anymore.  The gap was
  fixed; the entry should be deleted (``--update-baseline`` rewrites the
  file).  Stale entries are reported so the baseline cannot silently rot
  into a blanket waiver.

Fingerprints are deliberately **line-free** (``rule_id::path::message``):
editing an unrelated part of a file must not invalidate the baseline, and
a moved-but-unfixed finding must still match.  Identical findings at
several sites in one file share a fingerprint; the baseline stores a count
per fingerprint, so fixing *some* of N duplicates still shrinks the
allowance on the next ``--update-baseline``.

Format (``version`` guards future migrations)::

    {"version": 1, "entries": {"CKPT101::src/repro/kernel/mm.py::...": 1}}
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.linter import Finding

__all__ = [
    "BaselineError",
    "BaselinedReport",
    "apply_baseline",
    "fingerprint",
    "load_baseline",
    "write_baseline",
]

_FORMAT_VERSION = 1


class BaselineError(ValueError):
    """Raised for unreadable or wrong-format baseline files."""


def fingerprint(finding: Finding) -> str:
    """Stable, line-number-free identity of a finding."""
    return f"{finding.rule_id}::{finding.path}::{finding.message}"


def load_baseline(path: str | Path) -> dict[str, int]:
    """Read a baseline file -> {fingerprint: allowed count}.

    A missing file is an empty baseline (first run bootstraps with
    ``--update-baseline``); a malformed one raises :class:`BaselineError`
    so CI cannot pass on a silently-ignored baseline.
    """
    file = Path(path)
    if not file.exists():
        return {}
    try:
        data = json.loads(file.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"{file}: unreadable baseline: {exc}") from exc
    if not isinstance(data, dict) or data.get("version") != _FORMAT_VERSION:
        raise BaselineError(
            f"{file}: expected a baseline object with version={_FORMAT_VERSION}"
        )
    entries = data.get("entries")
    if not isinstance(entries, dict) or not all(
        isinstance(k, str) and isinstance(v, int) and v > 0
        for k, v in entries.items()
    ):
        raise BaselineError(f"{file}: 'entries' must map fingerprints to counts > 0")
    return dict(entries)


def write_baseline(path: str | Path, findings: Iterable[Finding]) -> dict[str, int]:
    """Freeze *findings* into a baseline file; returns the entry map."""
    counts = Counter(fingerprint(f) for f in findings)
    entries = dict(sorted(counts.items()))
    payload = {"version": _FORMAT_VERSION, "entries": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return entries


@dataclass
class BaselinedReport:
    """The three-way partition of a finding list against a baseline."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    #: Fingerprints (with unused allowance) nothing matched anymore.
    stale: list[tuple[str, int]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """CI gate: no new findings (stale entries warn, they don't fail)."""
        return not self.new


def apply_baseline(
    findings: Sequence[Finding], baseline: dict[str, int]
) -> BaselinedReport:
    """Partition *findings* into new / baselined / stale vs *baseline*.

    With duplicate fingerprints, the first ``allowance`` occurrences (in
    the reporter's deterministic order) are baselined and the rest are
    new — the conservative reading of a shrunk duplicate set.
    """
    report = BaselinedReport()
    used: Counter[str] = Counter()
    for finding in findings:
        fp = fingerprint(finding)
        if used[fp] < baseline.get(fp, 0):
            used[fp] += 1
            report.baselined.append(finding)
        else:
            report.new.append(finding)
    for fp, allowed in sorted(baseline.items()):
        unused = allowed - used[fp]
        if unused > 0:
            report.stale.append((fp, unused))
    return report
