"""Layer 3 of the checkpoint state-coverage analyzer: the differential oracle.

The static pass (:mod:`repro.analysis.coverage`) proves *name-level*
coverage: every checkpoint-relevant field is read somewhere in the dump
closure and written somewhere in the restore closure.  Name matching
over-approximates, so this module provides the semantic backstop: run a
real workload from the catalog, freeze it mid-run, take one full
checkpoint, restore it into the *backup* host's pristine kernel, and
structurally deep-compare the frozen original against the restored clone
— field by field, guided by the same Layer-1 inventory.

The comparison skips exactly what the inventory says to skip (``derived``
/ ``ephemeral`` annotations, ``__ckpt_ignore__``), so the two layers
cross-check each other:

* a diff on a field the static pass calls **covered** is an analyzer bug
  (the name-based closure was fooled, or a restore path is wrong);
* a diff on a field it calls **uncovered** is a *confirmed* CKPT101 — the
  gap is real and observable, not a static false positive.

The oracle needs no replication machinery: with no prior ``fgetfc`` every
written fs-cache page still carries its DNC bit and the simulated cache
never evicts, so one full checkpoint captures the complete logical state
(memory, threads, sockets in repair mode, namespaces/cgroup, fs cache).
Host-local identity is canonicalized before comparing: fs-cache keys are
rekeyed from ``(ino, page)`` to ``(path, page)``, and sockets pair by
connection 4-tuple via the stack's own maps.

Input is blocked (ingress plug) before the freeze, exactly as failover
and live migration do (paper SSIII): otherwise packets arriving between
the socket dump and the comparison would mutate the original's TCP state
and show up as phantom diffs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field as dc_field
from enum import Enum
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.analysis.coverage import (
    ClassInfo,
    Inventory,
    analyze_coverage,
    build_inventory,
    load_source_set,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.container.runtime import Container

__all__ = [
    "OracleResult",
    "StateDiff",
    "compare_containers",
    "run_oracle",
    "ORACLE_WORKLOADS",
]

#: Catalog entries the oracle (and ``repro ckptcov --diff``) cycles through.
#: One per workload family: compute (parsec), KV with persistence (fs
#: cache + heap), web (multi-process), echo (network stack), disk-rw.
ORACLE_WORKLOADS = ("swaptions", "ssdb", "lighttpd", "net-echo", "disk-rw")

_MISSING = object()


@dataclass(frozen=True)
class StateDiff:
    """One field whose value diverged between original and restored clone."""

    cls_name: str
    field: str
    #: Dotted path from the comparison root (``stack.connections[...]...``).
    subject: str
    primary: str
    restored: str

    @property
    def key(self) -> tuple[str, str]:
        return (self.cls_name, self.field)

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"{self.cls_name}.{self.field} @ {self.subject}: "
            f"primary={self.primary} restored={self.restored}"
        )


@dataclass
class OracleResult:
    """Outcome of one checkpoint -> restore -> deep-compare run."""

    workload: str
    seed: int
    froze_at_us: int
    fields_compared: int
    diffs: list[StateDiff] = dc_field(default_factory=list)
    #: Diffs on fields the static pass already calls uncovered: the gap is
    #: real (a CKPT101 with a witness), not a static false positive.
    confirmed_gaps: list[StateDiff] = dc_field(default_factory=list)
    #: Diffs on fields the static pass calls covered: the analyzer (or a
    #: restore path) is wrong.  Always a failure.
    analyzer_bugs: list[StateDiff] = dc_field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diffs

    def summary(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "seed": self.seed,
            "froze_at_us": self.froze_at_us,
            "fields_compared": self.fields_compared,
            "diffs": len(self.diffs),
            "confirmed_gaps": [str(d) for d in self.confirmed_gaps],
            "analyzer_bugs": [str(d) for d in self.analyzer_bugs],
        }


# --------------------------------------------------------------------------- #
# Deep comparison                                                             #
# --------------------------------------------------------------------------- #


def _canon_fs_cache(fs: Any, cache: dict) -> dict:
    """Rekey ``(ino, page_idx)`` -> ``(path, page_idx)``: inode numbers are
    host-local allocator state, paths are the logical identity."""
    out = {}
    for (ino, page_idx), page in cache.items():
        try:
            path = fs._inode_by_ino(ino).path
        except Exception:
            path = f"<dangling ino {ino}>"
        out[(path, page_idx)] = page
    return out


def _canon_resident_pages(_mm: Any, pages: dict) -> dict:
    """Empty tokens are demand-zero holes; restore deliberately drops them
    (sparse restore), so both sides compare hole-free."""
    return {idx: tok for idx, tok in pages.items() if tok != b""}


#: (class, field) -> fn(owner, raw value) -> canonical value.  The *only*
#: place host-local identity is laundered; everything else compares raw.
_FIELD_CANON: dict[tuple[str, str], Callable[[Any, Any], Any]] = {
    ("FileSystem", "_cache"): _canon_fs_cache,
    ("AddressSpace", "pages"): _canon_resident_pages,
}


def _short(value: Any) -> str:
    if value is _MISSING:
        return "<missing>"
    text = repr(value)
    return text if len(text) <= 120 else text[:117] + "..."


class _Comparator:
    def __init__(self, inventory: Inventory) -> None:
        self.inventory = inventory
        self.diffs: list[StateDiff] = []
        self.fields_compared = 0
        self._seen: set[tuple[int, int]] = set()

    # -- entry points ------------------------------------------------------
    def compare_object(self, subject: str, a: Any, b: Any) -> None:
        pair = (id(a), id(b))
        if pair in self._seen:
            return
        self._seen.add(pair)
        cls_info = self.inventory.by_name(type(a).__name__)
        if cls_info is None or cls_info.ignored or cls_info.exempt:
            return
        for field_info in sorted(cls_info.fields.values(), key=lambda f: f.name):
            if field_info.classification != "relevant":
                continue
            self.fields_compared += 1
            va = getattr(a, field_info.name, _MISSING)
            vb = getattr(b, field_info.name, _MISSING)
            canon = _FIELD_CANON.get((cls_info.name, field_info.name))
            if canon is not None:
                if va is not _MISSING:
                    va = canon(a, va)
                if vb is not _MISSING:
                    vb = canon(b, vb)
            self._compare_value(
                f"{subject}.{field_info.name}", cls_info.name, field_info.name,
                va, vb,
            )

    def diff(self, cls_name: str, field: str, subject: str, a: Any, b: Any) -> None:
        self.diffs.append(
            StateDiff(cls_name=cls_name, field=field, subject=subject,
                      primary=_short(a), restored=_short(b))
        )

    # -- value dispatch ----------------------------------------------------
    def _compare_value(
        self, subject: str, cls_name: str, field: str, a: Any, b: Any
    ) -> None:
        a, b = _normalize(a), _normalize(b)
        if a is _MISSING or b is _MISSING:
            if a is not b:
                self.diff(cls_name, field, subject, a, b)
            return

        # Inventoried kernel objects recurse; the diff (if any) is then
        # attributed to the *inner* class/field, which is what maps back to
        # the static pass's (class, field) coverage verdicts.
        inner_a = self.inventory.by_name(type(a).__name__)
        inner_b = self.inventory.by_name(type(b).__name__)
        if inner_a is not None or inner_b is not None:
            if type(a).__name__ != type(b).__name__:
                self.diff(cls_name, field, subject,
                          type(a).__name__, type(b).__name__)
                return
            self.compare_object(subject, a, b)
            return

        if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
            if len(a) != len(b):
                self.diff(cls_name, field, subject,
                          f"len {len(a)}", f"len {len(b)}")
                return
            for i, (ea, eb) in enumerate(zip(a, b)):
                self._compare_value(f"{subject}[{i}]", cls_name, field, ea, eb)
            return

        if isinstance(a, dict) and isinstance(b, dict):
            keys_a, keys_b = set(a), set(b)
            if keys_a != keys_b:
                only_a = sorted(keys_a - keys_b, key=repr)[:4]
                only_b = sorted(keys_b - keys_a, key=repr)[:4]
                self.diff(cls_name, field, subject,
                          f"+keys {only_a}", f"+keys {only_b}")
                return
            for key in sorted(keys_a, key=repr):
                self._compare_value(
                    f"{subject}[{key!r}]", cls_name, field, a[key], b[key]
                )
            return

        if isinstance(a, (set, frozenset)) and isinstance(b, (set, frozenset)):
            if set(a) != set(b):
                self.diff(cls_name, field, subject, a, b)
            return

        if a != b:
            self.diff(cls_name, field, subject, a, b)


def _normalize(value: Any) -> Any:
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, bytearray):
        return bytes(value)
    if isinstance(value, deque):
        return list(value)
    return value


def compare_containers(
    primary: "Container", restored: "Container", inventory: Inventory
) -> tuple[list[StateDiff], int]:
    """Deep-compare two containers' checkpoint-relevant state.

    Returns ``(diffs, fields_compared)``.  Structural mismatches at the
    container layout level (process/filesystem counts) are reported under
    the pseudo-class ``<layout>`` and always classify as analyzer bugs —
    the harness, not a field, diverged.
    """
    cmp = _Comparator(inventory)
    cmp.compare_object("namespaces", primary.namespaces, restored.namespaces)
    cmp.compare_object("cgroup", primary.cgroup, restored.cgroup)
    cmp.compare_object("stack", primary.stack, restored.stack)

    if len(primary.processes) != len(restored.processes):
        cmp.diff("<layout>", "processes", "processes",
                 f"count {len(primary.processes)}",
                 f"count {len(restored.processes)}")
    for i, (pa, pb) in enumerate(zip(primary.processes, restored.processes)):
        cmp.compare_object(f"processes[{i}:{pa.comm}]", pa, pb)

    fs_a = primary.mounted_filesystems()
    fs_b = restored.mounted_filesystems()
    if len(fs_a) != len(fs_b):
        cmp.diff("<layout>", "filesystems", "filesystems",
                 f"count {len(fs_a)}", f"count {len(fs_b)}")
    for fa, fb in zip(fs_a, fs_b):
        cmp.compare_object(f"fs[{fa.name}]", fa, fb)

    return cmp.diffs, cmp.fields_compared


# --------------------------------------------------------------------------- #
# The live harness                                                            #
# --------------------------------------------------------------------------- #


def run_oracle(
    workload_name: str,
    seed: int = 1,
    freeze_at_us: int = 150_000,
    client_run_us: int = 400_000,
    config: "Any | None" = None,
    static_uncovered: "set[tuple[str, str]] | None" = None,
    inventory: Inventory | None = None,
) -> OracleResult:
    """Checkpoint a live *workload_name* container, restore it on the
    backup host, deep-compare, and classify every diff against the static
    pass's coverage verdicts.

    *config* is the :class:`~repro.criu.config.CriuConfig` for both sides
    (tests pass ``unsafe_drop_dump`` knobs through it); *static_uncovered*
    overrides the ``(class, field)`` set used to split confirmed gaps from
    analyzer bugs (defaults to a fresh :func:`analyze_coverage` run).
    """
    # Imported here: the analysis package must stay importable without
    # dragging the whole simulator in for plain lint runs.
    from repro.baselines.stock import StockDeployment
    from repro.container.runtime import ContainerRuntime
    from repro.criu.checkpoint import CheckpointEngine
    from repro.criu.config import CriuConfig
    from repro.criu.restore import FullState, RestoreEngine
    from repro.net.world import World
    from repro.workloads.base import ClientStats, ServerWorkload
    from repro.workloads.catalog import make_workload

    criu_config = config if config is not None else CriuConfig.nilicon()
    world = World(seed=seed)
    workload = make_workload(workload_name)
    deployment = StockDeployment(world, workload.spec())
    container = deployment.container
    workload.warmup(world, container)
    workload.attach(world, container)
    deployment.start()

    stats = ClientStats()
    if isinstance(workload, ServerWorkload):

        def clients():
            yield world.engine.timeout(1_000)
            workload.start_clients(world, stats, run_until_us=client_run_us)

        world.engine.process(clients())

    outcome: dict[str, Any] = {}

    def probe():
        yield world.engine.timeout(freeze_at_us)
        # Block input before freezing (SSIII): packets landing after the
        # socket dump would mutate the original mid-comparison.
        container.veth.ingress_plug.plug()
        yield world.engine.timeout(world.costs.plug_block)
        yield from container.freeze(poll=True)
        outcome["froze_at_us"] = world.engine.now

        engine = CheckpointEngine(world.primary.kernel, criu_config)
        image = yield from engine.checkpoint(container, incremental=False)

        # The backup kernel needs block devices for the spec's mounts
        # (DRBD's job in the real system; local disks suffice here since
        # the full fs cache travels in the image).
        for _mountpoint, fs_name in container.spec.mounts:
            if fs_name not in world.backup.kernel.filesystems:
                world.backup.kernel.add_block_device(f"oracle-{fs_name}")
                world.backup.kernel.mkfs(f"oracle-{fs_name}", fs_name)

        state = FullState(
            spec=container.spec,
            processes=[
                {
                    "comm": p.comm,
                    "vmas": p.vmas,
                    "pages": p.pages,
                    "threads": p.threads,
                    "fd_entries": p.fd_entries,
                }
                for p in image.processes
            ],
            sockets=image.sockets,
            namespaces=image.namespaces,
            cgroup=image.cgroup,
            fs_inode_entries=image.fs_inode_entries,
            fs_page_entries=image.fs_page_entries,
        )
        runtime = ContainerRuntime(world.backup.kernel, world.bridge)
        restorer = RestoreEngine(world.backup.kernel, criu_config)
        restored = yield from restorer.restore(runtime, state)
        outcome["restored"] = restored

    proc = world.engine.process(probe())
    world.run(until=proc)
    restored = outcome["restored"]

    if inventory is None:
        inventory = build_inventory(load_source_set().inventory)
    if static_uncovered is None:
        static_uncovered = analyze_coverage().uncovered()

    diffs, fields_compared = compare_containers(container, restored, inventory)
    result = OracleResult(
        workload=workload_name,
        seed=seed,
        froze_at_us=outcome["froze_at_us"],
        fields_compared=fields_compared,
        diffs=diffs,
    )
    for diff in diffs:
        if diff.key in static_uncovered:
            result.confirmed_gaps.append(diff)
        else:
            result.analyzer_bugs.append(diff)
    return result


def run_oracle_suite(
    workloads: Iterable[str] = ORACLE_WORKLOADS, **kwargs: Any
) -> list[OracleResult]:
    """Run the oracle over several catalog workloads (CLI ``--diff``)."""
    return [run_oracle(name, **kwargs) for name in workloads]
