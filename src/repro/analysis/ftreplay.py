"""Recovery-path coverage recorder and catalog runner (``repro ftcov
record``) — the dynamic half of the ftcov analyzer.

The static inventory (:mod:`repro.analysis.ftcov`) enumerates the
failure-handling surface; this module proves the scenario catalogs
actually *walk* it.  A :class:`FtcovRecorder` installs itself on a
world's engine as ``engine._ftcov``; the hooks threaded through the
protocol — :func:`~repro.sim.faults.fault_point` (every point reach),
:meth:`FaultPlan.on_point <repro.faultinject.plan.FaultPlan.on_point>`
(every rule that actually fired), ``FleetController._set_state`` (every
state-machine edge), and the :func:`~repro.sim.faults.coverage_mark`
calls in recovery handlers and ``inject_*`` entry points — are single
``getattr`` no-ops when no recorder is armed, the same zero-cost
discipline as ``SimProfiler``.  The recorder only counts; it adds no
simulated time and no trace events, so armed runs keep their golden
digests.

:func:`run_ftcov_record` drives the full catalogs — every pair-level
fault-injection scenario, every fleet scenario, and the traffic
failover/migration profiles — under one shared recorder, then
cross-references the merged counters against the static inventory:

* every registered fault point must be **reached** (the hook executed)
  and **fired** (some scenario's rule triggered there);
* every non-``backlog`` ``MEMBER_EDGES`` transition must be observed —
  and every ``backlog`` edge must *not* be (a driven backlog edge is a
  stale annotation);
* every hooked handler and ``inject_*`` entry point must be entered.

Each unreached site is a gate failure unless annotated; each ``backlog``
edge is emitted as a *named missing scenario* — the concrete backlog the
ROADMAP "scenario diversity" item asks for.  The coverage matrix digest
is a CRC32 over the sorted counters (:func:`~repro.sim.profiler.
counter_digest`), so two same-catalog runs must agree bit-for-bit.

The ``drop-scenario`` knob (``UNSAFE_DROP_SCENARIO``) silently removes
the only scenario arming ``backup.mid_commit`` from the pair catalog;
the knob run *passes* only if the crossref reports exactly that fired
gap — the dynamic witness paired with the FTC002 baseline entry.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from repro.sim.profiler import counter_digest

__all__ = [
    "FTCOV_KNOBS",
    "FtcovRecorder",
    "crossref_coverage",
    "format_report",
    "run_ftcov_record",
]

#: Knob name -> what the seeded gap must look like.
FTCOV_KNOBS = ("drop-scenario",)

#: Campaign constants: one deterministic cell per pair scenario (the
#: campaign's own first seed and workload), the fleet default seed, the
#: traffic default seed.
_PAIR_WORKLOAD = "net-echo"
_PAIR_SEED = 101
_FLEET_SEED = 7
_TRAFFIC_SEED = 1


class FtcovRecorder:
    """Counts coverage marks; keyed ``"<kind>:<name>"``.

    Deliberately dumb: a plain counter dict, no timestamps, no engine
    interaction — installing it must not perturb simulated behavior.
    """

    #: Measuring instrument: never part of any profiled hot path.
    __perf_exempt__ = True
    __nd_exempt__ = True

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}

    def record(self, kind: str, name: str) -> None:
        key = f"{kind}:{name}"
        self.counters[key] = self.counters.get(key, 0) + 1

    def install(self, world: Any) -> None:
        """The ``instrument`` hook every catalog runner accepts."""
        world.engine._ftcov = self

    def digest(self) -> str:
        return counter_digest(self.counters)


# --------------------------------------------------------------------- #
# Crossref: merged counters vs static inventory                          #
# --------------------------------------------------------------------- #


def crossref_coverage(
    counters: Mapping[str, int],
    inventory: Any = None,
) -> dict[str, Any]:
    """Cross-reference recorded *counters* against the L1 inventory.

    Pure on its inputs (the inventory is built fresh only when not
    passed), so the gap logic is unit-testable on synthetic counters.
    """
    if inventory is None:
        from repro.analysis.ftcov import build_ft_inventory, load_ftcov_sources

        inventory = build_ft_inventory(load_ftcov_sources())

    gaps: list[str] = []
    missing_scenarios: list[dict[str, str]] = []
    points: dict[str, dict[str, int]] = {}
    edges_observed = {
        key.split(":", 1)[1]: count
        for key, count in counters.items() if key.startswith("edge:")
    }
    handlers: dict[str, int] = {}
    injects: dict[str, int] = {}

    for site in sorted(inventory.sites, key=lambda s: (s.path, s.line)):
        if site.kind == "point":
            reached = counters.get(f"point:{site.name}", 0)
            fired = counters.get(f"fired:{site.name}", 0)
            points[site.name] = {"reached": reached, "fired": fired}
            if site.ft_class != "exercised":
                continue  # annotated exception — accounted statically
            if reached == 0:
                gaps.append(
                    f"point-unreached:{site.name} — no catalog run ever "
                    f"executed this hook site"
                )
            if fired == 0:
                gaps.append(
                    f"point-unfired:{site.name} — reached but no "
                    f"scenario's fault rule ever triggered there"
                )
        elif site.kind == "edge":
            observed = edges_observed.get(site.name, 0)
            if site.annotated == "backlog":
                if observed:
                    gaps.append(
                        f"stale-backlog:{site.name} — annotated as a "
                        f"coverage gap but the catalogs drove it "
                        f"{observed}x; promote it to a claimed edge"
                    )
                else:
                    why = site.why or ""
                    scenario = why.split("scenario:", 1)[-1].strip()
                    missing_scenarios.append(
                        {"edge": site.name, "scenario": scenario}
                    )
            elif site.ft_class == "exercised" and observed == 0:
                gaps.append(
                    f"edge-unobserved:{site.name} — claimed by a scenario "
                    f"but never driven by any catalog run"
                )
        elif site.kind == "handler" and site.hook is not None:
            count = counters.get(f"handler:{site.hook}", 0)
            handlers[site.hook] = count
            if count == 0:
                gaps.append(
                    f"handler-unentered:{site.hook} — hooked recovery "
                    f"handler never entered by any catalog run"
                )
        elif site.kind == "inject" and site.hook is not None:
            count = counters.get(f"inject:{site.hook}", 0)
            injects[site.hook] = count
            if count == 0:
                gaps.append(
                    f"inject-unused:{site.hook} — injection entry point "
                    f"never exercised by any catalog run"
                )

    for name in sorted(edges_observed):
        if name not in inventory.declared_edges:
            gaps.append(
                f"undeclared-edge:{name} — observed at runtime but absent "
                f"from MEMBER_EDGES; declare it"
            )

    return {
        "points": points,
        "edges": {
            "declared": sorted(inventory.declared_edges),
            "observed": edges_observed,
        },
        "handlers": handlers,
        "injects": injects,
        "gaps": gaps,
        "missing_scenarios": missing_scenarios,
    }


def _pair_point_names() -> set[str]:
    from repro.faultinject.points import FAULT_POINTS, FLEET_FAULT_POINTS

    return set(FAULT_POINTS) - set(FLEET_FAULT_POINTS)


# --------------------------------------------------------------------- #
# The catalog runner                                                     #
# --------------------------------------------------------------------- #


def run_ftcov_record(
    knob: str | None = None,
    pair_scenarios: Iterable[str] | None = None,
    fleet_scenarios: Iterable[str] | None = None,
    traffic_events: Iterable[str] | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run the catalogs under one coverage recorder and gate on crossref.

    Default (no *knob*): the full pair catalog, the full fleet catalog
    and both event-carrying traffic profiles; the gate requires every
    run's own oracles green AND zero coverage gaps.

    ``knob="drop-scenario"``: the pair catalog minus
    ``UNSAFE_DROP_SCENARIO`` (fleet/traffic skipped — the seeded gap
    lives in the pair registry); the gate *passes* only when the
    crossref reports exactly the dropped scenario's fired gap.

    The scenario subsets exist for the determinism test (same subset
    twice -> identical digest), not for production use.
    """
    if knob is not None and knob not in FTCOV_KNOBS:
        raise KeyError(f"unknown ftcov knob {knob!r} (use {FTCOV_KNOBS})")

    from repro.experiments.faultcampaign import run_phase_injection
    from repro.experiments.traffic import run_traffic_event
    from repro.faultinject.scenarios import (
        UNSAFE_DROP_SCENARIO,
        scenario_names,
    )
    from repro.fleet.scenarios import FLEET_SCENARIOS, run_fleet_scenario
    from repro.net.world import reset_id_counters

    recorder = FtcovRecorder()
    runs: list[dict[str, Any]] = []

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    pair_names = (list(pair_scenarios) if pair_scenarios is not None
                  else scenario_names())
    fleet_names = (list(fleet_scenarios) if fleet_scenarios is not None
                   else list(FLEET_SCENARIOS))
    events = (list(traffic_events) if traffic_events is not None
              else ["failover", "migration"])
    if knob == "drop-scenario":
        pair_names = [n for n in pair_names if n != UNSAFE_DROP_SCENARIO]
        fleet_names = []
        events = []

    for name in pair_names:
        note(f"pair {name}")
        reset_id_counters()
        cell = run_phase_injection(
            _PAIR_WORKLOAD, name, _PAIR_SEED, instrument=recorder.install
        )
        runs.append({
            "kind": "pair", "name": name, "ok": cell.ok,
            "violations": list(cell.violations),
        })
    for name in fleet_names:
        note(f"fleet {name}")
        reset_id_counters()
        result = run_fleet_scenario(
            name, seed=_FLEET_SEED, instrument=recorder.install
        )
        runs.append({
            "kind": "fleet", "name": name, "ok": result.ok,
            "violations": list(result.violations),
        })
    for event in events:
        note(f"traffic {event}")
        result = run_traffic_event(
            event, seed=_TRAFFIC_SEED, instrument=recorder.install
        )
        violations = list(result["violations"])
        runs.append({
            "kind": "traffic", "name": event, "ok": not violations,
            "violations": violations,
        })

    crossref = crossref_coverage(recorder.counters)
    runs_ok = all(run["ok"] for run in runs)

    if knob == "drop-scenario":
        # Polarity gate: with the catalog mutilated, the *absence* of the
        # seeded gap is the failure.  Only pair-registry gaps count (the
        # fleet/traffic catalogs were deliberately not run).
        pair_points = _pair_point_names()
        pair_gaps = sorted(
            g for g in crossref["gaps"]
            if g.split(":", 1)[0] in ("point-unreached", "point-unfired")
            and g.split(":", 2)[1].split(" ")[0] in pair_points
        )
        expected = (
            f"point-unfired:{UNSAFE_DROP_SCENARIO.split('@', 1)[1]}"
        )
        seeded = [g for g in pair_gaps if g.startswith(expected)]
        unexpected = [g for g in pair_gaps if not g.startswith(expected)]
        ok = runs_ok and bool(seeded) and not unexpected
        verdict = {
            "expected_gap": expected,
            "seeded_gap_detected": bool(seeded),
            "unexpected_gaps": unexpected,
        }
    else:
        ok = runs_ok and not crossref["gaps"]
        verdict = {}

    return {
        "mode": "knob" if knob else "record",
        "knob": knob,
        "runs": runs,
        "runs_ok": runs_ok,
        "counters": dict(sorted(recorder.counters.items())),
        "digest": recorder.digest(),
        "ok": ok,
        **verdict,
        **crossref,
    }


def format_report(report: dict[str, Any]) -> str:
    """Human-readable coverage matrix for the CLI."""
    lines: list[str] = []
    failed = [r for r in report["runs"] if not r["ok"]]
    lines.append(
        f"ftcov {report['mode']}: {len(report['runs'])} catalog run(s), "
        f"{len(failed)} failed, digest {report['digest']}"
    )
    for run in failed:
        lines.append(f"  FAIL {run['kind']}:{run['name']}")
        for violation in run["violations"]:
            lines.append(f"    - {violation}")
    lines.append("fault points (reached/fired):")
    for name, counts in sorted(report["points"].items()):
        lines.append(
            f"  {name:<38} {counts['reached']:>6} / {counts['fired']}"
        )
    observed = report["edges"]["observed"]
    lines.append("state-machine edges:")
    for name in report["edges"]["declared"]:
        lines.append(f"  {name:<38} {observed.get(name, 0):>6}")
    lines.append("handlers entered:")
    for name, count in sorted(report["handlers"].items()):
        lines.append(f"  {name:<38} {count:>6}")
    lines.append("inject entry points:")
    for name, count in sorted(report["injects"].items()):
        lines.append(f"  {name:<38} {count:>6}")
    if report["mode"] == "knob":
        lines.append(
            f"knob gate: expected {report['expected_gap']} — "
            f"{'detected' if report['seeded_gap_detected'] else 'MISSING'}"
        )
        for gap in report.get("unexpected_gaps", ()):
            lines.append(f"  unexpected gap: {gap}")
    else:
        for gap in report["gaps"]:
            lines.append(f"  GAP: {gap}")
    if report["missing_scenarios"]:
        lines.append("missing-scenario backlog (annotated, not gating):")
        for entry in report["missing_scenarios"]:
            lines.append(
                f"  {entry['edge']:<38} -> {entry['scenario']}"
            )
    lines.append("ftcov: OK" if report["ok"] else "ftcov: FAIL")
    return "\n".join(lines)
