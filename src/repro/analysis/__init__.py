"""Static analysis and runtime auditing for the reproduction's correctness.

The entire repository rests on two properties that ordinary tests cannot
enforce by themselves:

* **Determinism** — no wall-clock, OS entropy or interpreter-identity value
  may influence a simulation (see the guarantees documented in
  :mod:`repro.sim.engine`); every experiment must replay exactly from its
  seed, which the fault-injection campaign depends on.
* **Checkpoint completeness** — every piece of mutable kernel state must be
  covered by the checkpoint path, or failover silently diverges.

This package provides the enforcement layers:

* :mod:`repro.analysis.linter` / :mod:`repro.analysis.rules` — ``nlint``,
  an AST-based linter with codebase-specific rules (DET001..CKPT001 as
  errors, RACE001/RACE002/ORD001 as warnings), run via
  ``python -m repro lint src/`` and in CI.
* :mod:`repro.analysis.auditor` — a runtime state auditor invoked at epoch
  boundaries and after restore, raising :class:`InvariantViolation` with a
  state diff when kernel bookkeeping goes inconsistent.
* :mod:`repro.analysis.races` / :mod:`repro.analysis.fuzz` — a dynamic
  happens-before race detector (vector clocks over process wake-ups and
  message edges) plus a tie-break schedule fuzzer proving end-to-end
  schedule independence, run via ``python -m repro races`` and in CI.
* :mod:`repro.analysis.coverage` / :mod:`repro.analysis.ckptdiff` — the
  checkpoint state-coverage analyzer (``python -m repro ckptcov``): a
  field inventory of the simulated kernel, the CKPT100..CKPT104
  dump/restore cross-reference, and a checkpoint->restore->deep-compare
  differential oracle over live catalog workloads.
* :mod:`repro.analysis.perf` / :mod:`repro.analysis.perfbench` — the
  hot-path performance analyzer (``python -m repro perf``): a call-graph
  pass classifying functions per-event/per-page/per-epoch, the
  PERF001..PERF006 rules linting only that hot surface, a deterministic
  profiler (:mod:`repro.sim.profiler`) cross-referencing every finding,
  and the wall-clock benchmark gate behind ``BENCH_engine.json``.
* :mod:`repro.analysis.baseline` — finding baselines shared by ``lint``,
  ``ckptcov`` and ``perf``: known findings are frozen in a checked-in
  file, new ones gate CI.

See ``docs/determinism.md`` for the rule catalogue and invariant list,
``docs/races.md`` for the race-detection machinery,
``docs/checkpoint-coverage.md`` for the coverage analyzer, and
``docs/perf.md`` for the performance analyzer.
"""

from repro.analysis.auditor import InvariantViolation, StateAuditor, Violation
from repro.analysis.baseline import (
    BaselinedReport,
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.analysis.ckptdiff import (
    OracleResult,
    StateDiff,
    compare_containers,
    run_oracle,
)
from repro.analysis.coverage import (
    COVERAGE_RULE_IDS,
    CoverageReport,
    Inventory,
    analyze_coverage,
    build_inventory,
    inventory_selfcheck,
)
from repro.analysis.linter import Finding, LintContext, Rule, all_rules, lint_paths, lint_source
from repro.analysis.perf import (
    PERF_RULE_IDS,
    HotFunction,
    PerfReport,
    analyze_perf,
    build_hot_map,
    perf_selfcheck,
)
from repro.analysis.perfbench import (
    ProfiledRun,
    check_bench,
    crossref,
    run_perf_bench,
    run_profiled_deployment,
)
from repro.analysis.races import (
    RaceDetector,
    RaceFinding,
    install_detector,
    uninstall_detector,
    verify_access_coverage,
)
from repro.analysis.report import render_json, render_text

__all__ = [
    "BaselinedReport",
    "COVERAGE_RULE_IDS",
    "CoverageReport",
    "Finding",
    "HotFunction",
    "InvariantViolation",
    "Inventory",
    "LintContext",
    "OracleResult",
    "PERF_RULE_IDS",
    "PerfReport",
    "ProfiledRun",
    "RaceDetector",
    "RaceFinding",
    "Rule",
    "StateAuditor",
    "StateDiff",
    "Violation",
    "all_rules",
    "analyze_coverage",
    "analyze_perf",
    "apply_baseline",
    "build_hot_map",
    "build_inventory",
    "check_bench",
    "compare_containers",
    "crossref",
    "fingerprint",
    "install_detector",
    "inventory_selfcheck",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "perf_selfcheck",
    "run_perf_bench",
    "run_profiled_deployment",
    "render_json",
    "render_text",
    "run_oracle",
    "uninstall_detector",
    "verify_access_coverage",
    "write_baseline",
]
