"""Static analysis and runtime auditing for the reproduction's correctness.

The entire repository rests on two properties that ordinary tests cannot
enforce by themselves:

* **Determinism** — no wall-clock, OS entropy or interpreter-identity value
  may influence a simulation (see the guarantees documented in
  :mod:`repro.sim.engine`); every experiment must replay exactly from its
  seed, which the fault-injection campaign depends on.
* **Checkpoint completeness** — every piece of mutable kernel state must be
  covered by the checkpoint path, or failover silently diverges.

This package provides the enforcement layers:

* :mod:`repro.analysis.linter` / :mod:`repro.analysis.rules` — ``nlint``,
  an AST-based linter with codebase-specific rules (DET001..CKPT001 as
  errors, RACE001/RACE002/ORD001 as warnings), run via
  ``python -m repro lint src/`` and in CI.
* :mod:`repro.analysis.auditor` — a runtime state auditor invoked at epoch
  boundaries and after restore, raising :class:`InvariantViolation` with a
  state diff when kernel bookkeeping goes inconsistent.
* :mod:`repro.analysis.races` / :mod:`repro.analysis.fuzz` — a dynamic
  happens-before race detector (vector clocks over process wake-ups and
  message edges) plus a tie-break schedule fuzzer proving end-to-end
  schedule independence, run via ``python -m repro races`` and in CI.

See ``docs/determinism.md`` for the rule catalogue and invariant list,
and ``docs/races.md`` for the race-detection machinery.
"""

from repro.analysis.auditor import InvariantViolation, StateAuditor, Violation
from repro.analysis.linter import Finding, LintContext, Rule, all_rules, lint_paths, lint_source
from repro.analysis.races import (
    RaceDetector,
    RaceFinding,
    install_detector,
    uninstall_detector,
    verify_access_coverage,
)
from repro.analysis.report import render_json, render_text

__all__ = [
    "Finding",
    "InvariantViolation",
    "LintContext",
    "RaceDetector",
    "RaceFinding",
    "Rule",
    "StateAuditor",
    "Violation",
    "all_rules",
    "install_detector",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "uninstall_detector",
    "verify_access_coverage",
]
